//! Differential test of the automatic μ-kernel extractor (§IX): the
//! transformed program must compute exactly what the original computes,
//! while executing its loop via spawned, regrouped warps.

use usimt::dmk::{extract_loop, DmkConfig, ExtractOptions};
use usimt::isa::assemble_named;
use usimt::sim::{Gpu, GpuConfig, Launch, RunOutcome};

const N: u32 = 128;

/// Per-thread weighted sum with a tid-dependent trip count.
const SRC: &str = r#"
.kernel main
main:
    mov.u32 r1, %tid
    mul.lo.s32 r2, r1, 2654435761   ; hash the tid so adjacent lanes
    shr.u32 r2, r2, 28              ; get very different trip counts
    add.s32 r2, r2, 1               ; trips = hash(tid) in 1..=16
    mov.u32 r3, 0            ; acc
    mov.u32 r5, 3            ; weight
loop:
    mad.lo.s32 r3, r2, r5, r3
    sub.s32 r2, r2, 1
    setp.gt.s32 p0, r2, 0
    @p0 bra loop
    mul.lo.s32 r4, r1, 4
    st.global.u32 [r4+0], r3
    exit
"#;

fn expected(tid: u32) -> u32 {
    let trips = (tid.wrapping_mul(2654435761) >> 28) + 1;
    (1..=trips).map(|k| k * 3).sum()
}

fn run(program: usimt::isa::Program, dmk: bool) -> (Vec<u32>, usimt::sim::RunSummary) {
    let mut cfg = GpuConfig::tiny();
    if dmk {
        cfg.dmk = Some(DmkConfig {
            warp_size: cfg.warp_size,
            threads_per_sm: cfg.max_threads_per_sm,
            state_bytes: 48,
            num_ukernels: 4,
            fifo_capacity: 64,
        });
    }
    let mut gpu = Gpu::builder(cfg).build();
    gpu.mem_mut().alloc_global(N * 4, "out");
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: N,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let s = gpu.run(50_000_000).expect("fault-free run");
    assert_eq!(s.outcome, RunOutcome::Completed);
    let out = (0..N)
        .map(|t| gpu.mem().read_u32(usimt::isa::Space::Global, t * 4))
        .collect();
    (out, s)
}

#[test]
fn extracted_program_computes_identical_results() {
    let original = assemble_named("weighted-sum", SRC).unwrap();
    let transformed = extract_loop(&original, "loop", ExtractOptions::default()).unwrap();

    let (ref_out, ref_stats) = run(original, false);
    for (tid, &v) in ref_out.iter().enumerate() {
        assert_eq!(v, expected(tid as u32), "original wrong at {tid}");
    }

    let (uk_out, uk_stats) = run(transformed, true);
    assert_eq!(ref_out, uk_out, "extraction changed results");
    assert!(
        uk_stats.stats.threads_spawned > 0,
        "loop must run via spawns"
    );
    assert_eq!(
        uk_stats.stats.lineages_completed,
        u64::from(N),
        "one lineage per original thread"
    );
    // Sanity: the transformed version regains SIMT efficiency.
    assert!(
        uk_stats.stats.simt_efficiency(4) > ref_stats.stats.simt_efficiency(4),
        "extracted μ-kernels should be more efficient: {:.2} vs {:.2}",
        uk_stats.stats.simt_efficiency(4),
        ref_stats.stats.simt_efficiency(4)
    );
}

#[test]
fn extraction_handles_early_exit_loops_end_to_end() {
    // Break out of the loop when the accumulator crosses a threshold.
    let src = r#"
    .kernel main
    main:
        mov.u32 r1, %tid
        and.b32 r2, r1, 7
        add.s32 r2, r2, 2
        mov.u32 r3, 0
    loop:
        add.s32 r3, r3, r2
        setp.gt.s32 p1, r3, 10
        @p1 bra after
        sub.s32 r2, r2, 1
        setp.gt.s32 p0, r2, 0
        @p0 bra loop
    after:
        mul.lo.s32 r4, r1, 4
        st.global.u32 [r4+0], r3
        exit
    "#;
    let original = assemble_named("early-exit", src).unwrap();
    let transformed = extract_loop(&original, "loop", ExtractOptions::default()).unwrap();
    let (a, _) = run(original, false);
    let (b, _) = run(transformed, true);
    assert_eq!(a, b);
}
