//! The hardware-style fault model end to end: typed launch rejection,
//! warp traps under both fault policies, the no-forward-progress
//! watchdog, and deterministic fault injection with recovery.
//!
//! Every test asserts on `Err(..)` / `RunOutcome` values — a well-formed
//! `GpuConfig` plus an arbitrary launch must never panic.

use usimt::dmk::DmkConfig;
use usimt::isa::{assemble_named, Space};
use usimt::mem::MemFault;
use usimt::sim::{
    FaultKind, FaultPolicy, Gpu, GpuConfig, InjectedFault, Injector, Launch, LaunchError,
    RunOutcome, SimError,
};

fn dmk_gpu(num_ukernels: u32) -> Gpu {
    let mut cfg = GpuConfig::tiny();
    cfg.dmk = Some(DmkConfig {
        warp_size: cfg.warp_size,
        threads_per_sm: cfg.max_threads_per_sm,
        state_bytes: 16,
        num_ukernels,
        fifo_capacity: 64,
    });
    Gpu::builder(cfg).build()
}

fn trivial_program() -> usimt::isa::Program {
    assemble_named(
        "trivial",
        r#"
        .kernel main
        main:
            mov.u32 r1, %tid
            exit
        "#,
    )
    .unwrap()
}

#[test]
fn malformed_launches_are_rejected_with_typed_errors() {
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();

    let unknown = gpu.launch(Launch {
        program: trivial_program(),
        entry: "nonexistent".into(),
        num_threads: 8,
        threads_per_block: 4,
    });
    assert_eq!(
        unknown,
        Err(LaunchError::UnknownEntry {
            entry: "nonexistent".into()
        })
    );

    let zero = gpu.launch(Launch {
        program: trivial_program(),
        entry: "main".into(),
        num_threads: 0,
        threads_per_block: 4,
    });
    assert_eq!(zero, Err(LaunchError::NoThreads));

    // tiny() has 4-lane warps; 6 is not a multiple.
    let ragged = gpu.launch(Launch {
        program: trivial_program(),
        entry: "main".into(),
        num_threads: 8,
        threads_per_block: 6,
    });
    assert_eq!(
        ragged,
        Err(LaunchError::BadBlockSize {
            threads_per_block: 6,
            warp_size: 4,
        })
    );

    // A rejected launch must leave the machine usable.
    gpu.launch(Launch {
        program: trivial_program(),
        entry: "main".into(),
        num_threads: 8,
        threads_per_block: 4,
    })
    .expect("well-formed launch accepted after rejections");
    let s = gpu.run(1_000_000).expect("fault-free");
    assert_eq!(s.outcome, RunOutcome::Completed);
}

/// Every thread records its tid in global memory; the low warp then
/// stores to read-only constant memory, which traps.
const CONST_STORE_SRC: &str = r#"
    .kernel main
    main:
        mov.u32 r1, %tid
        mul.lo.s32 r2, r1, 4
        st.global.u32 [r2+0], r1
        setp.lt.s32 p0, r1, 4
        @p0 st.const.u32 [r2+0], r1
        exit
"#;

#[test]
fn const_store_trap_aborts_under_default_policy() {
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    gpu.mem_mut().alloc_global(64 * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("const-store", CONST_STORE_SRC).unwrap(),
        entry: "main".into(),
        num_threads: 16,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let err = gpu.run(1_000_000).expect_err("const store must trap");
    let SimError::Fault(fault) = err else {
        panic!("expected a fault, got {err}");
    };
    match fault.kind {
        FaultKind::Memory(MemFault::ConstStore { .. }) => {}
        other => panic!("expected a const-store memory fault, got {other:?}"),
    }
    // The abort left the machine at the faulting cycle for inspection.
    assert_eq!(fault.cycle, gpu.now());
    assert_eq!(gpu.faults().len(), 1);
}

#[test]
fn kill_warp_policy_retires_faulting_warp_and_completes() {
    let mut cfg = GpuConfig::tiny();
    cfg.fault_policy = FaultPolicy::KillWarp;
    let mut gpu = Gpu::builder(cfg).build();
    gpu.mem_mut().alloc_global(64 * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("const-store", CONST_STORE_SRC).unwrap(),
        entry: "main".into(),
        num_threads: 16,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let s = gpu.run(1_000_000).expect("killed warps are not an error");
    assert_eq!(s.outcome, RunOutcome::Completed);
    assert_eq!(s.stats.faults, 1);
    assert_eq!(s.stats.warps_killed, 1);
    assert!(s.stats.threads_killed >= 1);
    assert_eq!(s.faults.len(), 1);
    assert!(matches!(
        s.faults[0].kind,
        FaultKind::Memory(MemFault::ConstStore { .. })
    ));
    // Threads outside the killed warp completed their global stores.
    for tid in 4..16u32 {
        assert_eq!(gpu.mem().read_u32(Space::Global, tid * 4), tid, "tid {tid}");
    }
}

/// A kernel that spins forever: no thread ever retires.
const LIVELOCK_SRC: &str = r#"
    .kernel main
    main:
        mov.u32 r1, 1
    loop:
        setp.gt.s32 p0, r1, 0
        @p0 bra loop
        exit
"#;

#[test]
fn watchdog_turns_livelock_into_deadlock_outcome() {
    let mut cfg = GpuConfig::tiny();
    cfg.watchdog_cycles = 5_000;
    let mut gpu = Gpu::builder(cfg).build();
    gpu.launch(Launch {
        program: assemble_named("livelock", LIVELOCK_SRC).unwrap(),
        entry: "main".into(),
        num_threads: 8,
        threads_per_block: 4,
    })
    .expect("launch accepted");
    let s = gpu
        .run(u64::MAX / 4)
        .expect("deadlock is an outcome, not an error");
    let RunOutcome::Deadlock { diagnostics } = s.outcome else {
        panic!("expected deadlock, got {:?}", s.outcome);
    };
    assert_eq!(s.stats.watchdog_deadlocks, 1);
    assert_eq!(diagnostics.watchdog_cycles, 5_000);
    assert_eq!(diagnostics.sms.len(), 2, "tiny() has 2 SMs");
    let live: u32 = diagnostics
        .sms
        .iter()
        .flat_map(|sm| sm.warps.iter())
        .map(|w| w.live_lanes)
        .sum();
    assert_eq!(live, 8, "all launched threads still spinning");
    // The diagnostics render a human-readable report.
    let report = format!("{diagnostics}");
    assert!(report.contains("no forward progress"), "report: {report}");
}

#[test]
fn injected_trap_respects_fault_policy() {
    let src = r#"
        .kernel main
        main:
            mov.u32 r1, 64
        loop:
            sub.s32 r1, r1, 1
            setp.gt.s32 p0, r1, 0
            @p0 bra loop
            exit
    "#;
    // Abort: the injected trap surfaces as a typed fault.
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    gpu.set_injector(Injector::new(7).force(InjectedFault::Trap, 10..11));
    gpu.launch(Launch {
        program: assemble_named("spin", src).unwrap(),
        entry: "main".into(),
        num_threads: 16,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let err = gpu.run(1_000_000).expect_err("injected trap must abort");
    let SimError::Fault(fault) = err else {
        panic!("expected a fault, got {err}");
    };
    assert_eq!(fault.kind, FaultKind::Injected);
    assert_eq!(fault.cycle, 10);

    // KillWarp: the trapped warps die, the rest of the grid completes.
    let mut cfg = GpuConfig::tiny();
    cfg.fault_policy = FaultPolicy::KillWarp;
    let mut gpu = Gpu::builder(cfg).build();
    gpu.set_injector(Injector::new(7).force(InjectedFault::Trap, 10..11));
    gpu.launch(Launch {
        program: assemble_named("spin", src).unwrap(),
        entry: "main".into(),
        num_threads: 16,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let s = gpu.run(1_000_000).expect("killed warps are not an error");
    assert_eq!(s.outcome, RunOutcome::Completed);
    assert!(s.stats.warps_killed >= 1);
    assert!(s.stats.injected_events >= 1);
    assert_eq!(
        s.stats.threads_killed + s.stats.threads_retired,
        16,
        "every thread either retired or was killed"
    );
}

/// One spawn per thread; the child writes `tid` to global memory.
const SPAWN_ONCE_SRC: &str = r#"
.kernel main
.kernel child
.spawnstate 16
main:
    mov.u32 r1, %tid
    mov.u32 r7, %spawnmem
    st.spawn.u32 [r7+0], r1
    spawn $child, r7
    exit
child:
    mov.u32 r7, %spawnmem
    ld.spawn.u32 r7, [r7+0]
    ld.spawn.u32 r1, [r7+0]
    mul.lo.s32 r2, r1, 4
    st.global.u32 [r2+0], r1
    exit
"#;

#[test]
fn injector_forced_fifo_full_recovers_and_completes_the_render() {
    let n = 32u32;

    // Baseline: no injection.
    let mut gpu = dmk_gpu(2);
    gpu.mem_mut().alloc_global(n * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("spawn-once", SPAWN_ONCE_SRC).unwrap(),
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let clean = gpu.run(10_000_000).expect("fault-free");
    assert_eq!(clean.outcome, RunOutcome::Completed);

    // Forced back-pressure: every spawn in the first 300 cycles sees a
    // full FIFO and must stall-and-retry instead of panicking.
    let mut gpu = dmk_gpu(2);
    gpu.set_injector(Injector::new(42).force(InjectedFault::SpawnFifoFull, 0..300));
    gpu.mem_mut().alloc_global(n * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("spawn-once", SPAWN_ONCE_SRC).unwrap(),
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let s = gpu.run(10_000_000).expect("back-pressure is not a fault");
    assert_eq!(s.outcome, RunOutcome::Completed);
    assert!(s.stats.injected_events > 0, "injection window must be hit");
    assert!(
        s.stats.spawn_stall_cycles > 0,
        "forced FIFO-full must stall spawns"
    );
    assert!(
        s.stats.cycles > clean.stats.cycles,
        "recovery costs cycles: {} !> {}",
        s.stats.cycles,
        clean.stats.cycles
    );
    // The render still produced every result.
    for tid in 0..n {
        assert_eq!(gpu.mem().read_u32(Space::Global, tid * 4), tid, "tid {tid}");
    }
    assert_eq!(
        s.stats.faults, 0,
        "back-pressure is not recorded as a fault"
    );
}

#[test]
fn injected_state_slot_exhaustion_only_delays_the_launch() {
    let mut gpu = dmk_gpu(2);
    gpu.set_injector(Injector::new(3).force(InjectedFault::StateSlotsExhausted, 0..200));
    let n = 16u32;
    gpu.mem_mut().alloc_global(n * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("spawn-once", SPAWN_ONCE_SRC).unwrap(),
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let s = gpu.run(10_000_000).expect("starvation is transient");
    assert_eq!(s.outcome, RunOutcome::Completed);
    assert!(s.stats.injected_events > 0);
    assert!(
        s.stats.cycles >= 200,
        "admission was starved for the window"
    );
    for tid in 0..n {
        assert_eq!(gpu.mem().read_u32(Space::Global, tid * 4), tid, "tid {tid}");
    }
}

#[test]
fn injector_draws_are_deterministic_across_runs() {
    let run_once = || {
        let mut gpu = dmk_gpu(2);
        gpu.set_injector(Injector::new(99).force_with_probability(
            InjectedFault::SpawnFifoFull,
            0..500,
            0.5,
        ));
        gpu.mem_mut().alloc_global(32 * 4, "out");
        gpu.launch(Launch {
            program: assemble_named("spawn-once", SPAWN_ONCE_SRC).unwrap(),
            entry: "main".into(),
            num_threads: 32,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        let s = gpu.run(10_000_000).expect("fault-free");
        assert_eq!(s.outcome, RunOutcome::Completed);
        (s.stats.cycles, s.stats.injected_events, s.dmk.spawn_stalls)
    };
    assert_eq!(run_once(), run_once(), "same seed, same schedule");
}
