//! Cross-crate tests of the dynamic μ-kernel machinery under stress:
//! partial-warp force-out, state-slot recycling, deep spawn chains, and
//! resource accounting.

use usimt::dmk::DmkConfig;
use usimt::isa::assemble_named;
use usimt::sim::{Gpu, GpuConfig, Launch, LaunchError, RunOutcome};

fn dmk_gpu(state_bytes: u32, num_ukernels: u32) -> Gpu {
    let mut cfg = GpuConfig::tiny();
    cfg.dmk = Some(DmkConfig {
        warp_size: cfg.warp_size,
        threads_per_sm: cfg.max_threads_per_sm,
        state_bytes,
        num_ukernels,
        fifo_capacity: 64,
    });
    Gpu::builder(cfg).build()
}

/// Threads spawn a chain of depth `tid % 5`; results record the depth.
const CHAIN_SRC: &str = r#"
.kernel main
.kernel k_step
.spawnstate 16
main:
    mov.u32 r1, %tid
    and.b32 r2, r1, 3
    mov.u32 r3, 0
    mov.u32 r7, %spawnmem
    st.spawn.u32 [r7+0], r1
    st.spawn.u32 [r7+4], r2
    st.spawn.u32 [r7+8], r3
    spawn $k_step, r7
    exit
k_step:
    mov.u32 r7, %spawnmem
    ld.spawn.u32 r7, [r7+0]
    ld.spawn.u32 r1, [r7+0]
    ld.spawn.u32 r2, [r7+4]
    ld.spawn.u32 r3, [r7+8]
    setp.le.s32 p0, r2, 0
    @p0 bra done
    sub.s32 r2, r2, 1
    add.s32 r3, r3, 1
    st.spawn.u32 [r7+0], r1
    st.spawn.u32 [r7+4], r2
    st.spawn.u32 [r7+8], r3
    spawn $k_step, r7
    exit
done:
    mul.lo.s32 r4, r1, 4
    st.global.u32 [r4+0], r3
    exit
"#;

#[test]
fn spawn_chains_of_varying_depth_complete_correctly() {
    let mut gpu = dmk_gpu(16, 2);
    let n = 64u32;
    gpu.mem_mut().alloc_global(n * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("chain", CHAIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let summary = gpu.run(10_000_000).expect("fault-free run");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    for tid in 0..n {
        assert_eq!(
            gpu.mem().read_u32(usimt::isa::Space::Global, tid * 4),
            tid & 3,
            "tid {tid}"
        );
    }
    // Chains: 1 (main) + depth extra spawns... total spawned = sum(1 + tid&3).
    let expected_spawns: u64 = (0..n).map(|t| 1 + u64::from(t & 3)).sum();
    assert_eq!(summary.stats.threads_spawned, expected_spawns);
    assert_eq!(summary.stats.lineages_completed, u64::from(n));
}

#[test]
fn partial_warps_are_forced_out_at_the_end() {
    // Launch a thread count that is NOT a multiple of the warp size times
    // the μ-kernel fan-in, so the last warps can never fill completely.
    let mut gpu = dmk_gpu(16, 2);
    let n = 13u32; // deliberately awkward
    gpu.mem_mut().alloc_global(64, "out");
    gpu.launch(Launch {
        program: assemble_named("chain", CHAIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let summary = gpu.run(10_000_000).expect("fault-free run");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    assert_eq!(summary.stats.lineages_completed, u64::from(n));
    assert!(
        summary.dmk.partial_warps_forced > 0,
        "odd thread counts must exercise force-out"
    );
}

#[test]
fn state_slots_recycle_when_threads_exceed_sm_capacity() {
    // 10x more lineages than the two tiny SMs can hold at once: state
    // slots must be recycled as lineages finish.
    let mut gpu = dmk_gpu(16, 2);
    let capacity = gpu.config().num_sms as u32 * gpu.config().max_threads_per_sm;
    let n = capacity * 10;
    gpu.mem_mut().alloc_global(n * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("chain", CHAIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let summary = gpu.run(50_000_000).expect("fault-free run");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    assert_eq!(summary.stats.lineages_completed, u64::from(n));
}

#[test]
fn resource_accounting_never_exceeds_sm_limits() {
    let mut gpu = dmk_gpu(16, 2);
    gpu.mem_mut().alloc_global(4096 * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("chain", CHAIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: 1024,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    // Step in chunks and check SM occupancy invariants while running.
    for _ in 0..50 {
        let s = gpu.run(1_000).expect("fault-free run");
        for sm in gpu.sms() {
            assert!(sm.threads_used() <= gpu.config().max_threads_per_sm);
        }
        if s.outcome == RunOutcome::Completed {
            break;
        }
    }
}

#[test]
fn lut_overflow_is_a_typed_launch_error() {
    // 3 distinct μ-kernels with a LUT sized for 2 must be rejected with a
    // typed error at launch time, before any cycle is simulated.
    let src = r#"
    .kernel main
    .kernel a
    .kernel b
    .kernel c
    .spawnstate 16
    main:
        mov.u32 r7, %spawnmem
        mov.u32 r1, %tid
        and.b32 r1, r1, 3
        setp.eq.s32 p0, r1, 0
        @p0 spawn $a, r7
        setp.eq.s32 p1, r1, 1
        @p1 spawn $b, r7
        setp.eq.s32 p2, r1, 2
        @p2 spawn $c, r7
        exit
    a:
        exit
    b:
        exit
    c:
        exit
    "#;
    let mut gpu = dmk_gpu(16, 2);
    let result = gpu.launch(Launch {
        program: assemble_named("lut-overflow", src).unwrap(),
        entry: "main".into(),
        num_threads: 8,
        threads_per_block: 8,
    });
    assert_eq!(
        result,
        Err(LaunchError::LutCapacityExceeded {
            targets: 3,
            capacity: 2,
        })
    );
}

#[test]
fn spawn_elision_preserves_results_and_fires() {
    use usimt::sim::SpawnPolicy;
    // Run the chain kernel under both spawn policies; results must agree
    // and the elision policy must actually elide (the chain kernel's warps
    // are fully convergent at their self-spawns early on).
    let run = |policy: SpawnPolicy| {
        let mut cfg = GpuConfig::tiny();
        cfg.spawn_policy = policy;
        cfg.dmk = Some(DmkConfig {
            warp_size: cfg.warp_size,
            threads_per_sm: cfg.max_threads_per_sm,
            state_bytes: 16,
            num_ukernels: 2,
            fifo_capacity: 64,
        });
        let mut gpu = Gpu::builder(cfg).build();
        let n = 64u32;
        gpu.mem_mut().alloc_global(n * 4, "out");
        gpu.launch(Launch {
            program: assemble_named("chain", CHAIN_SRC).unwrap(),
            entry: "main".into(),
            num_threads: n,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        let summary = gpu.run(10_000_000).expect("fault-free run");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        let results: Vec<u32> = (0..n)
            .map(|t| gpu.mem().read_u32(usimt::isa::Space::Global, t * 4))
            .collect();
        (summary, results)
    };
    let (s_naive, r_naive) = run(SpawnPolicy::Always);
    let (s_elide, r_elide) = run(SpawnPolicy::OnDivergence);
    assert_eq!(r_naive, r_elide, "elision must not change results");
    assert_eq!(s_naive.stats.spawn_elisions, 0);
    assert!(s_elide.stats.spawn_elisions > 0, "elisions must fire");
    assert!(
        s_elide.stats.threads_spawned < s_naive.stats.threads_spawned,
        "elision must reduce thread creation: {} !< {}",
        s_elide.stats.threads_spawned,
        s_naive.stats.threads_spawned
    );
}
