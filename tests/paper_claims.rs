//! Shape-level assertions of the paper's headline claims, at a reduced
//! scale so they run in CI. The full-scale numbers are recorded in
//! EXPERIMENTS.md.

use usimt::experiments::fig3::divergence_figure;
use usimt::experiments::runner::Scale;
use usimt::experiments::Variant;

fn scale() -> Scale {
    // Small-but-meaningful: 48x48 rays on the full 30-SM machine.
    Scale {
        resolution: 48,
        cycles: 40_000,
        scene: usimt::raytrace::scenes::SceneScale::Small,
        threads_per_block: 64,
    }
}

#[test]
fn dynamic_ukernels_keep_more_lanes_active_than_pdom() {
    let pdom = divergence_figure(Variant::PdomWarp, scale());
    let dmk = divergence_figure(Variant::Dynamic, scale());
    assert!(
        dmk.mean_active_lanes > pdom.mean_active_lanes,
        "dynamic {:.1} lanes !> PDOM {:.1} lanes",
        dmk.mean_active_lanes,
        pdom.mean_active_lanes
    );
}

#[test]
fn dynamic_ukernels_raise_ipc_over_pdom() {
    let pdom = divergence_figure(Variant::PdomWarp, scale());
    let dmk = divergence_figure(Variant::Dynamic, scale());
    assert!(
        dmk.ipc > pdom.ipc,
        "dynamic IPC {:.0} !> PDOM IPC {:.0}",
        dmk.ipc,
        pdom.ipc
    );
}

#[test]
fn pdom_is_branch_bound_not_memory_bound() {
    // Paper Fig. 10: PDOM shows (almost) no gain from an ideal memory
    // system. Allow a modest margin at this small scale.
    let real = divergence_figure(Variant::PdomWarp, scale());
    let ideal = divergence_figure(Variant::PdomWarpIdeal, scale());
    assert!(
        ideal.ipc < real.ipc * 1.6,
        "PDOM must be branch-bound: ideal {:.0} vs real {:.0}",
        ideal.ipc,
        real.ipc
    );
}

#[test]
fn bank_conflicts_slow_dynamic_execution_but_not_fatally() {
    let clean = divergence_figure(Variant::Dynamic, scale());
    let conflicted = divergence_figure(Variant::DynamicConflicts, scale());
    assert!(conflicted.ipc <= clean.ipc);
    assert!(
        conflicted.ipc > clean.ipc * 0.5,
        "conflicts should degrade, not destroy: {:.0} vs {:.0}",
        conflicted.ipc,
        clean.ipc
    );
}

#[test]
fn spawn_memory_sizing_follows_the_paper_formula() {
    // §IV-A2: size = NumThreads + (SpawnLocations - 1) * WarpSize, doubled.
    let d = usimt::dmk::DmkConfig::paper();
    assert_eq!(d.formation_entries(), 1024 + 3 * 32);
    let layout = usimt::dmk::SpawnMemoryLayout::new(&d);
    assert_eq!(
        layout.total_bytes(),
        48 * 1024 + d.formation_blocks() * 32 * 4
    );
}

#[test]
fn table2_resource_shape_matches_paper() {
    let t = usimt::experiments::table2::run();
    // μ-kernels need spawn memory, the traditional kernel none (Table II).
    assert_eq!(t.traditional.spawn_bytes, 0);
    assert_eq!(t.ukernel.spawn_bytes, 48);
    // Constant memory identical (same header), global identical (same
    // buffers) — the paper's μ-kernel column shrinks mainly in constant
    // memory, ours is shared infrastructure.
    assert_eq!(t.traditional.const_bytes, t.ukernel.const_bytes);
}

#[test]
fn table4_dynamic_bandwidth_blowup_matches_paper_direction() {
    let t = usimt::experiments::table4::run(Scale::test());
    assert!(t.mean_read_increase() > 1.5);
    assert!(t.mean_total_increase() > t.mean_read_increase());
}
