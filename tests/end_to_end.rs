//! End-to-end correctness: both device kernels must reproduce the host
//! ray tracer's image on every benchmark scene.

use usimt::dmk::DmkConfig;
use usimt::kernels::render::{compare, RenderSetup};
use usimt::raytrace::scenes::{self, SceneScale};
use usimt::sim::{Gpu, GpuConfig, RunOutcome};

fn gpu(dynamic: bool) -> Gpu {
    if dynamic {
        Gpu::builder(GpuConfig::fx5800_dmk(DmkConfig::paper())).build()
    } else {
        Gpu::builder(GpuConfig::fx5800()).build()
    }
}

fn render(
    scene_name: &str,
    dynamic: bool,
) -> (
    Vec<Option<usimt::raytrace::Hit>>,
    Vec<Option<usimt::raytrace::Hit>>,
) {
    let scene = scenes::by_name(scene_name, SceneScale::Tiny).expect("scene exists");
    let mut g = gpu(dynamic);
    let setup = RenderSetup::upload(&mut g, &scene, 16, 16);
    if dynamic {
        setup.launch_ukernel(&mut g, 32);
    } else {
        setup.launch_traditional(&mut g, 32);
    }
    let summary = g.run(100_000_000).expect("fault-free run");
    assert_eq!(
        summary.outcome,
        RunOutcome::Completed,
        "{scene_name} dynamic={dynamic}"
    );
    (setup.host_reference(), setup.device_results(&g))
}

#[test]
fn traditional_matches_host_on_all_scenes() {
    for name in ["fairyforest", "atrium", "conference"] {
        let (host, device) = render(name, false);
        let r = compare(&host, &device);
        assert!(
            r.match_rate() > 0.99,
            "{name}: {} mismatches of {}",
            r.mismatches,
            r.total
        );
    }
}

#[test]
fn ukernel_matches_host_on_all_scenes() {
    for name in ["fairyforest", "atrium", "conference"] {
        let (host, device) = render(name, true);
        let r = compare(&host, &device);
        assert!(
            r.match_rate() > 0.99,
            "{name}: {} mismatches of {}",
            r.mismatches,
            r.total
        );
    }
}

#[test]
fn kernels_agree_with_each_other_exactly() {
    for name in ["fairyforest", "conference"] {
        let (_, img_trad) = render(name, false);
        let (_, img_dmk) = render(name, true);
        let r = compare(&img_trad, &img_dmk);
        assert_eq!(r.mismatches, 0, "{name}: kernels disagree");
    }
}

#[test]
fn every_ray_lineage_completes_under_dynamic_execution() {
    let scene = scenes::conference(SceneScale::Tiny);
    let mut g = gpu(true);
    let setup = RenderSetup::upload(&mut g, &scene, 16, 16);
    setup.launch_ukernel(&mut g, 32);
    let summary = g.run(100_000_000).expect("fault-free run");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    assert_eq!(summary.stats.lineages_completed, 256);
    assert_eq!(
        summary.stats.threads_retired,
        summary.stats.threads_launched + summary.stats.threads_spawned,
        "every launched and spawned thread must retire"
    );
}
