//! The whole stack must be deterministic: identical runs produce identical
//! statistics, traffic, and images.

use usimt::dmk::DmkConfig;
use usimt::kernels::render::RenderSetup;
use usimt::raytrace::scenes::{self, SceneScale};
use usimt::sim::{Gpu, GpuConfig, RunSummary};

fn run_once(dynamic: bool) -> (RunSummary, Vec<Option<usimt::raytrace::Hit>>) {
    let scene = scenes::fairyforest(SceneScale::Tiny);
    let mut gpu = if dynamic {
        Gpu::builder(GpuConfig::fx5800_dmk(DmkConfig::paper())).build()
    } else {
        Gpu::builder(GpuConfig::fx5800()).build()
    };
    let setup = RenderSetup::upload(&mut gpu, &scene, 16, 16);
    if dynamic {
        setup.launch_ukernel(&mut gpu, 32);
    } else {
        setup.launch_traditional(&mut gpu, 32);
    }
    let s = gpu.run(100_000_000).expect("fault-free run");
    let img = setup.device_results(&gpu);
    (s, img)
}

#[test]
fn pdom_runs_are_bit_identical() {
    let (a, img_a) = run_once(false);
    let (b, img_b) = run_once(false);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.thread_instructions, b.stats.thread_instructions);
    assert_eq!(a.stats.warp_issues, b.stats.warp_issues);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(img_a, img_b);
}

#[test]
fn dynamic_runs_are_bit_identical() {
    let (a, img_a) = run_once(true);
    let (b, img_b) = run_once(true);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.threads_spawned, b.stats.threads_spawned);
    assert_eq!(a.dmk, b.dmk);
    assert_eq!(img_a, img_b);
}

#[test]
fn scene_generation_is_deterministic_across_calls() {
    let a = scenes::conference(SceneScale::Small);
    let b = scenes::conference(SceneScale::Small);
    assert_eq!(a.triangles.len(), b.triangles.len());
    assert_eq!(a.triangles.first(), b.triangles.first());
    assert_eq!(a.triangles.last(), b.triangles.last());
}
