//! Two-pass rendering with shadows — the paper's first motivating use of
//! ray tracing (§III-A): a primary-visibility pass followed by a
//! shadow-ray pass toward a point light. Shadow rays start on scattered
//! surfaces aiming at one light, so the second pass diverges harder than
//! the first — exactly the workload dynamic μ-kernels target.
//!
//! ```sh
//! cargo run --release --example shadow_rays [pdom|dynamic] [out.pgm]
//! ```

use std::io::Write;
use usimt::dmk::DmkConfig;
use usimt::kernels::render::RenderSetup;
use usimt::raytrace::scenes::{self, SceneScale};
use usimt::raytrace::Vec3;
use usimt::sim::{Gpu, GpuConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("dynamic");
    let out_path = args.get(1).map(String::as_str).unwrap_or("shadows.pgm");
    let dynamic = match mode {
        "dynamic" => true,
        "pdom" => false,
        other => panic!("unknown mode `{other}` (pdom|dynamic)"),
    };

    let scene = scenes::conference(SceneScale::Small);
    let light = Vec3::new(0.0, 4.7, 0.0);
    let (w, h) = (96u32, 96u32);

    let mut gpu = if dynamic {
        Gpu::builder(GpuConfig::fx5800_dmk(DmkConfig::paper())).build()
    } else {
        Gpu::builder(GpuConfig::fx5800()).build()
    };
    let setup = RenderSetup::upload(&mut gpu, &scene, w, h);

    // Pass 1: primary visibility.
    if dynamic {
        setup.launch_ukernel(&mut gpu, 64);
    } else {
        setup.launch_traditional(&mut gpu, 64);
    }
    let s1 = gpu.run(500_000_000).expect("fault-free run");
    let primary = setup.device_results(&gpu);
    println!(
        "primary pass ({mode}): {} cycles, IPC {:.0}, eff {:.0}%",
        s1.stats.cycles,
        s1.stats.ipc(),
        s1.stats.simt_efficiency(32) * 100.0
    );

    // Pass 2: shadows.
    let cycles_before = gpu.now();
    let dev2 = setup.launch_shadow_pass(&mut gpu, light, dynamic, 64);
    let s2 = gpu.run(500_000_000).expect("fault-free run");
    let shadow = dev2.read_results(gpu.mem());
    println!(
        "shadow pass  ({mode}): {} cycles, cumulative IPC {:.0}, eff {:.0}%",
        s2.stats.cycles - cycles_before,
        s2.stats.ipc(),
        s2.stats.simt_efficiency(32) * 100.0
    );

    // Compose a lit/shadowed PGM.
    let mut pgm = format!("P2\n{w} {h}\n255\n");
    for y in (0..h).rev() {
        for x in 0..w {
            let px = (y * w + x) as usize;
            let v = match (&primary[px], &shadow[px]) {
                (None, _) => 10,          // background
                (Some(_), Some(_)) => 70, // surface in shadow
                (Some(_), None) => 220,   // lit surface
            };
            pgm.push_str(&format!("{v} "));
        }
        pgm.push('\n');
    }
    std::fs::File::create(out_path)
        .and_then(|mut f| f.write_all(pgm.as_bytes()))
        .expect("write image");
    let occluded = shadow.iter().flatten().count();
    let lit = primary.iter().flatten().count() - occluded;
    println!("wrote {out_path} ({occluded} shadowed px, {lit} lit px)");
}
