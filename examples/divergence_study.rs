//! Reproduces the paper's Fig. 2 intuition interactively: how PDOM
//! divergence develops in a single warp running a data-dependent loop,
//! and how the divergence breakdown of a full render evolves over time
//! (the Figs. 3/7 time series) — printed as text bar charts.
//!
//! ```sh
//! cargo run --release --example divergence_study
//! ```

use usimt::experiments::fig2;
use usimt::experiments::fig3::divergence_figure;
use usimt::experiments::runner::Scale;
use usimt::experiments::Variant;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() {
    // --- Part 1: a single warp in a loop (Fig. 2) -----------------------
    let f2 = fig2::run().expect("fig2 kernel assembles");
    println!("single warp, lane-dependent loop (paper Fig. 2):");
    for (i, lanes) in f2.lane_trace.iter().enumerate() {
        println!(
            "  issue {i:>3}: {:>2} lanes |{}",
            lanes,
            bar(f64::from(*lanes) / 32.0, 32)
        );
    }
    println!("  SIMT efficiency: {:.0}%\n", f2.efficiency * 100.0);

    // --- Part 2: full-render divergence over time (Figs. 3 vs 7) --------
    let scale = Scale::quick();
    for variant in [Variant::PdomWarp, Variant::Dynamic] {
        let fig = divergence_figure(variant, scale);
        println!("divergence over time — {variant} (conference):");
        for (wi, w) in fig.windows.iter().enumerate() {
            let total: u64 = w.iter().sum();
            if total == 0 {
                continue;
            }
            // Weighted mean occupancy for the window (buckets of 4 lanes).
            let issues: u64 = w[1..].iter().sum();
            let weighted: f64 = w[1..]
                .iter()
                .enumerate()
                .map(|(b, &n)| n as f64 * (b as f64 * 4.0 + 2.0))
                .sum();
            let mean = if issues == 0 {
                0.0
            } else {
                weighted / issues as f64
            };
            println!(
                "  {:>4}k cycles: mean {:>4.1}/32 active |{}",
                (wi as u64 + 1) * fig.window_cycles / 1000,
                mean,
                bar(mean / 32.0, 32)
            );
        }
        println!(
            "  average IPC {:.0}, mean active lanes {:.1}\n",
            fig.ipc, fig.mean_active_lanes
        );
    }
}
