//! Whitted-style multi-bounce rendering: primary rays, then one or more
//! specular reflection passes, each a fresh launch over the same scene —
//! the second motivating use of ray tracing in the paper's §III-A.
//!
//! Reflection rays take the incoherence of shadow rays one step further:
//! each bounce scatters origins *and* directions, so later passes are the
//! most divergent work the machine sees.
//!
//! ```sh
//! cargo run --release --example reflections [pdom|dynamic] [bounces]
//! ```

use usimt::dmk::DmkConfig;
use usimt::kernels::render::RenderSetup;
use usimt::raytrace::scenes::{self, SceneScale};
use usimt::raytrace::{Ray, Vec3};
use usimt::sim::{Gpu, GpuConfig, Launch};

/// Specular-reflection rays from the previous pass's hits.
fn reflection_rays(
    rays: &[Ray],
    results: &[Option<usimt::raytrace::Hit>],
    tree: &usimt::raytrace::KdTree,
) -> Vec<Ray> {
    rays.iter()
        .zip(results)
        .map(|(ray, hit)| match hit {
            Some(h) => {
                let p = ray.at(h.t);
                let tri = &tree.wald_triangles()[h.tri as usize];
                // Reconstruct the geometric normal from the Wald record's
                // plane equation (n has component 1 along axis k).
                let k = tri.k as usize;
                let mut n = [0.0f32; 3];
                n[k] = 1.0;
                n[(k + 1) % 3] = tri.n_u;
                n[(k + 2) % 3] = tri.n_v;
                let mut normal = Vec3::new(n[0], n[1], n[2]).normalized();
                if normal.dot(ray.dir) > 0.0 {
                    normal = -normal;
                }
                let dir = ray.dir - normal * (2.0 * ray.dir.dot(normal));
                let mut r = Ray::new(p + dir * 1e-3, dir);
                r.tmin = 1e-3;
                r
            }
            None => {
                let mut r = *ray;
                r.tmin = 1e-4;
                r.tmax = 1e-4;
                r
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("dynamic");
    let bounces: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let dynamic = mode == "dynamic";

    let scene = scenes::atrium(SceneScale::Small);
    let (w, h) = (64u32, 64u32);
    let mut gpu = if dynamic {
        Gpu::builder(GpuConfig::fx5800_dmk(DmkConfig::paper())).build()
    } else {
        Gpu::builder(GpuConfig::fx5800()).build()
    };
    let setup = RenderSetup::upload(&mut gpu, &scene, w, h);
    if dynamic {
        setup.launch_ukernel(&mut gpu, 64);
    } else {
        setup.launch_traditional(&mut gpu, 64);
    }
    let s = gpu.run(u64::MAX / 4).expect("fault-free run");
    println!(
        "pass 0 (primary, {mode}): {} cycles, IPC {:.0}",
        s.stats.cycles,
        s.stats.ipc()
    );
    let mut prev_cycles = s.stats.cycles;
    let mut prev_instr = s.stats.thread_instructions;

    let mut rays = setup.rays.clone();
    let mut results = setup.device_results(&gpu);
    for bounce in 1..=bounces {
        rays = reflection_rays(&rays, &results, &setup.tree);
        let hits_in = results.iter().flatten().count();
        if hits_in == 0 {
            println!("pass {bounce}: no surfaces left to bounce from");
            break;
        }
        let dev = setup.dev.upload_rays(&rays, gpu.mem_mut());
        gpu.launch(Launch {
            program: if dynamic {
                usimt::kernels::ukernel::program()
            } else {
                usimt::kernels::traditional::program()
            },
            entry: "main".into(),
            num_threads: dev.num_rays,
            threads_per_block: 64,
        })
        .expect("launch accepted");
        let s = gpu.run(u64::MAX / 4).expect("fault-free run");
        let cycles = s.stats.cycles - prev_cycles;
        let ipc = (s.stats.thread_instructions - prev_instr) as f64 / cycles.max(1) as f64;
        prev_cycles = s.stats.cycles;
        prev_instr = s.stats.thread_instructions;
        results = dev.read_results(gpu.mem());
        let hits_out = results.iter().flatten().count();
        println!(
            "pass {bounce} (reflection): {cycles} cycles, IPC {ipc:.0}, {hits_in} rays in -> {hits_out} hits"
        );
    }
}
