//! Quickstart: render a scene on the simulated GPU with both kernels and
//! verify the images against the host ray tracer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use usimt::dmk::DmkConfig;
use usimt::kernels::render::{compare, RenderSetup};
use usimt::raytrace::scenes::{self, SceneScale};
use usimt::sim::{Gpu, GpuConfig};

fn main() {
    // A small conference-room scene and an 32x32 image keep this quick.
    let scene = scenes::conference(SceneScale::Tiny);
    let (w, h) = (32, 32);

    // --- 1. Traditional kernel on the baseline PDOM machine ------------
    let mut gpu = Gpu::builder(GpuConfig::fx5800()).build();
    let setup = RenderSetup::upload(&mut gpu, &scene, w, h);
    setup.launch_traditional(&mut gpu, 64);
    let baseline = gpu.run(50_000_000).expect("fault-free run");
    let image_pdom = setup.device_results(&gpu);
    println!(
        "traditional: {} cycles, IPC {:.0}, SIMT efficiency {:.0}%",
        baseline.stats.cycles,
        baseline.stats.ipc(),
        baseline.stats.simt_efficiency(32) * 100.0
    );

    // --- 2. The same render with dynamic μ-kernels ---------------------
    let mut gpu = Gpu::builder(GpuConfig::fx5800_dmk(DmkConfig::paper())).build();
    let setup = RenderSetup::upload(&mut gpu, &scene, w, h);
    setup.launch_ukernel(&mut gpu, 64);
    let dynamic = gpu.run(50_000_000).expect("fault-free run");
    let image_dmk = setup.device_results(&gpu);
    println!(
        "dynamic:     {} cycles, IPC {:.0}, SIMT efficiency {:.0}%, {} threads spawned",
        dynamic.stats.cycles,
        dynamic.stats.ipc(),
        dynamic.stats.simt_efficiency(32) * 100.0,
        dynamic.stats.threads_spawned
    );

    // --- 3. Verify both against the host reference tracer --------------
    let host = setup.host_reference();
    let r1 = compare(&host, &image_pdom);
    let r2 = compare(&host, &image_dmk);
    println!(
        "image check: traditional {:.1}% match, dynamic {:.1}% match",
        r1.match_rate() * 100.0,
        r2.match_rate() * 100.0
    );
    assert!(r1.match_rate() > 0.99 && r2.match_rate() > 0.99);
    println!("ok: both kernels reproduce the reference image");
}
