//! Automatic μ-kernel extraction (the paper's §IX "compiler" direction):
//! write a plain loop kernel, let [`usimt::dmk::extract_loop`] split it
//! into spawn-connected μ-kernels mechanically, and compare both versions
//! on the simulator.
//!
//! ```sh
//! cargo run --release --example auto_extract
//! ```

use usimt::dmk::{extract_loop, DmkConfig, ExtractOptions};
use usimt::isa::assemble_named;
use usimt::sim::{Gpu, GpuConfig, Launch};

/// Collatz trajectory lengths: adjacent inputs take wildly different
/// iteration counts (1..150+), so adjacent lanes diverge hard — classic
/// divergence bait.
const SRC: &str = r#"
.kernel main
main:
    mov.u32 r1, %tid
    add.s32 r2, r1, 3                ; n = tid + 3
    mov.u32 r3, 0                    ; steps
collatz:
    setp.le.u32 p0, r2, 1
    @p0 bra store
    and.b32 r4, r2, 1
    setp.eq.s32 p1, r4, 0
    shr.u32 r5, r2, 1                ; n/2
    mul.lo.s32 r6, r2, 3
    add.s32 r6, r6, 1                ; 3n+1
    selp.b32 r2, r5, r6, p1
    add.s32 r3, r3, 1
    setp.gt.u32 p0, r2, 1
    @p0 bra collatz
store:
    mul.lo.s32 r6, r1, 4
    st.global.u32 [r6+0], r3
    exit
"#;

fn run(program: usimt::isa::Program, dmk: bool, n: u32) -> (Vec<u32>, f64, u64) {
    let cfg = if dmk {
        GpuConfig::fx5800_dmk(DmkConfig::paper())
    } else {
        GpuConfig::fx5800()
    };
    let mut gpu = Gpu::builder(cfg).build();
    gpu.mem_mut().alloc_global(n * 4, "out");
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 64,
    })
    .expect("launch accepted");
    let s = gpu.run(500_000_000).expect("fault-free run");
    assert_eq!(s.outcome, usimt::sim::RunOutcome::Completed);
    let out = (0..n)
        .map(|t| gpu.mem().read_u32(usimt::isa::Space::Global, t * 4))
        .collect();
    (out, s.stats.simt_efficiency(32), s.stats.cycles)
}

fn main() {
    let n = 16 * 1024;
    let original = assemble_named("collatz", SRC).unwrap();
    let extracted = extract_loop(&original, "collatz", ExtractOptions::default())
        .expect("the collatz loop is extractable");
    println!(
        "extracted μ-kernels: {:?} (state record {} bytes)",
        extracted
            .entry_points()
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>(),
        extracted.resource_usage().spawn_state_bytes
    );

    let (ref_out, ref_eff, ref_cycles) = run(original, false, n);
    let (uk_out, uk_eff, uk_cycles) = run(extracted, true, n);
    assert_eq!(ref_out, uk_out, "extraction must not change results");

    // Spot-check against a host Collatz.
    for &tid in &[0u32, 77, 4095, 16383] {
        let mut v = u64::from(tid) + 3;
        let mut steps = 0u32;
        while v > 1 {
            v = if v % 2 == 0 { v / 2 } else { 3 * v + 1 };
            steps += 1;
        }
        assert_eq!(ref_out[tid as usize], steps, "tid {tid}");
    }

    println!(
        "PDOM loop:         {ref_cycles:>9} cycles, SIMT efficiency {:.0}%",
        ref_eff * 100.0
    );
    println!(
        "auto-extracted μk: {uk_cycles:>9} cycles, SIMT efficiency {:.0}%",
        uk_eff * 100.0
    );
    println!("identical results for all {n} threads");
}
