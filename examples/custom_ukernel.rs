//! Write your own dynamic μ-kernel program against the public API.
//!
//! This example implements an iterative computation — the Collatz (3n+1)
//! trajectory length — two ways on the simulated GPU:
//!
//! 1. a traditional data-dependent loop under PDOM, and
//! 2. a μ-kernel decomposition where every loop iteration is a spawned
//!    thread, regrouped into dense warps by the warp-formation hardware.
//!
//! It demonstrates the paper's programming model (Example 2): save state
//! to spawn memory, `spawn` the next μ-kernel, `exit`; the first μ-kernel
//! load retrieves the parent's state pointer.
//!
//! ```sh
//! cargo run --release --example custom_ukernel
//! ```

use usimt::dmk::DmkConfig;
use usimt::isa::assemble_named;
use usimt::sim::{Gpu, GpuConfig, Launch};

const N: u32 = 4096;

/// Traditional: loop until n == 1, counting steps.
const LOOP_SRC: &str = r#"
.kernel main
main:
    mov.u32 r1, %tid
    add.s32 r2, r1, 3        ; n = tid + 3
    mov.u32 r3, 0            ; steps
loop:
    setp.le.u32 p0, r2, 1
    @p0 bra done
    and.b32 r4, r2, 1
    setp.eq.s32 p1, r4, 0
    shr.u32 r5, r2, 1        ; n/2
    mul.lo.s32 r6, r2, 3
    add.s32 r6, r6, 1        ; 3n+1
    selp.b32 r2, r5, r6, p1
    add.s32 r3, r3, 1
    bra loop
done:
    mul.lo.s32 r4, r1, 4
    st.global.u32 [r4+0], r3
    exit
"#;

/// μ-kernels: each Collatz step is one spawned thread.
const UKERNEL_SRC: &str = r#"
.kernel main
.kernel k_step
.spawnstate 16
main:
    mov.u32 r1, %tid
    add.s32 r2, r1, 3        ; n
    mov.u32 r3, 0            ; steps
    mov.u32 r7, %spawnmem    ; launch threads: state record directly
    st.spawn.u32 [r7+0], r1
    st.spawn.u32 [r7+4], r2
    st.spawn.u32 [r7+8], r3
    spawn $k_step, r7
    exit
k_step:
    mov.u32 r7, %spawnmem
    ld.spawn.u32 r7, [r7+0]  ; state pointer
    ld.spawn.u32 r1, [r7+0]
    ld.spawn.u32 r2, [r7+4]
    ld.spawn.u32 r3, [r7+8]
    setp.le.u32 p0, r2, 1
    @p0 bra finish
    and.b32 r4, r2, 1
    setp.eq.s32 p1, r4, 0
    shr.u32 r5, r2, 1
    mul.lo.s32 r6, r2, 3
    add.s32 r6, r6, 1
    selp.b32 r2, r5, r6, p1
    add.s32 r3, r3, 1
    st.spawn.u32 [r7+0], r1
    st.spawn.u32 [r7+4], r2
    st.spawn.u32 [r7+8], r3
    spawn $k_step, r7
    exit
finish:
    mul.lo.s32 r4, r1, 4
    st.global.u32 [r4+0], r3
    exit
"#;

fn collatz_len(mut n: u64) -> u32 {
    let mut steps = 0;
    while n > 1 {
        n = if n.is_multiple_of(2) {
            n / 2
        } else {
            3 * n + 1
        };
        steps += 1;
    }
    steps
}

fn main() {
    // Traditional loop on the PDOM baseline.
    let mut gpu = Gpu::builder(GpuConfig::fx5800()).build();
    gpu.mem_mut().alloc_global(N * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("collatz-loop", LOOP_SRC).expect("assembles"),
        entry: "main".into(),
        num_threads: N,
        threads_per_block: 64,
    })
    .expect("launch accepted");
    let s1 = gpu.run(100_000_000).expect("fault-free run");
    for tid in (0..N).step_by(117) {
        let got = gpu.mem().read_u32(usimt::isa::Space::Global, tid * 4);
        assert_eq!(got, collatz_len(u64::from(tid) + 3), "tid {tid}");
    }
    println!(
        "loop version:     {:>9} cycles, IPC {:>5.0}, efficiency {:>4.1}%",
        s1.stats.cycles,
        s1.stats.ipc(),
        s1.stats.simt_efficiency(32) * 100.0
    );

    // μ-kernel version on the dynamic machine.
    let dmk = DmkConfig {
        state_bytes: 16,
        num_ukernels: 2,
        ..DmkConfig::paper()
    };
    let mut gpu = Gpu::builder(GpuConfig::fx5800_dmk(dmk)).build();
    gpu.mem_mut().alloc_global(N * 4, "out");
    gpu.launch(Launch {
        program: assemble_named("collatz-ukernel", UKERNEL_SRC).expect("assembles"),
        entry: "main".into(),
        num_threads: N,
        threads_per_block: 64,
    })
    .expect("launch accepted");
    let s2 = gpu.run(100_000_000).expect("fault-free run");
    for tid in (0..N).step_by(117) {
        let got = gpu.mem().read_u32(usimt::isa::Space::Global, tid * 4);
        assert_eq!(got, collatz_len(u64::from(tid) + 3), "tid {tid}");
    }
    println!(
        "μ-kernel version: {:>9} cycles, IPC {:>5.0}, efficiency {:>4.1}%, {} spawns",
        s2.stats.cycles,
        s2.stats.ipc(),
        s2.stats.simt_efficiency(32) * 100.0,
        s2.stats.threads_spawned
    );
    println!(
        "SIMT efficiency: {:.1}% -> {:.1}%",
        s1.stats.simt_efficiency(32) * 100.0,
        s2.stats.simt_efficiency(32) * 100.0
    );
}
