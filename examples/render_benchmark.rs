//! Render one of the paper's benchmark scenes and write a PGM depth image
//! produced by the simulated GPU, plus the run statistics.
//!
//! ```sh
//! cargo run --release --example render_benchmark -- conference dynamic out.pgm
//! cargo run --release --example render_benchmark -- fairyforest pdom out.pgm
//! ```

use std::io::Write;
use usimt::dmk::DmkConfig;
use usimt::kernels::render::RenderSetup;
use usimt::raytrace::scenes::{self, SceneScale};
use usimt::sim::{Gpu, GpuConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scene_name = args.first().map(String::as_str).unwrap_or("conference");
    let mode = args.get(1).map(String::as_str).unwrap_or("dynamic");
    let out_path = args.get(2).map(String::as_str).unwrap_or("render.pgm");

    let scene = scenes::by_name(scene_name, SceneScale::Small)
        .unwrap_or_else(|| panic!("unknown scene `{scene_name}` (fairyforest|atrium|conference)"));
    let (w, h) = (128u32, 128u32);

    let mut gpu = match mode {
        "dynamic" => Gpu::builder(GpuConfig::fx5800_dmk(DmkConfig::paper())).build(),
        "pdom" => Gpu::builder(GpuConfig::fx5800()).build(),
        other => panic!("unknown mode `{other}` (pdom|dynamic)"),
    };
    let setup = RenderSetup::upload(&mut gpu, &scene, w, h);
    if mode == "dynamic" {
        setup.launch_ukernel(&mut gpu, 64);
    } else {
        setup.launch_traditional(&mut gpu, 64);
    }
    let summary = gpu.run(500_000_000).expect("fault-free run");
    println!(
        "{scene_name}/{mode}: {} cycles, IPC {:.0}, {} rays, eff {:.0}%",
        summary.stats.cycles,
        summary.stats.ipc(),
        summary.stats.lineages_completed,
        summary.stats.simt_efficiency(32) * 100.0
    );

    // Depth-map the hit parameters into a PGM.
    let results = setup.device_results(&gpu);
    let ts: Vec<f32> = results.iter().flatten().map(|hit| hit.t).collect();
    let (lo, hi) = ts
        .iter()
        .fold((f32::MAX, f32::MIN), |(lo, hi), &t| (lo.min(t), hi.max(t)));
    let mut pgm = format!("P2\n{w} {h}\n255\n");
    for y in (0..h).rev() {
        for x in 0..w {
            let px = (y * w + x) as usize;
            let v = match results[px] {
                Some(hit) if hi > lo => 230 - ((hit.t - lo) / (hi - lo) * 200.0) as i32,
                Some(_) => 230,
                None => 16,
            };
            pgm.push_str(&format!("{v} "));
        }
        pgm.push('\n');
    }
    let mut f = std::fs::File::create(out_path).expect("create output file");
    f.write_all(pgm.as_bytes()).expect("write image");
    println!("wrote {out_path}");
}
