//! The spawn look-up table (paper §IV-C, Fig. 5).
//!
//! A small fully-associative on-chip memory with one line per supported
//! μ-kernel. Each line keeps the book-keeping for the warp currently being
//! formed for that μ-kernel: how many threads it already holds (`count`),
//! where the next thread's metadata pointer will be stored (`fill_addr`),
//! and the pre-allocated block for the *next* warp (`overflow_addr`) so a
//! single spawn that overflows the current warp can keep going.

use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};

/// One LUT line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LutLine {
    /// μ-kernel entry PC this line tracks (the tag).
    pub pc: usize,
    /// Threads already collected into the forming warp.
    pub count: u32,
    /// Spawn-memory address where the next thread's metadata is stored.
    pub fill_addr: u32,
    /// Base address of the pre-allocated next block.
    pub overflow_addr: u32,
}

/// The PC-indexed spawn LUT.
///
/// Capacity equals the number of supported μ-kernels; exceeding it is a
/// configuration error surfaced by [`SpawnLut::line_mut`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpawnLut {
    lines: Vec<LutLine>,
    capacity: usize,
}

impl SpawnLut {
    /// Creates a LUT with room for `capacity` μ-kernels.
    pub fn new(capacity: usize) -> Self {
        SpawnLut {
            lines: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of allocated lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no μ-kernel has spawned yet.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the line for `pc`.
    pub fn line(&self, pc: usize) -> Option<&LutLine> {
        self.lines.iter().find(|l| l.pc == pc)
    }

    /// Looks up (or allocates, via `init`) the mutable line for `pc`.
    ///
    /// Returns `None` when the LUT is full and `pc` is untracked — the
    /// kernel uses more μ-kernels than the hardware supports.
    pub fn line_mut(
        &mut self,
        pc: usize,
        init: impl FnOnce() -> (u32, u32),
    ) -> Option<&mut LutLine> {
        if let Some(i) = self.lines.iter().position(|l| l.pc == pc) {
            return Some(&mut self.lines[i]);
        }
        if self.lines.len() >= self.capacity {
            return None;
        }
        let (fill_addr, overflow_addr) = init();
        self.lines.push(LutLine {
            pc,
            count: 0,
            fill_addr,
            overflow_addr,
        });
        self.lines.last_mut()
    }

    /// All lines currently holding a partial warp (`count > 0`), sorted by
    /// ascending PC — the order in which the scheduler forces partial warps
    /// out (§IV-D: "starting with the lowest PC address").
    pub fn partial_lines(&self) -> Vec<&LutLine> {
        let mut v: Vec<&LutLine> = self.lines.iter().filter(|l| l.count > 0).collect();
        v.sort_by_key(|l| l.pc);
        v
    }

    /// Mutable access to the partial line with the lowest PC, if any.
    pub fn lowest_partial_mut(&mut self) -> Option<&mut LutLine> {
        self.lines
            .iter_mut()
            .filter(|l| l.count > 0)
            .min_by_key(|l| l.pc)
    }

    /// Iterates over all lines.
    pub fn iter(&self) -> impl Iterator<Item = &LutLine> {
        self.lines.iter()
    }

    /// Serializes the allocated lines for a simulator checkpoint (the
    /// capacity is configuration, re-derived on restore).
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.lines.len());
        for l in &self.lines {
            enc.put_usize(l.pc);
            enc.put_u32(l.count);
            enc.put_u32(l.fill_addr);
            enc.put_u32(l.overflow_addr);
        }
    }

    /// Restores lines previously written by [`SpawnLut::encode_state`]
    /// into a LUT of identical capacity.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when the line count
    /// exceeds this LUT's capacity.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let n = dec.take_len(20)?;
        if n > self.capacity {
            return Err(CodecError::BadLength {
                len: n as u64,
                remaining: self.capacity,
            });
        }
        self.lines = (0..n)
            .map(|_| {
                Ok(LutLine {
                    pc: dec.take_usize()?,
                    count: dec.take_u32()?,
                    fill_addr: dec.take_u32()?,
                    overflow_addr: dec.take_u32()?,
                })
            })
            .collect::<Result<_, CodecError>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lines_up_to_capacity() {
        let mut lut = SpawnLut::new(2);
        assert!(lut.is_empty());
        assert!(lut.line_mut(10, || (100, 200)).is_some());
        assert!(lut.line_mut(20, || (300, 400)).is_some());
        assert_eq!(lut.len(), 2);
        assert!(lut.line_mut(30, || (500, 600)).is_none(), "LUT full");
        // Existing lines still reachable.
        assert!(lut.line_mut(10, || unreachable!()).is_some());
    }

    #[test]
    fn line_lookup_by_pc() {
        let mut lut = SpawnLut::new(4);
        lut.line_mut(7, || (0, 128)).unwrap().count = 5;
        assert_eq!(lut.line(7).unwrap().count, 5);
        assert!(lut.line(8).is_none());
    }

    #[test]
    fn partial_lines_sorted_by_pc() {
        let mut lut = SpawnLut::new(4);
        lut.line_mut(30, || (0, 0)).unwrap().count = 1;
        lut.line_mut(10, || (0, 0)).unwrap().count = 2;
        lut.line_mut(20, || (0, 0)).unwrap().count = 0; // full/empty: excluded
        let pcs: Vec<usize> = lut.partial_lines().iter().map(|l| l.pc).collect();
        assert_eq!(pcs, vec![10, 30]);
        assert_eq!(lut.lowest_partial_mut().unwrap().pc, 10);
    }
}
