//! Spawn-memory address-space layout (paper §IV-A, Fig. 6).

use crate::config::DmkConfig;
use serde::{Deserialize, Serialize};

/// The layout of one SM's spawn memory.
///
/// ```text
/// +--------------------------------------------+  0
/// | thread state records                       |
/// |   threads_per_sm × state_bytes             |
/// +--------------------------------------------+  formation_base
/// | warp-formation metadata (doubled)          |
/// |   formation_blocks × warp_size × 4 bytes   |
/// +--------------------------------------------+  total_bytes
/// ```
///
/// Launch-time threads get state record `tid_in_sm`; each formation *block*
/// holds the per-lane state pointers of exactly one forming warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpawnMemoryLayout {
    state_bytes: u32,
    threads: u32,
    warp_size: u32,
    formation_base: u32,
    formation_blocks: u32,
}

impl SpawnMemoryLayout {
    /// Computes the layout for a configuration.
    pub fn new(cfg: &DmkConfig) -> Self {
        SpawnMemoryLayout {
            state_bytes: cfg.state_bytes,
            threads: cfg.threads_per_sm,
            warp_size: cfg.warp_size,
            formation_base: cfg.state_bytes * cfg.threads_per_sm,
            formation_blocks: cfg.formation_blocks(),
        }
    }

    /// Total bytes of spawn memory required.
    pub fn total_bytes(&self) -> u32 {
        self.formation_base + self.formation_blocks * self.warp_size * 4
    }

    /// Byte size of one state record.
    pub fn state_bytes(&self) -> u32 {
        self.state_bytes
    }

    /// Base address of the warp-formation section.
    pub fn formation_base(&self) -> u32 {
        self.formation_base
    }

    /// Number of warp-sized formation blocks.
    pub fn formation_blocks(&self) -> u32 {
        self.formation_blocks
    }

    /// Threads per warp.
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// State-record address for launch-time thread `tid_in_sm`
    /// (`SpawnMemoryBaseAddress + threadID × sizeof(state)`, §IV-A1).
    ///
    /// # Panics
    ///
    /// Panics when `tid_in_sm` exceeds the SM thread capacity.
    pub fn launch_state_addr(&self, tid_in_sm: u32) -> u32 {
        assert!(
            tid_in_sm < self.threads,
            "thread {tid_in_sm} exceeds SM capacity {}",
            self.threads
        );
        tid_in_sm * self.state_bytes
    }

    /// Base address of formation block `block`.
    ///
    /// # Panics
    ///
    /// Panics when `block` is out of range.
    pub fn block_addr(&self, block: u32) -> u32 {
        assert!(
            block < self.formation_blocks,
            "formation block {block} out of range"
        );
        self.formation_base + block * self.warp_size * 4
    }

    /// Inverse of [`SpawnMemoryLayout::block_addr`]: the block index
    /// containing formation address `addr`.
    ///
    /// # Panics
    ///
    /// Panics when `addr` is not inside the formation section.
    pub fn block_of_addr(&self, addr: u32) -> u32 {
        assert!(
            addr >= self.formation_base,
            "address {addr:#x} below formation base"
        );
        let b = (addr - self.formation_base) / (self.warp_size * 4);
        assert!(
            b < self.formation_blocks,
            "address {addr:#x} beyond formation area"
        );
        b
    }

    /// The formation-slot address of `lane` within the block at `base`.
    pub fn slot_addr(&self, block_base: u32, lane: u32) -> u32 {
        block_base + lane * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn layout() -> SpawnMemoryLayout {
        SpawnMemoryLayout::new(&DmkConfig::paper())
    }

    #[test]
    fn sections_are_disjoint_and_ordered() {
        let l = layout();
        assert_eq!(l.formation_base(), 48 * 1024);
        assert!(l.total_bytes() > l.formation_base());
    }

    #[test]
    fn launch_state_addresses_stride_by_record() {
        let l = layout();
        assert_eq!(l.launch_state_addr(0), 0);
        assert_eq!(l.launch_state_addr(1), 48);
        assert_eq!(l.launch_state_addr(1023), 48 * 1023);
    }

    #[test]
    #[should_panic(expected = "exceeds SM capacity")]
    fn launch_state_bounds_checked() {
        layout().launch_state_addr(1024);
    }

    #[test]
    fn block_addr_roundtrip() {
        let l = layout();
        for b in 0..l.formation_blocks() {
            let a = l.block_addr(b);
            assert_eq!(l.block_of_addr(a), b);
            assert_eq!(l.block_of_addr(a + 4 * (l.warp_size() - 1)), b);
        }
    }

    #[test]
    fn matches_config_total() {
        let cfg = DmkConfig::paper();
        assert_eq!(
            SpawnMemoryLayout::new(&cfg).total_bytes(),
            cfg.spawn_memory_bytes()
        );
    }

    proptest! {
        #[test]
        fn state_records_never_overlap_formation(tid in 0u32..1024) {
            let l = layout();
            let a = l.launch_state_addr(tid);
            prop_assert!(a + l.state_bytes() <= l.formation_base());
        }

        #[test]
        fn slot_addresses_stay_in_block(block in 0u32..70, lane in 0u32..32) {
            let l = layout();
            let base = l.block_addr(block);
            let slot = l.slot_addr(base, lane);
            prop_assert_eq!(l.block_of_addr(slot), block);
        }
    }
}
