//! The warp-formation unit: LUT + formation-slot allocator + new-warp FIFO
//! (paper §IV-C/D, Figs. 4–5).

use crate::config::DmkConfig;
use crate::layout::SpawnMemoryLayout;
use crate::lut::SpawnLut;
use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};
use std::collections::VecDeque;
use std::fmt;

/// Sentinel marking a LUT overflow pointer that still needs a block.
const UNALLOCATED: u32 = u32::MAX;

/// A warp emitted by the formation unit, ready to be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedWarp {
    /// μ-kernel entry PC all member threads begin at.
    pub pc: usize,
    /// Base spawn-memory address of the warp's formation block; lane `i`'s
    /// metadata pointer lives at `base_addr + 4*i` (§IV-D computes this by
    /// subtracting the thread id from the last stored address — same thing).
    pub base_addr: u32,
    /// Number of member threads (equals the warp size except for partial
    /// warps forced out at the end of the application).
    pub count: u32,
}

/// Result of executing one warp-wide `spawn` instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnOutcome {
    /// Formation-slot address assigned to each spawning lane, in lane
    /// order. The SM issues one store per slot writing the lane's state
    /// pointer — the memory transaction of §IV-C.
    pub thread_slots: Vec<u32>,
    /// Warps completed by this spawn (already enqueued in the FIFO).
    pub warps_completed: u32,
}

/// Why a `spawn` could not proceed this cycle.
///
/// Deliberately **not** `#[non_exhaustive]`: every consumer must decide,
/// per variant, whether the condition is a transient stall (retry next
/// cycle) or a hard fault, so adding a variant here should be a compile
/// error at each match site until that policy decision is made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnError {
    /// No free warp-formation blocks; retry after warps issue and release
    /// their blocks (the issuing warp stalls).
    FormationFull,
    /// The new-warp FIFO is full; retry after the scheduler drains it.
    FifoFull,
    /// The program uses more distinct μ-kernels than the LUT supports — a
    /// configuration error, not a transient stall.
    LutFull,
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::FormationFull => write!(f, "warp-formation blocks exhausted"),
            SpawnError::FifoFull => write!(f, "new-warp FIFO full"),
            SpawnError::LutFull => write!(f, "spawn LUT capacity exceeded"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// Counters exposed by the formation unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmkStats {
    /// Warp-level `spawn` instructions processed.
    pub spawn_instructions: u64,
    /// Threads created.
    pub threads_spawned: u64,
    /// Full warps formed.
    pub warps_completed: u64,
    /// Partial warps forced out by the scheduler.
    pub partial_warps_forced: u64,
    /// Threads inside forced partial warps.
    pub partial_threads_forced: u64,
    /// High-water mark of the new-warp FIFO.
    pub max_fifo_depth: usize,
    /// High-water mark of formation blocks in use.
    pub max_blocks_in_use: u32,
    /// Spawn stalls due to formation/FIFO back-pressure.
    pub spawn_stalls: u64,
    /// Spawn-memory words the admission stage read back (one state
    /// pointer per admitted lane). Only accounted when the
    /// `spawn_admission_reads` memory knob is enabled; zero otherwise.
    pub admission_reads: u64,
}

/// One SM's warp-formation unit.
#[derive(Debug, Clone)]
pub struct WarpFormation {
    layout: SpawnMemoryLayout,
    lut: SpawnLut,
    warp_size: u32,
    free_blocks: Vec<u32>,
    total_blocks: u32,
    fifo: VecDeque<CompletedWarp>,
    fifo_capacity: usize,
    stats: DmkStats,
}

impl WarpFormation {
    /// Creates the formation unit for one SM.
    pub fn new(cfg: &DmkConfig) -> Self {
        let layout = SpawnMemoryLayout::new(cfg);
        let total_blocks = layout.formation_blocks();
        WarpFormation {
            layout,
            lut: SpawnLut::new(cfg.num_ukernels as usize),
            warp_size: cfg.warp_size,
            free_blocks: (0..total_blocks).rev().collect(),
            total_blocks,
            fifo: VecDeque::new(),
            fifo_capacity: cfg.fifo_capacity,
            stats: DmkStats::default(),
        }
    }

    /// The spawn-memory layout this unit manages.
    pub fn layout(&self) -> &SpawnMemoryLayout {
        &self.layout
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DmkStats {
        &self.stats
    }

    /// Warps waiting in the new-warp FIFO.
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }

    /// Threads sitting in partial (not yet emitted) warps.
    pub fn partial_threads(&self) -> u32 {
        self.lut.iter().map(|l| l.count).sum()
    }

    /// Read-only view of the LUT.
    pub fn lut(&self) -> &SpawnLut {
        &self.lut
    }

    /// Counts `words` spawn-memory state-pointer reads made by warp
    /// admission (the formation unit handing a completed warp to the SM).
    pub fn note_admission_reads(&mut self, words: u32) {
        self.stats.admission_reads += u64::from(words);
    }

    fn alloc_block(free: &mut Vec<u32>, layout: &SpawnMemoryLayout) -> Option<u32> {
        free.pop().map(|b| layout.block_addr(b))
    }

    /// Executes one warp-wide `spawn` toward μ-kernel `pc` with `n_active`
    /// spawning lanes.
    ///
    /// On success, per-lane formation-slot addresses are returned (the SM
    /// stores each lane's state pointer there) and any completed warps are
    /// enqueued. On back-pressure the call has **no effect** and the warp
    /// should retry (stall).
    ///
    /// # Errors
    ///
    /// [`SpawnError::FormationFull`]/[`SpawnError::FifoFull`] are transient
    /// stalls; [`SpawnError::LutFull`] is a configuration error.
    // The commit phase's expects are backed by the transactional capacity
    // pre-check above them: every allocation was counted before mutating.
    #[allow(clippy::expect_used)]
    pub fn spawn(&mut self, pc: usize, n_active: u32) -> Result<SpawnOutcome, SpawnError> {
        if n_active == 0 {
            return Ok(SpawnOutcome {
                thread_slots: Vec::new(),
                warps_completed: 0,
            });
        }
        // --- capacity pre-check (transactional: fail before mutating) ---
        let (line_exists, count, overflow_unallocated) = match self.lut.line(pc) {
            Some(l) => (true, l.count, l.overflow_addr == UNALLOCATED),
            None => {
                if self.lut.len() >= self.lut.capacity() {
                    return Err(SpawnError::LutFull);
                }
                (false, 0, false)
            }
        };
        let completions = (count + n_active) / self.warp_size;
        let mut blocks_needed = completions;
        if !line_exists {
            blocks_needed += 2;
        } else if overflow_unallocated {
            blocks_needed += 1;
        }
        if (self.free_blocks.len() as u32) < blocks_needed {
            self.stats.spawn_stalls += 1;
            return Err(SpawnError::FormationFull);
        }
        if self.fifo.len() + completions as usize > self.fifo_capacity {
            self.stats.spawn_stalls += 1;
            return Err(SpawnError::FifoFull);
        }

        // --- commit ---
        let layout = self.layout;
        let free = &mut self.free_blocks;
        let line = self
            .lut
            .line_mut(pc, || {
                let fill = Self::alloc_block(free, &layout).expect("pre-checked");
                let over = Self::alloc_block(free, &layout).expect("pre-checked");
                (fill, over)
            })
            .expect("pre-checked LUT capacity");
        if line.overflow_addr == UNALLOCATED {
            line.overflow_addr = Self::alloc_block(free, &layout).expect("pre-checked");
        }

        let mut thread_slots = Vec::with_capacity(n_active as usize);
        let mut completed = 0u32;
        for _ in 0..n_active {
            thread_slots.push(line.fill_addr);
            line.fill_addr += 4;
            line.count += 1;
            if line.count == self.warp_size {
                let base = line.fill_addr - self.warp_size * 4;
                self.fifo.push_back(CompletedWarp {
                    pc,
                    base_addr: base,
                    count: self.warp_size,
                });
                completed += 1;
                line.count = 0;
                line.fill_addr = line.overflow_addr;
                line.overflow_addr =
                    Self::alloc_block(free, &layout).expect("pre-checked completion blocks");
            }
        }

        self.stats.spawn_instructions += 1;
        self.stats.threads_spawned += u64::from(n_active);
        self.stats.warps_completed += u64::from(completed);
        self.stats.max_fifo_depth = self.stats.max_fifo_depth.max(self.fifo.len());
        self.stats.max_blocks_in_use = self
            .stats
            .max_blocks_in_use
            .max(self.total_blocks - self.free_blocks.len() as u32);
        Ok(SpawnOutcome {
            thread_slots,
            warps_completed: completed,
        })
    }

    /// Allocates one warp-sized block from the formation free pool for
    /// uses outside normal warp formation (e.g. the §IX
    /// branch-instead-of-spawn optimization needs a resident scratch block
    /// per warp). Release with [`WarpFormation::release_block`].
    pub fn try_alloc_block(&mut self) -> Option<u32> {
        let layout = self.layout;
        let addr = Self::alloc_block(&mut self.free_blocks, &layout);
        if addr.is_some() {
            self.stats.max_blocks_in_use = self
                .stats
                .max_blocks_in_use
                .max(self.total_blocks - self.free_blocks.len() as u32);
        }
        addr
    }

    /// Pops the oldest ready warp from the new-warp FIFO.
    pub fn pop_ready(&mut self) -> Option<CompletedWarp> {
        self.fifo.pop_front()
    }

    /// Peeks at the oldest ready warp without consuming it.
    pub fn peek_ready(&self) -> Option<&CompletedWarp> {
        self.fifo.front()
    }

    /// Forces the partial warp with the lowest μ-kernel PC out of the pool
    /// (§IV-D: used only when the scheduler has nothing else to run).
    ///
    /// Returns `None` when no partial warp exists.
    pub fn force_out_partial(&mut self) -> Option<CompletedWarp> {
        let layout = self.layout;
        let free = &mut self.free_blocks;
        let line = self.lut.lowest_partial_mut()?;
        let count = line.count;
        let base = line.fill_addr - count * 4;
        line.count = 0;
        line.fill_addr = line.overflow_addr;
        // Lazily refill the overflow pointer; blocks may be scarce at the
        // end of the application, which is exactly when force-out runs.
        line.overflow_addr = Self::alloc_block(free, &layout).unwrap_or(UNALLOCATED);
        self.stats.partial_warps_forced += 1;
        self.stats.partial_threads_forced += u64::from(count);
        Some(CompletedWarp {
            pc: line.pc,
            base_addr: base,
            count,
        })
    }

    /// Returns a warp's formation block to the free pool. Called by the SM
    /// once the issued warp has consumed its metadata (the paper's doubled
    /// allocation exists to make this reuse safe).
    ///
    /// # Panics
    ///
    /// Panics if the address does not lie in the formation area or the
    /// block is already free (double release — a simulator bug).
    pub fn release_block(&mut self, base_addr: u32) {
        let block = self.layout.block_of_addr(base_addr);
        assert!(
            !self.free_blocks.contains(&block),
            "double release of formation block {block}"
        );
        self.free_blocks.push(block);
    }

    /// Whether any spawned work (queued or partial) remains.
    pub fn is_idle(&self) -> bool {
        self.fifo.is_empty() && self.partial_threads() == 0
    }

    /// Serializes the unit's mutable state — LUT lines, free-block pool,
    /// new-warp FIFO, and statistics — for a simulator checkpoint. The
    /// layout and capacities are configuration, re-derived on restore.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.lut.encode_state(enc);
        enc.put_u32_slice(&self.free_blocks);
        enc.put_usize(self.fifo.len());
        for w in &self.fifo {
            enc.put_usize(w.pc);
            enc.put_u32(w.base_addr);
            enc.put_u32(w.count);
        }
        enc.put_u64(self.stats.spawn_instructions);
        enc.put_u64(self.stats.threads_spawned);
        enc.put_u64(self.stats.warps_completed);
        enc.put_u64(self.stats.partial_warps_forced);
        enc.put_u64(self.stats.partial_threads_forced);
        enc.put_usize(self.stats.max_fifo_depth);
        enc.put_u32(self.stats.max_blocks_in_use);
        enc.put_u64(self.stats.spawn_stalls);
        enc.put_u64(self.stats.admission_reads);
    }

    /// Restores state previously written by
    /// [`WarpFormation::encode_state`] into a unit built from the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when a block index /
    /// FIFO depth exceeds this unit's configured capacity.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.lut.restore_state(dec)?;
        let free_blocks = dec.take_u32_vec()?;
        if free_blocks.len() as u32 > self.total_blocks
            || free_blocks.iter().any(|&b| b >= self.total_blocks)
        {
            return Err(CodecError::BadLength {
                len: free_blocks.len() as u64,
                remaining: self.total_blocks as usize,
            });
        }
        self.free_blocks = free_blocks;
        let n = dec.take_len(20)?;
        if n > self.fifo_capacity {
            return Err(CodecError::BadLength {
                len: n as u64,
                remaining: self.fifo_capacity,
            });
        }
        self.fifo = (0..n)
            .map(|_| {
                Ok(CompletedWarp {
                    pc: dec.take_usize()?,
                    base_addr: dec.take_u32()?,
                    count: dec.take_u32()?,
                })
            })
            .collect::<Result<_, CodecError>>()?;
        self.stats.spawn_instructions = dec.take_u64()?;
        self.stats.threads_spawned = dec.take_u64()?;
        self.stats.warps_completed = dec.take_u64()?;
        self.stats.partial_warps_forced = dec.take_u64()?;
        self.stats.partial_threads_forced = dec.take_u64()?;
        self.stats.max_fifo_depth = dec.take_usize()?;
        self.stats.max_blocks_in_use = dec.take_u32()?;
        self.stats.spawn_stalls = dec.take_u64()?;
        self.stats.admission_reads = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DmkConfig {
        DmkConfig {
            warp_size: 4,
            threads_per_sm: 32,
            state_bytes: 48,
            num_ukernels: 3,
            fifo_capacity: 16,
        }
    }

    #[test]
    fn exact_warp_completes_immediately() {
        let mut wf = WarpFormation::new(&small_cfg());
        let out = wf.spawn(10, 4).unwrap();
        assert_eq!(out.warps_completed, 1);
        assert_eq!(out.thread_slots.len(), 4);
        // Slots are sequential words.
        for w in out.thread_slots.windows(2) {
            assert_eq!(w[1], w[0] + 4);
        }
        let warp = wf.pop_ready().unwrap();
        assert_eq!(warp.pc, 10);
        assert_eq!(warp.count, 4);
        assert_eq!(warp.base_addr, out.thread_slots[0]);
    }

    #[test]
    fn partial_warp_accumulates_across_spawns() {
        let mut wf = WarpFormation::new(&small_cfg());
        assert_eq!(wf.spawn(10, 2).unwrap().warps_completed, 0);
        assert_eq!(wf.partial_threads(), 2);
        assert!(wf.pop_ready().is_none());
        let out = wf.spawn(10, 3).unwrap();
        assert_eq!(out.warps_completed, 1);
        assert_eq!(
            wf.partial_threads(),
            1,
            "one thread spills into the next warp"
        );
    }

    #[test]
    fn overflow_spawn_spans_blocks() {
        let mut wf = WarpFormation::new(&small_cfg());
        // 10 threads with warp size 4: two complete warps + 2 partial.
        let out = wf.spawn(10, 10).unwrap();
        assert_eq!(out.warps_completed, 2);
        assert_eq!(wf.partial_threads(), 2);
        let w1 = wf.pop_ready().unwrap();
        let w2 = wf.pop_ready().unwrap();
        assert_ne!(w1.base_addr, w2.base_addr);
        // Each warp's slots are exactly its block.
        assert_eq!(out.thread_slots[0], w1.base_addr);
        assert_eq!(out.thread_slots[4], w2.base_addr);
    }

    #[test]
    fn different_ukernels_use_separate_lines() {
        let mut wf = WarpFormation::new(&small_cfg());
        wf.spawn(10, 2).unwrap();
        wf.spawn(20, 3).unwrap();
        assert_eq!(wf.partial_threads(), 5);
        assert_eq!(wf.lut().len(), 2);
    }

    #[test]
    fn lut_capacity_enforced() {
        let mut wf = WarpFormation::new(&small_cfg());
        wf.spawn(1, 1).unwrap();
        wf.spawn(2, 1).unwrap();
        wf.spawn(3, 1).unwrap();
        assert_eq!(wf.spawn(4, 1).unwrap_err(), SpawnError::LutFull);
    }

    #[test]
    fn force_out_lowest_pc_first() {
        let mut wf = WarpFormation::new(&small_cfg());
        wf.spawn(30, 1).unwrap();
        wf.spawn(10, 2).unwrap();
        let w = wf.force_out_partial().unwrap();
        assert_eq!(w.pc, 10);
        assert_eq!(w.count, 2);
        let w = wf.force_out_partial().unwrap();
        assert_eq!(w.pc, 30);
        assert!(wf.force_out_partial().is_none());
        assert!(wf.is_idle());
    }

    #[test]
    fn formation_back_pressure_stalls_without_effect() {
        let cfg = DmkConfig {
            warp_size: 4,
            threads_per_sm: 8,
            state_bytes: 48,
            num_ukernels: 1,
            fifo_capacity: 64,
        };
        // 2*8/4 = 4 blocks total; a line consumes 2 up front.
        let mut wf = WarpFormation::new(&cfg);
        wf.spawn(10, 4).unwrap(); // completes one warp, allocates a refill block
        let before_partial = wf.partial_threads();
        // Keep spawning until blocks run out.
        let mut stalled = false;
        for _ in 0..16 {
            match wf.spawn(10, 4) {
                Ok(_) => {}
                Err(SpawnError::FormationFull) => {
                    stalled = true;
                    break;
                }
                // Exhaustive so a new SpawnError variant forces this test to
                // state its back-pressure policy explicitly.
                Err(e @ (SpawnError::FifoFull | SpawnError::LutFull)) => {
                    panic!("unexpected {e}")
                }
            }
        }
        assert!(stalled, "must eventually exhaust formation blocks");
        let stalled_partial = wf.partial_threads();
        assert_eq!(before_partial, 0);
        assert_eq!(
            stalled_partial % 4,
            0,
            "failed spawn must not partially commit"
        );
        assert!(wf.stats().spawn_stalls >= 1);
        // Releasing a block un-stalls.
        let w = wf.pop_ready().unwrap();
        wf.release_block(w.base_addr);
        wf.spawn(10, 4).unwrap();
    }

    #[test]
    fn fifo_back_pressure() {
        let cfg = DmkConfig {
            warp_size: 4,
            threads_per_sm: 512,
            state_bytes: 48,
            num_ukernels: 1,
            fifo_capacity: 2,
        };
        let mut wf = WarpFormation::new(&cfg);
        wf.spawn(10, 8).unwrap(); // fills FIFO to 2
        assert_eq!(wf.spawn(10, 4).unwrap_err(), SpawnError::FifoFull);
        wf.pop_ready().unwrap();
        wf.spawn(10, 4).unwrap();
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_a_bug() {
        let mut wf = WarpFormation::new(&small_cfg());
        wf.spawn(10, 4).unwrap();
        let w = wf.pop_ready().unwrap();
        wf.release_block(w.base_addr);
        wf.release_block(w.base_addr);
    }

    #[test]
    fn stats_track_activity() {
        let mut wf = WarpFormation::new(&small_cfg());
        wf.spawn(10, 6).unwrap();
        wf.force_out_partial().unwrap();
        let s = wf.stats();
        assert_eq!(s.spawn_instructions, 1);
        assert_eq!(s.threads_spawned, 6);
        assert_eq!(s.warps_completed, 1);
        assert_eq!(s.partial_warps_forced, 1);
        assert_eq!(s.partial_threads_forced, 2);
        assert!(s.max_fifo_depth >= 1);
    }

    #[test]
    fn zero_active_lanes_is_noop() {
        let mut wf = WarpFormation::new(&small_cfg());
        let out = wf.spawn(10, 0).unwrap();
        assert!(out.thread_slots.is_empty());
        assert!(wf.lut().is_empty());
        assert_eq!(wf.stats().spawn_instructions, 0);
    }

    #[test]
    fn block_reuse_cycles_through_capacity() {
        let mut wf = WarpFormation::new(&small_cfg());
        // Spawn/drain/release many times; must never exhaust.
        for round in 0..100 {
            let out = wf
                .spawn(10, 4)
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_eq!(out.warps_completed, 1);
            let w = wf.pop_ready().unwrap();
            wf.release_block(w.base_addr);
        }
    }
}
