//! Dynamic μ-kernel hardware configuration.

use serde::{Deserialize, Serialize};

/// Sizing parameters of the dynamic μ-kernel hardware on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmkConfig {
    /// Threads per warp (32 in the paper's Table I).
    pub warp_size: u32,
    /// Maximum threads resident on one SM (1024 in Table I).
    pub threads_per_sm: u32,
    /// Bytes of the parent→child state record. The paper's ray-tracing
    /// μ-kernels use 48 bytes moved by three 4-wide vector accesses.
    ///
    /// When μ-kernels need different amounts, the *largest* record sizes
    /// the space (§IV-A1).
    pub state_bytes: u32,
    /// Number of distinct μ-kernels (spawn targets). Sizes the LUT and the
    /// warp-formation area.
    pub num_ukernels: u32,
    /// Maximum depth of the new-warp FIFO before `spawn` stalls.
    pub fifo_capacity: usize,
}

impl DmkConfig {
    /// The paper's configuration: 32-thread warps, 1024 threads/SM, 48-byte
    /// state records, 4 μ-kernels, and a generous FIFO.
    pub fn paper() -> Self {
        DmkConfig {
            warp_size: 32,
            threads_per_sm: 1024,
            state_bytes: 48,
            num_ukernels: 4,
            fifo_capacity: 256,
        }
    }

    /// Number of warp-formation *entries* (one 4-byte pointer per thread)
    /// required, before doubling: `NumThreads + (SpawnLocations − 1) ×
    /// WarpSize` (paper §IV-A2).
    pub fn formation_entries(&self) -> u32 {
        self.threads_per_sm + (self.num_ukernels.saturating_sub(1)) * self.warp_size
    }

    /// Formation-area capacity in warp-sized blocks, after the paper's
    /// doubling, rounded up so each block holds exactly one warp.
    pub fn formation_blocks(&self) -> u32 {
        (2 * self.formation_entries()).div_ceil(self.warp_size)
    }

    /// Total spawn-memory bytes this configuration needs per SM.
    pub fn spawn_memory_bytes(&self) -> u32 {
        self.state_bytes * self.threads_per_sm + self.formation_blocks() * self.warp_size * 4
    }

    /// LUT size in bytes: one line per μ-kernel, each holding two addresses
    /// and a counter plus the tag (paper Table I budgets 1024 bytes).
    pub fn lut_bytes(&self) -> u32 {
        self.num_ukernels * 16
    }
}

impl Default for DmkConfig {
    fn default() -> Self {
        DmkConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_formation_sizing() {
        let c = DmkConfig::paper();
        // 1024 + 3*32 = 1120 entries, doubled = 2240, / 32 = 70 blocks.
        assert_eq!(c.formation_entries(), 1120);
        assert_eq!(c.formation_blocks(), 70);
    }

    #[test]
    fn spawn_memory_total() {
        let c = DmkConfig::paper();
        // 48 * 1024 state bytes + 70 * 32 * 4 formation bytes.
        assert_eq!(c.spawn_memory_bytes(), 48 * 1024 + 70 * 32 * 4);
    }

    #[test]
    fn lut_fits_table_1_budget() {
        let c = DmkConfig::paper();
        assert!(
            c.lut_bytes() <= 1024,
            "LUT must fit the 1 KiB budget of Table I"
        );
    }

    #[test]
    fn single_ukernel_has_no_extra_blocks() {
        let c = DmkConfig {
            num_ukernels: 1,
            ..DmkConfig::paper()
        };
        assert_eq!(c.formation_entries(), c.threads_per_sm);
    }
}
