//! # dmk-core — the dynamic μ-kernel architecture
//!
//! This crate implements the hardware proposed by Steffen & Zambreno
//! (MICRO 2010, §IV): architectural support for threads that **spawn** new
//! threads at runtime, with hardware that regroups the children into fresh,
//! divergence-free warps.
//!
//! The pieces, one per module:
//!
//! * [`DmkConfig`] — sizing parameters (warp size, threads/SM, state-record
//!   bytes, number of μ-kernels);
//! * [`SpawnMemoryLayout`] — the *spawn memory* address space of §IV-A: a
//!   per-thread state-record section plus a (doubled) warp-formation
//!   metadata section;
//! * [`SpawnLut`] — the PC-indexed look-up table of §IV-C holding, per
//!   μ-kernel, the partial-warp counter and the fill/overflow addresses;
//! * [`WarpFormation`] — the full warp-formation unit: LUT + formation-slot
//!   allocator + new-warp FIFO, including partial-warp force-out (§IV-D).
//!
//! The cycle-level simulator (`simt-sim`) embeds one [`WarpFormation`] per
//! SM and calls [`WarpFormation::spawn`] when executing the `spawn`
//! instruction; the returned slot addresses become a timed store to the
//! spawn address space, exactly as the paper describes.
//!
//! ## Example
//!
//! ```
//! use dmk_core::{DmkConfig, WarpFormation};
//!
//! let cfg = DmkConfig {
//!     warp_size: 4,
//!     threads_per_sm: 64,
//!     state_bytes: 48,
//!     num_ukernels: 3,
//!     fifo_capacity: 32,
//! };
//! let mut wf = WarpFormation::new(&cfg);
//! // 4 threads of a warp all spawn towards the μ-kernel at pc=10:
//! let out = wf.spawn(10, 4)?;
//! assert_eq!(out.thread_slots.len(), 4);
//! assert_eq!(out.warps_completed, 1, "warp of 4 filled in one go");
//! # Ok::<(), dmk_core::SpawnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod compile;
mod config;
mod formation;
mod layout;
mod lut;

pub use compile::{can_extract, extract_loop, ExtractError, ExtractOptions};
pub use config::DmkConfig;
pub use formation::{CompletedWarp, DmkStats, SpawnError, SpawnOutcome, WarpFormation};
pub use layout::SpawnMemoryLayout;
pub use lut::{LutLine, SpawnLut};
