//! Automatic μ-kernel extraction — the paper's §IX "compiler to ease
//! implementation" direction.
//!
//! [`extract_loop`] mechanically performs the transformation the paper's
//! authors did by hand at the PTX level (§VI-A): given a kernel containing
//! a data-dependent loop, it
//!
//! 1. finds the loop (header label + unique guarded back-edge),
//! 2. computes the registers live across the loop boundary
//!    ([`simt_isa::Liveness`]),
//! 3. splits the program into three parts — prologue, loop body, epilogue —
//!    each a μ-kernel connected by `spawn`, with generated state
//!    save/restore code through spawn memory.
//!
//! The generated program computes exactly what the original does (the
//! tests verify this differentially on the simulator) but executes each
//! loop iteration as a freshly-regrouped warp.
//!
//! ## Supported shape
//!
//! ```text
//! <prologue: straight-line or internally-branching code>
//! header:
//!     <body: may branch within itself, may conditionally exit to `after`>
//!     @p bra header          ; the unique, guarded back-edge
//! after:                     ; single exit target = back-edge fallthrough
//!     <epilogue>
//! ```
//!
//! Rejected (with a precise [`ExtractError`]): multiple back-edges,
//! unguarded back-edges (infinite loops), branches entering the loop from
//! outside, predicates live across the split, state exceeding the spawn
//! record budget, or no spare registers for the state pointer.

use simt_isa::{EntryPoint, Instr, Instruction, Liveness, Program, Reg, Space, Special, Width};
use std::collections::BTreeMap;
use std::fmt;

/// Options for [`extract_loop`].
#[derive(Debug, Clone, Copy)]
pub struct ExtractOptions {
    /// Maximum state-record size in bytes (the spawn-memory record; the
    /// paper uses 48).
    pub state_budget_bytes: u32,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            state_budget_bytes: 48,
        }
    }
}

/// Why extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The loop label does not exist.
    NoSuchLabel(String),
    /// No backward branch targets the label.
    NotALoop,
    /// More than one back-edge targets the header.
    MultipleBackEdges,
    /// The back-edge is unguarded — the loop never exits.
    UnguardedBackEdge,
    /// A branch enters the loop from outside (not a natural loop).
    IrreducibleEntry {
        /// PC of the offending branch.
        from: usize,
    },
    /// A branch leaves the loop to somewhere other than the single exit
    /// target (the back-edge fallthrough).
    UnsupportedExit {
        /// PC of the offending branch.
        from: usize,
        /// Its target.
        to: usize,
    },
    /// A predicate register is live across the split boundary.
    LivePredicate,
    /// The live register set needs more bytes than the budget.
    StateTooLarge {
        /// Bytes required.
        needed: u32,
        /// Budget allowed.
        budget: u32,
    },
    /// No spare register is available for the state pointer.
    NoSpareRegister,
    /// An existing `spawn` targets the loop region.
    SpawnIntoLoop,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::NoSuchLabel(l) => write!(f, "no such label `{l}`"),
            ExtractError::NotALoop => write!(f, "label is not a loop header"),
            ExtractError::MultipleBackEdges => write!(f, "loop has multiple back-edges"),
            ExtractError::UnguardedBackEdge => write!(f, "back-edge is unguarded (infinite loop)"),
            ExtractError::IrreducibleEntry { from } => {
                write!(f, "branch at pc {from} enters the loop from outside")
            }
            ExtractError::UnsupportedExit { from, to } => {
                write!(
                    f,
                    "branch at pc {from} leaves the loop to pc {to} (not the single exit)"
                )
            }
            ExtractError::LivePredicate => {
                write!(f, "a predicate register is live across the loop boundary")
            }
            ExtractError::StateTooLarge { needed, budget } => {
                write!(f, "live state needs {needed} bytes, budget is {budget}")
            }
            ExtractError::NoSpareRegister => write!(f, "no spare register for the state pointer"),
            ExtractError::SpawnIntoLoop => write!(f, "an existing spawn targets the loop region"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Performs the μ-kernel extraction. Returns a new program whose entry
/// points are the original ones plus `uk_<label>_loop` and
/// `uk_<label>_exit`.
///
/// # Errors
///
/// See [`ExtractError`] for every rejected shape.
// The codegen loops below index `old2new` by original pc while also
// fetching by pc — an iterator rewrite would obscure the address math. The
// final expect is invariant-backed: generated code is structurally valid by
// construction and the surrounding tests prove it.
#[allow(clippy::needless_range_loop, clippy::expect_used)]
pub fn extract_loop(
    program: &Program,
    loop_label: &str,
    opts: ExtractOptions,
) -> Result<Program, ExtractError> {
    let header = program
        .label(loop_label)
        .ok_or_else(|| ExtractError::NoSuchLabel(loop_label.to_string()))?;
    let n = program.len();

    // --- find the unique back-edge ---
    let mut back_edges: Vec<usize> = Vec::new();
    for (pc, i) in program.instrs().iter().enumerate() {
        if let Instr::Bra { target } = i.op {
            if target == header && pc >= header {
                back_edges.push(pc);
            }
        }
    }
    if back_edges.is_empty() {
        return Err(ExtractError::NotALoop);
    }
    if back_edges.len() > 1 {
        return Err(ExtractError::MultipleBackEdges);
    }
    let back = back_edges[0];
    let back_instr = program.fetch(back);
    if back_instr.guard.is_none() {
        return Err(ExtractError::UnguardedBackEdge);
    }
    let exit_target = back + 1; // single supported exit: fallthrough

    // --- structural checks ---
    for (pc, i) in program.instrs().iter().enumerate() {
        match i.op {
            Instr::Bra { target } => {
                let from_in = (header..=back).contains(&pc);
                let to_in = (header..=back).contains(&target);
                if !from_in && to_in && target != header {
                    return Err(ExtractError::IrreducibleEntry { from: pc });
                }
                if !from_in && to_in && target == header && pc < header {
                    // Prologue may only *fall through* into the header.
                    return Err(ExtractError::IrreducibleEntry { from: pc });
                }
                if from_in && !to_in && pc != back && target != exit_target {
                    return Err(ExtractError::UnsupportedExit {
                        from: pc,
                        to: target,
                    });
                }
            }
            Instr::Spawn { target, .. } if (header..=back).contains(&target) => {
                return Err(ExtractError::SpawnIntoLoop);
            }
            _ => {}
        }
    }

    // --- liveness across the boundaries ---
    let live = Liveness::compute(program);
    let at_header = live.live_in(header);
    let at_exit = if exit_target < n {
        live.live_in(exit_target)
    } else {
        Default::default()
    };
    if at_header.preds != 0 || at_exit.preds != 0 {
        return Err(ExtractError::LivePredicate);
    }
    let carried: Vec<u8> = {
        let mask = at_header.regs | at_exit.regs;
        (0..64u8).filter(|r| mask & (1 << r) != 0).collect()
    };
    let needed = carried.len() as u32 * 4;
    if needed > opts.state_budget_bytes {
        return Err(ExtractError::StateTooLarge {
            needed,
            budget: opts.state_budget_bytes,
        });
    }
    // State pointer register: first register above everything used.
    let max_used = program.resource_usage().registers as u8;
    if max_used >= 63 {
        return Err(ExtractError::NoSpareRegister);
    }
    let rp = Reg(max_used);

    // --- code generation ---
    // Shorthand constructors.
    let un = Instruction::new;
    let save = |out: &mut Vec<Instruction>| {
        for (slot, &r) in carried.iter().enumerate() {
            out.push(un(Instr::St {
                space: Space::Spawn,
                a: Reg(r),
                addr: rp,
                offset: (slot * 4) as i32,
                width: Width::W1,
            }));
        }
    };
    let restore = |out: &mut Vec<Instruction>| {
        out.push(un(Instr::ReadSpecial {
            d: rp,
            s: Special::SpawnMem,
        }));
        out.push(un(Instr::Ld {
            space: Space::Spawn,
            d: rp,
            addr: rp,
            offset: 0,
            width: Width::W1,
        }));
        for (slot, &r) in carried.iter().enumerate() {
            out.push(un(Instr::Ld {
                space: Space::Spawn,
                d: Reg(r),
                addr: rp,
                offset: (slot * 4) as i32,
                width: Width::W1,
            }));
        }
    };

    // The new program is assembled region by region; branch targets are
    // fixed up afterwards through `old2new` plus symbolic slots for the
    // generated labels.
    let mut out: Vec<Instruction> = Vec::with_capacity(n + 32 + 4 * carried.len());
    let mut old2new = vec![usize::MAX; n];
    // Symbolic fixups: (position in `out`, kind).
    #[derive(Clone, Copy, PartialEq)]
    enum Fix {
        Old(usize),
        LoopEntry,
        ExitEntry,
        SpawnSelfBlock,
        ExitTrampoline,
    }
    let mut fixes: Vec<(usize, Fix)> = Vec::new();
    let emit = |out: &mut Vec<Instruction>, fixes: &mut Vec<(usize, Fix)>, i: Instruction| {
        // Record target fixups for control instructions.
        match i.op {
            Instr::Bra { target } => fixes.push((out.len(), Fix::Old(target))),
            Instr::Spawn { target, .. } => fixes.push((out.len(), Fix::Old(target))),
            _ => {}
        }
        out.push(i);
    };

    // -- prologue [0, header): original code, then save+spawn k_loop --
    for pc in 0..header {
        old2new[pc] = out.len();
        emit(&mut out, &mut fixes, *program.fetch(pc));
    }
    // Launch threads address their state record directly (§IV-A1).
    out.push(un(Instr::ReadSpecial {
        d: rp,
        s: Special::SpawnMem,
    }));
    save(&mut out);
    fixes.push((out.len(), Fix::LoopEntry));
    out.push(un(Instr::Spawn { target: 0, ptr: rp }));
    out.push(un(Instr::Exit));

    // -- k_loop --
    let loop_entry = out.len();
    restore(&mut out);
    for pc in header..back {
        old2new[pc] = out.len();
        let i = *program.fetch(pc);
        // Redirect early exits (branches to the single exit target) to the
        // exit trampoline.
        if let Instr::Bra { target } = i.op {
            if target == exit_target {
                fixes.push((out.len(), Fix::ExitTrampoline));
                out.push(Instruction {
                    guard: i.guard,
                    op: Instr::Bra { target: 0 },
                });
                continue;
            }
        }
        emit(&mut out, &mut fixes, i);
    }
    // The back-edge: continue looping via a self-spawn, else fall to exit.
    old2new[back] = out.len();
    fixes.push((out.len(), Fix::SpawnSelfBlock));
    out.push(Instruction {
        guard: back_instr.guard,
        op: Instr::Bra { target: 0 },
    });
    // Exit trampoline: save + spawn k_exit.
    let exit_trampoline = out.len();
    save(&mut out);
    fixes.push((out.len(), Fix::ExitEntry));
    out.push(un(Instr::Spawn { target: 0, ptr: rp }));
    out.push(un(Instr::Exit));
    // Self-spawn block: save + spawn k_loop.
    let spawn_self_block = out.len();
    save(&mut out);
    fixes.push((out.len(), Fix::LoopEntry));
    out.push(un(Instr::Spawn { target: 0, ptr: rp }));
    out.push(un(Instr::Exit));

    // -- k_exit: epilogue [exit_target, n) --
    let exit_entry = out.len();
    restore(&mut out);
    for pc in exit_target..n {
        old2new[pc] = out.len();
        emit(&mut out, &mut fixes, *program.fetch(pc));
    }

    // -- fix up targets --
    for (pos, fix) in fixes {
        let new_target = match fix {
            Fix::Old(t) => {
                let mapped = old2new[t];
                assert!(mapped != usize::MAX, "target {t} not emitted");
                mapped
            }
            Fix::LoopEntry => loop_entry,
            Fix::ExitEntry => exit_entry,
            Fix::SpawnSelfBlock => spawn_self_block,
            Fix::ExitTrampoline => exit_trampoline,
        };
        out[pos].op = match out[pos].op {
            Instr::Bra { .. } => Instr::Bra { target: new_target },
            Instr::Spawn { ptr, .. } => Instr::Spawn {
                target: new_target,
                ptr,
            },
            _ => unreachable!("only control instructions get fixups"),
        };
    }

    // -- labels and entry points --
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    for (name, &pc) in program.labels() {
        if old2new[pc] != usize::MAX {
            labels.insert(name.clone(), old2new[pc]);
        }
    }
    let loop_name = format!("uk_{loop_label}_loop");
    let exit_name = format!("uk_{loop_label}_exit");
    labels.insert(loop_name.clone(), loop_entry);
    labels.insert(exit_name.clone(), exit_entry);
    let mut entries: Vec<EntryPoint> = program
        .entry_points()
        .iter()
        .filter(|e| old2new[e.pc] != usize::MAX)
        .map(|e| EntryPoint {
            name: e.name.clone(),
            pc: old2new[e.pc],
        })
        .collect();
    entries.push(EntryPoint {
        name: loop_name,
        pc: loop_entry,
    });
    entries.push(EntryPoint {
        name: exit_name,
        pc: exit_entry,
    });

    let mut resources = program.resource_usage();
    resources.spawn_state_bytes = resources.spawn_state_bytes.max(needed);

    Ok(Program::new(
        format!("{}+uk[{loop_label}]", program.name()),
        out,
        labels,
        entries,
        resources,
    )
    .expect("generated program validates"))
}

/// Convenience check: does the program look extractable at `loop_label`?
pub fn can_extract(program: &Program, loop_label: &str) -> bool {
    extract_loop(program, loop_label, ExtractOptions::default()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::assemble;

    fn sum_loop() -> Program {
        assemble(
            r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                and.b32 r2, r1, 7
                add.s32 r2, r2, 1
                mov.u32 r3, 0
            loop:
                add.s32 r3, r3, r2
                sub.s32 r2, r2, 1
                setp.gt.s32 p0, r2, 0
                @p0 bra loop
                mul.lo.s32 r4, r1, 4
                st.global.u32 [r4+0], r3
                exit
            "#,
        )
        .unwrap()
    }

    #[test]
    fn extraction_produces_three_entry_points_and_spawns() {
        let p = extract_loop(&sum_loop(), "loop", ExtractOptions::default()).unwrap();
        let names: Vec<&str> = p.entry_points().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["main", "uk_loop_loop", "uk_loop_exit"]);
        assert_eq!(p.spawn_targets().len(), 2, "loop + exit targets");
        // No backward branches survive: the loop became spawns.
        for (pc, i) in p.instrs().iter().enumerate() {
            if let Instr::Bra { target } = i.op {
                assert!(target > pc, "backward branch at {pc} -> {target} remains");
            }
        }
        assert_eq!(
            p.resource_usage().spawn_state_bytes,
            3 * 4,
            "r1, r2, r3 carried"
        );
    }

    #[test]
    fn rejects_non_loops_and_missing_labels() {
        let p = assemble("a:\nnop\nexit").unwrap();
        assert_eq!(
            extract_loop(&p, "b", ExtractOptions::default()),
            Err(ExtractError::NoSuchLabel("b".into()))
        );
        assert_eq!(
            extract_loop(&p, "a", ExtractOptions::default()),
            Err(ExtractError::NotALoop)
        );
    }

    #[test]
    fn rejects_unguarded_back_edge() {
        let p = assemble("spin:\nnop\nbra spin").unwrap();
        assert_eq!(
            extract_loop(&p, "spin", ExtractOptions::default()),
            Err(ExtractError::UnguardedBackEdge)
        );
    }

    #[test]
    fn rejects_oversized_state() {
        let p = sum_loop();
        let err = extract_loop(
            &p,
            "loop",
            ExtractOptions {
                state_budget_bytes: 8,
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExtractError::StateTooLarge {
                needed: 12,
                budget: 8
            }
        );
    }

    #[test]
    fn rejects_live_predicate_across_boundary() {
        // p1 is set before the loop and used after it.
        let p = assemble(
            r#"
            setp.eq.s32 p1, r1, 0
            mov.u32 r2, 4
            loop:
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            @p1 mov.u32 r3, 1
            st.global.u32 [r3+0], r3
            exit
            "#,
        )
        .unwrap();
        assert_eq!(
            extract_loop(&p, "loop", ExtractOptions::default()),
            Err(ExtractError::LivePredicate)
        );
    }

    #[test]
    fn rejects_multi_exit_loops() {
        let p = assemble(
            r#"
            mov.u32 r2, 4
            loop:
            sub.s32 r2, r2, 1
            setp.eq.s32 p1, r2, 2
            @p1 bra far_exit
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            nop
            far_exit:
            exit
            "#,
        )
        .unwrap();
        assert!(matches!(
            extract_loop(&p, "loop", ExtractOptions::default()),
            Err(ExtractError::UnsupportedExit { .. })
        ));
    }

    #[test]
    fn early_exit_to_fallthrough_is_supported() {
        // A guarded break targeting exactly the loop's fallthrough.
        let p = assemble(
            r#"
            mov.u32 r2, 9
            mov.u32 r3, 0
            loop:
            add.s32 r3, r3, 1
            setp.eq.s32 p1, r3, 3
            @p1 bra after
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            after:
            st.global.u32 [r3+0], r3
            exit
            "#,
        )
        .unwrap();
        let out = extract_loop(&p, "loop", ExtractOptions::default()).unwrap();
        assert_eq!(out.spawn_targets().len(), 2);
    }
}
