//! `bench_sim` — wall-clock benchmark of the two-phase simulator.
//!
//! Times a fixed fig-7 run (dynamic μ-kernel render of the conference
//! scene) at phase-A parallelism 1 and at every host core, then writes
//! `BENCH_sim.json` with simulated cycles, wall seconds, and simulation
//! throughput for each run. Simulated results are bit-identical across
//! the runs — only wall-clock time changes.
//!
//! Also measures checkpoint overhead (`DESIGN.md` §9): snapshot encode,
//! disk write, and read + restore of a mid-run machine state, so the
//! cost of `--checkpoint-every` shows up in the recorded numbers.
//!
//! Also measures telemetry overhead (`DESIGN.md` §10): the same run with
//! telemetry disabled at runtime against one with windowed metrics on,
//! so the probe cost the experiment drivers pay is a recorded number
//! (the budget is < 5%). The arms are interleaved behind a warm-up pass
//! and reported min-of-3, so host drift cannot make telemetry-on appear
//! faster than off.
//!
//! Also measures the L1/L2 cache hierarchy (`DESIGN.md` §16): the same
//! fig-7 run through a 16 KiB L1 + 512 KiB L2 machine, recording
//! per-level hit rates, MSHR merges/stalls, interconnect bank
//! conflicts, and the telemetry overhead on the cache-enabled path.
//!
//! Also measures campaign-mode throughput (`DESIGN.md` §12): the full
//! 12-artifact `repro campaign` matrix at test scale with 1 worker
//! process vs N, plus the warm-cache round trip, so the coordination and
//! cache overheads are recorded numbers. Skipped (recorded as `null`)
//! when the `repro` binary is not next to `bench_sim`.
//!
//! Also records per-workload SIMD efficiency (DESIGN.md §15): every
//! registry workload that reports `simd_efficiency` (the extended `bvh`
//! and `microdiv` scenarios) contributes a scenario → efficiency map at
//! test scale, so efficiency regressions show up in the recorded
//! numbers next to the wall-clock ones.
//!
//! Also measures `repro serve` front-door overhead (`DESIGN.md` §14):
//! cold request throughput through admission + journal + coordinator,
//! then warm-cache hit latency (p50/p99 of the full submit → status →
//! fetch round trip) at 1 client and at N concurrent clients. Skipped
//! (recorded as `null`) under the same condition as the campaign bench.
//!
//! ```text
//! bench_sim [--scale paper|quick|test] [--out PATH]
//! ```

use experiments::{gpu_for, gpu_for_with, Scale, Variant};
use raytrace::scenes;
use rt_kernels::render::RenderSetup;
use simt_sim::{Gpu, Snapshot, TelemetrySpec};
use std::process::ExitCode;
use std::time::Instant;

struct BenchRun {
    parallel: usize,
    cycles: u64,
    wall_seconds: f64,
    /// Idle cycles the event-driven loop jumped over instead of ticking.
    skipped_cycles: u64,
    /// Number of skip jumps taken.
    skip_events: u64,
    /// Idle SM-cycles (an SM with nothing to issue), summed over SMs.
    idle_sm_cycles: u64,
    /// Total SM-cycles simulated (`cycles × num_sms`).
    sm_cycles: u64,
}

impl BenchRun {
    fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One timed fig-7 render. Returns simulated cycles and wall seconds for
/// the `Gpu::run` call only (scene build and upload are untimed).
/// `cached` swaps the flat fabric for the L1+L2 hierarchy
/// (`MemConfig::fx5800_cached` knobs: 16 KiB L1, 512 KiB L2).
fn run_once(parallel: usize, scale: Scale, telemetry: TelemetrySpec, cached: bool) -> BenchRun {
    let mut gpu = if cached {
        let mut cfg = experiments::config_for(Variant::Dynamic);
        cfg.mem.l1_bytes = 16 * 1024;
        cfg.mem.l2_bytes = 512 * 1024;
        Gpu::builder(cfg).telemetry(telemetry).build()
    } else {
        gpu_for_with(Variant::Dynamic, telemetry)
    }
    .with_parallelism(parallel);
    let scene = scenes::conference(scale.scene);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    let start = Instant::now();
    let summary = gpu.run(scale.cycles).expect("fault-free benchmark run");
    BenchRun {
        parallel,
        cycles: summary.stats.cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
        skipped_cycles: gpu.skipped_cycles(),
        skip_events: gpu.skip_events(),
        idle_sm_cycles: summary.stats.idle_sm_cycles,
        sm_cycles: summary.stats.cycles * gpu.config().num_sms as u64,
    }
}

/// Interleaved A/B telemetry-overhead measurement: one untimed warm-up
/// pass (page cache, allocator, branch predictors), then alternating
/// off/on runs so host drift lands on both arms equally, taking the
/// min-of-3 per arm so the noise floor — not the scheduler — decides.
/// The old sequential best-of-3 (all off runs, then all on runs, no
/// warm-up) routinely measured telemetry-on *faster* than off.
fn telemetry_ab(scale: Scale, cached: bool) -> (f64, f64) {
    let _warmup = run_once(1, scale, TelemetrySpec::metrics(), cached);
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        off = off.min(run_once(1, scale, TelemetrySpec::off(), cached).wall_seconds);
        on = on.min(run_once(1, scale, TelemetrySpec::metrics(), cached).wall_seconds);
    }
    (off, on)
}

/// Relative overhead of the `on` arm, floored at 0: telemetry cannot
/// make the simulator faster, so a negative ratio is residual noise by
/// construction, not a result.
fn overhead_pct(off: f64, on: f64) -> f64 {
    if off > 0.0 {
        ((on / off - 1.0) * 100.0).max(0.0)
    } else {
        0.0
    }
}

struct CacheHierarchyBench {
    cycles: u64,
    l1_hits: u64,
    l1_misses: u64,
    mshr_merges: u64,
    mshr_stalls: u64,
    l2_hits: u64,
    l2_misses: u64,
    icnt_conflicts: u64,
    tel_off_seconds: f64,
    tel_on_seconds: f64,
    tel_overhead_pct: f64,
}

impl CacheHierarchyBench {
    /// Simulation throughput on the cache-enabled path, from the
    /// fastest telemetry-off arm (the same machine the counted run
    /// used) — what the CI perf floor pins.
    fn cycles_per_second(&self) -> f64 {
        if self.tel_off_seconds > 0.0 {
            self.cycles as f64 / self.tel_off_seconds
        } else {
            0.0
        }
    }

    fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total > 0 {
            self.l1_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total > 0 {
            self.l2_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The fig-7 run again, through the full L1/L2 hierarchy: per-level hit
/// rates and interconnect conflicts from one counted run, plus the same
/// interleaved telemetry A/B as the flat machine so the probe cost on
/// the cache-enabled path is a recorded number too.
fn bench_cache_hierarchy(scale: Scale) -> CacheHierarchyBench {
    let mut gpu = {
        let mut cfg = experiments::config_for(Variant::Dynamic);
        cfg.mem.l1_bytes = 16 * 1024;
        cfg.mem.l2_bytes = 512 * 1024;
        Gpu::builder(cfg).build()
    };
    let scene = scenes::conference(scale.scene);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    let summary = gpu.run(scale.cycles).expect("fault-free benchmark run");
    let (l1_hits, l1_misses, mshr_merges, mshr_stalls) =
        gpu.l1_stats().expect("L1 configured for the cache bench");
    let (l2_hits, l2_misses) = gpu
        .mem()
        .l2_stats()
        .expect("L2 configured for the cache bench");
    let icnt_conflicts = gpu.mem().icnt_conflicts();
    let (tel_off_seconds, tel_on_seconds) = telemetry_ab(scale, true);
    CacheHierarchyBench {
        cycles: summary.stats.cycles,
        l1_hits,
        l1_misses,
        mshr_merges,
        mshr_stalls,
        l2_hits,
        l2_misses,
        icnt_conflicts,
        tel_off_seconds,
        tel_on_seconds,
        tel_overhead_pct: overhead_pct(tel_off_seconds, tel_on_seconds),
    }
}

struct CheckpointBench {
    snapshot_bytes: u64,
    encode_seconds: f64,
    write_seconds: f64,
    restore_seconds: f64,
}

/// Times checkpointing a mid-run fig-7 machine: snapshot encode, disk
/// write, and read + restore. The restored machine must land on the same
/// cycle as the original, otherwise the measurement is meaningless.
fn bench_checkpoint(scale: Scale) -> CheckpointBench {
    let mut gpu = gpu_for(Variant::Dynamic);
    let scene = scenes::conference(scale.scene);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    gpu.run(scale.cycles / 2).expect("fault-free benchmark run");

    let t = Instant::now();
    let snap = gpu.checkpoint().expect("snapshot encodes");
    let encode_seconds = t.elapsed().as_secs_f64();

    let path = std::env::temp_dir().join(format!("bench-sim-{}.ckpt", std::process::id()));
    let t = Instant::now();
    snap.write_to(&path).expect("snapshot writes");
    let write_seconds = t.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());

    let t = Instant::now();
    let back = Snapshot::read_from(&path).expect("snapshot reads back");
    let restored = Gpu::restore(&back).expect("snapshot restores");
    let restore_seconds = t.elapsed().as_secs_f64();
    assert_eq!(
        restored.now(),
        gpu.now(),
        "restore must land on the same cycle"
    );
    let _ = std::fs::remove_file(&path);

    CheckpointBench {
        snapshot_bytes,
        encode_seconds,
        write_seconds,
        restore_seconds,
    }
}

struct CampaignBench {
    jobs: usize,
    workers: usize,
    one_worker_seconds: f64,
    n_worker_seconds: f64,
    cache_hit_seconds: f64,
}

/// Times the full `repro campaign` artifact matrix (always at test
/// scale — the point is coordination overhead, not simulation time):
/// cold with 1 worker, cold with N workers, then warm from the result
/// cache. Returns `None` when the `repro` binary is not installed next
/// to `bench_sim`.
fn bench_campaign(host_cpus: usize) -> Option<CampaignBench> {
    let repro = std::env::current_exe().ok()?.with_file_name("repro");
    if !repro.exists() {
        eprintln!(
            "bench_sim: skipping campaign bench ({} not found)",
            repro.display()
        );
        return None;
    }
    let root = std::env::temp_dir().join(format!("bench-sim-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let timed = |workers: usize, dir: &str| -> Option<f64> {
        let start = Instant::now();
        let status = std::process::Command::new(&repro)
            .args(["campaign", "--scale", "test", "--workers"])
            .arg(workers.to_string())
            .arg("--campaign-dir")
            .arg(root.join(dir))
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .ok()?;
        status.success().then(|| start.elapsed().as_secs_f64())
    };
    let workers = host_cpus.clamp(1, 4);
    let one_worker_seconds = timed(1, "w1")?;
    let (n_worker_seconds, warm_dir) = if workers > 1 {
        (timed(workers, "wn")?, "wn")
    } else {
        (one_worker_seconds, "w1")
    };
    // Same campaign dir again: every job comes back from the cache.
    let cache_hit_seconds = timed(workers, warm_dir)?;
    let _ = std::fs::remove_dir_all(&root);
    Some(CampaignBench {
        jobs: experiments::campaign::artifacts().len(),
        workers,
        one_worker_seconds,
        n_worker_seconds,
        cache_hit_seconds,
    })
}

struct ServeBench {
    clients: usize,
    cold_jobs: usize,
    cold_seconds: f64,
    warm_requests: usize,
    warm_p50_ms: f64,
    warm_p99_ms: f64,
    warm_one_client_seconds: f64,
    warm_n_client_seconds: f64,
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Kills the served process if the bench bails out early.
struct ServerGuard(std::process::Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Times the `repro serve` front door (always at test scale — the point
/// is request overhead, not simulation time): the 12-artifact matrix
/// cold through admission + journal + workers, then warm-cache hit
/// round trips at 1 client and at N concurrent clients. Returns `None`
/// when the `repro` binary is not installed next to `bench_sim`.
fn bench_serve(host_cpus: usize) -> Option<ServeBench> {
    use experiments::serve::client::{self, ClientOpts};
    let repro = std::env::current_exe().ok()?.with_file_name("repro");
    if !repro.exists() {
        eprintln!(
            "bench_sim: skipping serve bench ({} not found)",
            repro.display()
        );
        return None;
    }
    let root = std::env::temp_dir().join(format!("bench-sim-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let clients = host_cpus.clamp(1, 4);
    let mut server = ServerGuard(
        std::process::Command::new(&repro)
            .args(["serve", "--scale", "test", "--workers"])
            .arg(clients.to_string())
            .arg("--serve-dir")
            .arg(&root)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .ok()?,
    );
    let endpoint = root.join("endpoint");
    let artifacts = experiments::campaign::artifacts();
    let mut opts = ClientOpts {
        server: client::read_endpoint(&endpoint, std::time::Duration::from_secs(30)).ok()?,
        endpoint_file: Some(endpoint),
        artifacts: artifacts.iter().map(|a| a.to_string()).collect(),
        scale_name: "test".to_string(),
        json: false,
        deadline_ms: None,
        concurrency: clients,
        out_dir: None,
        timeout: std::time::Duration::from_secs(600),
    };

    // Cold: every artifact computed fresh, N concurrent submitters.
    let start = Instant::now();
    client::run_workload(&opts).ok()?;
    let cold_seconds = start.elapsed().as_secs_f64();

    // Warm, 1 client: per-request submit → status → fetch latency on
    // cache hits; the sample feeds the percentiles.
    let warm_requests = 48;
    let mut latencies_ms = Vec::with_capacity(warm_requests);
    let start = Instant::now();
    for i in 0..warm_requests {
        let artifact = artifacts[i % artifacts.len()];
        let t = Instant::now();
        client::run_job(&opts, artifact).ok()?;
        latencies_ms.push(t.elapsed().as_secs_f64() * 1000.0);
    }
    let warm_one_client_seconds = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(f64::total_cmp);

    // Warm, N clients: same request count spread across submitter
    // threads.
    opts.artifacts = (0..warm_requests)
        .map(|i| artifacts[i % artifacts.len()].to_string())
        .collect();
    let start = Instant::now();
    client::run_workload(&opts).ok()?;
    let warm_n_client_seconds = start.elapsed().as_secs_f64();

    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    client::request_retry(&opts, "POST", "/drain", "", deadline).ok()?;
    let _ = server.0.wait();
    let _ = std::fs::remove_dir_all(&root);
    Some(ServeBench {
        clients,
        cold_jobs: artifacts.len(),
        cold_seconds,
        warm_requests,
        warm_p50_ms: percentile(&latencies_ms, 0.50),
        warm_p99_ms: percentile(&latencies_ms, 0.99),
        warm_one_client_seconds,
        warm_n_client_seconds,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "paper".to_string();
    let mut out = "BENCH_sim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i) {
                    Some(s) if Scale::parse(s).is_some() => scale_name.clone_from(s),
                    _ => {
                        eprintln!("usage: bench_sim [--scale paper|quick|test] [--out PATH]");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out.clone_from(p),
                    None => return ExitCode::from(2),
                }
            }
            _ => {
                eprintln!("usage: bench_sim [--scale paper|quick|test] [--out PATH]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let scale = Scale::parse(&scale_name).expect("validated above");
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut parallelisms = vec![1];
    if host_cpus > 1 {
        parallelisms.push(host_cpus);
    }
    let mut runs = Vec::new();
    for &p in &parallelisms {
        eprintln!("bench_sim: fig7 conference/dynamic, scale {scale_name}, parallel {p} ...");
        let r = run_once(p, scale, TelemetrySpec::metrics(), false);
        eprintln!(
            "  {} simulated cycles in {:.3} s  ({:.0} cycles/s)",
            r.cycles,
            r.wall_seconds,
            r.cycles_per_second()
        );
        runs.push(r);
    }
    // A 1-core host runs only the serial configuration: there is no
    // parallel measurement to compare, so the speedup is *unknown*, not
    // 1.000 — report `null` plus the reason instead of a fake ratio.
    let speedup = match (runs.first(), runs.last()) {
        (Some(base), Some(top)) if base.wall_seconds > 0.0 && runs.len() > 1 => {
            Some(base.wall_seconds / top.wall_seconds)
        }
        _ => None,
    };

    eprintln!("bench_sim: telemetry overhead (runtime-off vs windowed metrics) ...");
    let (tel_off, tel_on) = telemetry_ab(scale, false);
    let tel_overhead_pct = overhead_pct(tel_off, tel_on);
    eprintln!(
        "  off {tel_off:.3} s, metrics {tel_on:.3} s  ({tel_overhead_pct:+.1}% when enabled)"
    );

    eprintln!("bench_sim: cache-hierarchy run (16 KiB L1 + 512 KiB L2) ...");
    let cache = bench_cache_hierarchy(scale);
    eprintln!(
        "  {} cycles; L1 {:.1}% hit ({} merges, {} stalls), L2 {:.1}% hit, \
         {} icnt conflicts; telemetry {:+.1}% when enabled",
        cache.cycles,
        cache.l1_hit_rate() * 100.0,
        cache.mshr_merges,
        cache.mshr_stalls,
        cache.l2_hit_rate() * 100.0,
        cache.icnt_conflicts,
        cache.tel_overhead_pct
    );

    eprintln!("bench_sim: checkpoint write/restore overhead ...");
    let ckpt = bench_checkpoint(scale);
    eprintln!(
        "  {} snapshot bytes; encode {:.4} s, write {:.4} s, restore {:.4} s",
        ckpt.snapshot_bytes, ckpt.encode_seconds, ckpt.write_seconds, ckpt.restore_seconds
    );

    eprintln!("bench_sim: campaign throughput (12-job matrix, test scale) ...");
    let campaign = bench_campaign(host_cpus);
    if let Some(c) = &campaign {
        eprintln!(
            "  1 worker {:.3} s ({:.2} jobs/s), {} workers {:.3} s ({:.2} jobs/s), \
             warm cache {:.3} s ({:.2} jobs/s)",
            c.one_worker_seconds,
            c.jobs as f64 / c.one_worker_seconds,
            c.workers,
            c.n_worker_seconds,
            c.jobs as f64 / c.n_worker_seconds,
            c.cache_hit_seconds,
            c.jobs as f64 / c.cache_hit_seconds
        );
    }

    eprintln!("bench_sim: serve front-door overhead (12-job matrix + warm hits, test scale) ...");
    let serve = bench_serve(host_cpus);
    if let Some(s) = &serve {
        eprintln!(
            "  cold {:.3} s ({:.2} jobs/s, {} clients); warm hit p50 {:.1} ms / p99 {:.1} ms, \
             1 client {:.2} req/s, {} clients {:.2} req/s",
            s.cold_seconds,
            s.cold_jobs as f64 / s.cold_seconds,
            s.clients,
            s.warm_p50_ms,
            s.warm_p99_ms,
            s.warm_requests as f64 / s.warm_one_client_seconds,
            s.clients,
            s.warm_requests as f64 / s.warm_n_client_seconds
        );
    }

    eprintln!("bench_sim: per-workload SIMD efficiency (test scale) ...");
    let mut simd_sections: Vec<(&str, Vec<(String, f64)>)> = Vec::new();
    for w in experiments::workload::all() {
        if let Some(rows) = w.simd_efficiency(Scale::test()) {
            for (scenario, eff) in &rows {
                eprintln!("  {}/{scenario}: {:.1}%", w.id(), eff * 100.0);
            }
            simd_sections.push((w.id(), rows));
        }
    }

    // Where the event-driven speedup comes from: how much of the run was
    // fully idle (skipped in bulk) vs occupied, from the parallel-1 run
    // (the simulated numbers are bit-identical across parallelism).
    if let Some(r) = runs.first() {
        let skip_fraction = if r.cycles > 0 {
            r.skipped_cycles as f64 / r.cycles as f64
        } else {
            0.0
        };
        let occupancy = if r.sm_cycles > 0 {
            1.0 - r.idle_sm_cycles as f64 / r.sm_cycles as f64
        } else {
            0.0
        };
        eprintln!(
            "bench_sim: event loop: {} of {} cycles skipped ({:.1}% skip fraction, {} jumps), \
             SM occupancy {:.1}%",
            r.skipped_cycles,
            r.cycles,
            skip_fraction * 100.0,
            r.skip_events,
            occupancy * 100.0
        );
    }

    // Hand-rolled JSON: the offline serde shim has no serializer.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fig7-conference-dynamic\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"parallel\": {}, \"cycles\": {}, \"wall_seconds\": {:.6}, \
             \"sim_cycles_per_second\": {:.1}}}{}\n",
            r.parallel,
            r.cycles,
            r.wall_seconds,
            r.cycles_per_second(),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    match speedup {
        Some(s) => json.push_str(&format!("  \"speedup\": {s:.3},\n")),
        None => {
            json.push_str("  \"speedup\": null,\n");
            json.push_str(&format!(
                "  \"skipped_reason\": \"host has {host_cpus} cpu(s); \
                 only the serial configuration ran, so there is no parallel \
                 run to compare\",\n"
            ));
        }
    }
    if let Some(r) = runs.first() {
        let skip_fraction = if r.cycles > 0 {
            r.skipped_cycles as f64 / r.cycles as f64
        } else {
            0.0
        };
        let occupancy = if r.sm_cycles > 0 {
            1.0 - r.idle_sm_cycles as f64 / r.sm_cycles as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "  \"event_loop\": {{\"cycles\": {}, \"skipped_cycles\": {}, \
             \"skip_events\": {}, \"skip_fraction\": {:.4}, \
             \"idle_sm_cycles\": {}, \"sm_cycles\": {}, \"sm_occupancy\": {:.4}}},\n",
            r.cycles,
            r.skipped_cycles,
            r.skip_events,
            skip_fraction,
            r.idle_sm_cycles,
            r.sm_cycles,
            occupancy
        ));
    }
    json.push_str(&format!(
        "  \"telemetry\": {{\"off_seconds\": {tel_off:.6}, \"on_seconds\": {tel_on:.6}, \
         \"enabled_overhead_pct\": {tel_overhead_pct:.2}}},\n",
    ));
    json.push_str(&format!(
        "  \"cache_hierarchy\": {{\"l1_bytes\": {}, \"l2_bytes\": {}, \"cycles\": {}, \
         \"l1_hits\": {}, \"l1_misses\": {}, \"l1_hit_rate\": {:.4}, \
         \"mshr_merges\": {}, \"mshr_stalls\": {}, \
         \"l2_hits\": {}, \"l2_misses\": {}, \"l2_hit_rate\": {:.4}, \
         \"icnt_conflicts\": {}, \"sim_cycles_per_second\": {:.1}, \
         \"telemetry\": {{\"off_seconds\": {:.6}, \"on_seconds\": {:.6}, \
         \"enabled_overhead_pct\": {:.2}}}}},\n",
        16 * 1024,
        512 * 1024,
        cache.cycles,
        cache.l1_hits,
        cache.l1_misses,
        cache.l1_hit_rate(),
        cache.mshr_merges,
        cache.mshr_stalls,
        cache.l2_hits,
        cache.l2_misses,
        cache.l2_hit_rate(),
        cache.icnt_conflicts,
        cache.cycles_per_second(),
        cache.tel_off_seconds,
        cache.tel_on_seconds,
        cache.tel_overhead_pct
    ));
    json.push_str(&format!(
        "  \"checkpoint\": {{\"snapshot_bytes\": {}, \"encode_seconds\": {:.6}, \
         \"write_seconds\": {:.6}, \"restore_seconds\": {:.6}}},\n",
        ckpt.snapshot_bytes, ckpt.encode_seconds, ckpt.write_seconds, ckpt.restore_seconds
    ));
    json.push_str("  \"workload_simd_efficiency\": {\n");
    for (i, (id, rows)) in simd_sections.iter().enumerate() {
        json.push_str(&format!("    \"{id}\": {{"));
        for (j, (scenario, eff)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "\"{scenario}\": {eff:.4}{}",
                if j + 1 < rows.len() { ", " } else { "" }
            ));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 < simd_sections.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    match &campaign {
        Some(c) => json.push_str(&format!(
            "  \"campaign\": {{\"scale\": \"test\", \"jobs\": {}, \"workers\": {}, \
             \"one_worker_seconds\": {:.6}, \"one_worker_jobs_per_second\": {:.3}, \
             \"n_worker_seconds\": {:.6}, \"n_worker_jobs_per_second\": {:.3}, \
             \"cache_hit_seconds\": {:.6}, \"cache_hit_jobs_per_second\": {:.3}}},\n",
            c.jobs,
            c.workers,
            c.one_worker_seconds,
            c.jobs as f64 / c.one_worker_seconds,
            c.n_worker_seconds,
            c.jobs as f64 / c.n_worker_seconds,
            c.cache_hit_seconds,
            c.jobs as f64 / c.cache_hit_seconds
        )),
        None => json.push_str("  \"campaign\": null,\n"),
    }
    match &serve {
        Some(s) => json.push_str(&format!(
            "  \"serve\": {{\"scale\": \"test\", \"clients\": {}, \
             \"cold_jobs\": {}, \"cold_seconds\": {:.6}, \"cold_jobs_per_second\": {:.3}, \
             \"warm_requests\": {}, \"warm_hit_p50_ms\": {:.3}, \"warm_hit_p99_ms\": {:.3}, \
             \"warm_one_client_requests_per_second\": {:.3}, \
             \"warm_n_client_requests_per_second\": {:.3}}}\n",
            s.clients,
            s.cold_jobs,
            s.cold_seconds,
            s.cold_jobs as f64 / s.cold_seconds,
            s.warm_requests,
            s.warm_p50_ms,
            s.warm_p99_ms,
            s.warm_requests as f64 / s.warm_one_client_seconds,
            s.warm_requests as f64 / s.warm_n_client_seconds
        )),
        None => json.push_str("  \"serve\": null\n"),
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_sim: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
