//! `bench_sim` — wall-clock benchmark of the two-phase simulator.
//!
//! Times a fixed fig-7 run (dynamic μ-kernel render of the conference
//! scene) at phase-A parallelism 1 and at every host core, then writes
//! `BENCH_sim.json` with simulated cycles, wall seconds, and simulation
//! throughput for each run. Simulated results are bit-identical across
//! the runs — only wall-clock time changes.
//!
//! ```text
//! bench_sim [--scale paper|quick|test] [--out PATH]
//! ```

use experiments::{gpu_for, Scale, Variant};
use raytrace::scenes;
use rt_kernels::render::RenderSetup;
use std::process::ExitCode;
use std::time::Instant;

struct BenchRun {
    parallel: usize,
    cycles: u64,
    wall_seconds: f64,
}

impl BenchRun {
    fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One timed fig-7 render. Returns simulated cycles and wall seconds for
/// the `Gpu::run` call only (scene build and upload are untimed).
fn run_once(parallel: usize, scale: Scale) -> BenchRun {
    let mut gpu = gpu_for(Variant::Dynamic);
    gpu.set_parallelism(parallel);
    let scene = scenes::conference(scale.scene);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    let start = Instant::now();
    let summary = gpu.run(scale.cycles).expect("fault-free benchmark run");
    BenchRun {
        parallel,
        cycles: summary.stats.cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "paper".to_string();
    let mut out = "BENCH_sim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i) {
                    Some(s) if Scale::parse(s).is_some() => scale_name.clone_from(s),
                    _ => {
                        eprintln!("usage: bench_sim [--scale paper|quick|test] [--out PATH]");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out.clone_from(p),
                    None => return ExitCode::from(2),
                }
            }
            _ => {
                eprintln!("usage: bench_sim [--scale paper|quick|test] [--out PATH]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let scale = Scale::parse(&scale_name).expect("validated above");
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut parallelisms = vec![1];
    if host_cpus > 1 {
        parallelisms.push(host_cpus);
    }
    let mut runs = Vec::new();
    for &p in &parallelisms {
        eprintln!("bench_sim: fig7 conference/dynamic, scale {scale_name}, parallel {p} ...");
        let r = run_once(p, scale);
        eprintln!(
            "  {} simulated cycles in {:.3} s  ({:.0} cycles/s)",
            r.cycles,
            r.wall_seconds,
            r.cycles_per_second()
        );
        runs.push(r);
    }
    let speedup = match (runs.first(), runs.last()) {
        (Some(base), Some(top)) if base.wall_seconds > 0.0 && runs.len() > 1 => {
            base.wall_seconds / top.wall_seconds
        }
        _ => 1.0,
    };

    // Hand-rolled JSON: the offline serde shim has no serializer.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fig7-conference-dynamic\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"parallel\": {}, \"cycles\": {}, \"wall_seconds\": {:.6}, \
             \"sim_cycles_per_second\": {:.1}}}{}\n",
            r.parallel,
            r.cycles,
            r.wall_seconds,
            r.cycles_per_second(),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup\": {speedup:.3}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_sim: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
