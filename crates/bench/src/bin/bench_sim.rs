//! `bench_sim` — wall-clock benchmark of the two-phase simulator.
//!
//! Times a fixed fig-7 run (dynamic μ-kernel render of the conference
//! scene) at phase-A parallelism 1 and at every host core, then writes
//! `BENCH_sim.json` with simulated cycles, wall seconds, and simulation
//! throughput for each run. Simulated results are bit-identical across
//! the runs — only wall-clock time changes.
//!
//! Also measures checkpoint overhead (`DESIGN.md` §9): snapshot encode,
//! disk write, and read + restore of a mid-run machine state, so the
//! cost of `--checkpoint-every` shows up in the recorded numbers.
//!
//! Also measures telemetry overhead (`DESIGN.md` §10): the same run with
//! telemetry disabled at runtime against one with windowed metrics on,
//! so the probe cost the experiment drivers pay is a recorded number
//! (the budget is < 5%).
//!
//! ```text
//! bench_sim [--scale paper|quick|test] [--out PATH]
//! ```

use experiments::{gpu_for, gpu_for_with, Scale, Variant};
use raytrace::scenes;
use rt_kernels::render::RenderSetup;
use simt_sim::{Gpu, Snapshot, TelemetrySpec};
use std::process::ExitCode;
use std::time::Instant;

struct BenchRun {
    parallel: usize,
    cycles: u64,
    wall_seconds: f64,
}

impl BenchRun {
    fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One timed fig-7 render. Returns simulated cycles and wall seconds for
/// the `Gpu::run` call only (scene build and upload are untimed).
fn run_once(parallel: usize, scale: Scale, telemetry: TelemetrySpec) -> BenchRun {
    let mut gpu = gpu_for_with(Variant::Dynamic, telemetry).with_parallelism(parallel);
    let scene = scenes::conference(scale.scene);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    let start = Instant::now();
    let summary = gpu.run(scale.cycles).expect("fault-free benchmark run");
    BenchRun {
        parallel,
        cycles: summary.stats.cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

struct CheckpointBench {
    snapshot_bytes: u64,
    encode_seconds: f64,
    write_seconds: f64,
    restore_seconds: f64,
}

/// Times checkpointing a mid-run fig-7 machine: snapshot encode, disk
/// write, and read + restore. The restored machine must land on the same
/// cycle as the original, otherwise the measurement is meaningless.
fn bench_checkpoint(scale: Scale) -> CheckpointBench {
    let mut gpu = gpu_for(Variant::Dynamic);
    let scene = scenes::conference(scale.scene);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    gpu.run(scale.cycles / 2).expect("fault-free benchmark run");

    let t = Instant::now();
    let snap = gpu.checkpoint().expect("snapshot encodes");
    let encode_seconds = t.elapsed().as_secs_f64();

    let path = std::env::temp_dir().join(format!("bench-sim-{}.ckpt", std::process::id()));
    let t = Instant::now();
    snap.write_to(&path).expect("snapshot writes");
    let write_seconds = t.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());

    let t = Instant::now();
    let back = Snapshot::read_from(&path).expect("snapshot reads back");
    let restored = Gpu::restore(&back).expect("snapshot restores");
    let restore_seconds = t.elapsed().as_secs_f64();
    assert_eq!(
        restored.now(),
        gpu.now(),
        "restore must land on the same cycle"
    );
    let _ = std::fs::remove_file(&path);

    CheckpointBench {
        snapshot_bytes,
        encode_seconds,
        write_seconds,
        restore_seconds,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "paper".to_string();
    let mut out = "BENCH_sim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i) {
                    Some(s) if Scale::parse(s).is_some() => scale_name.clone_from(s),
                    _ => {
                        eprintln!("usage: bench_sim [--scale paper|quick|test] [--out PATH]");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out.clone_from(p),
                    None => return ExitCode::from(2),
                }
            }
            _ => {
                eprintln!("usage: bench_sim [--scale paper|quick|test] [--out PATH]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let scale = Scale::parse(&scale_name).expect("validated above");
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut parallelisms = vec![1];
    if host_cpus > 1 {
        parallelisms.push(host_cpus);
    }
    let mut runs = Vec::new();
    for &p in &parallelisms {
        eprintln!("bench_sim: fig7 conference/dynamic, scale {scale_name}, parallel {p} ...");
        let r = run_once(p, scale, TelemetrySpec::metrics());
        eprintln!(
            "  {} simulated cycles in {:.3} s  ({:.0} cycles/s)",
            r.cycles,
            r.wall_seconds,
            r.cycles_per_second()
        );
        runs.push(r);
    }
    let speedup = match (runs.first(), runs.last()) {
        (Some(base), Some(top)) if base.wall_seconds > 0.0 && runs.len() > 1 => {
            base.wall_seconds / top.wall_seconds
        }
        _ => 1.0,
    };

    eprintln!("bench_sim: telemetry overhead (runtime-off vs windowed metrics) ...");
    // Best-of-3 per configuration: single wall-clock shots on a loaded
    // host swing by more than the effect being measured.
    let best = |telemetry: fn() -> TelemetrySpec| {
        (0..3)
            .map(|_| run_once(1, scale, telemetry()).wall_seconds)
            .fold(f64::INFINITY, f64::min)
    };
    let tel_off = best(TelemetrySpec::off);
    let tel_on = best(TelemetrySpec::metrics);
    let tel_overhead_pct = if tel_off > 0.0 {
        (tel_on / tel_off - 1.0) * 100.0
    } else {
        0.0
    };
    eprintln!(
        "  off {tel_off:.3} s, metrics {tel_on:.3} s  ({tel_overhead_pct:+.1}% when enabled)"
    );

    eprintln!("bench_sim: checkpoint write/restore overhead ...");
    let ckpt = bench_checkpoint(scale);
    eprintln!(
        "  {} snapshot bytes; encode {:.4} s, write {:.4} s, restore {:.4} s",
        ckpt.snapshot_bytes, ckpt.encode_seconds, ckpt.write_seconds, ckpt.restore_seconds
    );

    // Hand-rolled JSON: the offline serde shim has no serializer.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"fig7-conference-dynamic\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"parallel\": {}, \"cycles\": {}, \"wall_seconds\": {:.6}, \
             \"sim_cycles_per_second\": {:.1}}}{}\n",
            r.parallel,
            r.cycles,
            r.wall_seconds,
            r.cycles_per_second(),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"telemetry\": {{\"off_seconds\": {tel_off:.6}, \"on_seconds\": {tel_on:.6}, \
         \"enabled_overhead_pct\": {tel_overhead_pct:.2}}},\n",
    ));
    json.push_str(&format!(
        "  \"checkpoint\": {{\"snapshot_bytes\": {}, \"encode_seconds\": {:.6}, \
         \"write_seconds\": {:.6}, \"restore_seconds\": {:.6}}}\n",
        ckpt.snapshot_bytes, ckpt.encode_seconds, ckpt.write_seconds, ckpt.restore_seconds
    ));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_sim: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
