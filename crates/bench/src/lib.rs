//! Criterion benchmark harness (bench targets live in `benches/`).
