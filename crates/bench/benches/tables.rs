//! Criterion benchmarks regenerating the paper's tables.
//!
//! Each bench measures the cost of producing one table and, as a side
//! effect, sanity-checks its invariants; the recorded paper-scale numbers
//! live in EXPERIMENTS.md (regenerate with `repro <table> --scale paper`).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::Scale;
use experiments::{table1, table2, table3, table4};
use std::hint::black_box;

fn bench_table1_config(c: &mut Criterion) {
    c.bench_function("table1_config", |b| {
        b.iter(|| {
            let t = table1::run();
            assert_eq!(t.processor_cores, 30);
            assert_eq!(t.warp_size, 32);
            black_box(t)
        })
    });
}

fn bench_table2_resources(c: &mut Criterion) {
    c.bench_function("table2_resources", |b| {
        b.iter(|| {
            let t = table2::run();
            assert_eq!(t.ukernel.spawn_bytes, 48);
            black_box(t)
        })
    });
}

fn bench_table3_scenes(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_scenes");
    g.sample_size(10);
    g.bench_function("build_trees", |b| {
        b.iter(|| {
            let t = table3::run(Scale::test());
            assert_eq!(t.rows.len(), 3);
            black_box(t)
        })
    });
    g.finish();
}

fn bench_table4_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_bandwidth");
    g.sample_size(10);
    g.bench_function("frame_analytics", |b| {
        b.iter(|| {
            let t = table4::run(Scale::test());
            assert!(t.mean_total_increase() > 1.0);
            black_box(t)
        })
    });
    g.finish();
}

criterion_group!(
    tables,
    bench_table1_config,
    bench_table2_resources,
    bench_table3_scenes,
    bench_table4_bandwidth
);
criterion_main!(tables);
