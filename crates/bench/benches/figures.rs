//! Criterion benchmarks regenerating the paper's figures.
//!
//! Figure regeneration runs the cycle-level simulator, so these benches
//! use the reduced test scale with small sample counts; `repro <fig>
//! --scale paper` produces the recorded numbers in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::Scale;
use experiments::{fig10, fig2, fig3, fig7, fig8, fig9};
use std::hint::black_box;

fn scale() -> Scale {
    Scale::test()
}

fn bench_fig2_single_warp(c: &mut Criterion) {
    c.bench_function("fig2_single_warp_loop", |b| {
        b.iter(|| {
            let f = fig2::run().expect("fig2 kernel assembles");
            assert!(f.efficiency > 0.0);
            black_box(f)
        })
    });
}

fn bench_fig3_traditional_divergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_traditional_divergence");
    g.sample_size(10);
    g.bench_function("conference", |b| b.iter(|| black_box(fig3::run(scale()))));
    g.finish();
}

fn bench_fig7_dynamic_divergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_dynamic_divergence");
    g.sample_size(10);
    g.bench_function("conference", |b| {
        b.iter(|| {
            let f = fig7::run(scale());
            assert!(f.dynamic.mean_active_lanes >= f.traditional.mean_active_lanes);
            black_box(f)
        })
    });
    g.finish();
}

fn bench_fig8_performance(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_perf");
    g.sample_size(10);
    g.bench_function("all_scenes", |b| {
        b.iter(|| {
            let f = fig8::run(scale());
            assert_eq!(f.points.len(), 9);
            black_box(f)
        })
    });
    g.finish();
}

fn bench_fig9_bank_conflicts(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_bank_conflicts");
    g.sample_size(10);
    g.bench_function("conference", |b| b.iter(|| black_box(fig9::run(scale()))));
    g.finish();
}

fn bench_fig10_branching(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_branching");
    g.sample_size(10);
    g.bench_function("vs_mimd", |b| {
        b.iter(|| {
            let f = fig10::run(scale());
            assert_eq!(f.points.len(), 5);
            black_box(f)
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig2_single_warp,
    bench_fig3_traditional_divergence,
    bench_fig7_dynamic_divergence,
    bench_fig8_performance,
    bench_fig9_bank_conflicts,
    bench_fig10_branching
);
criterion_main!(figures);
