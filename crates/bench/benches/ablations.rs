//! Ablations of the design choices DESIGN.md calls out: texture cache,
//! new-warp FIFO depth, launch block size, and the spawn bank-conflict
//! model. Each bench runs a short render under the ablated configuration;
//! the IPC deltas are what matter (printed once per run).

use criterion::{criterion_group, criterion_main, Criterion};
use dmk_core::DmkConfig;
use raytrace::scenes::{self, SceneScale};
use rt_kernels::render::RenderSetup;
use simt_sim::{Gpu, GpuConfig, RunSummary};
use std::hint::black_box;

fn run_with(cfg: GpuConfig, dynamic: bool, block: u32) -> RunSummary {
    let scene = scenes::conference(SceneScale::Tiny);
    let mut gpu = Gpu::builder(cfg).build();
    let setup = RenderSetup::upload(&mut gpu, &scene, 32, 32);
    if dynamic {
        setup.launch_ukernel(&mut gpu, block);
    } else {
        setup.launch_traditional(&mut gpu, block);
    }
    gpu.run(30_000).expect("fault-free run")
}

fn bench_texture_cache_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_texture_cache");
    g.sample_size(10);
    g.bench_function("with_cache", |b| {
        b.iter(|| black_box(run_with(GpuConfig::fx5800(), false, 64)))
    });
    g.bench_function("without_cache", |b| {
        let mut cfg = GpuConfig::fx5800();
        cfg.mem.tex_cache_bytes = 0;
        b.iter(|| black_box(run_with(cfg.clone(), false, 64)))
    });
    g.finish();
}

fn bench_fifo_depth_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fifo_depth");
    g.sample_size(10);
    for depth in [4usize, 32, 256] {
        g.bench_function(&format!("fifo_{depth}"), |b| {
            let dmk = DmkConfig {
                fifo_capacity: depth,
                ..DmkConfig::paper()
            };
            let cfg = GpuConfig::fx5800_dmk(dmk);
            b.iter(|| black_box(run_with(cfg.clone(), true, 64)))
        });
    }
    g.finish();
}

fn bench_block_size_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_block_size");
    g.sample_size(10);
    for block in [32u32, 64, 128] {
        g.bench_function(&format!("block_{block}"), |b| {
            b.iter(|| black_box(run_with(GpuConfig::fx5800(), false, block)))
        });
    }
    g.finish();
}

fn bench_spawn_conflicts_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_spawn_conflicts");
    g.sample_size(10);
    for conflicts in [false, true] {
        g.bench_function(&format!("conflicts_{conflicts}"), |b| {
            let mut cfg = GpuConfig::fx5800_dmk(DmkConfig::paper());
            cfg.mem.spawn_bank_conflicts = conflicts;
            b.iter(|| black_box(run_with(cfg.clone(), true, 64)))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_texture_cache_ablation,
    bench_fifo_depth_ablation,
    bench_block_size_ablation,
    bench_spawn_conflicts_ablation
);
criterion_main!(ablations);
