//! Microbenchmarks of the substrates: assembler throughput, kd-tree build
//! and traversal, warp-formation hardware, memory coalescing, and raw
//! simulator cycle rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dmk_core::{DmkConfig, WarpFormation};
use raytrace::scenes::{self, SceneScale};
use raytrace::KdTree;
use rt_kernels::render::build_rays;
use simt_mem::coalesce_segments;
use std::hint::black_box;

fn bench_assembler(c: &mut Criterion) {
    let src = rt_kernels::ukernel::source();
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("ukernel_program", |b| {
        b.iter(|| black_box(simt_isa::assemble(&src).expect("assembles")))
    });
    g.finish();
}

fn bench_kdtree_build(c: &mut Criterion) {
    let scene = scenes::conference(SceneScale::Small);
    let mut g = c.benchmark_group("kdtree");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scene.triangles.len() as u64));
    g.bench_function("build_small_conference", |b| {
        b.iter(|| black_box(KdTree::build(&scene.triangles)))
    });
    g.finish();
}

fn bench_host_traversal(c: &mut Criterion) {
    let scene = scenes::conference(SceneScale::Small);
    let tree = KdTree::build(&scene.triangles);
    let rays = build_rays(&scene, 64, 64);
    let mut g = c.benchmark_group("traversal");
    g.throughput(Throughput::Elements(rays.len() as u64));
    g.bench_function("host_trace_64x64", |b| {
        b.iter(|| {
            let hits: usize = rays.iter().filter_map(|r| tree.intersect(r)).count();
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_warp_formation(c: &mut Criterion) {
    let cfg = DmkConfig::paper();
    let mut g = c.benchmark_group("warp_formation");
    g.throughput(Throughput::Elements(32));
    g.bench_function("spawn_full_warp", |b| {
        let mut wf = WarpFormation::new(&cfg);
        b.iter(|| {
            let out = wf.spawn(10, 32).expect("spawn");
            if let Some(w) = wf.pop_ready() {
                wf.release_block(w.base_addr);
            }
            black_box(out)
        })
    });
    g.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    let coalesced: Vec<u32> = (0..32).map(|i| i * 4).collect();
    let scattered: Vec<u32> = (0..32).map(|i| i * 4096).collect();
    let mut g = c.benchmark_group("coalescing");
    g.bench_function("coherent_warp", |b| {
        b.iter(|| black_box(coalesce_segments(&coalesced, 4, 32)))
    });
    g.bench_function("scattered_warp", |b| {
        b.iter(|| black_box(coalesce_segments(&scattered, 4, 32)))
    });
    g.finish();
}

fn bench_simulator_cycle_rate(c: &mut Criterion) {
    use rt_kernels::render::RenderSetup;
    use simt_sim::{Gpu, GpuConfig};
    let scene = scenes::conference(SceneScale::Tiny);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let cycles = 20_000u64;
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("cycles_per_second_pdom", |b| {
        b.iter(|| {
            let mut gpu = Gpu::builder(GpuConfig::fx5800()).build();
            let setup = RenderSetup::upload(&mut gpu, &scene, 32, 32);
            setup.launch_traditional(&mut gpu, 64);
            black_box(gpu.run(cycles))
        })
    });
    g.finish();
}

criterion_group!(
    substrate,
    bench_assembler,
    bench_kdtree_build,
    bench_host_traversal,
    bench_warp_formation,
    bench_coalescing,
    bench_simulator_cycle_rate
);
criterion_main!(substrate);
