//! Table IV — memory bandwidth required to draw a single image.
//!
//! Like the paper, these values are **analytic**: computed from the number
//! of down-traversals and intersection tests needed for one frame (counted
//! by the instrumented host traversal), without caching. The dynamic
//! variant adds the μ-kernel state traffic: every μ-kernel invocation
//! restores 48 bytes of state plus a 4-byte metadata pointer and saves the
//! same amount back.

use crate::runner::Scale;
use raytrace::{scenes, KdTree};
use rt_kernels::render::build_rays;
use serde::Serialize;
use std::fmt;

/// Bytes per kd-node fetch.
const NODE_BYTES: u64 = 16;
/// Bytes per intersection test (4 B reference + 48 B Wald record).
const TEST_BYTES: u64 = 52;
/// Bytes restored per μ-kernel invocation (48 B state + 4 B pointer).
const STATE_RESTORE_BYTES: u64 = 52;
/// Bytes saved per μ-kernel invocation (48 B state + 4 B metadata).
const STATE_SAVE_BYTES: u64 = 52;
/// Bytes written per finished ray (hit t + triangle id).
const RESULT_BYTES: u64 = 8;

/// One benchmark's traditional/dynamic bandwidth pair, in bytes.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthRow {
    /// Scene name.
    pub scene: &'static str,
    /// Down-traversals for the frame.
    pub node_visits: u64,
    /// Intersection tests for the frame.
    pub tri_tests: u64,
    /// μ-kernel invocations for the frame.
    pub invocations: u64,
    /// Traditional kernel bytes read.
    pub traditional_read: u64,
    /// Traditional kernel bytes written.
    pub traditional_write: u64,
    /// Dynamic μ-kernel bytes read.
    pub dynamic_read: u64,
    /// Dynamic μ-kernel bytes written.
    pub dynamic_write: u64,
}

impl BandwidthRow {
    /// Total traditional bytes.
    pub fn traditional_total(&self) -> u64 {
        self.traditional_read + self.traditional_write
    }

    /// Total dynamic bytes.
    pub fn dynamic_total(&self) -> u64 {
        self.dynamic_read + self.dynamic_write
    }
}

/// The regenerated Table IV.
#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    /// One row per scene.
    pub rows: Vec<BandwidthRow>,
}

impl Table4 {
    /// Average read-bandwidth increase of dynamic over traditional
    /// (the paper reports 4.4×).
    pub fn mean_read_increase(&self) -> f64 {
        let s: f64 = self
            .rows
            .iter()
            .map(|r| r.dynamic_read as f64 / r.traditional_read.max(1) as f64)
            .sum();
        s / self.rows.len().max(1) as f64
    }

    /// Average total-bandwidth increase (the paper reports 7.3×).
    pub fn mean_total_increase(&self) -> f64 {
        let s: f64 = self
            .rows
            .iter()
            .map(|r| r.dynamic_total() as f64 / r.traditional_total().max(1) as f64)
            .sum();
        s / self.rows.len().max(1) as f64
    }
}

/// Computes the table by tracing one full frame per scene on the host.
pub fn run(scale: Scale) -> Table4 {
    let mut rows = Vec::new();
    for scene in scenes::all(scale.scene) {
        let tree = KdTree::build(&scene.triangles);
        let rays = build_rays(&scene, scale.resolution, scale.resolution);
        let mut nodes = 0u64;
        let mut tests = 0u64;
        let mut leaves = 0u64;
        for r in &rays {
            let (_, c) = tree.intersect_counted(r);
            nodes += c.node_visits;
            tests += c.tri_tests;
            leaves += c.leaf_visits;
        }
        let nrays = rays.len() as u64;
        // One μ-kernel invocation per down-traversal step, per test, per
        // pop (one per leaf visited), plus the launch kernel per ray.
        let invocations = nodes + tests + leaves + nrays;
        let traditional_read = nodes * NODE_BYTES + tests * TEST_BYTES;
        let traditional_write = nrays * RESULT_BYTES;
        rows.push(BandwidthRow {
            scene: scene.name,
            node_visits: nodes,
            tri_tests: tests,
            invocations,
            traditional_read,
            traditional_write,
            dynamic_read: traditional_read + invocations * STATE_RESTORE_BYTES,
            dynamic_write: traditional_write + invocations * STATE_SAVE_BYTES,
        });
    }
    Table4 { rows }
}

fn mb(b: u64) -> f64 {
    b as f64 / 1e6
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table IV — memory bandwidth per image (no caching), MB")?;
        writeln!(
            f,
            "  {:<26} {:>10} {:>10} {:>10}",
            "benchmark", "reading", "writing", "total"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<26} {:>10.1} {:>10.2} {:>10.1}",
                format!("{} Traditional", r.scene),
                mb(r.traditional_read),
                mb(r.traditional_write),
                mb(r.traditional_total())
            )?;
            writeln!(
                f,
                "  {:<26} {:>10.1} {:>10.2} {:>10.1}",
                format!("{} Dynamic", r.scene),
                mb(r.dynamic_read),
                mb(r.dynamic_write),
                mb(r.dynamic_total())
            )?;
        }
        writeln!(
            f,
            "  mean read increase:  {:.1}x (paper: 4.4x)",
            self.mean_read_increase()
        )?;
        write!(
            f,
            "  mean total increase: {:.1}x (paper: 7.3x)",
            self.mean_total_increase()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_always_exceeds_traditional() {
        let t = run(Scale::test());
        assert_eq!(t.rows.len(), 3);
        for r in &t.rows {
            assert!(r.dynamic_read > r.traditional_read, "{}", r.scene);
            assert!(r.dynamic_write > r.traditional_write, "{}", r.scene);
            assert!(r.node_visits > 0);
            assert!(r.tri_tests > 0);
        }
    }

    #[test]
    fn increases_have_paper_like_magnitude() {
        let t = run(Scale::test());
        // The paper reports 4.4x read / 7.3x total; the shape requirement
        // is a severalfold increase with total > read.
        assert!(
            t.mean_read_increase() > 1.5,
            "read {}",
            t.mean_read_increase()
        );
        assert!(
            t.mean_total_increase() > t.mean_read_increase(),
            "write amplification must push the total ratio higher"
        );
    }

    #[test]
    fn traditional_write_is_results_only() {
        let t = run(Scale::test());
        for r in &t.rows {
            assert_eq!(r.traditional_write, 16 * 16 * 8);
        }
    }
}
