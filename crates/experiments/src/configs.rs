//! The machine variants compared in the paper's evaluation.

use dmk_core::DmkConfig;
use simt_sim::{Gpu, GpuConfig};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide phase-A parallelism applied to every GPU built by
/// [`gpu_for`]. Results are bit-identical at every setting (see
/// `simt_sim::Gpu::set_parallelism`); this trades wall-clock time only,
/// so a plain process-global is safe for the experiment drivers.
static PARALLELISM: AtomicUsize = AtomicUsize::new(1);

/// Sets the phase-A worker-thread count used by [`gpu_for`] (clamped ≥ 1).
pub fn set_parallelism(n: usize) {
    PARALLELISM.store(n.max(1), Ordering::Relaxed);
}

/// The current phase-A worker-thread count used by [`gpu_for`].
pub fn parallelism() -> usize {
    PARALLELISM.load(Ordering::Relaxed)
}

/// One evaluated machine configuration (paper §VI/§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Traditional kernel, PDOM branching, block scheduling — the
    /// "traditional SIMT hardware" baseline (FX5800 behaviour).
    PdomBlock,
    /// Traditional kernel, PDOM branching, warp-granular scheduling.
    PdomWarp,
    /// Traditional kernel, PDOM, warp scheduling, ideal memory (Fig. 10).
    PdomWarpIdeal,
    /// Dynamic μ-kernels, no spawn-memory bank conflicts (Figs. 7/8/10).
    Dynamic,
    /// Dynamic μ-kernels with spawn-memory bank conflicts (Fig. 9).
    DynamicConflicts,
    /// Dynamic μ-kernels with ideal memory (Fig. 10 "potential").
    DynamicIdeal,
}

impl Variant {
    /// All variants, in presentation order.
    pub const ALL: [Variant; 6] = [
        Variant::PdomBlock,
        Variant::PdomWarp,
        Variant::PdomWarpIdeal,
        Variant::Dynamic,
        Variant::DynamicConflicts,
        Variant::DynamicIdeal,
    ];

    /// Whether this variant runs the μ-kernel program.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            Variant::Dynamic | Variant::DynamicConflicts | Variant::DynamicIdeal
        )
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::PdomBlock => "PDOM Block",
            Variant::PdomWarp => "PDOM Warp",
            Variant::PdomWarpIdeal => "PDOM Warp (ideal mem)",
            Variant::Dynamic => "Dynamic",
            Variant::DynamicConflicts => "Dynamic (bank conflicts)",
            Variant::DynamicIdeal => "Dynamic (ideal mem)",
        };
        f.write_str(s)
    }
}

/// Builds the simulated GPU for a variant (paper Table I machine).
pub fn gpu_for(variant: Variant) -> Gpu {
    let mut cfg = match variant {
        Variant::PdomBlock => GpuConfig::fx5800(),
        Variant::PdomWarp | Variant::PdomWarpIdeal => GpuConfig::fx5800_warp_sched(),
        Variant::Dynamic | Variant::DynamicConflicts | Variant::DynamicIdeal => {
            GpuConfig::fx5800_dmk(DmkConfig::paper())
        }
    };
    match variant {
        Variant::PdomWarpIdeal | Variant::DynamicIdeal => cfg.mem.ideal = true,
        Variant::DynamicConflicts => cfg.mem.spawn_bank_conflicts = true,
        _ => {}
    }
    let mut gpu = Gpu::new(cfg);
    gpu.set_parallelism(parallelism());
    gpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_sim::SchedulingModel;

    #[test]
    fn variants_configure_expected_machines() {
        let g = gpu_for(Variant::PdomBlock);
        assert_eq!(g.config().scheduling, SchedulingModel::Block);
        assert!(g.config().dmk.is_none());

        let g = gpu_for(Variant::PdomWarp);
        assert_eq!(g.config().scheduling, SchedulingModel::Warp);

        let g = gpu_for(Variant::Dynamic);
        assert!(g.config().dmk.is_some());
        assert!(!g.config().mem.spawn_bank_conflicts);

        let g = gpu_for(Variant::DynamicConflicts);
        assert!(g.config().mem.spawn_bank_conflicts);

        let g = gpu_for(Variant::DynamicIdeal);
        assert!(g.config().mem.ideal);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Variant::PdomBlock.to_string(), "PDOM Block");
        assert_eq!(Variant::Dynamic.to_string(), "Dynamic");
    }
}
