//! The machine variants compared in the paper's evaluation.

use dmk_core::DmkConfig;
use simt_sim::{Gpu, GpuConfig, TelemetrySpec};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Process-wide phase-A parallelism applied to every GPU built by
/// [`gpu_for`]. Results are bit-identical at every setting (see
/// `simt_sim::GpuBuilder::parallelism`); this trades wall-clock time
/// only, so a plain process-global is safe for the experiment drivers.
static PARALLELISM: AtomicUsize = AtomicUsize::new(1);

/// Process-wide trace switch (`repro --trace`): machines built by
/// [`gpu_for`] additionally fill per-SM event rings, and the drivers
/// write Chrome-trace/metrics-CSV files next to their normal output.
static TRACE: AtomicBool = AtomicBool::new(false);

/// Process-wide metrics window override in cycles (`repro
/// --metrics-every N`); 0 means the machine's divergence window.
static METRICS_EVERY: AtomicU64 = AtomicU64::new(0);

/// Sets the phase-A worker-thread count used by [`gpu_for`] (clamped ≥ 1).
pub fn set_parallelism(n: usize) {
    PARALLELISM.store(n.max(1), Ordering::Relaxed);
}

/// The current phase-A worker-thread count used by [`gpu_for`].
pub fn parallelism() -> usize {
    PARALLELISM.load(Ordering::Relaxed)
}

/// Enables event tracing on every GPU built by [`gpu_for`].
pub fn set_trace(on: bool) {
    TRACE.store(on, Ordering::Relaxed);
}

/// Whether event tracing is on.
pub fn trace() -> bool {
    TRACE.load(Ordering::Relaxed)
}

/// Overrides the telemetry metrics window (0 = divergence window).
pub fn set_metrics_every(cycles: u64) {
    METRICS_EVERY.store(cycles, Ordering::Relaxed);
}

/// The telemetry metrics-window override (0 = divergence window).
pub fn metrics_every() -> u64 {
    METRICS_EVERY.load(Ordering::Relaxed)
}

/// The telemetry configuration the experiment drivers run with: windowed
/// metrics always (they cost a few counters and feed the figure
/// timelines), per-event rings only under `--trace`.
pub fn telemetry_spec() -> TelemetrySpec {
    let base = if trace() {
        TelemetrySpec::trace()
    } else {
        TelemetrySpec::metrics()
    };
    base.with_window(metrics_every())
}

/// One evaluated machine configuration (paper §VI/§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Traditional kernel, PDOM branching, block scheduling — the
    /// "traditional SIMT hardware" baseline (FX5800 behaviour).
    PdomBlock,
    /// Traditional kernel, PDOM branching, warp-granular scheduling.
    PdomWarp,
    /// Traditional kernel, PDOM, warp scheduling, ideal memory (Fig. 10).
    PdomWarpIdeal,
    /// Dynamic μ-kernels, no spawn-memory bank conflicts (Figs. 7/8/10).
    Dynamic,
    /// Dynamic μ-kernels with spawn-memory bank conflicts (Fig. 9).
    DynamicConflicts,
    /// Dynamic μ-kernels with ideal memory (Fig. 10 "potential").
    DynamicIdeal,
}

impl Variant {
    /// All variants, in presentation order.
    pub const ALL: [Variant; 6] = [
        Variant::PdomBlock,
        Variant::PdomWarp,
        Variant::PdomWarpIdeal,
        Variant::Dynamic,
        Variant::DynamicConflicts,
        Variant::DynamicIdeal,
    ];

    /// Whether this variant runs the μ-kernel program.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            Variant::Dynamic | Variant::DynamicConflicts | Variant::DynamicIdeal
        )
    }

    /// Stable machine-readable name, used in scenario job names
    /// (`workload@variant`), the serve wire format, and fingerprints.
    /// Never rename these: journals and cached results key on them.
    pub fn wire_name(self) -> &'static str {
        match self {
            Variant::PdomBlock => "pdom-block",
            Variant::PdomWarp => "pdom-warp",
            Variant::PdomWarpIdeal => "pdom-warp-ideal",
            Variant::Dynamic => "dynamic",
            Variant::DynamicConflicts => "dynamic-conflicts",
            Variant::DynamicIdeal => "dynamic-ideal",
        }
    }

    /// Parses a [`Self::wire_name`] back into a variant.
    pub fn from_wire(name: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.wire_name() == name)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::PdomBlock => "PDOM Block",
            Variant::PdomWarp => "PDOM Warp",
            Variant::PdomWarpIdeal => "PDOM Warp (ideal mem)",
            Variant::Dynamic => "Dynamic",
            Variant::DynamicConflicts => "Dynamic (bank conflicts)",
            Variant::DynamicIdeal => "Dynamic (ideal mem)",
        };
        f.write_str(s)
    }
}

/// The machine configuration for a variant (paper Table I machine).
/// Separated from [`gpu_for`] so job-identity fingerprints can digest
/// the configuration without building a machine.
pub fn config_for(variant: Variant) -> GpuConfig {
    let mut cfg = match variant {
        Variant::PdomBlock => GpuConfig::fx5800(),
        Variant::PdomWarp | Variant::PdomWarpIdeal => GpuConfig::fx5800_warp_sched(),
        Variant::Dynamic | Variant::DynamicConflicts | Variant::DynamicIdeal => {
            GpuConfig::fx5800_dmk(DmkConfig::paper())
        }
    };
    match variant {
        Variant::PdomWarpIdeal | Variant::DynamicIdeal => cfg.mem.ideal = true,
        Variant::DynamicConflicts => cfg.mem.spawn_bank_conflicts = true,
        _ => {}
    }
    cfg
}

/// Builds the simulated GPU for a variant (paper Table I machine), with
/// the process-wide parallelism and telemetry settings applied.
pub fn gpu_for(variant: Variant) -> Gpu {
    gpu_for_with(variant, telemetry_spec())
}

/// [`gpu_for`] with an explicit telemetry configuration (the benchmark
/// harness uses this to compare telemetry-off against telemetry-on).
pub fn gpu_for_with(variant: Variant, telemetry: TelemetrySpec) -> Gpu {
    Gpu::builder(config_for(variant))
        .parallelism(parallelism())
        .telemetry(telemetry)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_sim::SchedulingModel;

    #[test]
    fn variants_configure_expected_machines() {
        let g = gpu_for(Variant::PdomBlock);
        assert_eq!(g.config().scheduling, SchedulingModel::Block);
        assert!(g.config().dmk.is_none());

        let g = gpu_for(Variant::PdomWarp);
        assert_eq!(g.config().scheduling, SchedulingModel::Warp);

        let g = gpu_for(Variant::Dynamic);
        assert!(g.config().dmk.is_some());
        assert!(!g.config().mem.spawn_bank_conflicts);

        let g = gpu_for(Variant::DynamicConflicts);
        assert!(g.config().mem.spawn_bank_conflicts);

        let g = gpu_for(Variant::DynamicIdeal);
        assert!(g.config().mem.ideal);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Variant::PdomBlock.to_string(), "PDOM Block");
        assert_eq!(Variant::Dynamic.to_string(), "Dynamic");
    }
}
