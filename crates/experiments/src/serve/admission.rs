//! Admission control for `repro serve`: a bounded queue and a
//! token-bucket rate limit, both enforced *before* a request is
//! journaled. Excess load is shed with a typed reason and a
//! retry-after hint — the queue provably never grows past its
//! configured capacity, and every shed is counted for `/healthz`.

use std::time::{Duration, Instant};

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue (accepted-but-not-terminal jobs) is at
    /// capacity.
    QueueFull,
    /// The token bucket is empty.
    RateLimited,
    /// The server is draining and admits nothing new.
    Draining,
}

impl ShedReason {
    /// Stable machine-readable tag for shed responses.
    pub fn tag(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::RateLimited => "rate-limited",
            ShedReason::Draining => "draining",
        }
    }
}

/// A classic token bucket: `burst` capacity, refilled continuously at
/// `rate_per_sec`. A rate of 0 disables the limiter (always admits).
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(rate_per_sec: u64, burst: u64, now: Instant) -> Self {
        TokenBucket {
            rate_per_sec: rate_per_sec as f64,
            burst: burst.max(1) as f64,
            tokens: burst.max(1) as f64,
            last_refill: now,
        }
    }

    /// Takes one token, refilling for the elapsed time first. On refusal
    /// returns the wait until a token will be available.
    pub fn take(&mut self, now: Instant) -> Result<(), Duration> {
        if self.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let elapsed = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate_per_sec))
        }
    }
}

/// Aggregate shed counters for `/healthz`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShedCounters {
    /// Sheds because the bounded queue was full.
    pub queue_full: u64,
    /// Sheds because the token bucket was empty.
    pub rate_limited: u64,
    /// Sheds because the server was draining.
    pub draining: u64,
}

impl ShedCounters {
    /// Records one shed.
    pub fn count(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.queue_full += 1,
            ShedReason::RateLimited => self.rate_limited += 1,
            ShedReason::Draining => self.draining += 1,
        }
    }

    /// Total sheds.
    pub fn total(&self) -> u64 {
        self.queue_full + self.rate_limited + self.draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_rate_limits() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10, 3, t0);
        assert!(b.take(t0).is_ok());
        assert!(b.take(t0).is_ok());
        assert!(b.take(t0).is_ok());
        let wait = b.take(t0).expect_err("burst exhausted");
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // After one refill interval a token is back.
        assert!(b.take(t0 + Duration::from_millis(150)).is_ok());
    }

    #[test]
    fn zero_rate_disables_the_limiter() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0, 1, t0);
        for _ in 0..1000 {
            assert!(b.take(t0).is_ok());
        }
    }

    #[test]
    fn shed_counters_accumulate_by_reason() {
        let mut c = ShedCounters::default();
        c.count(ShedReason::QueueFull);
        c.count(ShedReason::QueueFull);
        c.count(ShedReason::RateLimited);
        c.count(ShedReason::Draining);
        assert_eq!((c.queue_full, c.rate_limited, c.draining), (2, 1, 1));
        assert_eq!(c.total(), 4);
    }
}
