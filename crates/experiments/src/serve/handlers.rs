//! HTTP route handlers for `repro serve`.
//!
//! | route | behavior |
//! |---|---|
//! | `POST /jobs` | admission control → 202 (accepted, body carries the job id) / 429 (typed shed + `Retry-After-Ms`) / 400 / 503 (draining) |
//! | `GET /jobs/<id>` | job status; `?wait_ms=N` long-polls until terminal or the wait expires |
//! | `GET /jobs/<id>/output` | the rendered artifact bytes |
//! | `GET /healthz` | queue depth, shed counts, worker liveness, journal lag, degradation counters |
//! | `GET /readyz` | 200 while admitting, 503 once draining |
//! | `POST /drain` | begin graceful drain |
//!
//! Job ids are job fingerprints (16 hex digits): idempotent across
//! restarts, resubmission-safe, and directly addressable in the result
//! cache.

use super::admission::ShedReason;
use super::{admit, http, json, spec_from_request, Admission, JobState, Shared};
use crate::campaign::manifest::escape;
use crate::campaign::Job;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest allowed long-poll parking time.
const MAX_WAIT: Duration = Duration::from_secs(30);

/// Handles one connection: parse, route, respond, close.
pub fn handle(shared: &Shared, stream: &mut TcpStream) {
    let request = match http::read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            let body = format!("{{\"error\": \"{}\"}}\n", escape(&e));
            let _ = http::write_response(stream, 400, "application/json", body.as_bytes(), None);
            return;
        }
    };
    let (status, body, retry_after) = route(shared, &request);
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        body.as_bytes(),
        retry_after,
    );
}

/// Dispatches one parsed request to `(status, body, retry_after_ms)`.
fn route(shared: &Shared, req: &http::Request) -> (u16, String, Option<u64>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => submit(shared, req),
        ("GET", "/healthz") => (200, healthz(shared), None),
        ("GET", "/readyz") => {
            if shared.lock().draining {
                (
                    503,
                    "{\"ready\": false, \"reason\": \"draining\"}\n".to_string(),
                    None,
                )
            } else {
                (200, "{\"ready\": true}\n".to_string(), None)
            }
        }
        ("POST", "/drain") => {
            shared.lock().draining = true;
            shared.cv.notify_all();
            eprintln!("serve: drain requested");
            (200, "{\"draining\": true}\n".to_string(), None)
        }
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                match rest.strip_suffix("/output") {
                    Some(id) => job_output(shared, id),
                    None => job_status(shared, rest, req),
                }
            } else {
                (404, "{\"error\": \"no such route\"}\n".to_string(), None)
            }
        }
        _ => (
            405,
            "{\"error\": \"method not allowed\"}\n".to_string(),
            None,
        ),
    }
}

/// `POST /jobs`.
fn submit(shared: &Shared, req: &http::Request) -> (u16, String, Option<u64>) {
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(json::parse_flat)
        .and_then(|map| spec_from_request(&shared.cfg, &map));
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => {
            return (400, format!("{{\"error\": \"{}\"}}\n", escape(&e)), None);
        }
    };
    match admit(shared, spec, Instant::now()) {
        Admission::Accepted { fingerprint, warm } => (
            202,
            format!(
                "{{\"job\": \"{fingerprint:016x}\", \"warm\": {warm}, \
                 \"status_url\": \"/jobs/{fingerprint:016x}\"}}\n"
            ),
            None,
        ),
        Admission::Shed {
            reason,
            retry_after_ms,
        } => {
            let status = if reason == ShedReason::Draining {
                503
            } else {
                429
            };
            (
                status,
                format!(
                    "{{\"shed\": \"{}\", \"retry_after_ms\": {retry_after_ms}}}\n",
                    reason.tag()
                ),
                Some(retry_after_ms),
            )
        }
        Admission::Rejected(e) => (400, format!("{{\"error\": \"{}\"}}\n", escape(&e)), None),
    }
}

/// Parses a 16-hex-digit job id.
fn parse_id(id: &str) -> Option<u64> {
    (id.len() == 16)
        .then(|| u64::from_str_radix(id, 16).ok())
        .flatten()
}

/// One job's status JSON.
fn status_json(job: &Job) -> String {
    let state = JobState::of(job);
    let mut s = format!(
        "{{\"job\": \"{:016x}\", \"artifact\": \"{}\", \"state\": \"{}\", \"attempts\": {}",
        job.fingerprint(),
        escape(job.artifact()),
        state.tag(),
        job.attempts()
    );
    if let Some(outcome) = job.outcome() {
        s.push_str(&format!(", \"outcome\": \"{}\"", outcome.tag()));
        s.push_str(&format!(
            ", \"output_available\": {}",
            job.output().is_some()
        ));
    }
    if let Some(progress) = job.progress() {
        s.push_str(&format!(", \"progress\": \"{}\"", escape(progress)));
    }
    if let Some(error) = job.error() {
        s.push_str(&format!(", \"error\": \"{}\"", escape(error)));
    }
    s.push_str("}\n");
    s
}

/// `GET /jobs/<id>` with optional `wait_ms` long-poll.
fn job_status(shared: &Shared, id: &str, req: &http::Request) -> (u16, String, Option<u64>) {
    let Some(fingerprint) = parse_id(id) else {
        return (400, "{\"error\": \"bad job id\"}\n".to_string(), None);
    };
    let wait = req
        .query_param("wait_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::ZERO)
        .min(MAX_WAIT);
    let deadline = Instant::now() + wait;
    let mut inner = shared.lock();
    loop {
        match inner.jobs_by_fingerprint(fingerprint) {
            None => {
                // Unknown here — possibly completed and retired before a
                // restart. The client contract: resubmit (idempotent; a
                // banked result is a free warm hit).
                return (
                    404,
                    "{\"error\": \"unknown job (resubmit; accepted work is idempotent by fingerprint)\"}\n"
                        .to_string(),
                    None,
                );
            }
            Some(job) if job.is_done() => return (200, status_json(job), None),
            Some(job) => {
                let now = Instant::now();
                if now >= deadline {
                    return (200, status_json(job), None);
                }
                let (next, _) = shared
                    .cv
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner = next;
            }
        }
    }
}

/// `GET /jobs/<id>/output`.
fn job_output(shared: &Shared, id: &str) -> (u16, String, Option<u64>) {
    let Some(fingerprint) = parse_id(id) else {
        return (400, "{\"error\": \"bad job id\"}\n".to_string(), None);
    };
    let inner = shared.lock();
    match inner.jobs_by_fingerprint(fingerprint) {
        Some(job) => match job.output() {
            Some(bytes) => match std::str::from_utf8(bytes) {
                Ok(text) => (200, text.to_string(), None),
                Err(_) => (500, "{\"error\": \"non-UTF-8 output\"}\n".to_string(), None),
            },
            None => {
                let (status, msg) = if job.is_done() {
                    (404, "job finished without output (degraded)")
                } else {
                    (404, "job not finished")
                };
                (status, format!("{{\"error\": \"{msg}\"}}\n"), None)
            }
        },
        None => (404, "{\"error\": \"unknown job\"}\n".to_string(), None),
    }
}

/// `GET /healthz`.
fn healthz(shared: &Shared) -> String {
    let inner = shared.lock();
    let counters = inner.coord.counters();
    format!(
        "{{\"incarnation\": {}, \"draining\": {}, \
         \"queue_depth\": {}, \"queue_capacity\": {}, \"in_flight\": {}, \
         \"admitted\": {}, \
         \"shed_queue_full\": {}, \"shed_rate_limited\": {}, \"shed_draining\": {}, \"shed_total\": {}, \
         \"journal_lag\": {}, \"journal_quarantined\": {}, \
         \"cache_hits\": {}, \"fresh_completions\": {}, \
         \"quarantined\": {}, \"retried_attempts\": {}, \"sigkills\": {}, \"deadline_kills\": {}}}\n",
        inner.incarnation,
        inner.draining,
        inner.coord.backlog(),
        shared.cfg.queue_capacity,
        inner.coord.in_flight(),
        inner.admitted,
        inner.sheds.queue_full,
        inner.sheds.rate_limited,
        inner.sheds.draining,
        inner.sheds.total(),
        inner.journal.lag(),
        inner.journal.quarantined,
        counters.cache_hits,
        counters.fresh_completions,
        counters.quarantined,
        counters.retried_attempts,
        counters.sigkills,
        counters.deadline_kills,
    )
}
