//! Minimal HTTP/1.1 framing over `std::net::TcpStream` — just enough
//! protocol for the `repro serve` job API and its client: request-line +
//! headers + `Content-Length` bodies, one request per connection
//! (`Connection: close`). No new dependencies; everything else in the
//! serve stack sits above this.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body (a job submission is a few hundred
/// bytes; anything bigger is garbage or abuse).
pub const MAX_BODY: usize = 64 * 1024;
/// Upper bound on one header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on header count.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path with query string split off.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Value of a `k=v` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Reads one CRLF- (or LF-) terminated line, bounded.
fn read_line(r: &mut impl BufRead) -> Result<String, String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let mut one = r.take(1);
        match one.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if line.len() >= MAX_LINE {
                    return Err("header line too long".to_string());
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| "non-UTF-8 header line".to_string())
}

/// Parses one request off the stream.
///
/// # Errors
///
/// Malformed framing, over-limit sizes, or I/O trouble — the caller
/// answers 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let start = read_line(&mut reader)?;
    let mut parts = start.split_ascii_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line missing target")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("body read: {e}"))?;
            }
            return Ok(Request {
                method,
                path,
                query,
                body,
            });
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| "bad Content-Length".to_string())?;
                if content_length > MAX_BODY {
                    return Err("body too large".to_string());
                }
            }
        }
    }
    Err("too many headers".to_string())
}

/// Reason phrase for the status codes this API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response and flushes. `retry_after_ms` adds the
/// `Retry-After-Ms` hint header sheds carry.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    retry_after_ms: Option<u64>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    if let Some(ms) = retry_after_ms {
        head.push_str(&format!("Retry-After-Ms: {ms}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed client-side response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Retry-After-Ms` hint, when present.
    pub retry_after_ms: Option<u64>,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Reads one response off the stream (client side).
///
/// # Errors
///
/// Malformed framing or I/O trouble.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let start = read_line(&mut reader)?;
    let status = start
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {start}"))?;
    let mut content_length = 0usize;
    let mut retry_after_ms = None;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("body read: {e}"))?;
            }
            return Ok(Response {
                status,
                retry_after_ms,
                body,
            });
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| "bad Content-Length".to_string())?;
                if content_length > 16 * 1024 * 1024 {
                    return Err("response body too large".to_string());
                }
            } else if k.eq_ignore_ascii_case("retry-after-ms") {
                retry_after_ms = v.trim().parse::<u64>().ok();
            }
        }
    }
    Err("too many headers".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn request_and_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let req = read_request(&mut s).expect("parse request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.query_param("wait_ms"), Some("250"));
            assert_eq!(req.body, b"{\"artifact\":\"fig3\"}");
            write_response(
                &mut s,
                429,
                "application/json",
                b"{\"shed\":true}",
                Some(50),
            )
            .expect("write response");
        });
        let mut c = TcpStream::connect(addr).expect("connect");
        let body = b"{\"artifact\":\"fig3\"}";
        let req = format!(
            "POST /jobs?wait_ms=250 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        std::io::Write::write_all(&mut c, req.as_bytes()).expect("send head");
        std::io::Write::write_all(&mut c, body).expect("send body");
        let resp = read_response(&mut c).expect("parse response");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after_ms, Some(50));
        assert_eq!(resp.body, b"{\"shed\":true}");
        server.join().expect("server thread");
    }
}
