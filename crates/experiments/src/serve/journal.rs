//! Write-ahead job journal for `repro serve`.
//!
//! Every accepted request is sealed into a checksummed frame (the PR-3
//! [`simt_sim::seal_frame`] format, distinct `DMKJOB` magic) and
//! written atomically to `<serve_dir>/journal/<seq>-<fingerprint>.job`
//! **before** the client is acknowledged — the durability contract is
//! "202 means this request survives a crash". The entry is removed only
//! after the job reaches a terminal state with its result banked in the
//! content-addressed cache (or a typed failure recorded); on boot the
//! server replays every surviving entry, in sequence order, back onto
//! the coordinator. Replay is idempotent: job identity is the
//! fingerprint, a warm cache hit completes the replayed job instantly,
//! and an interrupted job resumes from its checkpoints.
//!
//! A corrupt entry (torn write from a crash mid-rename is impossible —
//! `write_atomic` fsyncs and renames — but disks rot) is quarantined
//! aside with a `.quarantined` suffix and counted, never trusted and
//! never silently dropped.

use simt_isa::codec::{Decoder, Encoder};
use simt_sim::{open_frame, seal_frame, write_atomic};
use std::path::{Path, PathBuf};

/// Magic bytes of a sealed journal entry.
pub const JOB_MAGIC: [u8; 8] = *b"DMKJOB\0\0";

/// Journal entry format version.
pub const JOB_VERSION: u32 = 1;

/// One journaled job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Admission sequence number (monotonic per serve directory).
    pub seq: u64,
    /// Artifact name.
    pub artifact: String,
    /// Scale name (`test` / `quick` / `paper`).
    pub scale_name: String,
    /// Render in `--json` mode.
    pub json: bool,
    /// Requested deadline in milliseconds (0 = none). Deadlines restart
    /// from replay time on recovery: the contract is a *budget per
    /// admission*, and a replayed entry is a fresh admission.
    pub deadline_ms: u64,
    /// Job identity fingerprint (also in the filename; cross-checked on
    /// replay).
    pub fingerprint: u64,
}

/// Seals one entry into its frame bytes.
fn seal_entry(e: &JournalEntry) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(e.seq);
    enc.put_str(&e.artifact);
    enc.put_str(&e.scale_name);
    enc.put_bool(e.json);
    enc.put_u64(e.deadline_ms);
    enc.put_u64(e.fingerprint);
    seal_frame(&JOB_MAGIC, JOB_VERSION, &enc.into_bytes(), &[])
}

/// Opens one sealed entry.
///
/// # Errors
///
/// Human-readable description of corruption or malformed meta.
pub fn open_entry(bytes: &[u8]) -> Result<JournalEntry, String> {
    let (meta, _) = open_frame(&JOB_MAGIC, JOB_VERSION, bytes)
        .map_err(|e| format!("unusable journal entry: {e}"))?;
    let mut dec = Decoder::new(&meta);
    (|| -> Option<JournalEntry> {
        let e = JournalEntry {
            seq: dec.take_u64().ok()?,
            artifact: dec.take_str().ok()?,
            scale_name: dec.take_str().ok()?,
            json: dec.take_bool().ok()?,
            deadline_ms: dec.take_u64().ok()?,
            fingerprint: dec.take_u64().ok()?,
        };
        dec.is_finished().then_some(e)
    })()
    .ok_or_else(|| "malformed journal entry meta".to_string())
}

/// The on-disk journal.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    next_seq: u64,
    /// Corrupt entries quarantined during replay.
    pub quarantined: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal directory and replays the
    /// surviving entries in sequence order. The next sequence number
    /// continues past everything seen on disk.
    ///
    /// # Errors
    ///
    /// Unusable journal directory only; corrupt entries are quarantined,
    /// not fatal.
    pub fn open(dir: &Path) -> Result<(Self, Vec<JournalEntry>), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create journal dir {}: {e}", dir.display()))?;
        let mut entries = Vec::new();
        let mut quarantined = 0u64;
        let mut max_seq = 0u64;
        let listing = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read journal dir {}: {e}", dir.display()))?;
        for item in listing.flatten() {
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some("job") {
                continue;
            }
            match std::fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|b| open_entry(&b))
            {
                Ok(entry) => {
                    max_seq = max_seq.max(entry.seq);
                    entries.push(entry);
                }
                Err(why) => {
                    quarantined += 1;
                    let aside = path.with_extension("job.quarantined");
                    eprintln!(
                        "serve: journal: quarantining corrupt entry {} ({why})",
                        path.display()
                    );
                    let _ = std::fs::rename(&path, &aside);
                }
            }
        }
        entries.sort_by_key(|e| e.seq);
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                next_seq: max_seq + 1,
                quarantined,
            },
            entries,
        ))
    }

    /// Path of the entry file for `(seq, fingerprint)`.
    fn entry_path(&self, seq: u64, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{seq:012}-{fingerprint:016x}.job"))
    }

    /// Durably appends one request, assigning its sequence number. The
    /// write is atomic and fsynced; when this returns the request will
    /// survive a crash.
    ///
    /// # Errors
    ///
    /// The underlying write — the caller must *not* acknowledge the
    /// request if this fails.
    pub fn append(
        &mut self,
        artifact: &str,
        scale_name: &str,
        json: bool,
        deadline_ms: u64,
        fingerprint: u64,
    ) -> Result<JournalEntry, String> {
        let entry = JournalEntry {
            seq: self.next_seq,
            artifact: artifact.to_string(),
            scale_name: scale_name.to_string(),
            json,
            deadline_ms,
            fingerprint,
        };
        let path = self.entry_path(entry.seq, entry.fingerprint);
        write_atomic(&path, &seal_entry(&entry))
            .map_err(|e| format!("journal append failed: {e}"))?;
        self.next_seq += 1;
        Ok(entry)
    }

    /// Retires one entry after its job reached a terminal state.
    pub fn retire(&self, entry: &JournalEntry) {
        let _ = std::fs::remove_file(self.entry_path(entry.seq, entry.fingerprint));
    }

    /// Entries still on disk (accepted-but-not-terminal) — the journal
    /// lag `/healthz` reports.
    pub fn lag(&self) -> u64 {
        std::fs::read_dir(&self.dir)
            .map(|d| {
                d.flatten()
                    .filter(|i| i.path().extension().and_then(|e| e.to_str()) == Some("job"))
                    .count() as u64
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("serve-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn append_replay_retire_round_trip() {
        let dir = tmp("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut j, replay) = Journal::open(&dir).expect("open fresh");
        assert!(replay.is_empty());
        let a = j.append("fig3", "quick", false, 0, 0xabc).expect("append");
        let b = j
            .append("table3", "quick", true, 5000, 0xdef)
            .expect("append");
        assert_eq!((a.seq, b.seq), (1, 2));
        assert_eq!(j.lag(), 2);

        // A restart replays both, in admission order, and continues the
        // sequence counter past them.
        let (mut j2, replay) = Journal::open(&dir).expect("reopen");
        assert_eq!(replay, vec![a.clone(), b.clone()]);
        let c = j2.append("fig7", "quick", false, 0, 0x123).expect("append");
        assert_eq!(c.seq, 3);

        j2.retire(&a);
        j2.retire(&c);
        let (_, replay) = Journal::open(&dir).expect("reopen after retire");
        assert_eq!(replay, vec![b]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_trusted() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut j, _) = Journal::open(&dir).expect("open");
        let e = j.append("fig3", "test", false, 0, 0x77).expect("append");
        // Flip a byte in the sealed frame.
        let path = dir.join(format!("{:012}-{:016x}.job", e.seq, e.fingerprint));
        let mut bytes = std::fs::read(&path).expect("read entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt entry");

        let (j2, replay) = Journal::open(&dir).expect("reopen");
        assert!(replay.is_empty(), "corrupt entry must not replay");
        assert_eq!(j2.quarantined, 1);
        assert!(
            dir.read_dir()
                .expect("list")
                .flatten()
                .any(|i| i.path().to_string_lossy().ends_with(".job.quarantined")),
            "corrupt entry parked aside for post-mortem"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
