//! A tiny flat-JSON reader for serve request bodies. The offline serde
//! shim has no deserializer, so — mirroring the hand-rolled writers in
//! `campaign::manifest` — requests are parsed with a small tokenizer
//! that understands exactly what the job API needs: one flat object of
//! string / number / bool / null fields. Nested values are rejected.

use std::collections::BTreeMap;

/// One flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field (escapes decoded).
    Str(String),
    /// A numeric field (integers only; the API has no float fields).
    Num(i64),
    /// A boolean field.
    Bool(bool),
    /// An explicit null.
    Null,
}

/// Parses `{"k": v, ...}` with string/integer/bool/null values.
///
/// # Errors
///
/// Any deviation from that shape, with a position hint.
pub fn parse_flat(input: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
        return p.finish(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.value()?;
        map.insert(key, value);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => return p.finish(map),
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, got {other:?}",
                    p.pos
                ))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}' at byte {}, got {other:?}",
                want as char, self.pos
            )),
        }
    }

    fn finish(&mut self, map: BTreeMap<String, Value>) -> Result<BTreeMap<String, Value>, String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(map)
        } else {
            Err(format!("trailing bytes after object at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("control byte in string".to_string()),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences verbatim.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "bad number".to_string())?;
                text.parse::<i64>()
                    .map(Value::Num)
                    .map_err(|_| format!("bad number {text:?}"))
            }
            Some(b'{' | b'[') => Err("nested values are not accepted".to_string()),
            other => Err(format!(
                "expected value at byte {}, got {other:?}",
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// String field accessor.
pub fn get_str<'m>(map: &'m BTreeMap<String, Value>, key: &str) -> Option<&'m str> {
    match map.get(key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

/// Integer field accessor.
pub fn get_num(map: &BTreeMap<String, Value>, key: &str) -> Option<i64> {
    match map.get(key) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Boolean field accessor.
pub fn get_bool(map: &BTreeMap<String, Value>, key: &str) -> Option<bool> {
    match map.get(key) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_job_request_shape() {
        let m = parse_flat(
            "{\"artifact\": \"fig3\", \"scale\": \"quick\", \"json\": false, \
             \"deadline_ms\": 5000, \"note\": null}",
        )
        .expect("parses");
        assert_eq!(get_str(&m, "artifact"), Some("fig3"));
        assert_eq!(get_str(&m, "scale"), Some("quick"));
        assert_eq!(get_bool(&m, "json"), Some(false));
        assert_eq!(get_num(&m, "deadline_ms"), Some(5000));
        assert_eq!(m.get("note"), Some(&Value::Null));
        assert_eq!(get_str(&m, "missing"), None);
    }

    #[test]
    fn decodes_escapes_and_rejects_nesting() {
        let m = parse_flat("{\"k\": \"a\\n\\\"b\\\" \\u0041\"}").expect("parses");
        assert_eq!(get_str(&m, "k"), Some("a\n\"b\" A"));
        assert!(parse_flat("{\"k\": {\"nested\": 1}}").is_err());
        assert!(parse_flat("{\"k\": [1]}").is_err());
        assert!(parse_flat("{\"k\": 1} trailing").is_err());
        assert!(parse_flat("not json").is_err());
        assert!(parse_flat("{}").expect("empty object").is_empty());
    }
}
