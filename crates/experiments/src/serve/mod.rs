//! `repro serve` — a crash-tolerant job-queue front door for the
//! campaign execution engine (`DESIGN.md` §14).
//!
//! The service accepts render/experiment requests over a hand-rolled
//! HTTP/1.1 layer ([`http`], loopback `TcpListener`, no new deps) and —
//! for headless use — a filesystem job-drop directory
//! (`<serve_dir>/drop/*.json`, same JSON body as `POST /jobs`). A
//! request names an artifact, scale, output mode, and optional deadline;
//! it passes through [`admission`] control (bounded queue +
//! token-bucket rate limit, typed 429 sheds with retry-after hints), is
//! made durable in the write-ahead [`journal`] *before* the 202
//! acknowledgment, and is then submitted to the shared
//! [`campaign::Coordinator`] — which dedups it against the
//! content-addressed result cache by job fingerprint (a warm hit
//! completes instantly), fans cold work across supervised worker
//! processes, and enforces the deadline by SIGKILL.
//!
//! Robustness model:
//!
//! - **Crash**: `kill -9` (or the seeded chaos abort) loses nothing
//!   acknowledged — on restart the journal replays every
//!   accepted-but-unfinished request in admission order, warm results
//!   come straight from the cache, and interrupted jobs resume from
//!   their checkpoints. Workers orphaned by the crash are harmless:
//!   result frames and checkpoints are written atomically and the
//!   simulation is deterministic, so an orphan and its replacement can
//!   only ever write identical bytes.
//! - **Drain**: `POST /drain` (or a `drain` sentinel file in the drop
//!   directory) stops admission — new submissions shed typed
//!   `draining` responses — finishes or checkpoints in-flight work,
//!   writes a final manifest, and exits 0. This is the graceful-stop
//!   path; the experiments crate forbids `unsafe` and links no libc, so
//!   a SIGTERM handler is deliberately out of reach — and unnecessary,
//!   because the crash path above already covers abrupt termination.
//! - **Chaos**: `--chaos-crash-every K --seed S` arms
//!   [`Chaos::server_crash_plan`] — a deterministic schedule that
//!   aborts whole server incarnations after 1–3 *freshly computed*
//!   completions. Cache hits never count toward the crash point, so a
//!   crashing incarnation always banks new work first and a restart
//!   loop provably converges to byte-identical artifacts.
//!
//! `/healthz` reports queue depth, shed counts by reason, worker
//! liveness, journal lag, and the engine's degradation counters
//! (quarantines, retries, SIGKILLs); `/readyz` flips unready the moment
//! draining starts. Long-poll job status (`GET /jobs/<id>?wait_ms=N`)
//! carries the worker's latest `SnapshotSink`-style progress pulse.

pub mod admission;
pub mod client;
pub mod handlers;
pub mod http;
pub mod journal;
pub mod json;

use crate::campaign::chaos::Chaos;
use crate::campaign::manifest::Manifest;
use crate::campaign::{Coordinator, ExecConfig, Job, JobSpec};
use crate::runner::Scale;
use admission::{ShedCounters, ShedReason, TokenBucket};
use journal::{Journal, JournalEntry};
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serve configuration, built by the `repro serve` argument parser.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` = loopback, ephemeral port; the
    /// resolved address is written to `<serve_dir>/endpoint`).
    pub bind: String,
    /// Service state directory: journal, drop-dir ingress, endpoint
    /// file, incarnation counter, final manifest.
    pub serve_dir: PathBuf,
    /// Worker-supervision configuration for the backing coordinator.
    pub exec: ExecConfig,
    /// Default scale for requests that don't name one.
    pub default_scale: Scale,
    /// Name of the default scale.
    pub default_scale_name: String,
    /// Bounded-queue capacity: accepted-but-not-terminal jobs never
    /// exceed this; excess submissions shed `queue-full`.
    pub queue_capacity: usize,
    /// Token-bucket refill rate (requests/second; 0 disables).
    pub rate_per_sec: u64,
    /// Token-bucket burst capacity.
    pub burst: u64,
    /// Service-level chaos: seeded schedule of whole-incarnation
    /// crashes.
    pub server_chaos: Option<Chaos>,
}

/// Status of one submitted job as the API reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker slot.
    Queued,
    /// Executing in a worker process.
    Running,
    /// Terminal (completed, cached, failed, gave up, or
    /// deadline-exceeded).
    Done,
}

impl JobState {
    /// Stable tag for status JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    /// Classifies a coordinator job.
    pub fn of(job: &Job) -> JobState {
        if job.is_done() {
            JobState::Done
        } else if job.is_running() {
            JobState::Running
        } else {
            JobState::Queued
        }
    }
}

/// Mutable server state behind the lock.
pub struct Inner {
    /// The job-execution engine.
    pub coord: Coordinator,
    /// Write-ahead journal.
    pub journal: Journal,
    /// Journal entries not yet retired, by fingerprint.
    pub pending: HashMap<u64, JournalEntry>,
    /// Admission rate limiter.
    pub bucket: TokenBucket,
    /// Shed counters by reason.
    pub sheds: ShedCounters,
    /// True once draining started (no new admissions).
    pub draining: bool,
    /// True once the accept loop should exit.
    pub stop: bool,
    /// This server incarnation (0-based boot count).
    pub incarnation: u64,
    /// Requests admitted (journaled + acked) this incarnation.
    pub admitted: u64,
}

/// State shared between the pump loop, the accept loop, and connection
/// handler threads.
pub struct Shared {
    /// Immutable configuration.
    pub cfg: ServeConfig,
    /// Lock-protected state.
    pub inner: Mutex<Inner>,
    /// Signaled whenever a job reaches a terminal state (long-poll
    /// wake-up) and on drain.
    pub cv: Condvar,
}

impl Shared {
    /// Locks the state, recovering from poison (a panicking handler
    /// thread must not wedge the server; the state has no cross-call
    /// invariants a panic could tear).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Outcome of one admission attempt.
pub enum Admission {
    /// Journaled and submitted; the job id is the fingerprint.
    Accepted {
        /// Public job id (fingerprint).
        fingerprint: u64,
        /// True when the result was already cached (done immediately).
        warm: bool,
    },
    /// Shed with a typed reason and a retry hint.
    Shed {
        /// Why.
        reason: ShedReason,
        /// Hint for the client's next attempt.
        retry_after_ms: u64,
    },
    /// Malformed or unknown-artifact request.
    Rejected(String),
}

/// Runs full admission control for one parsed request. Order matters:
/// validation first (a garbage request never consumes a token), then
/// draining, rate limit, queue bound, then the durable journal append,
/// then coordinator submission — the 202 is only earned once the entry
/// is journaled.
pub fn admit(shared: &Shared, spec: JobSpec, now: Instant) -> Admission {
    if let Err(e) = spec.scenario.resolve() {
        return Admission::Rejected(e.to_string());
    }
    let mut inner = shared.lock();
    if inner.draining {
        inner.sheds.count(ShedReason::Draining);
        return Admission::Shed {
            reason: ShedReason::Draining,
            retry_after_ms: 0,
        };
    }
    if let Err(wait) = inner.bucket.take(now) {
        inner.sheds.count(ShedReason::RateLimited);
        return Admission::Shed {
            reason: ShedReason::RateLimited,
            retry_after_ms: (wait.as_millis() as u64).max(1),
        };
    }
    let fingerprint = spec.fingerprint();
    // An identical job already admitted (or already terminal) is free:
    // idempotent by fingerprint, no new queue slot, no new journal entry.
    let attached = inner
        .jobs_by_fingerprint(fingerprint)
        .map(|job| job.is_done());
    if let Some(done) = attached {
        return Admission::Accepted {
            fingerprint,
            warm: done,
        };
    }
    if inner.coord.backlog() >= shared.cfg.queue_capacity {
        inner.sheds.count(ShedReason::QueueFull);
        return Admission::Shed {
            reason: ShedReason::QueueFull,
            retry_after_ms: 250,
        };
    }
    let deadline_ms = spec.deadline.map(|d| d.as_millis() as u64).unwrap_or(0);
    let entry = match inner.journal.append(
        spec.name(),
        &spec.scenario.scale_name,
        spec.json,
        deadline_ms,
        fingerprint,
    ) {
        Ok(entry) => entry,
        Err(e) => return Admission::Rejected(format!("journal unavailable: {e}")),
    };
    inner.pending.insert(fingerprint, entry);
    match inner.coord.submit(spec) {
        Ok(idx) => {
            inner.admitted += 1;
            let warm = inner.coord.jobs()[idx].is_done();
            if warm {
                shared.cv.notify_all();
            }
            Admission::Accepted { fingerprint, warm }
        }
        Err(e) => {
            // Unreachable after the registry check above, but never
            // leave a journaled ghost behind.
            if let Some(entry) = inner.pending.remove(&fingerprint) {
                inner.journal.retire(&entry);
            }
            Admission::Rejected(e)
        }
    }
}

impl Inner {
    /// Finds the job for a public id.
    pub fn jobs_by_fingerprint(&self, fingerprint: u64) -> Option<&Job> {
        self.coord
            .jobs()
            .iter()
            .find(|j| j.fingerprint() == fingerprint)
    }
}

/// Builds a [`JobSpec`] from a parsed request body, applying server
/// defaults.
///
/// # Errors
///
/// Unknown fields are ignored; a missing artifact, an unknown scale
/// name, or a non-positive deadline is an error string for a 400.
pub fn spec_from_request(
    cfg: &ServeConfig,
    body: &std::collections::BTreeMap<String, json::Value>,
) -> Result<JobSpec, String> {
    let artifact = json::get_str(body, "artifact").ok_or("missing \"artifact\"")?;
    let (scale, scale_name) = match json::get_str(body, "scale") {
        None => (cfg.default_scale, cfg.default_scale_name.clone()),
        Some(name) => (
            Scale::parse(name).ok_or_else(|| format!("unknown scale: {name}"))?,
            name.to_string(),
        ),
    };
    let deadline = match json::get_num(body, "deadline_ms") {
        None | Some(0) => None,
        Some(ms) if ms > 0 => Some(Duration::from_millis(ms as u64)),
        Some(ms) => return Err(format!("bad deadline_ms: {ms}")),
    };
    let mut spec = JobSpec::new(
        artifact,
        scale,
        &scale_name,
        json::get_bool(body, "json").unwrap_or(false),
    );
    spec.deadline = deadline;
    Ok(spec)
}

/// Reads, bumps, and persists the incarnation counter. Returns the
/// 0-based incarnation this boot runs as.
fn bump_incarnation(dir: &std::path::Path) -> u64 {
    let path = dir.join("incarnation");
    let current = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let _ = simt_sim::write_atomic(&path, format!("{}\n", current + 1).as_bytes());
    current
}

/// Runs the server until drain completes. Binds, replays the journal,
/// starts the accept loop, and pumps the coordinator; on `--chaos-crash-every`
/// schedules the process may abort mid-stream (the restart loop around
/// it is the test harness's job).
///
/// # Errors
///
/// Bind/journal/work-dir misconfiguration only; everything job-level is
/// supervised and reported per job.
pub fn run(cfg: ServeConfig) -> Result<(), String> {
    std::fs::create_dir_all(&cfg.serve_dir)
        .map_err(|e| format!("cannot create {}: {e}", cfg.serve_dir.display()))?;
    let drop_dir = cfg.serve_dir.join("drop");
    std::fs::create_dir_all(&drop_dir)
        .map_err(|e| format!("cannot create {}: {e}", drop_dir.display()))?;
    let incarnation = bump_incarnation(&cfg.serve_dir);
    let crash_plan = cfg
        .server_chaos
        .and_then(|c| c.server_crash_plan(incarnation));
    if let Some(after) = crash_plan {
        eprintln!(
            "serve: chaos: incarnation {incarnation} will abort after {after} fresh completion(s)"
        );
    }

    let coord = Coordinator::new(cfg.exec.clone())?;
    let (journal, replay) = Journal::open(&cfg.serve_dir.join("journal"))?;
    let listener = TcpListener::bind(&cfg.bind).map_err(|e| format!("bind {}: {e}", cfg.bind))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    simt_sim::write_atomic(
        &cfg.serve_dir.join("endpoint"),
        format!("{addr}\n").as_bytes(),
    )
    .map_err(|e| format!("cannot write endpoint file: {e}"))?;
    eprintln!(
        "serve: incarnation {incarnation} listening on {addr} (queue capacity {}, rate {}/s burst {}, {} journaled job(s) to replay)",
        cfg.queue_capacity,
        cfg.rate_per_sec,
        cfg.burst,
        replay.len()
    );

    let now = Instant::now();
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            coord,
            journal,
            pending: HashMap::new(),
            bucket: TokenBucket::new(cfg.rate_per_sec, cfg.burst, now),
            sheds: ShedCounters::default(),
            draining: false,
            stop: false,
            incarnation,
            admitted: 0,
        }),
        cv: Condvar::new(),
        cfg,
    });

    // Replay journaled requests in admission order. Replay bypasses
    // admission control (they were already admitted — shedding them now
    // would break the "202 survives a crash" contract) and restarts any
    // deadline budget from now.
    {
        let mut inner = shared.lock();
        for entry in replay {
            let Some(scale) = Scale::parse(&entry.scale_name) else {
                eprintln!(
                    "serve: journal: entry {} names unknown scale {}; quarantining",
                    entry.seq, entry.scale_name
                );
                inner.journal.retire(&entry);
                continue;
            };
            let mut spec = JobSpec::new(&entry.artifact, scale, &entry.scale_name, entry.json);
            if entry.deadline_ms > 0 {
                spec.deadline = Some(Duration::from_millis(entry.deadline_ms));
            }
            match inner.coord.submit(spec) {
                Ok(_) => {
                    inner.pending.insert(entry.fingerprint, entry);
                }
                Err(e) => {
                    eprintln!(
                        "serve: journal: entry {} ({}) rejected on replay ({e}); retiring",
                        entry.seq, entry.artifact
                    );
                    inner.journal.retire(&entry);
                }
            }
        }
    }

    // Accept loop: non-blocking accept, one handler thread per
    // connection (requests are small and short-lived except long-polls,
    // which park on the condvar).
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
                    handlers::handle(&shared, &mut stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if accept_shared.lock().stop {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("serve: accept: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    });

    // Pump loop: drive the coordinator, retire journal entries for
    // terminal jobs, honor the chaos crash plan, ingest the drop
    // directory, and complete drains.
    loop {
        {
            let mut inner = shared.lock();
            let finished = inner.coord.poll()?;
            // Retire journal entries whose jobs reached a terminal state
            // (their results are banked in the cache or recorded as typed
            // failures).
            let terminal: Vec<u64> = inner
                .pending
                .keys()
                .copied()
                .filter(|fp| inner.jobs_by_fingerprint(*fp).is_some_and(|j| j.is_done()))
                .collect();
            for fp in terminal {
                if let Some(entry) = inner.pending.remove(&fp) {
                    inner.journal.retire(&entry);
                }
            }
            if finished > 0 {
                shared.cv.notify_all();
            }
            if let Some(after) = crash_plan {
                if u64::from(inner.coord.counters().fresh_completions) >= after {
                    eprintln!(
                        "serve: chaos: aborting incarnation {} after {} fresh completion(s)",
                        inner.incarnation,
                        inner.coord.counters().fresh_completions
                    );
                    // A real crash: no drain, no worker cleanup, no
                    // destructors — the journal and cache are the only
                    // survivors, which is the point.
                    std::process::abort();
                }
            }
            if inner.draining && inner.coord.all_done() {
                inner.stop = true;
                shared.cv.notify_all();
                write_final_manifest(&shared.cfg, &inner);
                break;
            }
        }
        ingest_drop_dir(&shared, &drop_dir);
        std::thread::sleep(Duration::from_millis(10));
    }
    accept_thread
        .join()
        .map_err(|_| "accept thread panicked".to_string())?;
    eprintln!("serve: drained; exiting");
    Ok(())
}

/// Writes the end-of-drain manifest (same format as a batch campaign's).
fn write_final_manifest(cfg: &ServeConfig, inner: &Inner) {
    let manifest = Manifest {
        scale: "serve".to_string(),
        workers: cfg.exec.workers,
        chaos_kill_every: cfg.exec.chaos.map(|c| c.kill_every),
        seed: cfg.exec.chaos.map(|c| c.seed).unwrap_or(0),
        jobs: inner.coord.jobs().iter().map(Job::record).collect(),
    };
    let path = cfg.serve_dir.join("manifest.json");
    match simt_sim::write_atomic(&path, manifest.to_json().as_bytes()) {
        Ok(()) => eprintln!("serve: final manifest written to {}", path.display()),
        Err(e) => eprintln!("warning: serve: cannot write {}: {e}", path.display()),
    }
    eprintln!("{manifest}");
}

/// Scans the drop directory once: `<name>.json` files are admitted like
/// `POST /jobs` bodies (the response JSON is written to `<name>.resp`
/// and the request file removed); a file named `drain` triggers
/// graceful drain.
fn ingest_drop_dir(shared: &Shared, drop_dir: &std::path::Path) {
    let Ok(listing) = std::fs::read_dir(drop_dir) else {
        return;
    };
    for item in listing.flatten() {
        let path = item.path();
        if path.file_name().and_then(|n| n.to_str()) == Some("drain") {
            let _ = std::fs::remove_file(&path);
            eprintln!("serve: drain requested via drop directory");
            shared.lock().draining = true;
            shared.cv.notify_all();
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(_) => continue, // racing a partial write; next scan gets it
        };
        let response = match json::parse_flat(&body)
            .and_then(|map| spec_from_request(&shared.cfg, &map))
        {
            Ok(spec) => match admit(shared, spec, Instant::now()) {
                Admission::Accepted { fingerprint, warm } => format!(
                    "{{\"accepted\": true, \"job\": \"{fingerprint:016x}\", \"warm\": {warm}}}\n"
                ),
                Admission::Shed {
                    reason,
                    retry_after_ms,
                } => format!(
                    "{{\"accepted\": false, \"shed\": \"{}\", \"retry_after_ms\": {retry_after_ms}}}\n",
                    reason.tag()
                ),
                Admission::Rejected(e) => format!(
                    "{{\"accepted\": false, \"error\": \"{}\"}}\n",
                    crate::campaign::manifest::escape(&e)
                ),
            },
            Err(e) => format!(
                "{{\"accepted\": false, \"error\": \"{}\"}}\n",
                crate::campaign::manifest::escape(&e)
            ),
        };
        let _ = simt_sim::write_atomic(&path.with_extension("resp"), response.as_bytes());
        let _ = std::fs::remove_file(&path);
    }
}
