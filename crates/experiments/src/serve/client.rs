//! Client side of the `repro serve` job API — the load generator the
//! CI smoke test and e2e tests drive, usable standalone as `repro
//! client`.
//!
//! The client is deliberately paranoid about server crashes, because
//! the server is deliberately crashy under chaos testing. Every
//! operation retries connection failures with backoff (a restarting
//! server refuses connections for a moment), honors typed shed
//! responses by sleeping out the `retry_after_ms` hint, and treats a
//! 404 for a previously accepted job as the documented restart signal:
//! resubmit, which is free — job identity is the content fingerprint,
//! so a result the dead incarnation banked comes back as an instant
//! warm hit.

use super::http::{read_response, Response};
use super::json;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One client workload description.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    /// Server address (`host:port`).
    pub server: String,
    /// Endpoint file to re-resolve the address from on connection
    /// failure. A restarted server on an ephemeral port (`--bind
    /// 127.0.0.1:0`) binds a *new* port; the endpoint file is the
    /// rendezvous that keeps clients attached across restarts.
    pub endpoint_file: Option<PathBuf>,
    /// Artifacts to submit.
    pub artifacts: Vec<String>,
    /// Scale name sent with each request.
    pub scale_name: String,
    /// Request `--json` rendering.
    pub json: bool,
    /// Per-request deadline to attach (milliseconds).
    pub deadline_ms: Option<u64>,
    /// Concurrent submitter threads.
    pub concurrency: usize,
    /// Directory to write fetched outputs into (`<artifact>.out`).
    pub out_dir: Option<PathBuf>,
    /// Overall per-job budget (submission through output fetch),
    /// including riding out server restarts.
    pub timeout: Duration,
}

/// Reads a server address from an endpoint file written by `repro
/// serve` (retrying briefly: the caller may race the server's boot).
///
/// # Errors
///
/// The file never appeared or never held an address.
pub fn read_endpoint(path: &Path, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let addr = s.trim();
            if !addr.is_empty() {
                return Ok(addr.to_string());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "no endpoint at {} after {timeout:?}",
                path.display()
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One raw HTTP exchange.
///
/// # Errors
///
/// Connection or framing trouble (the caller decides whether to retry).
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(45)))
        .map_err(|e| format!("timeout: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("send: {e}"))?;
    read_response(&mut stream)
}

/// Like [`request`], but rides out connection failures (server
/// restarting) with backoff until `deadline`, re-resolving the address
/// from `opts.endpoint_file` between attempts — a restarted server on
/// an ephemeral port advertises its new address there.
///
/// # Errors
///
/// The deadline passed without a successful exchange.
pub fn request_retry(
    opts: &ClientOpts,
    method: &str,
    path: &str,
    body: &str,
    deadline: Instant,
) -> Result<Response, String> {
    let mut addr = opts.server.clone();
    loop {
        let last = match request(&addr, method, path, body) {
            Ok(resp) => return Ok(resp),
            Err(e) => e,
        };
        if Instant::now() >= deadline {
            return Err(format!("gave up on {method} {path}: {last}"));
        }
        std::thread::sleep(Duration::from_millis(100));
        if let Some(file) = &opts.endpoint_file {
            if let Ok(s) = std::fs::read_to_string(file) {
                let fresh = s.trim();
                if !fresh.is_empty() {
                    addr = fresh.to_string();
                }
            }
        }
    }
}

/// Result of driving one artifact through the full submit → wait →
/// fetch flow.
#[derive(Debug)]
pub struct JobResult {
    /// Artifact name.
    pub artifact: String,
    /// Job id the server assigned (fingerprint hex).
    pub job: String,
    /// Final outcome tag from the status endpoint.
    pub outcome: String,
    /// Output bytes (terminal non-degraded jobs only).
    pub output: Option<Vec<u8>>,
    /// Typed sheds absorbed along the way.
    pub sheds: u64,
    /// Resubmissions forced by server restarts (404s).
    pub resubmits: u64,
}

/// The request body for one artifact under `opts`.
fn body_for(opts: &ClientOpts, artifact: &str) -> String {
    let mut body = format!(
        "{{\"artifact\": \"{artifact}\", \"scale\": \"{}\", \"json\": {}",
        opts.scale_name, opts.json
    );
    if let Some(ms) = opts.deadline_ms {
        body.push_str(&format!(", \"deadline_ms\": {ms}"));
    }
    body.push('}');
    body
}

/// Submits until accepted (absorbing sheds and restarts), returning
/// `(job id, sheds absorbed)`.
fn submit_until_accepted(
    opts: &ClientOpts,
    artifact: &str,
    deadline: Instant,
) -> Result<(String, u64), String> {
    let body = body_for(opts, artifact);
    let mut sheds = 0u64;
    loop {
        let resp = request_retry(opts, "POST", "/jobs", &body, deadline)?;
        match resp.status {
            202 => {
                let text = String::from_utf8_lossy(&resp.body).into_owned();
                let map =
                    json::parse_flat(&text).map_err(|e| format!("bad 202 body {text:?}: {e}"))?;
                let job = json::get_str(&map, "job")
                    .ok_or_else(|| format!("202 body missing job id: {text:?}"))?;
                return Ok((job.to_string(), sheds));
            }
            429 | 503 => {
                sheds += 1;
                if Instant::now() >= deadline {
                    return Err(format!(
                        "shed until deadline: {}",
                        String::from_utf8_lossy(&resp.body)
                    ));
                }
                std::thread::sleep(Duration::from_millis(
                    resp.retry_after_ms.unwrap_or(100).clamp(10, 2000),
                ));
            }
            other => {
                return Err(format!(
                    "submit {artifact}: HTTP {other}: {}",
                    String::from_utf8_lossy(&resp.body)
                ));
            }
        }
    }
}

/// Drives one artifact end to end: submit (absorbing sheds), long-poll
/// to terminal (resubmitting across restarts), fetch output.
///
/// # Errors
///
/// Budget exhausted or a protocol-level surprise.
pub fn run_job(opts: &ClientOpts, artifact: &str) -> Result<JobResult, String> {
    let deadline = Instant::now() + opts.timeout;
    let (mut job, mut sheds) = submit_until_accepted(opts, artifact, deadline)?;
    let mut resubmits = 0u64;
    // A 404 anywhere after acceptance means a restarted server retired
    // this job before we collected it. Resubmitting is the documented
    // recovery: identity is the fingerprint, a banked result is an
    // instant warm hit.
    let resubmit = |job: &mut String, sheds: &mut u64, resubmits: &mut u64| {
        *resubmits += 1;
        submit_until_accepted(opts, artifact, deadline).map(|(j, s)| {
            *job = j;
            *sheds += s;
        })
    };
    'collect: loop {
        let outcome = loop {
            let path = format!("/jobs/{job}?wait_ms=2000");
            let resp = request_retry(opts, "GET", &path, "", deadline)?;
            match resp.status {
                200 => {
                    let text = String::from_utf8_lossy(&resp.body).into_owned();
                    let map = json::parse_flat(&text)
                        .map_err(|e| format!("bad status body {text:?}: {e}"))?;
                    if json::get_str(&map, "state") == Some("done") {
                        break json::get_str(&map, "outcome")
                            .unwrap_or("unknown")
                            .to_string();
                    }
                }
                404 => resubmit(&mut job, &mut sheds, &mut resubmits)?,
                other => {
                    return Err(format!(
                        "status {artifact}: HTTP {other}: {}",
                        String::from_utf8_lossy(&resp.body)
                    ));
                }
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "{artifact}: not terminal within {:?}",
                    opts.timeout
                ));
            }
        };
        let output =
            if outcome == "gave-up" || outcome == "failed" || outcome == "deadline-exceeded" {
                None
            } else {
                let resp =
                    request_retry(opts, "GET", &format!("/jobs/{job}/output"), "", deadline)?;
                match resp.status {
                    200 => Some(resp.body),
                    404 => {
                        // Crashed between status and fetch; go around again.
                        resubmit(&mut job, &mut sheds, &mut resubmits)?;
                        continue 'collect;
                    }
                    other => {
                        return Err(format!(
                            "output {artifact}: HTTP {other}: {}",
                            String::from_utf8_lossy(&resp.body)
                        ));
                    }
                }
            };
        return Ok(JobResult {
            artifact: artifact.to_string(),
            job,
            outcome,
            output,
            sheds,
            resubmits,
        });
    }
}

/// Runs the whole workload across `opts.concurrency` submitter threads,
/// writing outputs to `opts.out_dir` and printing one summary line per
/// job.
///
/// # Errors
///
/// The first per-job error encountered (after letting every thread
/// finish).
pub fn run_workload(opts: &ClientOpts) -> Result<Vec<JobResult>, String> {
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<Result<JobResult, String>>> =
        std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(artifact) = opts.artifacts.get(i) else {
                    return;
                };
                let outcome = run_job(opts, artifact);
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(outcome);
            });
        }
    });
    let mut collected = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Deterministic reporting order regardless of completion order.
    collected.sort_by_key(|r| match r {
        Ok(j) => opts
            .artifacts
            .iter()
            .position(|a| *a == j.artifact)
            .unwrap_or(usize::MAX),
        Err(_) => usize::MAX,
    });
    let mut out = Vec::new();
    for item in collected {
        let job = item?;
        eprintln!(
            "client: {}: {} (job {}, {} shed(s), {} resubmit(s))",
            job.artifact, job.outcome, job.job, job.sheds, job.resubmits
        );
        if let (Some(dir), Some(bytes)) = (&opts.out_dir, &job.output) {
            let path = dir.join(format!("{}.out", job.artifact));
            std::fs::write(&path, bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        out.push(job);
    }
    Ok(out)
}

/// Fires `n` submissions for `artifact` as fast as possible with no
/// waiting, returning `(accepted, shed)` — the flood half of the
/// admission-bound test.
///
/// # Errors
///
/// Connection-level trouble only; sheds are the expected outcome.
pub fn flood(opts: &ClientOpts, artifact: &str, n: u64) -> Result<(u64, u64), String> {
    let deadline = Instant::now() + opts.timeout;
    let body = body_for(opts, artifact);
    let (mut accepted, mut shed) = (0u64, 0u64);
    for _ in 0..n {
        let resp = request_retry(opts, "POST", "/jobs", &body, deadline)?;
        match resp.status {
            202 => accepted += 1,
            429 | 503 => shed += 1,
            other => return Err(format!("flood: HTTP {other}")),
        }
    }
    Ok((accepted, shed))
}
