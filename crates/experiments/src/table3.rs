//! Table III — benchmark scenes with object count and tree parameters.

use crate::runner::Scale;
use raytrace::{scenes, KdTree};
use serde::Serialize;
use std::fmt;

/// One scene row.
#[derive(Debug, Clone, Serialize)]
pub struct SceneRow {
    /// Scene name.
    pub name: &'static str,
    /// Triangle count (after dropping degenerates).
    pub triangles: u32,
    /// kd-tree nodes.
    pub nodes: u32,
    /// kd-tree leaves.
    pub leaves: u32,
    /// Maximum leaf depth.
    pub max_depth: u32,
    /// Average triangle references per leaf.
    pub avg_tris_per_leaf: f64,
    /// Total triangle references (duplication across leaves).
    pub tri_refs: u32,
}

/// The regenerated Table III.
#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    /// One row per benchmark scene, in the paper's order.
    pub rows: Vec<SceneRow>,
}

/// Builds the table at the given scale.
pub fn run(scale: Scale) -> Table3 {
    let rows = scenes::all(scale.scene)
        .into_iter()
        .map(|s| {
            let tree = KdTree::build(&s.triangles);
            let st = tree.stats();
            SceneRow {
                name: s.name,
                triangles: st.triangles,
                nodes: st.nodes,
                leaves: st.leaves,
                max_depth: st.max_depth,
                avg_tris_per_leaf: st.avg_tris_per_leaf,
                tri_refs: st.tri_refs,
            }
        })
        .collect();
    Table3 { rows }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III — benchmark scenes and kd-tree parameters")?;
        writeln!(
            f,
            "  {:<12} {:>10} {:>8} {:>8} {:>9} {:>14} {:>9}",
            "scene", "triangles", "nodes", "leaves", "max depth", "avg tris/leaf", "tri refs"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<12} {:>10} {:>8} {:>8} {:>9} {:>14.1} {:>9}",
                r.name,
                r.triangles,
                r.nodes,
                r.leaves,
                r.max_depth,
                r.avg_tris_per_leaf,
                r.tri_refs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_scenes_in_paper_order() {
        let t = run(Scale::test());
        let names: Vec<&str> = t.rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["fairyforest", "atrium", "conference"]);
    }

    #[test]
    fn rows_are_internally_consistent() {
        for r in run(Scale::test()).rows {
            assert!(r.triangles > 0, "{}", r.name);
            assert!(r.nodes >= r.leaves);
            assert!(r.tri_refs >= r.triangles || r.leaves == 1);
            assert!(r.avg_tris_per_leaf > 0.0);
            assert!(r.max_depth <= 24);
        }
    }
}
