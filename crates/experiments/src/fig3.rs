//! Fig. 3 — divergence breakdown for warps using traditional SIMT
//! branching (conference benchmark).
//!
//! The shared machinery ([`DivergenceFigure`], [`divergence_figure`]) is
//! also used by Figs. 7 and 9, which run the same measurement on the
//! dynamic μ-kernel machine without/with spawn-memory bank conflicts.

use crate::configs::Variant;
use crate::runner::{RenderRun, Scale};
use raytrace::scenes;
use serde::Serialize;
use std::fmt;

/// An AerialVision-style divergence breakdown over time.
#[derive(Debug, Clone, Serialize)]
pub struct DivergenceFigure {
    /// Which figure/variant this is.
    pub variant: String,
    /// Bucket labels (`idle`, `W1:4` … `W29:32`).
    pub labels: Vec<String>,
    /// Per-window issue counts by bucket.
    pub windows: Vec<Vec<u64>>,
    /// Window width in cycles.
    pub window_cycles: u64,
    /// Average committed thread-instructions per cycle over the run.
    pub ipc: f64,
    /// Mean active lanes per issue.
    pub mean_active_lanes: f64,
    /// Rays finished within the simulated window.
    pub rays_completed: u64,
    /// Fault-model counters; all zeros for a healthy run.
    pub health: crate::runner::FaultHealth,
}

/// Runs `variant` on the conference benchmark and extracts the breakdown.
///
/// The timeline comes from the run's telemetry report; its divergence
/// mirror is defined to be bit-identical to `SimStats::divergence`, so
/// switching the figures onto telemetry changed no published number.
pub fn divergence_figure(variant: Variant, scale: Scale) -> DivergenceFigure {
    let scene = scenes::conference(scale.scene);
    let run = RenderRun::execute(&scene, variant, scale);
    let d = &run.telemetry.divergence;
    DivergenceFigure {
        variant: variant.to_string(),
        labels: d.labels(),
        windows: d.windows().iter().map(|w| w.to_vec()).collect(),
        window_cycles: d.window(),
        ipc: run.ipc(),
        mean_active_lanes: d.mean_active_lanes(),
        rays_completed: run.summary.stats.lineages_completed,
        health: run.fault_health(),
    }
}

/// Fig. 3: the traditional-branching breakdown.
pub fn run(scale: Scale) -> DivergenceFigure {
    divergence_figure(Variant::PdomWarp, scale)
}

impl fmt::Display for DivergenceFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Divergence breakdown over time — {} (conference benchmark)",
            self.variant
        )?;
        write!(f, "  {:<10}", "cycles")?;
        for l in &self.labels {
            write!(f, " {l:>8}")?;
        }
        writeln!(f)?;
        for (i, w) in self.windows.iter().enumerate() {
            write!(
                f,
                "  {:<10}",
                format!("{}k", (i as u64 + 1) * self.window_cycles / 1000)
            )?;
            for v in w {
                write!(f, " {v:>8}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  average IPC:        {:.0}", self.ipc)?;
        writeln!(
            f,
            "  mean active lanes:  {:.1} / 32",
            self.mean_active_lanes
        )?;
        writeln!(f, "  rays completed:     {}", self.rays_completed)?;
        write!(f, "  fault health:       {}", self.health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_breakdown_shows_divergence() {
        let fig = run(Scale::test());
        assert!(!fig.windows.is_empty());
        assert!(fig.ipc > 0.0);
        // Some issues must fall below full occupancy.
        let partial: u64 = fig
            .windows
            .iter()
            .flat_map(|w| w[1..w.len() - 1].iter())
            .sum();
        assert!(partial > 0, "expected partially-occupied issues");
    }

    #[test]
    fn labels_match_window_width() {
        let fig = run(Scale::test());
        assert_eq!(fig.labels.len(), fig.windows[0].len());
        assert_eq!(fig.labels[0], "idle");
    }
}
