//! Table I — configuration used for simulation.

use dmk_core::DmkConfig;
use serde::Serialize;
use simt_sim::GpuConfig;
use std::fmt;

/// The regenerated Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Processor cores (SMs).
    pub processor_cores: usize,
    /// Threads per warp.
    pub warp_size: u32,
    /// Stream processors per SM.
    pub sps_per_sm: u32,
    /// Threads per processor core.
    pub threads_per_core: u32,
    /// Thread blocks per processor core.
    pub blocks_per_core: u32,
    /// Registers per processor core.
    pub registers_per_core: u32,
    /// On-chip memory per processor core (bytes).
    pub on_chip_bytes: u32,
    /// Spawn LUT size per processor core (bytes).
    pub spawn_lut_bytes: u32,
    /// Memory modules.
    pub memory_modules: usize,
    /// Bandwidth per memory module (bytes/DRAM-cycle).
    pub bytes_per_cycle: u32,
}

/// Builds the table from the canonical machine configuration.
pub fn run() -> Table1 {
    let cfg = GpuConfig::fx5800_dmk(DmkConfig::paper());
    let dmk = cfg.dmk.as_ref().expect("dmk configured");
    Table1 {
        processor_cores: cfg.num_sms,
        warp_size: cfg.warp_size,
        sps_per_sm: cfg.sps_per_sm,
        threads_per_core: cfg.max_threads_per_sm,
        blocks_per_core: cfg.max_blocks_per_sm,
        registers_per_core: cfg.registers_per_sm,
        on_chip_bytes: cfg.shared_mem_per_sm,
        spawn_lut_bytes: dmk.lut_bytes(),
        memory_modules: cfg.mem.num_modules,
        bytes_per_cycle: cfg.mem.bytes_per_cycle,
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I — configuration used for simulation")?;
        writeln!(
            f,
            "  Processor Cores                 {}",
            self.processor_cores
        )?;
        writeln!(f, "  Warp Size                       {}", self.warp_size)?;
        writeln!(f, "  Stream Processors per Warp      {}", self.sps_per_sm)?;
        writeln!(
            f,
            "  Threads / Processor Core        {}",
            self.threads_per_core
        )?;
        writeln!(
            f,
            "  Thread Blocks / Processor Core  {}",
            self.blocks_per_core
        )?;
        writeln!(
            f,
            "  Registers / Processor Core      {}",
            self.registers_per_core
        )?;
        writeln!(
            f,
            "  On-chip Memory / Processor Core {} KB",
            self.on_chip_bytes / 1024
        )?;
        writeln!(
            f,
            "  Spawn LUT Size / Processor Core {} Bytes (≤ 1024 budget)",
            self.spawn_lut_bytes
        )?;
        writeln!(
            f,
            "  Memory Modules                  {}",
            self.memory_modules
        )?;
        write!(
            f,
            "  Bandwidth per Memory Module     {} Bytes/Cycle",
            self.bytes_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_1() {
        let t = run();
        assert_eq!(t.processor_cores, 30);
        assert_eq!(t.warp_size, 32);
        assert_eq!(t.sps_per_sm, 8);
        assert_eq!(t.threads_per_core, 1024);
        assert_eq!(t.blocks_per_core, 8);
        assert_eq!(t.registers_per_core, 16384);
        assert_eq!(t.on_chip_bytes, 64 * 1024);
        assert!(t.spawn_lut_bytes <= 1024);
        assert_eq!(t.memory_modules, 8);
        assert_eq!(t.bytes_per_cycle, 8);
    }

    #[test]
    fn display_contains_every_row() {
        let s = run().to_string();
        for key in [
            "Processor Cores",
            "Warp Size",
            "Spawn LUT",
            "Memory Modules",
        ] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
