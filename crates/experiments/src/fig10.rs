//! Fig. 10 — branching performance for the conference benchmark against
//! the MIMD theoretical ideal.
//!
//! The paper's observations: PDOM gains nothing from an ideal memory
//! system (it is branch-bound); dynamic μ-kernels reach ~45% of the MIMD
//! theoretical with real memory and ~60% with ideal memory.

use crate::configs::Variant;
use crate::runner::{RenderRun, Scale};
use raytrace::scenes;
use rt_kernels::render::RenderSetup;
use serde::Serialize;
use simt_sim::{mimd_theoretical, Gpu, GpuConfig};
use std::fmt;

/// One bar of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct BranchingPoint {
    /// Configuration label.
    pub label: String,
    /// Average IPC.
    pub ipc: f64,
    /// Fraction of the MIMD theoretical IPC.
    pub fraction_of_mimd: f64,
}

/// The regenerated Fig. 10.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// All bars, MIMD last.
    pub points: Vec<BranchingPoint>,
    /// The MIMD theoretical IPC.
    pub mimd_ipc: f64,
}

impl Fig10 {
    /// Fraction of MIMD reached by a labeled configuration.
    pub fn fraction(&self, label: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.fraction_of_mimd)
    }
}

/// Runs the four simulated configurations plus the MIMD model.
pub fn run(scale: Scale) -> Fig10 {
    let scene = scenes::conference(scale.scene);

    // MIMD theoretical: run the traditional kernel functionally.
    let cfg = GpuConfig::fx5800_warp_sched();
    let mut gpu = Gpu::builder(cfg.clone()).build();
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    let program = rt_kernels::traditional::program();
    let entry = program.entry("main").expect("main entry").pc;
    let mimd = mimd_theoretical(&program, entry, setup.dev.num_rays, &cfg, gpu.mem_mut())
        .expect("traditional kernel is spawn-free");

    let mut points = Vec::new();
    for variant in [
        Variant::PdomWarp,
        Variant::PdomWarpIdeal,
        Variant::Dynamic,
        Variant::DynamicIdeal,
    ] {
        let r = RenderRun::execute(&scene, variant, scale);
        points.push(BranchingPoint {
            label: variant.to_string(),
            ipc: r.ipc(),
            fraction_of_mimd: r.ipc() / mimd.ipc,
        });
    }
    points.push(BranchingPoint {
        label: "MIMD Theoretical".into(),
        ipc: mimd.ipc,
        fraction_of_mimd: 1.0,
    });
    Fig10 {
        points,
        mimd_ipc: mimd.ipc,
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 10 — branching performance vs MIMD theoretical (conference)"
        )?;
        writeln!(
            f,
            "  {:<26} {:>8} {:>12}",
            "configuration", "IPC", "% of MIMD"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:<26} {:>8.0} {:>11.0}%",
                p.label,
                p.ipc,
                p.fraction_of_mimd * 100.0
            )?;
        }
        write!(
            f,
            "  paper shape: PDOM flat under ideal memory; dynamic ~45% of MIMD, ~60% potential"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_bars_with_mimd_at_unity() {
        let fig = run(Scale::test());
        assert_eq!(fig.points.len(), 5);
        assert!((fig.points.last().unwrap().fraction_of_mimd - 1.0).abs() < 1e-9);
        for p in &fig.points {
            assert!(p.ipc > 0.0, "{}", p.label);
        }
    }

    #[test]
    fn dynamic_ideal_beats_dynamic_real() {
        let fig = run(Scale::test());
        let real = fig.fraction("Dynamic").unwrap();
        let ideal = fig.fraction("Dynamic (ideal mem)").unwrap();
        assert!(ideal >= real, "ideal {ideal} < real {real}");
    }

    #[test]
    fn no_simulated_config_exceeds_mimd_substantially() {
        let fig = run(Scale::test());
        for p in &fig.points {
            assert!(
                p.fraction_of_mimd <= 1.05,
                "{} exceeds the MIMD bound: {}",
                p.label,
                p.fraction_of_mimd
            );
        }
    }
}
