//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <artifact> [--scale paper|quick|test] [--json] [--parallel N|ncpu]
//!
//! artifacts: table1 table2 table3 table4 fig2 fig3 fig7 fig8 fig9 fig10 all
//! ```
//!
//! `--parallel` sets the simulator's phase-A worker-thread count (`ncpu`
//! = all host cores). Results are bit-identical at every setting; it
//! changes wall-clock time only.

use experiments::runner::Scale;
use experiments::{ablation, fig10, fig2, fig3, fig7, fig8, fig9, table1, table2, table3, table4};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table1|table2|table3|table4|fig2|fig3|fig7|fig8|fig9|fig10|all> \
         [--scale paper|quick|test] [--json] [--parallel N|ncpu]"
    );
    ExitCode::from(2)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit<T: std::fmt::Display>(artifact: &str, value: &T, json: bool) {
    if json {
        // Rendered text as a JSON string; the full serde_json pipeline is
        // unavailable offline and downstream tooling only greps the text.
        println!(
            "{{\"artifact\":\"{}\",\"data\":\"{}\"}}",
            json_escape(artifact),
            json_escape(&value.to_string())
        );
    } else {
        println!("{value}");
        println!();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let artifact = args[0].as_str();
    let mut scale = Scale::quick();
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| Scale::parse(s)) else {
                    return usage();
                };
                scale = s;
            }
            "--json" => json = true,
            "--parallel" => {
                i += 1;
                let n = match args.get(i).map(String::as_str) {
                    Some("ncpu") => std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1),
                    Some(s) => match s.parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => return usage(),
                    },
                    None => return usage(),
                };
                experiments::set_parallelism(n);
            }
            _ => return usage(),
        }
        i += 1;
    }

    let run_one = |name: &str| -> bool {
        match name {
            "table1" => emit("table1", &table1::run(), json),
            "table2" => emit("table2", &table2::run(), json),
            "table3" => emit("table3", &table3::run(scale), json),
            "table4" => emit("table4", &table4::run(scale), json),
            "fig2" => emit("fig2", &fig2::run(), json),
            "fig3" => emit("fig3", &fig3::run(scale), json),
            "fig7" => emit("fig7", &fig7::run(scale), json),
            "fig8" => emit("fig8", &fig8::run(scale), json),
            "fig9" => emit("fig9", &fig9::run(scale), json),
            "fig10" => emit("fig10", &fig10::run(scale), json),
            "ablation" => emit("ablation", &ablation::run(scale), json),
            "shadow" => emit("shadow", &experiments::shadow::run(scale), json),
            _ => return false,
        }
        true
    };

    if artifact == "all" {
        for name in [
            "table1", "table2", "table3", "table4", "fig2", "fig3", "fig7", "fig8", "fig9",
            "fig10", "ablation", "shadow",
        ] {
            eprintln!("== {name} ==");
            run_one(name);
        }
        ExitCode::SUCCESS
    } else if run_one(artifact) {
        ExitCode::SUCCESS
    } else {
        usage()
    }
}
