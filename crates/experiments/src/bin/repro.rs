//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <artifact> [--scale paper|quick|test] [--json] [--parallel N|ncpu]
//!                  [--trace] [--metrics-every N]
//!                  [--checkpoint-every N] [--checkpoint-dir D] [--resume]
//!                  [--max-retries N] [--kill-after-checkpoints N]
//!
//! repro campaign   [shared flags above] [--workers N] [--campaign-dir D]
//!                  [--cache-dir D] [--retries N] [--only a,b,c]
//!                  [--job-timeout-secs N] [--heartbeat-timeout-secs N]
//!                  [--chaos-kill-every K] [--seed S]
//!
//! repro serve      [shared + campaign flags] [--bind H:P] [--serve-dir D]
//!                  [--queue-capacity N] [--rate N] [--burst N]
//!                  [--chaos-crash-every K]
//!
//! repro client     [--server H:P | --endpoint-file F] [--artifacts a,b|all]
//!                  [--scale S] [--json] [--deadline-ms N]
//!                  [--concurrency N] [--client-out-dir D]
//!                  [--client-timeout-secs N] [--flood N]
//!                  [--healthz] [--drain]
//!
//! repro list       # print the workload catalog
//!
//! artifacts: table1 table2 table3 table4 fig2 fig3 fig7 fig8 fig9 fig10
//!            ablation shadow bvh microdiv all campaign serve client
//! ```
//!
//! Every runnable workload lives in the `experiments::workload`
//! registry; `repro list` prints the catalog. Extended workloads (`bvh`,
//! `microdiv`) also run narrowed to one machine variant via
//! `workload@variant` job names (e.g. `repro bvh@dynamic`); `repro all`
//! remains exactly the twelve paper artifacts, byte-identical to every
//! release before the registry existed.
//!
//! `--parallel` sets the simulator's phase-A worker-thread count (`ncpu`
//! = all host cores). Results are bit-identical at every setting; it
//! changes wall-clock time only.
//!
//! `--trace` turns on the telemetry event rings and writes a Chrome-trace
//! JSON (`<job>.trace.json`, loadable in Perfetto / `chrome://tracing`)
//! and a windowed-metrics CSV (`<job>.metrics.csv`) next to each job's
//! normal output. `--metrics-every N` overrides the metrics window width
//! in cycles (default: the machine's divergence window). Neither flag
//! changes any reported number.
//!
//! The checkpoint flags drive the supervised runner (`DESIGN.md` §9):
//! `--checkpoint-every N` snapshots every N simulated cycles,
//! `--checkpoint-dir D` persists the snapshots to `D/<job>.ckpt`, and
//! `--resume` restores each job from its last on-disk snapshot before
//! running — bit-identical to an uninterrupted run. `--max-retries`
//! bounds fault/deadlock rollback retries per phase.
//! `--kill-after-checkpoints N` is a deterministic test hook that exits
//! the process (code 42) after N snapshot writes, so CI can rehearse a
//! mid-campaign kill without timing races.
//!
//! `repro campaign` runs the artifact matrix across `--workers` worker
//! *processes* with crash supervision, checkpoint resume, a
//! content-addressed result cache, and deterministic chaos testing
//! (`DESIGN.md` §12). Its stdout is byte-identical to `repro all` at the
//! same scale. The internal `__worker` mode is how the coordinator
//! re-invokes this binary for one job; it is not part of the public
//! surface.

use experiments::campaign::{self, worker, CampaignConfig};
use experiments::runner::Scale;
use experiments::serve::{self, client};
use experiments::supervisor::{self, Policy};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <workload[@variant]|all|list|campaign|serve|client> \
         (`repro list` prints the workload catalog) \
         [--scale paper|quick|test] [--json] [--parallel N|ncpu] \
         [--trace] [--metrics-every N] \
         [--checkpoint-every N] [--checkpoint-dir D] [--resume] \
         [--max-retries N] [--kill-after-checkpoints N]\n\
         campaign flags: [--workers N] [--campaign-dir D] [--cache-dir D] \
         [--retries N] [--only a,b,c] [--job-timeout-secs N] \
         [--heartbeat-timeout-secs N] [--chaos-kill-every K] [--seed S]\n\
         serve flags: [--bind H:P] [--serve-dir D] [--queue-capacity N] \
         [--rate N] [--burst N] [--chaos-crash-every K]\n\
         client flags: [--server H:P | --endpoint-file F] [--artifacts a,b|all] \
         [--deadline-ms N] [--concurrency N] [--client-out-dir D] \
         [--client-timeout-secs N] [--flood N] [--healthz] [--drain]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let (mode, flag_start) = if args[0] == "__worker" {
        match args.get(1) {
            Some(_) => (args[0].as_str(), 2),
            None => return usage(),
        }
    } else {
        (args[0].as_str(), 1)
    };
    if mode == "list" {
        for w in experiments::workload::all() {
            let variants = if w.variants().is_empty() {
                String::new()
            } else {
                let names: Vec<&str> = w.variants().iter().map(|v| v.wire_name()).collect();
                format!("  [variants: {}]", names.join(", "))
            };
            println!(
                "{:<10} {:<9} {}{variants}",
                w.id(),
                w.group().to_string(),
                w.description()
            );
        }
        return ExitCode::SUCCESS;
    }
    let mut scale = Scale::quick();
    let mut scale_name = "quick".to_string();
    let mut json = false;
    let mut policy = Policy::default();
    // Shared flags the campaign coordinator forwards verbatim to its
    // workers (only when explicitly given, so worker defaults stay
    // authoritative).
    let mut passthrough: Vec<String> = Vec::new();
    let mut checkpoint_every_flag: Option<u64> = None;
    // Campaign flags.
    let mut workers: usize = 2;
    let mut campaign_dir: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut retries: u32 = 3;
    let mut only: Option<Vec<String>> = None;
    let mut job_timeout_secs: Option<u64> = None;
    let mut heartbeat_timeout_secs: Option<u64> = None;
    let mut chaos_kill_every: u64 = 0;
    let mut chaos_seed: u64 = 0;
    let mut test_fail_job: Option<String> = None;
    let mut test_hang_job: Option<String> = None;
    // Worker flags.
    let mut worker_out: Option<PathBuf> = None;
    let mut worker_heartbeat: Option<PathBuf> = None;
    let mut worker_fingerprint: u64 = 0;
    let mut worker_test_fail = false;
    let mut worker_test_hang = false;
    // Serve flags.
    let mut bind = "127.0.0.1:0".to_string();
    let mut serve_dir = PathBuf::from("serve");
    let mut queue_capacity: usize = 32;
    let mut rate_per_sec: u64 = 0;
    let mut burst: u64 = 8;
    let mut chaos_crash_every: u64 = 0;
    // Client flags.
    let mut server: Option<String> = None;
    let mut endpoint_file: Option<PathBuf> = None;
    let mut client_artifacts: Vec<String> = Vec::new();
    let mut deadline_ms: Option<u64> = None;
    let mut concurrency: usize = 1;
    let mut client_out_dir: Option<PathBuf> = None;
    let mut client_timeout_secs: u64 = 600;
    let mut flood_n: Option<u64> = None;
    let mut do_healthz = false;
    let mut do_drain = false;

    let mut i = flag_start;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint-every" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => {
                        policy.checkpoint_every = n;
                        checkpoint_every_flag = Some(n);
                    }
                    _ => return usage(),
                }
            }
            "--checkpoint-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => policy.checkpoint_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--resume" => policy.resume = true,
            "--max-retries" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) => {
                        policy.max_retries = n;
                        passthrough.extend(["--max-retries".to_string(), n.to_string()]);
                    }
                    None => return usage(),
                }
            }
            "--kill-after-checkpoints" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => policy.kill_after_checkpoints = Some(n),
                    _ => return usage(),
                }
            }
            "--chaos-abort" => policy.chaos_abort = true,
            "--scale" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| Scale::parse(s)) else {
                    return usage();
                };
                scale = s;
                scale_name = args[i].clone();
            }
            "--json" => {
                json = true;
                passthrough.push("--json".to_string());
            }
            "--trace" => {
                experiments::set_trace(true);
                passthrough.push("--trace".to_string());
            }
            "--metrics-every" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => {
                        experiments::set_metrics_every(n);
                        passthrough.extend(["--metrics-every".to_string(), n.to_string()]);
                    }
                    _ => return usage(),
                }
            }
            "--parallel" => {
                i += 1;
                let n = match args.get(i).map(String::as_str) {
                    Some("ncpu") => std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1),
                    Some(s) => match s.parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => return usage(),
                    },
                    None => return usage(),
                };
                experiments::set_parallelism(n);
                passthrough.extend(["--parallel".to_string(), n.to_string()]);
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => workers = n,
                    _ => return usage(),
                }
            }
            "--campaign-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => campaign_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => cache_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--retries" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) => retries = n,
                    None => return usage(),
                }
            }
            "--only" => {
                i += 1;
                match args.get(i) {
                    Some(list) => {
                        only = Some(list.split(',').map(|s| s.trim().to_string()).collect())
                    }
                    None => return usage(),
                }
            }
            "--job-timeout-secs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => job_timeout_secs = Some(n),
                    _ => return usage(),
                }
            }
            "--heartbeat-timeout-secs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => heartbeat_timeout_secs = Some(n),
                    _ => return usage(),
                }
            }
            "--chaos-kill-every" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => chaos_kill_every = n,
                    _ => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => chaos_seed = n,
                    None => return usage(),
                }
            }
            "--chaos-fail-job" => {
                i += 1;
                match args.get(i) {
                    Some(j) => test_fail_job = Some(j.clone()),
                    None => return usage(),
                }
            }
            "--chaos-hang-job" => {
                i += 1;
                match args.get(i) {
                    Some(j) => test_hang_job = Some(j.clone()),
                    None => return usage(),
                }
            }
            "--worker-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => worker_out = Some(p.into()),
                    None => return usage(),
                }
            }
            "--worker-heartbeat" => {
                i += 1;
                match args.get(i) {
                    Some(p) => worker_heartbeat = Some(p.into()),
                    None => return usage(),
                }
            }
            "--worker-fingerprint" => {
                i += 1;
                match args.get(i).and_then(|s| u64::from_str_radix(s, 16).ok()) {
                    Some(fp) => worker_fingerprint = fp,
                    None => return usage(),
                }
            }
            "--worker-test-fail" => worker_test_fail = true,
            "--worker-test-hang" => worker_test_hang = true,
            "--bind" => {
                i += 1;
                match args.get(i) {
                    Some(a) => bind = a.clone(),
                    None => return usage(),
                }
            }
            "--serve-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => serve_dir = d.into(),
                    None => return usage(),
                }
            }
            "--queue-capacity" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => queue_capacity = n,
                    _ => return usage(),
                }
            }
            "--rate" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => rate_per_sec = n,
                    None => return usage(),
                }
            }
            "--burst" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => burst = n,
                    _ => return usage(),
                }
            }
            "--chaos-crash-every" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => chaos_crash_every = n,
                    _ => return usage(),
                }
            }
            "--server" => {
                i += 1;
                match args.get(i) {
                    Some(a) => server = Some(a.clone()),
                    None => return usage(),
                }
            }
            "--endpoint-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => endpoint_file = Some(p.into()),
                    None => return usage(),
                }
            }
            "--artifacts" => {
                i += 1;
                match args.get(i) {
                    Some(list) if list == "all" => {
                        client_artifacts = campaign::artifacts()
                            .iter()
                            .map(|s| s.to_string())
                            .collect();
                    }
                    Some(list) => {
                        client_artifacts = list.split(',').map(|s| s.trim().to_string()).collect();
                    }
                    None => return usage(),
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => deadline_ms = Some(n),
                    _ => return usage(),
                }
            }
            "--concurrency" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => concurrency = n,
                    _ => return usage(),
                }
            }
            "--client-out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => client_out_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--client-timeout-secs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => client_timeout_secs = n,
                    _ => return usage(),
                }
            }
            "--flood" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => flood_n = Some(n),
                    _ => return usage(),
                }
            }
            "--healthz" => do_healthz = true,
            "--drain" => do_drain = true,
            _ => return usage(),
        }
        i += 1;
    }
    supervisor::set_policy(policy.clone());

    if mode == "__worker" {
        let Some(out) = worker_out else {
            eprintln!("error: __worker requires --worker-out");
            return ExitCode::from(2);
        };
        let wargs = worker::WorkerArgs {
            artifact: args[1].clone(),
            out,
            heartbeat: worker_heartbeat,
            fingerprint: worker_fingerprint,
            json,
            test_fail: worker_test_fail,
            test_hang: worker_test_hang,
        };
        return worker::run_worker(&wargs, scale);
    }

    if mode == "campaign" {
        let mut cfg = CampaignConfig::new(scale, &scale_name);
        cfg.json = json;
        cfg.workers = workers;
        if let Some(d) = campaign_dir {
            cfg.cache_dir = d.join("cache");
            cfg.work_dir = d;
        }
        if let Some(d) = cache_dir {
            cfg.cache_dir = d;
        }
        if let Some(n) = checkpoint_every_flag {
            cfg.checkpoint_every = n;
        }
        cfg.max_retries = retries;
        if let Some(s) = job_timeout_secs {
            cfg.job_timeout = Duration::from_secs(s);
        }
        if let Some(s) = heartbeat_timeout_secs {
            cfg.heartbeat_timeout = Duration::from_secs(s);
        }
        if chaos_kill_every > 0 {
            cfg.chaos = Some(campaign::chaos::Chaos {
                kill_every: chaos_kill_every,
                seed: chaos_seed,
            });
        }
        if let Some(list) = only {
            cfg.artifacts = list;
        }
        cfg.passthrough = passthrough;
        cfg.test_fail_job = test_fail_job;
        cfg.test_hang_job = test_hang_job;
        let outcome = match campaign::run(&cfg) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: campaign: {e}");
                return ExitCode::from(2);
            }
        };
        // Emit completed artifacts in canonical order; stdout is
        // byte-identical to the serial `repro all` run.
        let mut stdout = std::io::stdout().lock();
        for (record, output) in outcome.manifest.jobs.iter().zip(&outcome.outputs) {
            eprintln!("== {} ==", record.name);
            match output {
                Some(bytes) => {
                    if stdout
                        .write_all(bytes)
                        .and_then(|()| stdout.flush())
                        .is_err()
                    {
                        eprintln!("error: campaign: stdout write failed");
                        return ExitCode::FAILURE;
                    }
                }
                None => eprintln!(
                    "error: {}: {}",
                    record.name,
                    record.error.as_deref().unwrap_or("no result")
                ),
            }
        }
        eprintln!("{}", outcome.manifest);
        return if outcome.complete() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if mode == "serve" {
        // Reuse the campaign's execution defaults; the same flags tune
        // worker supervision under serve.
        let mut base = CampaignConfig::new(scale, &scale_name);
        base.workers = workers;
        base.max_retries = retries;
        base.work_dir = serve_dir.join("work");
        base.cache_dir = cache_dir.unwrap_or_else(|| serve_dir.join("cache"));
        if let Some(n) = checkpoint_every_flag {
            base.checkpoint_every = n;
        }
        if let Some(s) = job_timeout_secs {
            base.job_timeout = Duration::from_secs(s);
        }
        if let Some(s) = heartbeat_timeout_secs {
            base.heartbeat_timeout = Duration::from_secs(s);
        }
        if chaos_kill_every > 0 {
            base.chaos = Some(campaign::chaos::Chaos {
                kill_every: chaos_kill_every,
                seed: chaos_seed,
            });
        }
        base.passthrough = passthrough;
        base.test_fail_job = test_fail_job;
        base.test_hang_job = test_hang_job;
        let cfg = serve::ServeConfig {
            bind,
            serve_dir,
            exec: base.exec(),
            default_scale: scale,
            default_scale_name: scale_name,
            queue_capacity,
            rate_per_sec,
            burst,
            server_chaos: (chaos_crash_every > 0).then_some(campaign::chaos::Chaos {
                kill_every: chaos_crash_every,
                seed: chaos_seed,
            }),
        };
        return match serve::run(cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: serve: {e}");
                ExitCode::from(2)
            }
        };
    }

    if mode == "client" {
        let timeout = Duration::from_secs(client_timeout_secs);
        let addr = match (server, &endpoint_file) {
            (Some(a), _) => a,
            (None, Some(f)) => match client::read_endpoint(f, Duration::from_secs(30)) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: client: {e}");
                    return ExitCode::from(2);
                }
            },
            (None, None) => {
                eprintln!("error: client needs --server or --endpoint-file");
                return usage();
            }
        };
        if do_healthz {
            return match client::request(&addr, "GET", "/healthz", "") {
                Ok(resp) => {
                    print!("{}", String::from_utf8_lossy(&resp.body));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: client: healthz: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        if do_drain {
            return match client::request(&addr, "POST", "/drain", "") {
                Ok(resp) if resp.status == 200 => ExitCode::SUCCESS,
                Ok(resp) => {
                    eprintln!("error: client: drain: HTTP {}", resp.status);
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: client: drain: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        let opts = client::ClientOpts {
            server: addr,
            endpoint_file,
            artifacts: if client_artifacts.is_empty() {
                campaign::artifacts()
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            } else {
                client_artifacts
            },
            scale_name,
            json,
            deadline_ms,
            concurrency,
            out_dir: client_out_dir,
            timeout,
        };
        if let Some(n) = flood_n {
            let artifact = opts.artifacts.first().cloned().unwrap_or_default();
            return match client::flood(&opts, &artifact, n) {
                Ok((accepted, shed)) => {
                    println!("{{\"flood\": {n}, \"accepted\": {accepted}, \"shed\": {shed}}}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: client: flood: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        return match client::run_workload(&opts) {
            Ok(results) => {
                let degraded = results.iter().filter(|r| r.output.is_none()).count();
                if degraded > 0 {
                    eprintln!("client: {degraded} job(s) finished degraded");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Serial path: render through the same definition campaign workers
    // use, so bytes agree by construction.
    // `None` = unknown artifact; `Some(Err)` = the job itself failed (a
    // job-level error is reported and the run continues).
    let run_one = |name: &str| -> Option<Result<(), String>> {
        match campaign::render_artifact(name, scale, json)? {
            Ok(rendered) => {
                print!("{rendered}");
                Some(Ok(()))
            }
            Err(e) => Some(Err(e)),
        }
    };

    if mode == "all" {
        let mut failed = 0u32;
        for name in campaign::artifacts() {
            eprintln!("== {name} ==");
            if let Some(Err(e)) = run_one(name) {
                eprintln!("error: {name}: {e}");
                failed += 1;
            }
        }
        if failed > 0 {
            eprintln!("error: {failed} job(s) failed");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    } else {
        match run_one(mode) {
            Some(Ok(())) => ExitCode::SUCCESS,
            Some(Err(e)) => {
                eprintln!("error: {mode}: {e}");
                ExitCode::FAILURE
            }
            None => {
                // The typed registry error: echo exactly what was asked
                // for and point at the catalog.
                let spec = experiments::workload::ScenarioSpec::new(mode, scale, &scale_name);
                match spec.resolve() {
                    Err(e) => eprintln!("error: {e}"),
                    Ok(_) => unreachable!("render_artifact returned None for a known workload"),
                }
                ExitCode::from(2)
            }
        }
    }
}
