//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <artifact> [--scale paper|quick|test] [--json] [--parallel N|ncpu]
//!                  [--trace] [--metrics-every N]
//!                  [--checkpoint-every N] [--checkpoint-dir D] [--resume]
//!                  [--max-retries N] [--kill-after-checkpoints N]
//!
//! artifacts: table1 table2 table3 table4 fig2 fig3 fig7 fig8 fig9 fig10 all
//! ```
//!
//! `--parallel` sets the simulator's phase-A worker-thread count (`ncpu`
//! = all host cores). Results are bit-identical at every setting; it
//! changes wall-clock time only.
//!
//! `--trace` turns on the telemetry event rings and writes a Chrome-trace
//! JSON (`<job>.trace.json`, loadable in Perfetto / `chrome://tracing`)
//! and a windowed-metrics CSV (`<job>.metrics.csv`) next to each job's
//! normal output. `--metrics-every N` overrides the metrics window width
//! in cycles (default: the machine's divergence window). Neither flag
//! changes any reported number.
//!
//! The checkpoint flags drive the supervised runner (`DESIGN.md` §9):
//! `--checkpoint-every N` snapshots every N simulated cycles,
//! `--checkpoint-dir D` persists the snapshots to `D/<job>.ckpt`, and
//! `--resume` restores each job from its last on-disk snapshot before
//! running — bit-identical to an uninterrupted run. `--max-retries`
//! bounds fault/deadlock rollback retries per phase.
//! `--kill-after-checkpoints N` is a deterministic test hook that exits
//! the process (code 42) after N snapshot writes, so CI can rehearse a
//! mid-campaign kill without timing races.

use experiments::runner::Scale;
use experiments::supervisor::{self, Policy};
use experiments::{ablation, fig10, fig2, fig3, fig7, fig8, fig9, table1, table2, table3, table4};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table1|table2|table3|table4|fig2|fig3|fig7|fig8|fig9|fig10|all> \
         [--scale paper|quick|test] [--json] [--parallel N|ncpu] \
         [--trace] [--metrics-every N] \
         [--checkpoint-every N] [--checkpoint-dir D] [--resume] \
         [--max-retries N] [--kill-after-checkpoints N]"
    );
    ExitCode::from(2)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit<T: std::fmt::Display>(artifact: &str, value: &T, json: bool) {
    if json {
        // Rendered text as a JSON string; the full serde_json pipeline is
        // unavailable offline and downstream tooling only greps the text.
        println!(
            "{{\"artifact\":\"{}\",\"data\":\"{}\"}}",
            json_escape(artifact),
            json_escape(&value.to_string())
        );
    } else {
        println!("{value}");
        println!();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let artifact = args[0].as_str();
    let mut scale = Scale::quick();
    let mut json = false;
    let mut policy = Policy::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint-every" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => policy.checkpoint_every = n,
                    _ => return usage(),
                }
            }
            "--checkpoint-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => policy.checkpoint_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--resume" => policy.resume = true,
            "--max-retries" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) => policy.max_retries = n,
                    None => return usage(),
                }
            }
            "--kill-after-checkpoints" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => policy.kill_after_checkpoints = Some(n),
                    _ => return usage(),
                }
            }
            "--scale" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| Scale::parse(s)) else {
                    return usage();
                };
                scale = s;
            }
            "--json" => json = true,
            "--trace" => experiments::set_trace(true),
            "--metrics-every" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => experiments::set_metrics_every(n),
                    _ => return usage(),
                }
            }
            "--parallel" => {
                i += 1;
                let n = match args.get(i).map(String::as_str) {
                    Some("ncpu") => std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1),
                    Some(s) => match s.parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => return usage(),
                    },
                    None => return usage(),
                };
                experiments::set_parallelism(n);
            }
            _ => return usage(),
        }
        i += 1;
    }
    supervisor::set_policy(policy);

    // `None` = unknown artifact; `Some(Err)` = the job itself failed (a
    // job-level error is reported and the campaign continues).
    let run_one = |name: &str| -> Option<Result<(), String>> {
        match name {
            "table1" => emit("table1", &table1::run(), json),
            "table2" => emit("table2", &table2::run(), json),
            "table3" => emit("table3", &table3::run(scale), json),
            "table4" => emit("table4", &table4::run(scale), json),
            "fig2" => match fig2::run() {
                Ok(f) => emit("fig2", &f, json),
                Err(e) => return Some(Err(format!("kernel assembly failed: {e}"))),
            },
            "fig3" => emit("fig3", &fig3::run(scale), json),
            "fig7" => emit("fig7", &fig7::run(scale), json),
            "fig8" => emit("fig8", &fig8::run(scale), json),
            "fig9" => emit("fig9", &fig9::run(scale), json),
            "fig10" => emit("fig10", &fig10::run(scale), json),
            "ablation" => emit("ablation", &ablation::run(scale), json),
            "shadow" => emit("shadow", &experiments::shadow::run(scale), json),
            _ => return None,
        }
        Some(Ok(()))
    };

    if artifact == "all" {
        let mut failed = 0u32;
        for name in [
            "table1", "table2", "table3", "table4", "fig2", "fig3", "fig7", "fig8", "fig9",
            "fig10", "ablation", "shadow",
        ] {
            eprintln!("== {name} ==");
            if let Some(Err(e)) = run_one(name) {
                eprintln!("error: {name}: {e}");
                failed += 1;
            }
        }
        if failed > 0 {
            eprintln!("error: {failed} job(s) failed");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    } else {
        match run_one(artifact) {
            Some(Ok(())) => ExitCode::SUCCESS,
            Some(Err(e)) => {
                eprintln!("error: {artifact}: {e}");
                ExitCode::FAILURE
            }
            None => usage(),
        }
    }
}
