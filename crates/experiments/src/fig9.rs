//! Fig. 9 — divergence breakdown with spawn-memory bank conflicts
//! (conference benchmark).
//!
//! The paper reports 429 IPC here — still 1.3× the traditional hardware —
//! with extra pipeline stalls from serialized conflicting accesses to the
//! spawn memory space.

use crate::configs::Variant;
use crate::fig3::{self, divergence_figure, DivergenceFigure};
use crate::runner::Scale;
use serde::Serialize;
use std::fmt;

/// Fig. 9 plus comparisons against Figs. 3 and 7.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// μ-kernels with bank conflicts modeled.
    pub with_conflicts: DivergenceFigure,
    /// μ-kernels without conflicts (Fig. 7 configuration).
    pub without_conflicts: DivergenceFigure,
    /// Traditional baseline (Fig. 3 configuration).
    pub traditional: DivergenceFigure,
    /// Bank-conflict serialization passes observed in spawn memory.
    pub conflict_passes: u64,
}

impl Fig9 {
    /// IPC over the traditional baseline (paper: 1.3×).
    pub fn ipc_ratio_vs_traditional(&self) -> f64 {
        if self.traditional.ipc == 0.0 {
            0.0
        } else {
            self.with_conflicts.ipc / self.traditional.ipc
        }
    }
}

/// Runs the three configurations on the conference benchmark.
pub fn run(scale: Scale) -> Fig9 {
    let scene = raytrace::scenes::conference(scale.scene);
    let with_run = crate::runner::RenderRun::execute(&scene, Variant::DynamicConflicts, scale);
    let conflict_passes = with_run
        .summary
        .traffic
        .space(simt_isa::Space::Spawn)
        .bank_conflict_passes;
    let d = &with_run.summary.stats.divergence;
    let with_conflicts = DivergenceFigure {
        variant: Variant::DynamicConflicts.to_string(),
        labels: d.labels(),
        windows: d.windows().iter().map(|w| w.to_vec()).collect(),
        window_cycles: d.window(),
        ipc: with_run.ipc(),
        mean_active_lanes: d.mean_active_lanes(),
        rays_completed: with_run.summary.stats.lineages_completed,
        health: with_run.fault_health(),
    };
    Fig9 {
        with_conflicts,
        without_conflicts: divergence_figure(Variant::Dynamic, scale),
        traditional: fig3::run(scale),
        conflict_passes,
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.with_conflicts)?;
        writeln!(
            f,
            "  spawn-memory conflict passes: {}",
            self.conflict_passes
        )?;
        writeln!(
            f,
            "  IPC: no-conflicts {:.0}, with conflicts {:.0}, traditional {:.0}",
            self.without_conflicts.ipc, self.with_conflicts.ipc, self.traditional.ipc
        )?;
        write!(
            f,
            "  with-conflicts vs traditional: {:.2}x (paper: 429 vs 326, 1.3x)",
            self.ipc_ratio_vs_traditional()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_cost_performance_but_stay_ahead_of_zero() {
        let fig = run(Scale::test());
        assert!(fig.conflict_passes > 0, "conflicts must actually occur");
        assert!(
            fig.with_conflicts.ipc <= fig.without_conflicts.ipc,
            "conflicts cannot speed things up: {} vs {}",
            fig.with_conflicts.ipc,
            fig.without_conflicts.ipc
        );
        assert!(fig.with_conflicts.ipc > 0.0);
    }
}
