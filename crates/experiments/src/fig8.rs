//! Fig. 8 — performance (million rays per second) for all benchmarks
//! under the different branching and scheduling methods.
//!
//! The paper's ordering: dynamic μ-kernels > PDOM Warp > PDOM Block, with
//! dynamic averaging 1.4× the traditional hardware.

use crate::configs::Variant;
use crate::runner::{RenderRun, Scale};
use raytrace::scenes;
use serde::Serialize;
use std::fmt;

/// One (scene, variant) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct PerfPoint {
    /// Scene name.
    pub scene: &'static str,
    /// Variant label.
    pub variant: String,
    /// Million rays per second.
    pub mrays_per_second: f64,
    /// Rays completed in the simulated window.
    pub rays_completed: u64,
    /// Average IPC.
    pub ipc: f64,
}

/// The regenerated Fig. 8.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// All measurements, scene-major in the paper's presentation order.
    pub points: Vec<PerfPoint>,
}

/// The variants plotted in the paper's Fig. 8.
pub const FIG8_VARIANTS: [Variant; 3] = [Variant::PdomBlock, Variant::PdomWarp, Variant::Dynamic];

impl Fig8 {
    fn value(&self, scene: &str, variant: Variant) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.scene == scene && p.variant == variant.to_string())
            .map(|p| p.mrays_per_second)
    }

    /// Mean speedup of dynamic μ-kernels over the traditional hardware
    /// baseline (PDOM Block), across scenes (paper: 1.4×).
    pub fn mean_dynamic_speedup(&self) -> f64 {
        let scenes: Vec<&str> = self
            .points
            .iter()
            .map(|p| p.scene)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut total = 0.0;
        let mut n = 0;
        for s in scenes {
            if let (Some(d), Some(b)) = (
                self.value(s, Variant::Dynamic),
                self.value(s, Variant::PdomBlock),
            ) {
                if b > 0.0 {
                    total += d / b;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

/// Measures every scene × variant combination.
pub fn run(scale: Scale) -> Fig8 {
    let mut points = Vec::new();
    for scene in scenes::all(scale.scene) {
        for variant in FIG8_VARIANTS {
            let r = RenderRun::execute(&scene, variant, scale);
            points.push(PerfPoint {
                scene: scene.name,
                variant: variant.to_string(),
                mrays_per_second: r.mrays_per_second(),
                rays_completed: r.summary.stats.lineages_completed,
                ipc: r.ipc(),
            });
        }
    }
    Fig8 { points }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8 — rays per second by benchmark and method")?;
        writeln!(
            f,
            "  {:<12} {:<22} {:>10} {:>12} {:>8}",
            "scene", "method", "Mrays/s", "rays done", "IPC"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:<12} {:<22} {:>10.1} {:>12} {:>8.0}",
                p.scene, p.variant, p.mrays_per_second, p.rays_completed, p.ipc
            )?;
        }
        write!(
            f,
            "  mean dynamic speedup over traditional hardware: {:.2}x (paper: 1.4x)",
            self.mean_dynamic_speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_nine_points() {
        let fig = run(Scale::test());
        assert_eq!(fig.points.len(), 9);
        for p in &fig.points {
            assert!(p.ipc > 0.0, "{} {}", p.scene, p.variant);
        }
    }

    #[test]
    fn speedup_metric_is_finite() {
        let fig = run(Scale::test());
        let s = fig.mean_dynamic_speedup();
        assert!(s.is_finite());
    }
}
