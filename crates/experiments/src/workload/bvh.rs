//! # `bvh` — the BVH path-tracer workload
//!
//! A multi-bounce diffuse path tracer over a bounding-volume hierarchy
//! (`raytrace::Bvh`), run under both the traditional looped kernel and
//! the hand-split μ-kernel decomposition from `rt-kernels`
//! (`pt_traditional` / `pt_ukernel`). Per path the μ-kernel form spawns
//! a chain of `p_node` → `p_isect` → `p_pop` threads across up to four
//! bounce segments — markedly deeper spawn chains than the kd tracer's
//! single traversal, which is what makes it a useful second data point
//! for the architecture.
//!
//! Ground truth: both kernels share their float-op fragments
//! instruction-for-instruction with a host mirror
//! (`rt_kernels::pt_render::host_path_trace`), so the rendered image is
//! validated **bit-exactly** — any mismatch is a job-level error, not a
//! tolerance warning. The reported image hash is the FNV-1a-64 of the
//! per-pixel radiance bits, the value CI pins.

use super::{page, Group, Workload};
use crate::configs::{gpu_for, Variant};
use crate::runner::Scale;
use rt_kernels::pt_render::{image_hash, PtSetup};
use rt_kernels::{pt_traditional, pt_ukernel};
use simt_isa::codec::Encoder;
use simt_sim::RunOutcome;
use std::fmt;

/// Machine variants the workload runs standalone.
pub const VARIANTS: [Variant; 2] = [Variant::PdomWarp, Variant::Dynamic];

/// Cycle budget per render; generous — both kernels run to completion
/// (a budget hit is a job-level error, never a silent truncation).
const CYCLE_BUDGET: u64 = 4_000_000_000;

/// Square image edge at `scale`: a quarter of the kd workloads'
/// resolution (path tracing traces up to four segments per pixel), with
/// a floor that keeps at least two warps of rays alive.
pub fn resolution(scale: Scale) -> u32 {
    (scale.resolution / 4).max(8)
}

/// One variant's measured render.
#[derive(Debug, Clone)]
pub struct PtVariantRun {
    /// Machine variant.
    pub variant: Variant,
    /// Cycles to completion.
    pub cycles: u64,
    /// Whole-run SIMT efficiency.
    pub efficiency: f64,
    /// Dynamically spawned threads (0 under PDOM).
    pub threads_spawned: u64,
    /// FNV-1a-64 of the device image.
    pub image_hash: u64,
    /// Exact per-pixel mismatches against the host mirror (must be 0).
    pub mismatches: usize,
    /// Aggregate occupancy-bucket totals (idle bucket first) over the
    /// run's divergence windows, Figs. 3/7/9 style.
    pub buckets: Vec<u64>,
}

/// The rendered figure.
#[derive(Debug, Clone)]
pub struct PtFigure {
    /// Scene name.
    pub scene: String,
    /// Image edge (square).
    pub resolution: u32,
    /// Host-reference image hash.
    pub host_hash: u64,
    /// Occupancy bucket labels.
    pub labels: Vec<String>,
    /// One entry per rendered variant.
    pub runs: Vec<PtVariantRun>,
}

/// Renders one variant and validates it against the host mirror.
fn run_variant(scale: Scale, variant: Variant) -> Result<PtVariantRun, String> {
    let scene = raytrace::scenes::conference(scale.scene);
    let edge = resolution(scale);
    let mut gpu = gpu_for(variant);
    let setup = PtSetup::upload(&mut gpu, &scene, edge, edge);
    if variant.is_dynamic() {
        setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    } else {
        setup.launch_traditional(&mut gpu, scale.threads_per_block);
    }
    let summary = gpu
        .run(CYCLE_BUDGET)
        .map_err(|e| format!("bvh under {variant} faulted: {e:?}"))?;
    if summary.outcome != RunOutcome::Completed {
        return Err(format!(
            "bvh under {variant} did not complete within {CYCLE_BUDGET} cycles: {:?}",
            summary.outcome
        ));
    }
    let host = setup.host_reference();
    let device = setup.device_results(&gpu);
    let mismatches = rt_kernels::pt_render::exact_mismatches(&host, &device);
    let report = gpu.telemetry_report();
    let mut buckets = Vec::new();
    for window in report.divergence.windows() {
        if buckets.len() < window.len() {
            buckets.resize(window.len(), 0u64);
        }
        for (b, n) in window.iter().enumerate() {
            buckets[b] += n;
        }
    }
    Ok(PtVariantRun {
        variant,
        cycles: summary.stats.cycles,
        efficiency: summary.stats.simt_efficiency(32),
        threads_spawned: summary.stats.threads_spawned,
        image_hash: image_hash(&device),
        mismatches,
        buckets,
    })
}

/// Runs the workload at `scale`, optionally narrowed to one variant.
///
/// # Errors
///
/// Simulator faults, a blown cycle budget, or any bit-level deviation
/// from the host reference image.
pub fn run(scale: Scale, only: Option<Variant>) -> Result<PtFigure, String> {
    let scene = raytrace::scenes::conference(scale.scene);
    let edge = resolution(scale);
    let variants: Vec<Variant> = match only {
        Some(v) => vec![v],
        None => VARIANTS.to_vec(),
    };
    // The host reference is variant-independent; compute it once.
    let setup = {
        let mut probe = gpu_for(Variant::PdomWarp);
        PtSetup::upload(&mut probe, &scene, edge, edge)
    };
    let host = setup.host_reference();
    let host_hash = image_hash(&host);
    let mut labels = Vec::new();
    let mut runs = Vec::new();
    for &variant in &variants {
        let r = run_variant(scale, variant)?;
        if r.mismatches > 0 || r.image_hash != host_hash {
            return Err(format!(
                "bvh under {variant}: device image diverged from the host \
                 reference ({} exact mismatches, hash {:016x} vs {:016x})",
                r.mismatches, r.image_hash, host_hash
            ));
        }
        runs.push(r);
    }
    if labels.is_empty() {
        let gpu = gpu_for(Variant::PdomWarp);
        labels = gpu.telemetry_report().divergence.labels();
    }
    Ok(PtFigure {
        scene: scene.name.to_string(),
        resolution: edge,
        host_hash,
        labels,
        runs,
    })
}

impl fmt::Display for PtFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BVH path tracer — {scene} at {res}x{res}, {bounces}-segment diffuse GI",
            scene = self.scene,
            res = self.resolution,
            bounces = rt_kernels::PT_MAX_BOUNCES,
        )?;
        writeln!(f, "  host reference image hash: {:016x}", self.host_hash)?;
        for r in &self.runs {
            writeln!(
                f,
                "  {:<24} cycles {:>12}  efficiency {:>5.1}%  spawned {:>8}  \
                 image {:016x} (matches host)",
                r.variant.to_string(),
                r.cycles,
                r.efficiency * 100.0,
                r.threads_spawned,
                r.image_hash
            )?;
        }
        writeln!(f, "  occupancy buckets ({}):", self.labels.join(", "))?;
        for r in &self.runs {
            let total: u64 = r.buckets.iter().sum();
            write!(f, "    {:<18}", r.variant.wire_name())?;
            for b in &r.buckets {
                let pct = if total > 0 {
                    *b as f64 * 100.0 / total as f64
                } else {
                    0.0
                };
                write!(f, " {pct:>5.1}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The registry entry.
pub struct BvhPathTracer;

impl Workload for BvhPathTracer {
    fn id(&self) -> &'static str {
        "bvh"
    }

    fn description(&self) -> &'static str {
        "BVH path tracer — multi-bounce diffuse GI, bit-exact against the host mirror"
    }

    fn group(&self) -> Group {
        Group::Extended
    }

    fn variants(&self) -> &'static [Variant] {
        &VARIANTS
    }

    fn render(&self, scale: Scale, variant: Option<Variant>, json: bool) -> Result<String, String> {
        let name = match variant {
            Some(v) => format!("{}@{}", self.id(), v.wire_name()),
            None => self.id().to_string(),
        };
        Ok(page(&name, &run(scale, variant)?, json))
    }

    fn extend_fingerprint(&self, enc: &mut Encoder, scale: Scale) {
        enc.put_str("bvh-pt-v1");
        enc.put_u32(resolution(scale));
        for program in [pt_traditional::program(), pt_ukernel::program()] {
            enc.put_u64(
                simt_sim::program_digest(&program).expect("embedded kernels encode losslessly"),
            );
        }
    }

    fn simd_efficiency(&self, scale: Scale) -> Option<Vec<(String, f64)>> {
        let fig = run(scale, None).ok()?;
        Some(
            fig.runs
                .iter()
                .map(|r| (r.variant.wire_name().to_string(), r.efficiency))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_match_the_host_image_at_test_scale() {
        let fig = run(Scale::test(), None).expect("bvh workload runs");
        assert_eq!(fig.runs.len(), 2);
        for r in &fig.runs {
            assert_eq!(r.mismatches, 0, "{} diverged", r.variant);
            assert_eq!(r.image_hash, fig.host_hash);
            assert!(!r.buckets.is_empty(), "divergence buckets missing");
        }
        // The μ-kernel run actually spawns; the looped run never does.
        assert_eq!(fig.runs[0].threads_spawned, 0);
        assert!(fig.runs[1].threads_spawned > 0);
        let text = fig.to_string();
        assert!(text.contains("matches host"), "{text}");
    }

    #[test]
    fn variant_narrowing_runs_a_single_column() {
        let fig = run(Scale::test(), Some(Variant::Dynamic)).expect("narrowed run");
        assert_eq!(fig.runs.len(), 1);
        assert_eq!(fig.runs[0].variant, Variant::Dynamic);
    }
}
