//! The twelve source-paper artifacts as registry workloads.
//!
//! Each is a zero-sized wrapper over the figure/table module that has
//! always rendered it; the rendered bytes go through
//! [`super::page`] unchanged, so `repro all` output stays byte-identical
//! to the pre-registry stringly-typed dispatch. The
//! `paper_workload!` macro is the boilerplate these twelve arms used to
//! duplicate in `render_artifact`'s match.

use super::{page, Group, Workload};
use crate::configs::Variant;
use crate::runner::Scale;
use crate::{
    ablation, fig10, fig2, fig3, fig7, fig8, fig9, shadow, table1, table2, table3, table4,
};

/// Defines one paper-group workload: unit struct, frozen id, one-line
/// description, and a closure from [`Scale`] to the `Display` value the
/// figure/table module produces.
macro_rules! paper_workload {
    ($ty:ident, $id:literal, $desc:literal, |$scale:ident| $run:expr) => {
        /// Paper artifact (see the module-level docs).
        pub(super) struct $ty;

        impl Workload for $ty {
            fn id(&self) -> &'static str {
                $id
            }

            fn description(&self) -> &'static str {
                $desc
            }

            fn group(&self) -> Group {
                Group::Paper
            }

            fn render(
                &self,
                $scale: Scale,
                _variant: Option<Variant>,
                json: bool,
            ) -> Result<String, String> {
                Ok(page($id, &$run, json))
            }
        }
    };
}

paper_workload!(
    Table1,
    "table1",
    "Table I — the simulated FX5800-class machine configuration",
    |_scale| table1::run()
);
paper_workload!(
    Table2,
    "table2",
    "Table II — per-thread memory footprint of the kd-tree tracer",
    |_scale| table2::run()
);
paper_workload!(
    Table3,
    "table3",
    "Table III — scene statistics and host-reference validation",
    |scale| table3::run(scale)
);
paper_workload!(
    Table4,
    "table4",
    "Table IV — instruction overhead of the μ-kernel decomposition",
    |scale| table4::run(scale)
);
paper_workload!(
    Fig3,
    "fig3",
    "Fig. 3 — warp-occupancy distribution of the traditional tracer",
    |scale| fig3::run(scale)
);
paper_workload!(
    Fig7,
    "fig7",
    "Fig. 7 — occupancy distribution under dynamic μ-kernels",
    |scale| fig7::run(scale)
);
paper_workload!(
    Fig8,
    "fig8",
    "Fig. 8 — speedup of dynamic μ-kernels over the PDOM baselines",
    |scale| fig8::run(scale)
);
paper_workload!(
    Fig9,
    "fig9",
    "Fig. 9 — occupancy with spawn-memory bank conflicts modelled",
    |scale| fig9::run(scale)
);
paper_workload!(
    Fig10,
    "fig10",
    "Fig. 10 — ideal-memory limit study of both architectures",
    |scale| fig10::run(scale)
);
paper_workload!(
    Ablation,
    "ablation",
    "Ablation — μ-kernel features toggled one at a time",
    |scale| ablation::run(scale)
);
paper_workload!(
    Shadow,
    "shadow",
    "Shadow — secondary-ray workload on both architectures",
    |scale| shadow::run(scale)
);

/// Fig. 2 is the one paper artifact whose runner returns a `Result`
/// (its kernel assembles at run time), so it implements the trait by
/// hand instead of through the macro.
pub(super) struct Fig2;

impl Workload for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn description(&self) -> &'static str {
        "Fig. 2 — PDOM lane-occupancy decay of one data-dependent loop"
    }

    fn group(&self) -> Group {
        Group::Paper
    }

    fn render(
        &self,
        _scale: Scale,
        _variant: Option<Variant>,
        json: bool,
    ) -> Result<String, String> {
        match fig2::run() {
            Ok(f) => Ok(page("fig2", &f, json)),
            Err(e) => Err(format!("kernel assembly failed: {e}")),
        }
    }
}
