//! # `microdiv` — the divergence microbenchmark family
//!
//! Data-dependent loop-trip-count kernels with *controllable* lane
//! imbalance, after Bialas & Strzelecki's SIMD-efficiency
//! microbenchmarks (arXiv:1504.01650): every lane runs the same tiny
//! LCG loop body, but its trip count follows one of four patterns —
//! `uniform` (no divergence), `ramp` (linear imbalance), `mod4` (short
//! period), `hotlane` (one straggler per warp). Because the trip counts
//! are known in closed form, so is the PDOM SIMD efficiency:
//!
//! * **PDOM bound** — lanes of a warp reconverge only after the slowest
//!   lane: `Σᵢ tᵢ / (W · Σ_warps max tᵢ)`.
//! * **Packed bound** — an ideal compaction machine re-packs the lanes
//!   still looping each iteration level: `Σ_level live / (W · Σ_level
//!   ⌈live/W⌉)` — what dynamic μ-kernel spawning approximates.
//!
//! Both variants compute the identical per-lane LCG accumulator, checked
//! exactly against a host reference, so the efficiency comparison is
//! grounded by ground truth. The measured efficiencies sit below the
//! loop-body bounds (prologue, epilogue, and spawn save/restore
//! instructions all issue at full or partial occupancy too), but track
//! their ordering — which is exactly what the figure shows.

use super::{page, Group, Workload};
use crate::configs::{telemetry_spec, Variant};
use crate::runner::Scale;
use dmk_core::DmkConfig;
use raytrace::scenes::SceneScale;
use simt_isa::assemble_named;
use simt_isa::codec::Encoder;
use simt_sim::{Gpu, GpuConfig, Launch, RunOutcome};
use std::fmt;

/// Warp width of every machine the family runs on.
const WARP: u32 = 32;

/// LCG multiplier of the loop body (Numerical Recipes).
const LCG_MUL: i32 = 1_664_525;

/// The trip-count patterns, in presentation order.
pub const PATTERNS: [&str; 4] = ["uniform", "ramp", "mod4", "hotlane"];

/// Machine variants the family runs standalone.
pub const VARIANTS: [Variant; 2] = [Variant::PdomWarp, Variant::Dynamic];

/// Thread count at a scene scale (whole warps, several per block so
/// compaction across warps has something to pack).
pub(crate) fn threads(scene: SceneScale) -> u32 {
    match scene {
        SceneScale::Tiny => 64,
        SceneScale::Small => 128,
        SceneScale::Full => 256,
    }
}

/// Trip-count cap at a scene scale (power of two ≤ warp width).
pub(crate) fn trip_cap(scene: SceneScale) -> u32 {
    match scene {
        SceneScale::Tiny => 8,
        SceneScale::Small => 16,
        SceneScale::Full => 32,
    }
}

/// Closed-form trip count of `tid` under `pattern` with cap `cap`.
fn trips(pattern: &str, tid: u32, cap: u32) -> u32 {
    match pattern {
        "uniform" => cap / 2,
        "ramp" => (tid & (cap - 1)) + 1,
        "mod4" => (tid & 3) + 1,
        "hotlane" => {
            if tid % WARP == WARP - 1 {
                cap
            } else {
                1
            }
        }
        other => unreachable!("unregistered pattern {other}"),
    }
}

/// Emits the trip-count computation into `r{rout}` from the thread id
/// in `r{rtid}` (scratch `r{rscratch}`, predicate p0) — the only part
/// of either kernel that differs between patterns.
fn trips_fragment(pattern: &str, cap: u32, rtid: u8, rout: u8, rscratch: u8) -> String {
    match pattern {
        "uniform" => format!("    mov.u32 r{rout}, {}\n", cap / 2),
        "ramp" => format!(
            "    and.b32 r{rout}, r{rtid}, {}\n    add.s32 r{rout}, r{rout}, 1\n",
            cap - 1
        ),
        "mod4" => format!("    and.b32 r{rout}, r{rtid}, 3\n    add.s32 r{rout}, r{rout}, 1\n"),
        "hotlane" => format!(
            "    and.b32 r{rscratch}, r{rtid}, {}\n\
             \x20   setp.eq.s32 p0, r{rscratch}, {}\n\
             \x20   mov.u32 r{rout}, 1\n\
             \x20   mov.u32 r{rscratch}, {cap}\n\
             \x20   selp.b32 r{rout}, r{rscratch}, r{rout}, p0\n",
            WARP - 1,
            WARP - 1
        ),
        other => unreachable!("unregistered pattern {other}"),
    }
}

/// Source of the traditional (looped, PDOM) kernel: a backward branch
/// per LCG iteration, the paper's Example 1 shape at its smallest.
pub fn loop_source(pattern: &str, cap: u32, out_base: u32) -> String {
    format!(
        r#"
.kernel main
main:
    mov.u32 r1, %tid
{trips}    mov.u32 r3, 0
    add.s32 r5, r1, 1
body:
    mul.lo.s32 r3, r3, {LCG_MUL}
    add.s32 r3, r3, r5
    sub.s32 r2, r2, 1
    setp.gt.s32 p0, r2, 0
    @p0 bra body
    mul.lo.s32 r4, r1, 4
    add.s32 r4, r4, {out_base}
    st.global.u32 [r4+0], r3
    exit
"#,
        trips = trips_fragment(pattern, cap, 1, 2, 6),
    )
}

/// Source of the dynamic μ-kernel version: the loop is gone; each LCG
/// iteration is one self-spawn of `k_iter`, carrying a 16-byte state
/// record `[acc, remaining, addend, tid]` through spawn memory — the
/// smallest possible μ-kernel decomposition, so its warp compaction is
/// directly comparable to the analytic packed bound.
pub fn spawn_source(pattern: &str, cap: u32, out_base: u32) -> String {
    format!(
        r#"
.kernel main
.kernel k_iter
.spawnstate 16

main:
    mov.u32 r7, %tid
{trips}    mov.u32 r4, 0
    add.s32 r6, r7, 1
    mov.u32 r2, %spawnmem
    st.spawn.v4 [r2+0], r4
    spawn $k_iter, r2
    exit

k_iter:
    mov.u32 r2, %spawnmem
    ld.spawn.u32 r2, [r2+0]
    ld.spawn.v4 r4, [r2+0]
    mul.lo.s32 r4, r4, {LCG_MUL}
    add.s32 r4, r4, r6
    sub.s32 r5, r5, 1
    setp.gt.s32 p0, r5, 0
    @p0 bra k_more
    mul.lo.s32 r3, r7, 4
    add.s32 r3, r3, {out_base}
    st.global.u32 [r3+0], r4
    exit
k_more:
    st.spawn.v4 [r2+0], r4
    spawn $k_iter, r2
    exit
"#,
        trips = trips_fragment(pattern, cap, 7, 5, 8),
    )
}

/// Expected accumulator of `tid` after its trips (bit-exact: `mul.lo`
/// and `add.s32` are wrapping 32-bit ops).
pub(crate) fn host_acc(pattern: &str, tid: u32, cap: u32) -> u32 {
    let mut acc: i32 = 0;
    for _ in 0..trips(pattern, tid, cap) {
        acc = acc.wrapping_mul(LCG_MUL).wrapping_add(tid as i32 + 1);
    }
    acc as u32
}

/// Analytic PDOM SIMT efficiency of the loop body: lanes reconverge
/// after the slowest lane of their warp.
pub fn analytic_pdom(pattern: &str, n: u32, cap: u32) -> f64 {
    let mut work = 0u64;
    let mut issued = 0u64;
    for warp in 0..n / WARP {
        let lanes: Vec<u32> = (warp * WARP..(warp + 1) * WARP)
            .map(|t| trips(pattern, t, cap))
            .collect();
        work += lanes.iter().map(|&t| u64::from(t)).sum::<u64>();
        issued += u64::from(WARP) * u64::from(*lanes.iter().max().unwrap_or(&0));
    }
    work as f64 / issued as f64
}

/// Analytic efficiency of ideal per-iteration warp compaction (the
/// bound dynamic μ-kernel spawning approximates).
pub fn analytic_packed(pattern: &str, n: u32, cap: u32) -> f64 {
    let mut work = 0u64;
    let mut issued = 0u64;
    for level in 1..=cap {
        let live = (0..n).filter(|&t| trips(pattern, t, cap) >= level).count() as u64;
        if live == 0 {
            continue;
        }
        work += live;
        issued += u64::from(WARP) * live.div_ceil(u64::from(WARP));
    }
    work as f64 / issued as f64
}

/// One pattern's measured column under one variant.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The machine variant.
    pub variant: Variant,
    /// Measured whole-run SIMT efficiency.
    pub efficiency: f64,
    /// Aggregate occupancy-bucket totals (idle bucket first), summed
    /// over the run's divergence windows — the same buckets Figs. 3/7/9
    /// histogram.
    pub buckets: Vec<u64>,
    /// Device accumulators matched the host LCG reference exactly.
    pub host_ok: bool,
}

/// One trip-count pattern's row of the figure.
#[derive(Debug, Clone)]
pub struct PatternRow {
    /// Pattern name.
    pub pattern: &'static str,
    /// Total loop iterations across all threads.
    pub total_trips: u64,
    /// Analytic PDOM loop-body bound.
    pub analytic_pdom: f64,
    /// Analytic ideal-compaction loop-body bound.
    pub analytic_packed: f64,
    /// Measured columns, one per rendered variant.
    pub measured: Vec<Measured>,
}

/// The rendered microbenchmark figure.
#[derive(Debug, Clone)]
pub struct MicrodivFigure {
    /// Threads per run.
    pub threads: u32,
    /// Trip-count cap.
    pub cap: u32,
    /// Occupancy bucket labels (shared by every row).
    pub labels: Vec<String>,
    /// One row per pattern.
    pub rows: Vec<PatternRow>,
}

/// Builds the machine for one variant: one SM, ideal memory (the study
/// isolates branching, like Fig. 2), warp-granular scheduling; the
/// dynamic variant adds DMK hardware with the family's 16-byte state.
fn machine(variant: Variant) -> Gpu {
    let mut cfg = match variant {
        Variant::Dynamic => {
            let mut dmk = DmkConfig::paper();
            dmk.state_bytes = 16;
            GpuConfig::fx5800_dmk(dmk)
        }
        _ => GpuConfig::fx5800_warp_sched(),
    };
    cfg.num_sms = 1;
    cfg.mem.ideal = true;
    Gpu::builder(cfg).telemetry(telemetry_spec()).build()
}

/// Runs one (pattern × variant) cell and measures it.
fn run_cell(pattern: &str, variant: Variant, n: u32, cap: u32) -> Result<Measured, String> {
    let mut gpu = machine(variant);
    let out_base = gpu.mem_mut().alloc_global(n * 4, "out");
    let source = if variant.is_dynamic() {
        spawn_source(pattern, cap, out_base)
    } else {
        loop_source(pattern, cap, out_base)
    };
    let program = assemble_named(&format!("microdiv-{pattern}"), &source)
        .map_err(|e| format!("microdiv {pattern} kernel assembly failed: {e}"))?;
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 64.min(n),
    })
    .map_err(|e| format!("microdiv {pattern} launch rejected: {e:?}"))?;
    let summary = gpu
        .run(10_000_000)
        .map_err(|e| format!("microdiv {pattern} faulted: {e:?}"))?;
    if summary.outcome != RunOutcome::Completed {
        return Err(format!(
            "microdiv {pattern} did not complete: {:?}",
            summary.outcome
        ));
    }
    let report = gpu.telemetry_report();
    let mut buckets = Vec::new();
    for window in report.divergence.windows() {
        if buckets.len() < window.len() {
            buckets.resize(window.len(), 0u64);
        }
        for (b, n) in window.iter().enumerate() {
            buckets[b] += n;
        }
    }
    let host_ok = (0..n).all(|tid| {
        gpu.mem()
            .read_u32(simt_isa::Space::Global, out_base + tid * 4)
            == host_acc(pattern, tid, cap)
    });
    Ok(Measured {
        variant,
        efficiency: summary.stats.simt_efficiency(WARP),
        buckets,
        host_ok,
    })
}

/// Runs the family at `scale`, optionally narrowed to one variant.
///
/// # Errors
///
/// Any cell that fails to assemble, launch, complete, or match the host
/// LCG reference is a deterministic job-level error.
pub fn run(scale: Scale, only: Option<Variant>) -> Result<MicrodivFigure, String> {
    let n = threads(scale.scene);
    let cap = trip_cap(scale.scene);
    let variants: Vec<Variant> = match only {
        Some(v) => vec![v],
        None => VARIANTS.to_vec(),
    };
    let mut labels = Vec::new();
    let mut rows = Vec::new();
    for pattern in PATTERNS {
        let mut measured = Vec::new();
        for &variant in &variants {
            let cell = run_cell(pattern, variant, n, cap)?;
            if !cell.host_ok {
                return Err(format!(
                    "microdiv {pattern} under {variant}: device LCG accumulators \
                     diverged from the host reference"
                ));
            }
            measured.push(cell);
        }
        if labels.is_empty() {
            // Bucket labels are machine-wide; borrow them from a probe
            // machine's telemetry shape via the first run instead of
            // re-deriving the format.
            labels = divergence_labels();
        }
        rows.push(PatternRow {
            pattern,
            total_trips: (0..n).map(|t| u64::from(trips(pattern, t, cap))).sum(),
            analytic_pdom: analytic_pdom(pattern, n, cap),
            analytic_packed: analytic_packed(pattern, n, cap),
            measured,
        });
    }
    Ok(MicrodivFigure {
        threads: n,
        cap,
        labels,
        rows,
    })
}

/// Occupancy bucket labels, matching the divergence mirror's layout.
fn divergence_labels() -> Vec<String> {
    let gpu = machine(Variant::PdomWarp);
    gpu.telemetry_report().divergence.labels()
}

impl fmt::Display for MicrodivFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Microdiv — SIMD efficiency under controlled loop imbalance \
             ({} threads, trip cap {})",
            self.threads, self.cap
        )?;
        writeln!(
            f,
            "  {:<8} {:>6} {:>11} {:>13} measured",
            "pattern", "trips", "PDOM bound", "packed bound"
        )?;
        for row in &self.rows {
            write!(
                f,
                "  {:<8} {:>6} {:>10.1}% {:>12.1}%",
                row.pattern,
                row.total_trips,
                row.analytic_pdom * 100.0,
                row.analytic_packed * 100.0
            )?;
            for m in &row.measured {
                write!(
                    f,
                    "  {}={:.1}%",
                    m.variant.wire_name(),
                    m.efficiency * 100.0
                )?;
            }
            writeln!(f, "  host:ok")?;
        }
        writeln!(f, "  occupancy buckets ({}):", self.labels.join(", "))?;
        for row in &self.rows {
            for m in &row.measured {
                let total: u64 = m.buckets.iter().sum();
                write!(f, "    {:<8} {:<18}", row.pattern, m.variant.wire_name())?;
                for b in &m.buckets {
                    let pct = if total > 0 {
                        *b as f64 * 100.0 / total as f64
                    } else {
                        0.0
                    };
                    write!(f, " {pct:>5.1}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// The registry entry.
pub struct Microdiv;

impl Workload for Microdiv {
    fn id(&self) -> &'static str {
        "microdiv"
    }

    fn description(&self) -> &'static str {
        "Divergence microbenchmarks — loop-imbalance patterns with analytic efficiency bounds"
    }

    fn group(&self) -> Group {
        Group::Extended
    }

    fn variants(&self) -> &'static [Variant] {
        &VARIANTS
    }

    fn render(&self, scale: Scale, variant: Option<Variant>, json: bool) -> Result<String, String> {
        let name = match variant {
            Some(v) => format!("{}@{}", self.id(), v.wire_name()),
            None => self.id().to_string(),
        };
        Ok(page(&name, &run(scale, variant)?, json))
    }

    fn extend_fingerprint(&self, enc: &mut Encoder, scale: Scale) {
        enc.put_str("microdiv-v1");
        let n = threads(scale.scene);
        let cap = trip_cap(scale.scene);
        enc.put_u32(n);
        enc.put_u32(cap);
        for pattern in PATTERNS {
            // Fingerprint the kernel *sources* (base address aside): any
            // change to the generated programs re-keys the job.
            enc.put_str(&loop_source(pattern, cap, 0));
            enc.put_str(&spawn_source(pattern, cap, 0));
        }
    }

    fn simd_efficiency(&self, scale: Scale) -> Option<Vec<(String, f64)>> {
        let fig = run(scale, None).ok()?;
        let mut out = Vec::new();
        for row in &fig.rows {
            for m in &row.measured {
                out.push((
                    format!("{}/{}", row.pattern, m.variant.wire_name()),
                    m.efficiency,
                ));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_bounds_are_exact_for_known_patterns() {
        // Uniform trip counts never diverge: both bounds are 1.
        assert_eq!(analytic_pdom("uniform", 64, 8), 1.0);
        assert_eq!(analytic_packed("uniform", 64, 8), 1.0);
        // Ramp over a full warp range: Σ 1..32 / (32·32) = 528/1024.
        assert!((analytic_pdom("ramp", 64, 32) - 528.0 / 1024.0).abs() < 1e-12);
        // One hot lane: (31·1 + 8) / (32·8) per warp.
        assert!((analytic_pdom("hotlane", 64, 8) - 39.0 / 256.0).abs() < 1e-12);
        // Packing never hurts.
        for p in PATTERNS {
            assert!(analytic_packed(p, 128, 16) >= analytic_pdom(p, 128, 16) - 1e-12);
        }
    }

    #[test]
    fn both_variants_match_the_host_lcg_and_the_figure_renders() {
        let fig = run(Scale::test(), None).expect("microdiv family runs");
        assert_eq!(fig.rows.len(), PATTERNS.len());
        for row in &fig.rows {
            assert_eq!(row.measured.len(), VARIANTS.len());
            for m in &row.measured {
                assert!(m.host_ok, "{} under {} diverged", row.pattern, m.variant);
                assert!(m.efficiency > 0.0 && m.efficiency <= 1.0);
                assert!(!m.buckets.is_empty(), "divergence buckets missing");
            }
        }
        let text = fig.to_string();
        assert!(
            text.contains("hotlane") && text.contains("PDOM bound"),
            "{text}"
        );
    }

    #[test]
    fn imbalanced_patterns_lose_efficiency_under_pdom() {
        let fig = run(Scale::test(), Some(Variant::PdomWarp)).expect("pdom column runs");
        let eff = |name: &str| {
            fig.rows
                .iter()
                .find(|r| r.pattern == name)
                .expect("row exists")
                .measured[0]
                .efficiency
        };
        // The uniform pattern is the ceiling; the divergent patterns sit
        // strictly below it, with the hot-lane straggler worst.
        assert!(eff("uniform") > eff("ramp"), "ramp should diverge");
        assert!(eff("ramp") > eff("hotlane"), "hotlane should be worst");
    }

    #[test]
    fn spawning_recovers_efficiency_on_the_ramp_pattern() {
        // The packed bound dominates the PDOM bound on ramp; the dynamic
        // machine should realize a good part of that gap.
        let fig = run(Scale::test(), None).expect("family runs");
        let row = fig
            .rows
            .iter()
            .find(|r| r.pattern == "ramp")
            .expect("ramp row");
        let pdom = row.measured[0].efficiency;
        let dmk = row.measured[1].efficiency;
        assert!(
            dmk > pdom,
            "dynamic spawning should beat PDOM on ramp: dmk={dmk} pdom={pdom}"
        );
    }
}
