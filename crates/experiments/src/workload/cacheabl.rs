//! # `cacheabl` — the cache-ablation figure
//!
//! Runs three workloads with markedly different memory behaviour — the
//! kd-tree primary-ray tracer (pointer-chasing traversal), the BVH path
//! tracer (deep multi-bounce traversal), and the `microdiv` ramp
//! microbenchmark (compute-bound, a deliberate negative control with no
//! load traffic) — across three memory models:
//!
//! * **ideal** — every access is a single-cycle hit (the paper's
//!   "ideal memory" upper bound, Fig. 10 style);
//! * **l1** — per-SM L1 with MSHRs in front of the flat DRAM modules
//!   (the legacy serial phase-B drain path);
//! * **l1+l2** — the full hierarchy: L1 + MSHRs, the banked
//!   SM↔partition interconnect, and the shared L2 slices (the batched
//!   phase-B path).
//!
//! Every cell validates its functional results against the host
//! reference — the memory model is a *timing* model, so any functional
//! deviation between levels is a bug in the cache layer, reported as a
//! job-level error. The figure reports cycles plus per-level hit rates,
//! MSHR merges, and interconnect bank conflicts, and is deterministic:
//! CI renders it twice and `cmp`s the outputs.

use super::{microdiv, page, Group, Workload};
use crate::configs::parallelism;
use crate::runner::Scale;
use rt_kernels::pt_render::{exact_mismatches, image_hash, PtSetup};
use rt_kernels::render::{compare, RenderSetup};
use simt_isa::assemble_named;
use simt_isa::codec::Encoder;
use simt_mem::MemConfig;
use simt_sim::{Gpu, GpuConfig, Launch, RunOutcome};
use std::fmt;

/// Cycle budget per cell; every run goes to completion (a budget hit is
/// a job-level error, never a silent truncation).
const CYCLE_BUDGET: u64 = 4_000_000_000;

/// The ablated memory models, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Single-cycle ideal memory.
    Ideal,
    /// Per-SM L1 + MSHRs over the flat DRAM modules.
    L1Only,
    /// L1 + banked interconnect + shared L2 slices.
    L1L2,
}

/// Presentation order of the memory models.
pub const LEVELS: [MemLevel; 3] = [MemLevel::Ideal, MemLevel::L1Only, MemLevel::L1L2];

impl MemLevel {
    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            MemLevel::Ideal => "ideal",
            MemLevel::L1Only => "l1",
            MemLevel::L1L2 => "l1+l2",
        }
    }

    /// The memory configuration this level ablates to.
    pub fn mem_config(self) -> MemConfig {
        match self {
            MemLevel::Ideal => MemConfig::fx5800().with_ideal(true),
            MemLevel::L1Only => MemConfig::fx5800_cached().with_l2(0),
            MemLevel::L1L2 => MemConfig::fx5800_cached(),
        }
    }
}

/// Builds the machine for one level: the warp-scheduled PDOM baseline
/// (all three workloads run their traditional kernels, so the ablation
/// isolates the memory hierarchy, not branching or spawning).
fn machine(level: MemLevel) -> Gpu {
    let mut cfg = GpuConfig::fx5800_warp_sched();
    cfg.mem = level.mem_config();
    Gpu::builder(cfg).parallelism(parallelism()).build()
}

/// kd-tree image edge at `scale`: half the paper figures' resolution —
/// the cells run to completion, not to a cycle cutoff.
pub fn kd_resolution(scale: Scale) -> u32 {
    (scale.resolution / 2).max(8)
}

/// One (workload × level) measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The memory model.
    pub level: MemLevel,
    /// Cycles to completion.
    pub cycles: u64,
    /// (hits, misses, MSHR merges, MSHR stalls) — `None` on ideal.
    pub l1: Option<(u64, u64, u64, u64)>,
    /// (hits, misses) — `None` unless the full hierarchy ran.
    pub l2: Option<(u64, u64)>,
    /// Interconnect grant conflicts (distinct SMs contending per bank
    /// service round, summed).
    pub icnt_conflicts: u64,
}

impl Cell {
    /// L1 hit rate, when the level has an L1 and it saw traffic.
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let (h, m, _, _) = self.l1?;
        (h + m > 0).then(|| h as f64 / (h + m) as f64)
    }

    /// L2 hit rate, when the level has an L2 and it saw traffic.
    pub fn l2_hit_rate(&self) -> Option<f64> {
        let (h, m) = self.l2?;
        (h + m > 0).then(|| h as f64 / (h + m) as f64)
    }
}

/// One workload's row of the figure.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Workload name.
    pub workload: &'static str,
    /// Problem-size note for the header.
    pub size: String,
    /// One cell per level, in [`LEVELS`] order.
    pub cells: Vec<Cell>,
}

/// The rendered cache-ablation figure.
#[derive(Debug, Clone)]
pub struct CacheAblationFigure {
    /// One row per workload.
    pub rows: Vec<AblationRow>,
}

/// Extracts the cell counters after a completed run.
fn cell_of(level: MemLevel, gpu: &Gpu, cycles: u64) -> Cell {
    Cell {
        level,
        cycles,
        l1: gpu.l1_stats(),
        l2: gpu.mem().l2_stats(),
        icnt_conflicts: gpu.mem().icnt_conflicts(),
    }
}

/// Runs the run-to-completion budget, mapping faults and budget hits to
/// job-level errors.
fn complete(gpu: &mut Gpu, what: &str) -> Result<u64, String> {
    let summary = gpu
        .run(CYCLE_BUDGET)
        .map_err(|e| format!("cacheabl {what} faulted: {e:?}"))?;
    if summary.outcome != RunOutcome::Completed {
        return Err(format!(
            "cacheabl {what} did not complete within {CYCLE_BUDGET} cycles: {:?}",
            summary.outcome
        ));
    }
    Ok(summary.stats.cycles)
}

/// The kd-tree primary-ray cell: traditional kernel, host-oracle
/// validated per ray.
fn run_kd(scale: Scale, level: MemLevel) -> Result<Cell, String> {
    let scene = raytrace::scenes::conference(scale.scene);
    let edge = kd_resolution(scale);
    let mut gpu = machine(level);
    let setup = RenderSetup::upload(&mut gpu, &scene, edge, edge);
    setup.launch_traditional(&mut gpu, scale.threads_per_block);
    let cycles = complete(&mut gpu, &format!("kdtree under {}", level.label()))?;
    let report = compare(&setup.host_reference(), &setup.device_results(&gpu));
    if report.mismatches > 0 {
        return Err(format!(
            "cacheabl kdtree under {}: {} of {} rays diverged from the host \
             oracle — the memory model altered functional results",
            level.label(),
            report.mismatches,
            report.total
        ));
    }
    Ok(cell_of(level, &gpu, cycles))
}

/// The BVH path-tracer cell: traditional kernel, bit-exact against the
/// host mirror.
fn run_bvh(scale: Scale, level: MemLevel) -> Result<Cell, String> {
    let scene = raytrace::scenes::conference(scale.scene);
    let edge = super::bvh::resolution(scale);
    let mut gpu = machine(level);
    let setup = PtSetup::upload(&mut gpu, &scene, edge, edge);
    setup.launch_traditional(&mut gpu, scale.threads_per_block);
    let cycles = complete(&mut gpu, &format!("bvh under {}", level.label()))?;
    let host = setup.host_reference();
    let device = setup.device_results(&gpu);
    let mismatches = exact_mismatches(&host, &device);
    if mismatches > 0 || image_hash(&device) != image_hash(&host) {
        return Err(format!(
            "cacheabl bvh under {}: device image diverged from the host \
             mirror ({mismatches} exact mismatches)",
            level.label()
        ));
    }
    Ok(cell_of(level, &gpu, cycles))
}

/// The microdiv ramp cell: compute-bound, LCG-validated — the negative
/// control (no load traffic, so every level's L1 stays silent).
fn run_microdiv(scale: Scale, level: MemLevel) -> Result<Cell, String> {
    let n = microdiv::threads(scale.scene);
    let cap = microdiv::trip_cap(scale.scene);
    let mut gpu = machine(level);
    let out_base = gpu.mem_mut().alloc_global(n * 4, "out");
    let source = microdiv::loop_source("ramp", cap, out_base);
    let program = assemble_named("cacheabl-microdiv", &source)
        .map_err(|e| format!("cacheabl microdiv kernel assembly failed: {e}"))?;
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: n,
        threads_per_block: 64.min(n),
    })
    .map_err(|e| format!("cacheabl microdiv launch rejected: {e:?}"))?;
    let cycles = complete(&mut gpu, &format!("microdiv under {}", level.label()))?;
    for tid in 0..n {
        let got = gpu
            .mem()
            .read_u32(simt_isa::Space::Global, out_base + tid * 4);
        if got != microdiv::host_acc("ramp", tid, cap) {
            return Err(format!(
                "cacheabl microdiv under {}: accumulator of thread {tid} \
                 diverged from the host LCG",
                level.label()
            ));
        }
    }
    Ok(cell_of(level, &gpu, cycles))
}

/// Runs the full ablation matrix at `scale`.
///
/// # Errors
///
/// Simulator faults, blown cycle budgets, or any functional deviation
/// from the host references are deterministic job-level errors.
pub fn run(scale: Scale) -> Result<CacheAblationFigure, String> {
    type Runner = fn(Scale, MemLevel) -> Result<Cell, String>;
    let mut rows = Vec::new();
    let kd_edge = kd_resolution(scale);
    let bvh_edge = super::bvh::resolution(scale);
    let n = microdiv::threads(scale.scene);
    let runners: [(&'static str, String, Runner); 3] = [
        (
            "kdtree",
            format!("{kd_edge}x{kd_edge} primary rays"),
            run_kd,
        ),
        ("bvh", format!("{bvh_edge}x{bvh_edge} path traced"), run_bvh),
        ("microdiv", format!("{n} threads, ramp"), run_microdiv),
    ];
    for (workload, size, runner) in runners {
        let mut cells = Vec::new();
        for level in LEVELS {
            cells.push(runner(scale, level)?);
        }
        rows.push(AblationRow {
            workload,
            size,
            cells,
        });
    }
    Ok(CacheAblationFigure { rows })
}

/// Formats an optional rate as a fixed-width percentage column.
fn pct(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:>6.1}%", r * 100.0),
        None => format!("{:>7}", "-"),
    }
}

impl fmt::Display for CacheAblationFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cache ablation — ideal vs L1-only vs L1+L2 memory hierarchy"
        )?;
        writeln!(
            f,
            "  {:<10} {:<8} {:>12} {:>7} {:>8} {:>7} {:>10}",
            "workload", "memory", "cycles", "L1 hit", "merges", "L2 hit", "icnt conf"
        )?;
        for row in &self.rows {
            for cell in &row.cells {
                writeln!(
                    f,
                    "  {:<10} {:<8} {:>12} {} {:>8} {} {:>10}",
                    row.workload,
                    cell.level.label(),
                    cell.cycles,
                    pct(cell.l1_hit_rate()),
                    cell.l1.map_or(0, |(_, _, mg, _)| mg),
                    pct(cell.l2_hit_rate()),
                    cell.icnt_conflicts
                )?;
            }
        }
        write!(f, "  sizes:")?;
        for row in &self.rows {
            write!(f, "  {}={}", row.workload, row.size)?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  (microdiv is the negative control: a compute-bound kernel \
             whose only memory traffic is its final stores)"
        )
    }
}

/// The registry entry.
pub struct CacheAblation;

impl Workload for CacheAblation {
    fn id(&self) -> &'static str {
        "cacheabl"
    }

    fn description(&self) -> &'static str {
        "Cache ablation — ideal vs L1-only vs L1+L2 across kd-tree, BVH, and microdiv"
    }

    fn group(&self) -> Group {
        Group::Extended
    }

    fn render(
        &self,
        scale: Scale,
        _variant: Option<crate::configs::Variant>,
        json: bool,
    ) -> Result<String, String> {
        Ok(page(self.id(), &run(scale)?, json))
    }

    fn extend_fingerprint(&self, enc: &mut Encoder, scale: Scale) {
        enc.put_str("cacheabl-v1");
        enc.put_u32(kd_resolution(scale));
        enc.put_u32(super::bvh::resolution(scale));
        enc.put_u32(microdiv::threads(scale.scene));
        enc.put_u32(microdiv::trip_cap(scale.scene));
        for program in [
            rt_kernels::traditional::program(),
            rt_kernels::pt_traditional::program(),
        ] {
            enc.put_u64(
                simt_sim::program_digest(&program).expect("embedded kernels encode losslessly"),
            );
        }
        // The ablated memory knobs are part of the figure's identity.
        for level in LEVELS {
            let m = level.mem_config();
            enc.put_u32(m.l1_bytes);
            enc.put_u32(m.l1_line_bytes);
            enc.put_u32(m.l1_ways as u32);
            enc.put_u32(m.l1_mshr_entries as u32);
            enc.put_u32(m.l2_bytes);
            enc.put_u32(m.l2_line_bytes);
            enc.put_u32(m.l2_ways as u32);
            enc.put_u32(m.icnt_latency);
            enc.put_u32(m.icnt_flit_cycles);
            enc.put_u32(u32::from(m.ideal));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_configure_the_expected_hierarchies() {
        assert!(MemLevel::Ideal.mem_config().ideal);
        assert!(!MemLevel::Ideal.mem_config().l1_enabled());
        let l1 = MemLevel::L1Only.mem_config();
        assert!(l1.l1_enabled() && !l1.l2_enabled());
        let full = MemLevel::L1L2.mem_config();
        assert!(full.l1_enabled() && full.l2_enabled() && full.hierarchy_enabled());
    }

    #[test]
    fn figure_runs_validates_and_orders_the_levels() {
        let fig = run(Scale::test()).expect("cache ablation runs");
        assert_eq!(fig.rows.len(), 3);
        for row in &fig.rows {
            assert_eq!(row.cells.len(), LEVELS.len());
            // Ideal memory is a lower bound on cycles for every workload.
            let ideal = row.cells[0].cycles;
            for cell in &row.cells[1..] {
                assert!(
                    cell.cycles >= ideal,
                    "{} under {} beat ideal memory: {} < {ideal}",
                    row.workload,
                    cell.level.label(),
                    cell.cycles
                );
            }
        }
        // The traversal workloads exercise the caches; the negative
        // control does not.
        let kd = &fig.rows[0];
        let (h, m, _, _) = kd.cells[2].l1.expect("kd L1 counters");
        assert!(h + m > 0, "kd-tree produced no L1 traffic");
        assert!(kd.cells[2].l2.is_some(), "full hierarchy must report L2");
        let micro = &fig.rows[2];
        assert_eq!(
            micro.cells[1].l1_hit_rate(),
            None,
            "microdiv should stay load-free"
        );
        let text = fig.to_string();
        assert!(text.contains("kdtree") && text.contains("l1+l2"), "{text}");
    }

    #[test]
    fn figure_is_deterministic() {
        let a = run(Scale::test()).expect("first render").to_string();
        let b = run(Scale::test()).expect("second render").to_string();
        assert_eq!(a, b, "cache ablation must render identically");
    }
}
