//! # The workload registry — every runnable scenario, in one place
//!
//! Historically `repro`, the campaign engine, and the serve front-end
//! each kept their own stringly-typed idea of what an "artifact" was: a
//! `match` over names here, a `const` list there, a `contains` check in
//! a third place. This module retires that. A [`Workload`] is a typed
//! description of one runnable scenario family — how to render it at a
//! [`Scale`], which machine [`Variant`]s it supports standalone, how to
//! extend its job-identity fingerprint, and (when it has one) its
//! per-variant SIMD-efficiency summary — and [`all`] is the single
//! source of truth every front-end enumerates.
//!
//! Two groups exist:
//!
//! * [`Group::Paper`] — the ten figures/tables of the source paper plus
//!   the ablation and shadow-ray studies. Their ids, presentation
//!   order, rendered bytes, and job fingerprints are **frozen**:
//!   `repro all` output and cached campaign results must stay
//!   byte-identical across this refactor.
//! * [`Group::Extended`] — workloads added beyond the paper's matrix:
//!   the BVH path tracer ([`bvh`]), the divergence microbenchmark
//!   family ([`microdiv`]), and the cache-ablation figure
//!   ([`cacheabl`]). The first two support per-variant standalone runs
//!   via `workload@variant` job names (see [`ScenarioSpec`]).

pub mod bvh;
pub mod cacheabl;
pub mod microdiv;
mod paper;

use crate::configs::Variant;
use crate::runner::Scale;
use simt_isa::codec::Encoder;
use std::fmt;

/// One registered scenario family.
///
/// Implementations are zero-sized unit structs registered in the static
/// tables below; everything a front-end needs — enumeration, dispatch,
/// fingerprinting, reporting — goes through this trait instead of
/// string matching.
pub trait Workload: Sync {
    /// Stable identifier (the job name, the cache key prefix, the
    /// `repro <id>` command). Never rename: journals, cached results,
    /// and CI scripts key on it.
    fn id(&self) -> &'static str;

    /// One-line human description for `repro list`.
    fn description(&self) -> &'static str;

    /// Which group the workload belongs to.
    fn group(&self) -> Group;

    /// Machine variants this workload can run standalone (as
    /// `id@variant`). Empty for the paper artifacts, whose variant
    /// matrix is fixed by the figure they reproduce.
    fn variants(&self) -> &'static [Variant] {
        &[]
    }

    /// Renders the workload to the exact bytes `repro` prints for it.
    /// `variant` narrows extended workloads to one machine variant
    /// (`None` renders the workload's full default matrix); it is
    /// always `None` for paper artifacts ([`ScenarioSpec::resolve`]
    /// rejects the combination first).
    ///
    /// # Errors
    ///
    /// A deterministic job-level failure (assembly error, ground-truth
    /// mismatch, simulator fault) the campaign reports without retry.
    fn render(&self, scale: Scale, variant: Option<Variant>, json: bool) -> Result<String, String>;

    /// Folds workload-specific identity (extra kernel programs, private
    /// configuration) into a job fingerprint. The default is a no-op,
    /// which keeps the paper artifacts' fingerprints — and therefore
    /// every existing cache entry and journal id — byte-identical.
    fn extend_fingerprint(&self, _enc: &mut Encoder, _scale: Scale) {}

    /// Per-variant SIMD efficiency of this workload at `scale`, for the
    /// benchmark report's per-workload section. `None` when the
    /// workload has no standalone efficiency story (the paper artifacts
    /// report theirs inside their figures).
    fn simd_efficiency(&self, _scale: Scale) -> Option<Vec<(String, f64)>> {
        None
    }
}

impl fmt::Debug for dyn Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload").field("id", &self.id()).finish()
    }
}

/// Registry group of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Source-paper artifact: frozen id, order, bytes, fingerprint.
    Paper,
    /// Added beyond the paper's matrix.
    Extended,
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Group::Paper => "paper",
            Group::Extended => "extended",
        })
    }
}

/// The registry, in canonical presentation order: the twelve paper
/// artifacts first (the exact order `repro all` has always used), then
/// the extended workloads.
static REGISTRY: [&dyn Workload; 15] = [
    &paper::Table1,
    &paper::Table2,
    &paper::Table3,
    &paper::Table4,
    &paper::Fig2,
    &paper::Fig3,
    &paper::Fig7,
    &paper::Fig8,
    &paper::Fig9,
    &paper::Fig10,
    &paper::Ablation,
    &paper::Shadow,
    &bvh::BvhPathTracer,
    &microdiv::Microdiv,
    &cacheabl::CacheAblation,
];

/// Every registered workload, in canonical order.
pub fn all() -> &'static [&'static dyn Workload] {
    &REGISTRY
}

/// The paper-group workload ids, in canonical order — the exact job
/// list of `repro all` and of a default full campaign.
pub fn paper_ids() -> Vec<&'static str> {
    REGISTRY
        .iter()
        .filter(|w| w.group() == Group::Paper)
        .map(|w| w.id())
        .collect()
}

/// Looks a workload up by id.
///
/// # Errors
///
/// [`UnknownWorkload`] for an unregistered id — the typed error every
/// front-end reports (`repro` exits with it, serve sheds it as 400).
pub fn find(id: &str) -> Result<&'static dyn Workload, UnknownWorkload> {
    REGISTRY
        .iter()
        .find(|w| w.id() == id)
        .copied()
        .ok_or_else(|| UnknownWorkload::Id(id.to_string()))
}

/// Typed rejection of a scenario no registered workload covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnknownWorkload {
    /// No workload with this id is registered.
    Id(String),
    /// The workload exists but does not run this variant standalone.
    Variant {
        /// The workload id.
        workload: String,
        /// The rejected variant.
        variant: Variant,
    },
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownWorkload::Id(id) => {
                write!(f, "unknown workload: {id} (`repro list` shows the catalog)")
            }
            UnknownWorkload::Variant { workload, variant } => write!(
                f,
                "workload {workload} does not run standalone variant {} \
                 (`repro list` shows each workload's variants)",
                variant.wire_name()
            ),
        }
    }
}

impl std::error::Error for UnknownWorkload {}

/// One fully-specified runnable scenario: which workload, narrowed to
/// which machine variant (if any), at which scale. This is the typed
/// replacement for the bare artifact-name string: [`crate::campaign::JobSpec`]
/// embeds one, job fingerprints hash one, and the serve journal and
/// wire format round-trip through its canonical [`Self::name`].
///
/// The canonical name is the bare workload id when no variant is
/// pinned — byte-identical to the pre-registry job names, so old
/// journals, drop-dir requests, and cached results replay unchanged —
/// and `id@variant` (with [`Variant::wire_name`]) otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registered workload id (or the unparsed request string, when the
    /// request names nothing registered — [`Self::resolve`] rejects it).
    pub workload_id: String,
    /// Variant narrowing, for workloads that support standalone
    /// variants.
    pub variant: Option<Variant>,
    /// Experiment scale.
    pub scale: Scale,
    /// Scale name forwarded to workers (`--scale <name>`).
    pub scale_name: String,
    name: String,
}

impl ScenarioSpec {
    /// Parses a job name (`id` or `id@variant`) into a spec. Parsing
    /// never fails: a name that resolves to nothing registered is kept
    /// verbatim and rejected by [`Self::resolve`], so the typed error
    /// can echo exactly what was asked for.
    pub fn new(name: &str, scale: Scale, scale_name: &str) -> Self {
        let (workload_id, variant) = match name.split_once('@') {
            Some((id, wire)) => match Variant::from_wire(wire) {
                Some(v) => (id.to_string(), Some(v)),
                None => (name.to_string(), None),
            },
            None => (name.to_string(), None),
        };
        let name = match variant {
            Some(v) => format!("{workload_id}@{}", v.wire_name()),
            None => workload_id.clone(),
        };
        ScenarioSpec {
            workload_id,
            variant,
            scale,
            scale_name: scale_name.to_string(),
            name,
        }
    }

    /// The canonical job name (wire format, worker argv, cache key
    /// prefix, manifest entry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resolves the spec against the registry.
    ///
    /// # Errors
    ///
    /// [`UnknownWorkload`] when the id is unregistered or the variant
    /// narrowing is unsupported.
    pub fn resolve(&self) -> Result<&'static dyn Workload, UnknownWorkload> {
        let w = find(&self.workload_id)?;
        if let Some(v) = self.variant {
            if !w.variants().contains(&v) {
                return Err(UnknownWorkload::Variant {
                    workload: self.workload_id.clone(),
                    variant: v,
                });
            }
        }
        Ok(w)
    }

    /// Renders the scenario to the exact bytes `repro` prints for it.
    ///
    /// # Errors
    ///
    /// [`RenderError::Unknown`] for an unresolvable scenario,
    /// [`RenderError::Job`] for a deterministic job-level failure.
    pub fn render(&self, json: bool) -> Result<String, RenderError> {
        let w = self.resolve().map_err(RenderError::Unknown)?;
        w.render(self.scale, self.variant, json)
            .map_err(RenderError::Job)
    }
}

/// Why a scenario did not render.
#[derive(Debug, Clone, PartialEq)]
pub enum RenderError {
    /// The scenario names nothing registered (request-level error).
    Unknown(UnknownWorkload),
    /// The workload itself failed deterministically (job-level error).
    Job(String),
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::Unknown(e) => e.fmt(f),
            RenderError::Job(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RenderError {}

/// Renders a value to the exact bytes `repro` prints for one artifact:
/// `Display` text plus the trailing blank line, or the one-line JSON
/// envelope under `--json`. Shared by every workload so "byte-identical
/// however computed" stays checkable; the byte format predates the
/// registry and must not change.
pub(crate) fn page<T: fmt::Display>(artifact: &str, value: &T, json: bool) -> String {
    if json {
        format!(
            "{{\"artifact\":\"{}\",\"data\":\"{}\"}}\n",
            crate::campaign::manifest::escape(artifact),
            crate::campaign::manifest::escape(&value.to_string())
        )
    } else {
        format!("{value}\n\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_paper_group_matches_the_historical_artifact_list() {
        // The frozen pre-registry list, in the exact order `repro all`
        // has always rendered. Changing either side breaks cached
        // results and journal replay — this test is the tripwire.
        assert_eq!(
            paper_ids(),
            vec![
                "table1", "table2", "table3", "table4", "fig2", "fig3", "fig7", "fig8", "fig9",
                "fig10", "ablation", "shadow",
            ]
        );
    }

    #[test]
    fn registry_ids_are_unique_and_describe_themselves() {
        let mut seen = std::collections::HashSet::new();
        for w in all() {
            assert!(seen.insert(w.id()), "duplicate workload id {}", w.id());
            assert!(
                !w.description().is_empty(),
                "{} lacks a description",
                w.id()
            );
            assert!(
                !w.id().contains('@') && !w.id().contains(char::is_whitespace),
                "{} id collides with scenario syntax",
                w.id()
            );
        }
        assert!(seen.len() >= 12, "registry shrank below the paper matrix");
    }

    #[test]
    fn paper_artifacts_have_no_standalone_variants() {
        for w in all().iter().filter(|w| w.group() == Group::Paper) {
            assert!(w.variants().is_empty(), "{} grew variants", w.id());
        }
    }

    #[test]
    fn scenario_names_round_trip() {
        let plain = ScenarioSpec::new("fig3", Scale::test(), "test");
        assert_eq!(plain.name(), "fig3");
        assert_eq!(plain.workload_id, "fig3");
        assert_eq!(plain.variant, None);
        assert!(plain.resolve().is_ok());

        let narrowed = ScenarioSpec::new("bvh@dynamic", Scale::test(), "test");
        assert_eq!(narrowed.name(), "bvh@dynamic");
        assert_eq!(narrowed.workload_id, "bvh");
        assert_eq!(narrowed.variant, Some(Variant::Dynamic));
        assert!(narrowed.resolve().is_ok());
    }

    #[test]
    fn unresolvable_scenarios_are_typed_errors() {
        let bogus = ScenarioSpec::new("bogus", Scale::test(), "test");
        assert_eq!(
            bogus.resolve().unwrap_err(),
            UnknownWorkload::Id("bogus".to_string())
        );
        // An unparseable variant suffix is kept verbatim (the error
        // echoes the full request string).
        let garbled = ScenarioSpec::new("bvh@warp9", Scale::test(), "test");
        assert_eq!(garbled.workload_id, "bvh@warp9");
        assert!(garbled.resolve().is_err());
        // A paper artifact rejects variant narrowing.
        let narrowed = ScenarioSpec::new("fig3@dynamic", Scale::test(), "test");
        assert_eq!(
            narrowed.resolve().unwrap_err(),
            UnknownWorkload::Variant {
                workload: "fig3".to_string(),
                variant: Variant::Dynamic,
            }
        );
        let msg = narrowed.resolve().unwrap_err().to_string();
        assert!(
            msg.contains("repro list"),
            "error must point at the catalog"
        );
    }
}
