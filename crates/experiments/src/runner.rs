//! Shared run machinery: scales and the standard render-run wrapper.

use crate::configs::{self, gpu_for, parallelism, Variant};
use crate::supervisor::{self, JobStatus};
use raytrace::scenes::{Scene, SceneScale};
use rt_kernels::render::RenderSetup;
use serde::{Deserialize, Serialize};
use simt_isa::codec::{fnv1a64, Decoder, Encoder};
use simt_sim::{ChromeTraceSink, CsvMetricsSink, Gpu, RunSummary, TelemetryReport, TraceSink};
use std::fmt;

/// Experiment scale: resolution, simulated-cycle budget, scene size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Square image resolution (the paper uses 256).
    pub resolution: u32,
    /// Simulated cycles (the paper simulates the first 300k).
    pub cycles: u64,
    /// Scene triangle-count scale.
    #[serde(skip, default = "default_scene_scale")]
    pub scene: SceneScale,
    /// Threads per block for the launch (paper: 64 = two warps).
    pub threads_per_block: u32,
}

// Referenced only from the `serde(default = ...)` attribute; the offline
// serde shim expands derives to nothing, so keep the fn alive explicitly.
#[allow(dead_code)]
fn default_scene_scale() -> SceneScale {
    SceneScale::Small
}

impl Scale {
    /// The paper's measurement scale: 256×256 over the first 300k cycles.
    pub fn paper() -> Self {
        Scale {
            resolution: 256,
            cycles: 300_000,
            scene: SceneScale::Full,
            threads_per_block: 64,
        }
    }

    /// A reduced scale for quick runs.
    pub fn quick() -> Self {
        Scale {
            resolution: 64,
            cycles: 60_000,
            scene: SceneScale::Small,
            threads_per_block: 64,
        }
    }

    /// A toy scale for unit tests.
    pub fn test() -> Self {
        Scale {
            resolution: 16,
            cycles: 20_000,
            scene: SceneScale::Tiny,
            threads_per_block: 32,
        }
    }

    /// Parses `paper`/`quick`/`test`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::paper()),
            "quick" => Some(Scale::quick()),
            "test" => Some(Scale::test()),
            _ => None,
        }
    }
}

/// Fault-model counters for one run. A healthy reproduction run reports
/// all zeros; anything else means the simulated render misbehaved and the
/// figures built from it are suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultHealth {
    /// Warp traps recorded (any [`usimt-sim` fault kind](simt_sim::FaultKind)).
    pub faults: u64,
    /// Warps discarded under [`simt_sim::FaultPolicy::KillWarp`].
    pub warps_killed: u64,
    /// Threads lost to killed warps.
    pub threads_killed: u64,
    /// Watchdog deadlock detections.
    pub watchdog_deadlocks: u64,
    /// Events forced by a configured [`simt_sim::Injector`].
    pub injected_events: u64,
}

impl FaultHealth {
    /// True when the run completed without any trap, kill, or deadlock.
    pub fn is_clean(&self) -> bool {
        *self == FaultHealth::default()
    }
}

impl fmt::Display for FaultHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults {}, warps killed {}, threads killed {}, watchdog deadlocks {}, injected events {}",
            self.faults,
            self.warps_killed,
            self.threads_killed,
            self.watchdog_deadlocks,
            self.injected_events
        )
    }
}

/// Deterministic identity of one render-run, for checkpoint/result-cache
/// keying: FNV-1a-64 over the kernel program bytes, the scene (name and
/// triangle-count scale), the full [`simt_sim::GpuConfig`], the
/// [`Scale`], and the active telemetry spec. Two runs share a
/// fingerprint exactly when they are guaranteed to produce bit-identical
/// results, so a checkpoint or cached result stamped with a different
/// fingerprint must never be trusted for this run.
pub fn run_fingerprint(scene: &Scene, variant: Variant, scale: Scale) -> u64 {
    let mut enc = Encoder::new();
    enc.put_str("usimt-run-fp-v1");
    enc.put_str(scene.name);
    enc.put_str(&format!("{variant:?}"));
    enc.put_u32(scale.resolution);
    enc.put_u64(scale.cycles);
    enc.put_u32(scale.threads_per_block);
    enc.put_u8(match scale.scene {
        SceneScale::Tiny => 0,
        SceneScale::Small => 1,
        SceneScale::Full => 2,
    });
    let spec = configs::telemetry_spec();
    enc.put_bool(spec.metrics);
    enc.put_bool(spec.trace);
    enc.put_u64(spec.metrics_window);
    enc.put_u64(simt_sim::config_digest(&configs::config_for(variant)));
    let program = if variant.is_dynamic() {
        rt_kernels::ukernel::program()
    } else {
        rt_kernels::traditional::program()
    };
    let digest = simt_sim::program_digest(&program).expect("embedded kernels encode losslessly");
    enc.put_u64(digest);
    fnv1a64(&enc.into_bytes())
}

/// Phase bookkeeping stored in each snapshot's meta section so a resumed
/// job can rebuild the warm-up/steady-state split of
/// [`RenderRun::execute`] without re-running the warm-up. The
/// [`run_fingerprint`] rides along so a resume rejects snapshots taken
/// by a different job identity (other scene/variant/scale/config or
/// changed kernel bytes) instead of silently continuing the wrong run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PhaseMeta {
    /// Identity of the run this snapshot belongs to.
    fingerprint: u64,
    /// 0 = warm-up, 1 = steady-state measurement.
    phase: u32,
    /// Absolute end cycle of the current phase.
    target: u64,
    /// Cycle at the end of warm-up (meaningful once `phase == 1`).
    warm_cycle: u64,
    /// Rays completed at the end of warm-up (meaningful once `phase == 1`).
    warm_rays: u64,
}

impl PhaseMeta {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.fingerprint);
        enc.put_u32(self.phase);
        enc.put_u64(self.target);
        enc.put_u64(self.warm_cycle);
        enc.put_u64(self.warm_rays);
        enc.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<PhaseMeta> {
        let mut dec = Decoder::new(bytes);
        let meta = PhaseMeta {
            fingerprint: dec.take_u64().ok()?,
            phase: dec.take_u32().ok()?,
            target: dec.take_u64().ok()?,
            warm_cycle: dec.take_u64().ok()?,
            warm_rays: dec.take_u64().ok()?,
        };
        dec.is_finished().then_some(meta)
    }
}

/// Rebuilds `(machine, phase bookkeeping)` from the job's on-disk
/// snapshot when `--resume` is active and the snapshot is usable.
/// Unusable snapshots — including one stamped with a different job
/// fingerprint — are reported and discarded: the job restarts.
fn resume_state(job: &str, fingerprint: u64) -> Option<(Gpu, PhaseMeta)> {
    let snap = supervisor::try_resume(job)?;
    let Some(meta) = PhaseMeta::decode(snap.meta()) else {
        eprintln!("warning: {job}: snapshot has unusable phase metadata; restarting");
        return None;
    };
    if meta.fingerprint != fingerprint {
        eprintln!(
            "warning: {job}: snapshot belongs to a different job identity \
             ({:#018x}, expected {:#018x}); restarting",
            meta.fingerprint, fingerprint
        );
        return None;
    }
    match Gpu::restore(&snap) {
        Ok(gpu) => {
            let gpu = gpu.with_parallelism(parallelism());
            eprintln!(
                "note: {job}: resuming from checkpoint at cycle {}",
                gpu.now()
            );
            Some((gpu, meta))
        }
        Err(e) => {
            eprintln!("warning: {job}: snapshot restore failed ({e}); restarting");
            None
        }
    }
}

/// Writes the Chrome-trace JSON and windowed-metrics CSV for a job next
/// to the process's normal output (`{job}.trace.json`, `{job}.metrics.csv`).
/// Called by the drivers when `--trace` is active; failures warn and
/// continue — trace artifacts must never sink a campaign.
pub fn write_trace_artifacts(job: &str, report: &TelemetryReport) {
    for (suffix, rendered) in [
        ("trace.json", ChromeTraceSink.render(report)),
        ("metrics.csv", CsvMetricsSink.render(report)),
    ] {
        let path = format!("{job}.{suffix}");
        match std::fs::write(&path, rendered) {
            Ok(()) => eprintln!("trace: wrote {path}"),
            Err(e) => eprintln!("warning: {job}: cannot write {path}: {e}"),
        }
    }
}

/// The result of one standard render run.
#[derive(Debug)]
pub struct RenderRun {
    /// Scene name.
    pub scene: &'static str,
    /// Variant executed.
    pub variant: Variant,
    /// Full simulator summary (whole run, including warm-up).
    pub summary: RunSummary,
    /// Cumulative telemetry over the whole run (windowed counters, the
    /// divergence mirror, and — under `--trace` — per-event rings).
    pub telemetry: TelemetryReport,
    /// Shader clock used for rays/s conversion.
    pub clock_ghz: f64,
    /// Rays completed during the steady-state half of the window.
    pub steady_rays: u64,
    /// Cycles in the steady-state window.
    pub steady_cycles: u64,
    /// Supervision verdict: completed, resumed `n` times, or gave up.
    pub status: JobStatus,
}

impl RenderRun {
    /// Runs `variant` over `scene` at `scale` for the configured cycle
    /// budget.
    ///
    /// Rays/second is measured over the second half of the window — the
    /// paper observes that behaviour is steady over the 150k–300k-cycle
    /// range, so this skips the pipeline-fill transient at frame start.
    ///
    /// Both halves run under the [`supervisor`]: the run is checkpointed
    /// at the configured interval, rolled back and retried on a fault or
    /// deadlock, and — with `--resume` — restored from the job's last
    /// on-disk snapshot, bit-identical to an uninterrupted run.
    pub fn execute(scene: &Scene, variant: Variant, scale: Scale) -> RenderRun {
        let job = format!("{}-{:?}-{}", scene.name, variant, scale.resolution);
        let fingerprint = run_fingerprint(scene, variant, scale);
        let resumed = resume_state(&job, fingerprint);
        let mut interventions = u32::from(resumed.is_some());
        let mut gave_up = false;
        let (mut gpu, mut meta) = match resumed {
            Some(state) => state,
            None => {
                let mut gpu = gpu_for(variant);
                let setup =
                    RenderSetup::upload(&mut gpu, scene, scale.resolution, scale.resolution);
                if variant.is_dynamic() {
                    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
                } else {
                    setup.launch_traditional(&mut gpu, scale.threads_per_block);
                }
                let meta = PhaseMeta {
                    fingerprint,
                    phase: 0,
                    target: gpu.now() + scale.cycles,
                    warm_cycle: 0,
                    warm_rays: 0,
                };
                (gpu, meta)
            }
        };
        if meta.phase == 0 {
            let warm = supervisor::run_to_target(&mut gpu, meta.target, &job, &meta.encode());
            interventions += warm.interventions;
            gave_up |= warm.gave_up;
            meta = PhaseMeta {
                fingerprint,
                phase: 1,
                target: gpu.now() + scale.cycles,
                warm_cycle: gpu.now(),
                warm_rays: gpu.stats().lineages_completed,
            };
        }
        let (warm_cycle, warm_rays) = (meta.warm_cycle, meta.warm_rays);
        let steady = supervisor::run_to_target(&mut gpu, meta.target, &job, &meta.encode());
        interventions += steady.interventions;
        gave_up |= steady.gave_up;
        supervisor::clear(&job);
        let status = if gave_up {
            JobStatus::GaveUp
        } else if interventions > 0 {
            JobStatus::Resumed(interventions)
        } else {
            JobStatus::Completed
        };
        if supervisor::policy().is_active() || status != JobStatus::Completed {
            eprintln!("job {job}: {status}");
        }
        let telemetry = gpu.telemetry_report();
        if configs::trace() {
            write_trace_artifacts(&job, &telemetry);
        }
        let summary = steady.summary;
        let end_cycle = summary.stats.cycles;
        let (steady_rays, steady_cycles) = if end_cycle > warm_cycle {
            (
                summary.stats.lineages_completed - warm_rays,
                end_cycle - warm_cycle,
            )
        } else {
            // The whole frame finished during warm-up (tiny scales).
            (summary.stats.lineages_completed, end_cycle.max(1))
        };
        let run = RenderRun {
            scene: scene.name,
            variant,
            clock_ghz: gpu.config().clock_ghz,
            summary,
            telemetry,
            steady_rays,
            steady_cycles,
            status,
        };
        let health = run.fault_health();
        if !health.is_clean() {
            eprintln!(
                "warning: {} / {} run was not fault-clean: {health}",
                run.scene, run.variant
            );
        }
        run
    }

    /// The run's fault-model counters; a clean reproduction is all zeros.
    pub fn fault_health(&self) -> FaultHealth {
        FaultHealth {
            faults: self.summary.stats.faults,
            warps_killed: self.summary.stats.warps_killed,
            threads_killed: self.summary.stats.threads_killed,
            watchdog_deadlocks: self.summary.stats.watchdog_deadlocks,
            injected_events: self.summary.stats.injected_events,
        }
    }

    /// Committed thread-instructions per cycle (whole run).
    pub fn ipc(&self) -> f64 {
        self.summary.stats.ipc()
    }

    /// Million rays per second at the configured clock, measured over the
    /// steady-state window.
    pub fn mrays_per_second(&self) -> f64 {
        if self.steady_cycles == 0 {
            return 0.0;
        }
        self.steady_rays as f64 / (self.steady_cycles as f64 / (self.clock_ghz * 1e9)) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raytrace::scenes;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("paper"), Some(Scale::paper()));
        assert_eq!(Scale::parse("quick"), Some(Scale::quick()));
        assert_eq!(Scale::parse("test"), Some(Scale::test()));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn run_fingerprint_separates_job_identities() {
        let conference = scenes::conference(SceneScale::Tiny);
        let atrium = scenes::atrium(SceneScale::Tiny);
        let base = run_fingerprint(&conference, Variant::Dynamic, Scale::test());
        assert_eq!(
            base,
            run_fingerprint(&conference, Variant::Dynamic, Scale::test()),
            "fingerprint is deterministic"
        );
        assert_ne!(
            base,
            run_fingerprint(&atrium, Variant::Dynamic, Scale::test()),
            "scene must re-key"
        );
        assert_ne!(
            base,
            run_fingerprint(&conference, Variant::PdomWarp, Scale::test()),
            "variant (config + program family) must re-key"
        );
        assert_ne!(
            base,
            run_fingerprint(&conference, Variant::Dynamic, Scale::quick()),
            "scale must re-key"
        );
    }

    #[test]
    fn render_run_executes_both_kernel_families() {
        let scene = scenes::conference(SceneScale::Tiny);
        let scale = Scale::test();
        let pdom = RenderRun::execute(&scene, Variant::PdomWarp, scale);
        assert!(pdom.summary.stats.thread_instructions > 0);
        let dmk = RenderRun::execute(&scene, Variant::Dynamic, scale);
        assert!(dmk.summary.stats.threads_spawned > 0);
    }
}
