//! The campaign manifest: one record per job saying how it got done.
//!
//! The manifest is the campaign's graceful-degradation contract: a job
//! that exhausted its retry budget is reported [`JobOutcome::GaveUp`]
//! here while the rest of the matrix completes, and every observed
//! worker kill, timeout, checkpoint resume, cache hit, and quarantined
//! cache entry is recorded per job. The JSON rendering is deterministic
//! (canonical job order, no timings) so fixed-seed chaos campaigns can
//! be diffed in CI.

use std::fmt;

/// How one campaign job reached its final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Served from the content-addressed result cache.
    Cached,
    /// Computed by a worker with no intervention.
    Completed,
    /// Computed after `n` worker deaths/timeouts (rescheduled, resuming
    /// from the last good checkpoint where one existed).
    Resumed(u32),
    /// Retry budget exhausted; the job has no result but the campaign
    /// carried on.
    GaveUp,
    /// The job itself reported a deterministic error (retries would not
    /// help); the campaign carried on.
    Failed,
    /// The job's per-request deadline expired before it finished; its
    /// worker (if any) was SIGKILLed and the job was not retried. Only
    /// `repro serve` attaches deadlines; plain campaigns never produce
    /// this outcome.
    DeadlineExceeded,
}

impl JobOutcome {
    /// Stable machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Cached => "cached",
            JobOutcome::Completed => "completed",
            JobOutcome::Resumed(_) => "resumed",
            JobOutcome::GaveUp => "gave-up",
            JobOutcome::Failed => "failed",
            JobOutcome::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// True for the terminal states that carry no output bytes.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            JobOutcome::GaveUp | JobOutcome::Failed | JobOutcome::DeadlineExceeded
        )
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::Cached => f.write_str("cached"),
            JobOutcome::Completed => f.write_str("completed"),
            JobOutcome::Resumed(n) => write!(f, "completed after {n} worker intervention(s)"),
            JobOutcome::GaveUp => f.write_str("gave up (retry budget exhausted)"),
            JobOutcome::Failed => f.write_str("failed (job-level error)"),
            JobOutcome::DeadlineExceeded => f.write_str("deadline exceeded (request cancelled)"),
        }
    }
}

/// Per-job supervision record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Artifact name.
    pub name: String,
    /// Job identity fingerprint (cache key).
    pub fingerprint: u64,
    /// Final outcome.
    pub outcome: JobOutcome,
    /// Worker attempts consumed by deaths/timeouts (0 = first attempt
    /// succeeded or the job was served from cache).
    pub attempts: u32,
    /// Worker processes observed dead (chaos aborts, crashes, and
    /// coordinator kills alike).
    pub kills: u32,
    /// Subset of `kills` delivered by the coordinator for a wall-clock
    /// timeout or a stale heartbeat.
    pub timeouts: u32,
    /// True when a rescheduled attempt found an on-disk checkpoint from
    /// the killed attempt to resume from.
    pub resumed_from_checkpoint: bool,
    /// True when the result came from the cache.
    pub cache_hit: bool,
    /// True when a corrupt cache entry for this job was quarantined.
    pub quarantined: bool,
    /// Job-level error message (outcomes `Failed`/`GaveUp`).
    pub error: Option<String>,
}

/// The whole campaign's supervision summary.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Scale name the campaign ran at.
    pub scale: String,
    /// Worker process count.
    pub workers: usize,
    /// Chaos kill rate (`None` = chaos off).
    pub chaos_kill_every: Option<u64>,
    /// Chaos seed.
    pub seed: u64,
    /// Per-job records in canonical artifact order.
    pub jobs: Vec<JobRecord>,
}

impl Manifest {
    /// Total worker deaths observed.
    pub fn kills_total(&self) -> u32 {
        self.jobs.iter().map(|j| j.kills).sum()
    }

    /// Jobs served from the result cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs.iter().filter(|j| j.cache_hit).count()
    }

    /// Jobs that resumed from an on-disk checkpoint after a kill.
    pub fn resumes(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.resumed_from_checkpoint)
            .count()
    }

    /// Jobs that exhausted their retry budget.
    pub fn gave_up(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::GaveUp)
            .count()
    }

    /// Jobs that reported a deterministic job-level error.
    pub fn failed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Failed)
            .count()
    }

    /// Jobs cancelled because their deadline expired.
    pub fn deadline_exceeded(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::DeadlineExceeded)
            .count()
    }

    /// Corrupt cache entries quarantined during the campaign.
    pub fn quarantined(&self) -> usize {
        self.jobs.iter().filter(|j| j.quarantined).count()
    }

    /// Worker attempts consumed by retries across all jobs.
    pub fn retries_total(&self) -> u32 {
        self.jobs.iter().map(|j| j.attempts).sum()
    }

    /// Coordinator-delivered SIGKILLs (wall-clock timeouts and stale
    /// heartbeats) across all jobs.
    pub fn timeouts_total(&self) -> u32 {
        self.jobs.iter().map(|j| j.timeouts).sum()
    }

    /// Deterministic JSON rendering (hand-rolled: the offline serde shim
    /// has no serializer).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", escape(&self.scale)));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        match self.chaos_kill_every {
            Some(k) => s.push_str(&format!("  \"chaos_kill_every\": {k},\n")),
            None => s.push_str("  \"chaos_kill_every\": null,\n"),
        }
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"fingerprint\": \"{:016x}\", \"outcome\": \"{}\", \
                 \"attempts\": {}, \"kills\": {}, \"timeouts\": {}, \
                 \"resumed_from_checkpoint\": {}, \"cache_hit\": {}, \"quarantined\": {}, \
                 \"error\": {}}}{}\n",
                escape(&j.name),
                j.fingerprint,
                j.outcome.tag(),
                j.attempts,
                j.kills,
                j.timeouts,
                j.resumed_from_checkpoint,
                j.cache_hit,
                j.quarantined,
                match &j.error {
                    Some(e) => format!("\"{}\"", escape(e)),
                    None => "null".to_string(),
                },
                if i + 1 < self.jobs.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"kills_total\": {}, \"resumes\": {}, \"cache_hits\": {}, \
             \"gave_up\": {}, \"failed\": {}, \"deadline_exceeded\": {}, \
             \"quarantined\": {}, \"retries_total\": {}, \"timeouts_total\": {}\n",
            self.kills_total(),
            self.resumes(),
            self.cache_hits(),
            self.gave_up(),
            self.failed(),
            self.deadline_exceeded(),
            self.quarantined(),
            self.retries_total(),
            self.timeouts_total()
        ));
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} job(s), {} worker(s), chaos {}",
            self.jobs.len(),
            self.workers,
            match self.chaos_kill_every {
                Some(k) => format!("kill-every {k} seed {}", self.seed),
                None => "off".to_string(),
            }
        )?;
        for j in &self.jobs {
            write!(f, "  {:<8} {}", j.name, j.outcome)?;
            if j.cache_hit {
                write!(f, " [cache]")?;
            }
            if j.quarantined {
                write!(f, " [quarantined corrupt entry]")?;
            }
            if j.kills > 0 {
                write!(
                    f,
                    " [{} kill(s), {} timeout(s){}]",
                    j.kills,
                    j.timeouts,
                    if j.resumed_from_checkpoint {
                        ", resumed from checkpoint"
                    } else {
                        ""
                    }
                )?;
            }
            if let Some(e) = &j.error {
                write!(f, ": {e}")?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "campaign: {} kill(s) observed, {} resume(s), {} cache hit(s), \
             {} gave up, {} failed, {} deadline-exceeded; degradation: \
             {} cache entr(y/ies) quarantined, {} attempt(s) retried, \
             {} coordinator SIGKILL(s)",
            self.kills_total(),
            self.resumes(),
            self.cache_hits(),
            self.gave_up(),
            self.failed(),
            self.deadline_exceeded(),
            self.quarantined(),
            self.retries_total(),
            self.timeouts_total()
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, outcome: JobOutcome) -> JobRecord {
        JobRecord {
            name: name.to_string(),
            fingerprint: 0x1234,
            outcome,
            attempts: 0,
            kills: 0,
            timeouts: 0,
            resumed_from_checkpoint: false,
            cache_hit: false,
            quarantined: false,
            error: None,
        }
    }

    #[test]
    fn totals_and_json_render() {
        let mut gave_up = record("fig9", JobOutcome::GaveUp);
        gave_up.attempts = 4;
        gave_up.kills = 4;
        gave_up.error = Some("worker died (abort)".to_string());
        let mut resumed = record("fig3", JobOutcome::Resumed(1));
        resumed.kills = 1;
        resumed.resumed_from_checkpoint = true;
        let mut cached = record("table1", JobOutcome::Cached);
        cached.cache_hit = true;
        let m = Manifest {
            scale: "quick".to_string(),
            workers: 2,
            chaos_kill_every: Some(1),
            seed: 7,
            jobs: vec![cached, resumed, gave_up],
        };
        assert_eq!(m.kills_total(), 5);
        assert_eq!(m.resumes(), 1);
        assert_eq!(m.cache_hits(), 1);
        assert_eq!(m.gave_up(), 1);
        assert_eq!(m.failed(), 0);
        let json = m.to_json();
        assert!(json.contains("\"outcome\": \"gave-up\""));
        assert!(json.contains("\"resumed_from_checkpoint\": true"));
        assert!(json.contains("\"chaos_kill_every\": 1"));
        let text = m.to_string();
        assert!(text.contains("gave up"));
        assert!(text.contains("resumed from checkpoint"));
    }
}
