//! Deterministic process-level chaos schedule.
//!
//! `repro campaign --chaos-kill-every K --seed S` kills worker processes
//! mid-job to prove the campaign converges to byte-identical artifacts
//! anyway. The schedule is a pure function of `(seed, job name, attempt
//! index)` so two campaigns with the same seed kill exactly the same
//! attempts regardless of worker scheduling, host load, or wall-clock
//! time. The kill itself is delivered *inside* the worker by the
//! supervisor's checkpoint-write hook (`--kill-after-checkpoints M` with
//! `--chaos-abort`, a generalization of the PR-3 exit-42 hook that dies
//! by `std::process::abort` instead), so the death point is a
//! deterministic simulated-cycle boundary, not a timing race.
//!
//! `repro serve --chaos-crash-every K --seed S` extends the same idea to
//! the *coordinator* process: [`Chaos::server_crash_plan`] decides, per
//! server incarnation, whether that incarnation aborts and after how many
//! freshly computed (non-cache) job completions. Because only fresh
//! completions count, every crashing incarnation is guaranteed to have
//! banked at least one new result in the content-addressed cache before
//! dying, so a restart loop always makes forward progress and the request
//! stream converges to the same artifact bytes.

use simt_isa::codec::{fnv1a64, Encoder};

/// A seeded chaos-kill schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chaos {
    /// Kill roughly one in `kill_every` scheduled attempts (1 = kill
    /// every eligible attempt).
    pub kill_every: u64,
    /// Campaign chaos seed.
    pub seed: u64,
}

impl Chaos {
    /// Decides whether attempt `attempt` (0-based) of `job` is killed,
    /// and if so after how many checkpoint writes. Returns `None` for a
    /// clean attempt.
    ///
    /// The schedule never touches attempts at or past `retry_budget`:
    /// the final allowed attempt of every job is always clean, so chaos
    /// alone can never drive a job to `GaveUp` — the campaign always
    /// converges, merely later.
    pub fn kill_plan(&self, job: &str, attempt: u32, retry_budget: u32) -> Option<u64> {
        if self.kill_every == 0 || attempt >= retry_budget {
            return None;
        }
        let mut enc = Encoder::new();
        enc.put_str("usimt-chaos-v1");
        enc.put_u64(self.seed);
        enc.put_str(job);
        enc.put_u32(attempt);
        let h = fnv1a64(&enc.into_bytes());
        if h.is_multiple_of(self.kill_every) {
            // Die after 2–4 checkpoint writes: late enough that the job
            // has made real progress past its phase-entry snapshot, early
            // enough that short jobs still get killed mid-flight.
            Some(2 + (h >> 32) % 3)
        } else {
            None
        }
    }

    /// Decides whether server incarnation `incarnation` (0-based boot
    /// count, persisted by `repro serve` across restarts) crashes, and if
    /// so after how many *freshly computed* job completions (cache hits
    /// never count, so a crashing incarnation always banks new progress
    /// first — the restart loop can never livelock). Returns `None` for
    /// an incarnation that runs clean.
    pub fn server_crash_plan(&self, incarnation: u64) -> Option<u64> {
        if self.kill_every == 0 {
            return None;
        }
        let mut enc = Encoder::new();
        enc.put_str("usimt-serve-chaos-v1");
        enc.put_u64(self.seed);
        enc.put_u64(incarnation);
        let h = fnv1a64(&enc.into_bytes());
        if h.is_multiple_of(self.kill_every) {
            Some(1 + (h >> 32) % 3)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = Chaos {
            kill_every: 2,
            seed: 7,
        };
        let b = Chaos {
            kill_every: 2,
            seed: 8,
        };
        let plan_a: Vec<_> = (0..8).map(|n| a.kill_plan("fig8", n, 100)).collect();
        let plan_a2: Vec<_> = (0..8).map(|n| a.kill_plan("fig8", n, 100)).collect();
        let plan_b: Vec<_> = (0..8).map(|n| b.kill_plan("fig8", n, 100)).collect();
        assert_eq!(plan_a, plan_a2, "same seed, same schedule");
        assert_ne!(plan_a, plan_b, "different seed, different schedule");
    }

    #[test]
    fn kill_every_one_kills_every_attempt_under_the_budget() {
        let c = Chaos {
            kill_every: 1,
            seed: 0,
        };
        for attempt in 0..3 {
            let plan = c.kill_plan("fig3", attempt, 3);
            let m = plan.expect("every eligible attempt is killed");
            assert!((2..=4).contains(&m), "kill point {m} out of range");
        }
        assert_eq!(
            c.kill_plan("fig3", 3, 3),
            None,
            "the final allowed attempt is always clean"
        );
    }

    #[test]
    fn zero_rate_never_kills() {
        let c = Chaos {
            kill_every: 0,
            seed: 1,
        };
        assert_eq!(c.kill_plan("fig3", 0, 3), None);
    }
}
