//! Worker-process side of the campaign protocol.
//!
//! The coordinator re-invokes the `repro` binary as `repro __worker
//! <artifact> ...` for each scheduled attempt. The worker:
//!
//! 1. starts a heartbeat thread that rewrites its heartbeat file with an
//!    incrementing counter (~10 Hz) so the coordinator can tell a
//!    wedged worker from a slow one,
//! 2. renders the single artifact under the normal supervised runner
//!    (checkpointing on, `--resume` restoring any checkpoint a killed
//!    predecessor attempt left behind), and
//! 3. seals the rendered bytes — or the job-level error — into a
//!    checksummed result frame and writes it atomically to the
//!    agreed-on shard path, then exits 0.
//!
//! Any other exit (chaos abort inside the supervisor's kill hook, a
//! crash, a coordinator SIGKILL after a timeout) leaves no result frame,
//! which is exactly how the coordinator knows to reschedule.

use super::cache::{seal_result, ResultMeta};
use super::render_artifact;
use crate::runner::Scale;
use simt_sim::write_atomic;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Parsed `__worker` command-line surface (beyond the shared repro
/// flags, which the caller applies before invoking [`run_worker`]).
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// Artifact to render.
    pub artifact: String,
    /// Where to write the sealed result frame.
    pub out: PathBuf,
    /// Heartbeat file to keep fresh (optional: absent in direct
    /// debugging invocations).
    pub heartbeat: Option<PathBuf>,
    /// Job identity fingerprint to stamp into the result frame.
    pub fingerprint: u64,
    /// Render in `--json` mode.
    pub json: bool,
    /// Test hook: die by abort immediately (exercises the coordinator's
    /// retry/GaveUp path on every attempt it is passed to).
    pub test_fail: bool,
    /// Test hook: wedge forever without heartbeating (exercises the
    /// coordinator's liveness kill).
    pub test_hang: bool,
}

/// Heartbeat rewrite interval.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// Spawns the detached heartbeat thread. The thread dies with the
/// process; failures to write are ignored (a missing heartbeat reads as
/// a wedged worker, which kills this attempt — the safe direction).
///
/// Heartbeat format: line 1 is `<pid> <beat>`, line 2 (once the
/// supervisor has reached a slice boundary) is the latest
/// [`crate::supervisor::last_progress_pulse`] — the coordinator relays
/// it so status endpoints can show live per-job progress.
fn start_heartbeat(path: PathBuf) {
    std::thread::spawn(move || {
        let mut beat: u64 = 0;
        loop {
            beat += 1;
            let mut body = format!("{} {beat}\n", std::process::id());
            if let Some(pulse) = crate::supervisor::last_progress_pulse() {
                body.push_str(&pulse);
                body.push('\n');
            }
            let _ = std::fs::write(&path, body);
            std::thread::sleep(HEARTBEAT_INTERVAL);
        }
    });
}

/// Runs one campaign job to a sealed result frame. The process-wide
/// supervisor policy, scale, parallelism, and trace switches must
/// already be installed by the caller (the `repro` argument parser).
pub fn run_worker(args: &WorkerArgs, scale: Scale) -> ExitCode {
    if args.test_hang {
        // Deliberately wedge with no heartbeat: the coordinator must
        // detect the stale heartbeat and SIGKILL this process.
        eprintln!(
            "worker[{}]: test hook: hanging without heartbeat",
            args.artifact
        );
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    if let Some(hb) = &args.heartbeat {
        start_heartbeat(hb.clone());
    }
    if args.test_fail {
        eprintln!("worker[{}]: test hook: aborting", args.artifact);
        std::process::abort();
    }
    let meta = match render_artifact(&args.artifact, scale, args.json) {
        None => {
            eprintln!("worker[{}]: unknown workload", args.artifact);
            return ExitCode::from(2);
        }
        Some(Ok(rendered)) => {
            let meta = ResultMeta {
                artifact: args.artifact.clone(),
                fingerprint: args.fingerprint,
                ok: true,
                error: String::new(),
            };
            return write_frame(args, &meta, rendered.as_bytes());
        }
        Some(Err(e)) => ResultMeta {
            artifact: args.artifact.clone(),
            fingerprint: args.fingerprint,
            ok: false,
            error: e,
        },
    };
    write_frame(args, &meta, &[])
}

/// Seals and atomically writes the result frame; the frame write is the
/// worker's commit point.
fn write_frame(args: &WorkerArgs, meta: &ResultMeta, output: &[u8]) -> ExitCode {
    if let Some(dir) = args.out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "worker[{}]: cannot create {}: {e}",
                args.artifact,
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    }
    match write_atomic(&args.out, &seal_result(meta, output)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!(
                "worker[{}]: cannot write result {}: {e}",
                args.artifact,
                args.out.display()
            );
            ExitCode::FAILURE
        }
    }
}
