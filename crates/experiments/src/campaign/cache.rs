//! Content-addressed campaign result cache.
//!
//! Each completed job's rendered output is sealed into the PR-3
//! checksummed frame format ([`simt_sim::seal_frame`], distinct
//! `DMKRSLT` magic) and stored under a filename derived from the job's
//! identity fingerprint — an FNV-1a-64 over the kernel program bytes,
//! scenes, `GpuConfig`s, scale, and telemetry spec (see
//! [`crate::campaign::job_fingerprint`]). Repeated jobs return
//! instantly; any change to what a job would compute lands in a
//! different key and recomputes.
//!
//! A corrupt entry — truncated, bit-flipped, wrong magic, or stamped
//! with a different job identity than its filename claims — is never
//! trusted and never silently deleted: [`probe`] *quarantines* it
//! (renames it aside with a `.quarantined` suffix for post-mortem) and
//! reports a miss so the coordinator recomputes the job. A completed
//! campaign is byte-identical whether its results came from this cache,
//! a serial run, or sharded workers.

use simt_isa::codec::{Decoder, Encoder};
use simt_sim::{open_frame, seal_frame, write_atomic};
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes of a sealed campaign result entry (cache entries and
/// worker result shards share the format).
pub const RESULT_MAGIC: [u8; 8] = *b"DMKRSLT\0";

/// Result frame format version.
pub const RESULT_VERSION: u32 = 1;

/// Identity + verdict carried in a result frame's meta section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultMeta {
    /// Artifact name (`fig8`, `table3`, ...).
    pub artifact: String,
    /// Job identity fingerprint the result was computed under.
    pub fingerprint: u64,
    /// True when the job rendered successfully; false carries a
    /// job-level error message instead of output.
    pub ok: bool,
    /// Job-level error message (empty when `ok`).
    pub error: String,
}

/// Seals a job result (or job-level error) into the checksummed result
/// frame.
pub fn seal_result(meta: &ResultMeta, output: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_str(&meta.artifact);
    enc.put_u64(meta.fingerprint);
    enc.put_bool(meta.ok);
    enc.put_str(&meta.error);
    seal_frame(&RESULT_MAGIC, RESULT_VERSION, &enc.into_bytes(), output)
}

/// Opens a sealed result frame, verifying magic, version, and checksum,
/// and returns `(meta, output bytes)`.
///
/// # Errors
///
/// Returns a human-readable description of why the frame is unusable
/// (corruption, truncation, malformed meta).
pub fn open_result(bytes: &[u8]) -> Result<(ResultMeta, Vec<u8>), String> {
    let (meta_bytes, output) = open_frame(&RESULT_MAGIC, RESULT_VERSION, bytes)
        .map_err(|e| format!("unusable result frame: {e}"))?;
    let mut dec = Decoder::new(&meta_bytes);
    let meta = (|| -> Option<ResultMeta> {
        let meta = ResultMeta {
            artifact: dec.take_str().ok()?,
            fingerprint: dec.take_u64().ok()?,
            ok: dec.take_bool().ok()?,
            error: dec.take_str().ok()?,
        };
        dec.is_finished().then_some(meta)
    })()
    .ok_or_else(|| "malformed result meta".to_string())?;
    Ok((meta, output))
}

/// Path of the cache entry for `(artifact, fingerprint)` under `dir`.
pub fn entry_path(dir: &Path, artifact: &str, fingerprint: u64) -> PathBuf {
    dir.join(format!("{artifact}-{fingerprint:016x}.result"))
}

/// Outcome of probing the cache for a job.
#[derive(Debug)]
pub enum Probe {
    /// A valid entry for exactly this job identity; the cached output.
    Hit(Vec<u8>),
    /// No entry.
    Miss,
    /// An entry existed but was corrupt or mis-keyed; it has been
    /// renamed to the contained quarantine path and the job must be
    /// recomputed.
    Quarantined(PathBuf),
}

/// Probes the cache for `(artifact, fingerprint)`. A corrupt or
/// mis-stamped entry is quarantined (renamed aside, not deleted) and
/// reported so the caller recomputes.
pub fn probe(dir: &Path, artifact: &str, fingerprint: u64) -> Probe {
    let path = entry_path(dir, artifact, fingerprint);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Probe::Miss,
        Err(e) => {
            eprintln!("warning: cache: cannot read {}: {e}", path.display());
            return Probe::Miss;
        }
    };
    let why = match open_result(&bytes) {
        Ok((meta, output))
            if meta.artifact == artifact && meta.fingerprint == fingerprint && meta.ok =>
        {
            return Probe::Hit(output);
        }
        Ok((meta, _)) => format!(
            "entry is stamped {}/{:#018x} ok={}, expected {artifact}/{fingerprint:#018x}",
            meta.artifact, meta.fingerprint, meta.ok
        ),
        Err(e) => e,
    };
    quarantine(&path, &why)
}

/// Renames a bad cache entry aside and reports the quarantine.
fn quarantine(path: &Path, why: &str) -> Probe {
    let mut q = path.as_os_str().to_owned();
    q.push(".quarantined");
    let q = PathBuf::from(q);
    match std::fs::rename(path, &q) {
        Ok(()) => {
            eprintln!(
                "warning: cache: quarantined {} -> {} ({why})",
                path.display(),
                q.display()
            );
            Probe::Quarantined(q)
        }
        Err(e) => {
            // Could not move it aside; leave it and recompute anyway. The
            // store after recomputation will atomically replace it.
            eprintln!(
                "warning: cache: cannot quarantine {} ({why}; rename failed: {e})",
                path.display()
            );
            Probe::Miss
        }
    }
}

/// Stores a successful job output under its identity key, atomically and
/// durably.
///
/// # Errors
///
/// Propagates filesystem errors; the caller treats a failed store as a
/// lost optimization, never a failed job.
pub fn store(dir: &Path, artifact: &str, fingerprint: u64, output: &[u8]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let meta = ResultMeta {
        artifact: artifact.to_string(),
        fingerprint,
        ok: true,
        error: String::new(),
    };
    write_atomic(
        &entry_path(dir, artifact, fingerprint),
        &seal_result(&meta, output),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("campaign-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        d
    }

    #[test]
    fn store_then_probe_round_trips() {
        let dir = tmp_dir("roundtrip");
        store(&dir, "fig3", 0xABCD, b"rendered output\n").expect("stores");
        match probe(&dir, "fig3", 0xABCD) {
            Probe::Hit(out) => assert_eq!(out, b"rendered output\n"),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(probe(&dir, "fig3", 0xABCE), Probe::Miss));
        assert!(matches!(probe(&dir, "fig7", 0xABCD), Probe::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_trusted() {
        let dir = tmp_dir("corrupt");
        store(&dir, "fig3", 7, b"good bytes").expect("stores");
        let path = entry_path(&dir, "fig3", 7);
        let mut bytes = std::fs::read(&path).expect("readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("writable");
        match probe(&dir, "fig3", 7) {
            Probe::Quarantined(q) => {
                assert!(q.exists(), "quarantined file kept for post-mortem");
                assert!(!path.exists(), "bad entry moved aside");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // After recomputation the store replaces the slot cleanly.
        store(&dir, "fig3", 7, b"good bytes").expect("stores again");
        assert!(matches!(probe(&dir, "fig3", 7), Probe::Hit(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_quarantined() {
        let dir = tmp_dir("truncated");
        store(&dir, "table3", 9, b"0123456789").expect("stores");
        let path = entry_path(&dir, "table3", 9);
        let bytes = std::fs::read(&path).expect("readable");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("writable");
        assert!(matches!(probe(&dir, "table3", 9), Probe::Quarantined(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mis_keyed_entries_are_quarantined() {
        // An entry whose frame is intact but whose meta names a different
        // job identity than its filename must not be served.
        let dir = tmp_dir("miskey");
        let meta = ResultMeta {
            artifact: "fig9".to_string(),
            fingerprint: 1,
            ok: true,
            error: String::new(),
        };
        std::fs::write(entry_path(&dir, "fig3", 2), seal_result(&meta, b"x")).expect("writable");
        assert!(matches!(probe(&dir, "fig3", 2), Probe::Quarantined(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
