//! `repro campaign` — a sharded, crash-tolerant campaign runner.
//!
//! The paper's figures come from a matrix of per-scene/per-config
//! simulation jobs. `repro all` runs that matrix sequentially in one
//! process; this module fans it across N **worker processes** (the
//! `repro` binary re-invoked in a single-job `__worker` mode, see
//! [`worker`]), supervised by a coordinator that:
//!
//! - tracks per-worker liveness via heartbeat files and imposes per-job
//!   wall-clock timeouts, SIGKILLing wedged workers;
//! - reschedules dead or hung jobs with exponential backoff under a
//!   bounded retry budget, each retry resuming from the worker's last
//!   good `.ckpt` through the existing `supervisor::try_resume` path
//!   instead of restarting from cycle 0;
//! - serves repeated jobs from a content-addressed result [`cache`]
//!   keyed by an FNV hash of (program bytes, scene, `GpuConfig`, scale,
//!   telemetry spec), detecting and quarantining corrupt entries;
//! - reports every job in a campaign [`manifest`] — a job that exhausts
//!   its retries is `GaveUp` there while the rest of the matrix
//!   completes.
//!
//! Because each job's simulation is deterministic and checkpoint resume
//! is bit-identical, a completed campaign's artifact bytes are the same
//! whether they were computed serially (`repro all`), sharded across
//! workers, served from the cache, or chaos-tested: the process-level
//! [`chaos`] mode deterministically kills workers mid-job and the
//! campaign still converges to identical output. See `DESIGN.md` §12.

pub mod cache;
pub mod chaos;
pub mod manifest;
pub mod worker;

use crate::runner::{run_fingerprint, Scale};
use crate::{
    ablation, fig10, fig2, fig3, fig7, fig8, fig9, shadow, table1, table2, table3, table4,
};
use chaos::Chaos;
use manifest::{JobOutcome, JobRecord, Manifest};
use simt_isa::codec::{fnv1a64, Encoder};
use std::fmt;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Every artifact of a full campaign, in canonical presentation order
/// (the order `repro all` runs them).
pub const ARTIFACTS: [&str; 12] = [
    "table1", "table2", "table3", "table4", "fig2", "fig3", "fig7", "fig8", "fig9", "fig10",
    "ablation", "shadow",
];

/// Renders one artifact to the exact bytes `repro` prints on stdout for
/// it — `Display` text plus the trailing blank line, or the one-line
/// JSON envelope under `--json`. Campaign workers, the serial `repro`
/// path, and the result cache all share this definition, which is what
/// makes "byte-identical however computed" checkable.
///
/// Returns `None` for an unknown artifact, `Some(Err)` when the job
/// itself failed (a deterministic job-level error the campaign reports
/// without retrying).
pub fn render_artifact(name: &str, scale: Scale, json: bool) -> Option<Result<String, String>> {
    fn page<T: fmt::Display>(artifact: &str, value: &T, json: bool) -> String {
        if json {
            format!(
                "{{\"artifact\":\"{}\",\"data\":\"{}\"}}\n",
                manifest::escape(artifact),
                manifest::escape(&value.to_string())
            )
        } else {
            format!("{value}\n\n")
        }
    }
    let rendered = match name {
        "table1" => page("table1", &table1::run(), json),
        "table2" => page("table2", &table2::run(), json),
        "table3" => page("table3", &table3::run(scale), json),
        "table4" => page("table4", &table4::run(scale), json),
        "fig2" => match fig2::run() {
            Ok(f) => page("fig2", &f, json),
            Err(e) => return Some(Err(format!("kernel assembly failed: {e}"))),
        },
        "fig3" => page("fig3", &fig3::run(scale), json),
        "fig7" => page("fig7", &fig7::run(scale), json),
        "fig8" => page("fig8", &fig8::run(scale), json),
        "fig9" => page("fig9", &fig9::run(scale), json),
        "fig10" => page("fig10", &fig10::run(scale), json),
        "ablation" => page("ablation", &ablation::run(scale), json),
        "shadow" => page("shadow", &shadow::run(scale), json),
        _ => return None,
    };
    Some(Ok(rendered))
}

/// Identity fingerprint of one campaign job: FNV-1a-64 over the
/// artifact name, output mode, and the [`run_fingerprint`] of every
/// (scene × variant) render the matrix can touch at this scale — which
/// folds in the kernel program bytes, the full `GpuConfig` per variant,
/// the scene identities, the [`Scale`], and the telemetry spec. Any
/// change to any of those re-keys every job; the content-addressed
/// cache can therefore never serve a stale result for them.
pub fn job_fingerprint(artifact: &str, scale: Scale, json: bool) -> u64 {
    let mut enc = Encoder::new();
    enc.put_str("usimt-campaign-fp-v1");
    enc.put_str(artifact);
    enc.put_bool(json);
    for scene in raytrace::scenes::all(scale.scene) {
        for variant in crate::configs::Variant::ALL {
            enc.put_u64(run_fingerprint(&scene, variant, scale));
        }
    }
    fnv1a64(&enc.into_bytes())
}

/// Campaign configuration, built by the `repro campaign` argument
/// parser (or directly by tests and the benchmark harness).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Experiment scale every job runs at.
    pub scale: Scale,
    /// Scale name forwarded to workers (`--scale <name>`).
    pub scale_name: String,
    /// Render jobs in `--json` mode.
    pub json: bool,
    /// Artifacts to run (validated against [`ARTIFACTS`], executed in
    /// canonical order).
    pub artifacts: Vec<String>,
    /// Worker process count.
    pub workers: usize,
    /// Coordinator working directory (result shards, heartbeats,
    /// checkpoints, manifest).
    pub work_dir: PathBuf,
    /// Content-addressed result cache directory.
    pub cache_dir: PathBuf,
    /// Binary to re-invoke in `__worker` mode (defaults to this
    /// process's executable — the coordinator *is* `repro`).
    pub worker_exe: PathBuf,
    /// Checkpoint interval forwarded to workers (cycles).
    pub checkpoint_every: u64,
    /// Worker-process reschedules allowed per job before `GaveUp`
    /// (a job gets `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Per-job wall-clock timeout; a worker past it is SIGKILLed.
    pub job_timeout: Duration,
    /// Heartbeat staleness bound; a worker whose heartbeat file stops
    /// changing for this long is SIGKILLed as wedged.
    pub heartbeat_timeout: Duration,
    /// Base reschedule delay; doubles per consumed attempt.
    pub backoff_base: Duration,
    /// Reschedule delay cap.
    pub backoff_cap: Duration,
    /// Deterministic process-level chaos (kill rate + seed).
    pub chaos: Option<Chaos>,
    /// Extra `repro` flags forwarded verbatim to every worker
    /// (`--json`, `--parallel`, `--trace`, ...).
    pub passthrough: Vec<String>,
    /// Test hook: this job's workers abort on every attempt (drives the
    /// job to `GaveUp` while the rest of the campaign completes).
    pub test_fail_job: Option<String>,
    /// Test hook: this job's first worker wedges without heartbeating
    /// (drives the coordinator's liveness kill + reschedule path).
    pub test_hang_job: Option<String>,
}

impl CampaignConfig {
    /// A full-matrix campaign at `scale` with production defaults.
    pub fn new(scale: Scale, scale_name: &str) -> Self {
        let work_dir = PathBuf::from("campaign");
        CampaignConfig {
            scale,
            scale_name: scale_name.to_string(),
            json: false,
            artifacts: ARTIFACTS.iter().map(|s| s.to_string()).collect(),
            workers: 2,
            cache_dir: work_dir.join("cache"),
            work_dir,
            worker_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("repro")),
            checkpoint_every: 2000,
            max_retries: 3,
            job_timeout: Duration::from_secs(3600),
            heartbeat_timeout: Duration::from_secs(120),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            chaos: None,
            passthrough: Vec::new(),
            test_fail_job: None,
            test_hang_job: None,
        }
    }
}

/// A finished campaign: the manifest plus, parallel to
/// `manifest.jobs`, each job's output bytes (`None` for `GaveUp` /
/// `Failed`).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-job supervision records.
    pub manifest: Manifest,
    /// Output bytes per job, in `manifest.jobs` order.
    pub outputs: Vec<Option<Vec<u8>>>,
}

impl CampaignOutcome {
    /// True when every job produced output (nothing gave up or failed).
    pub fn complete(&self) -> bool {
        self.manifest.gave_up() == 0 && self.manifest.failed() == 0
    }
}

/// Coordinator-side record of one job.
struct Job {
    name: String,
    fingerprint: u64,
    attempts: u32,
    kills: u32,
    timeouts: u32,
    resumed: bool,
    quarantined: bool,
    cache_hit: bool,
    ready_at: Instant,
    in_flight: bool,
    last_failure: Option<String>,
    done: Option<(JobOutcome, Option<Vec<u8>>, Option<String>)>,
}

/// One live worker process.
struct Running {
    child: Child,
    job: usize,
    started: Instant,
    hb_path: PathBuf,
    out_path: PathBuf,
    last_hb: Vec<u8>,
    last_hb_change: Instant,
}

/// Human description of a worker exit status.
fn describe_exit(status: ExitStatus) -> String {
    match status.code() {
        Some(code) if code == i32::from(crate::supervisor::KILL_EXIT_CODE) => {
            format!("kill hook exit {code}")
        }
        Some(code) => format!("exit code {code}"),
        None => "killed by signal".to_string(),
    }
}

/// Runs a campaign to completion. Every scheduling decision is logged to
/// stderr; the returned outcome carries the manifest and the per-job
/// output bytes in canonical order.
///
/// # Errors
///
/// Returns `Err` only for campaign-level misconfiguration (unknown
/// artifact names, unusable work directory, unspawnable worker binary).
/// Job-level trouble — worker deaths, hangs, corrupt cache entries,
/// deterministic job errors — is supervised and reported per job in the
/// manifest instead.
pub fn run(cfg: &CampaignConfig) -> Result<CampaignOutcome, String> {
    for name in &cfg.artifacts {
        if !ARTIFACTS.contains(&name.as_str()) {
            return Err(format!("unknown artifact: {name}"));
        }
    }
    if cfg.workers == 0 {
        return Err("campaign needs at least one worker".to_string());
    }
    let out_dir = cfg.work_dir.join("out");
    let hb_dir = cfg.work_dir.join("hb");
    let ckpt_root = cfg.work_dir.join("ckpt");
    for d in [&cfg.work_dir, &out_dir, &hb_dir, &ckpt_root, &cfg.cache_dir] {
        std::fs::create_dir_all(d).map_err(|e| format!("cannot create {}: {e}", d.display()))?;
    }

    // Canonical order; duplicates collapse.
    let mut jobs: Vec<Job> = ARTIFACTS
        .iter()
        .filter(|a| cfg.artifacts.iter().any(|r| r == *a))
        .map(|a| Job {
            name: a.to_string(),
            fingerprint: job_fingerprint(a, cfg.scale, cfg.json),
            attempts: 0,
            kills: 0,
            timeouts: 0,
            resumed: false,
            quarantined: false,
            cache_hit: false,
            ready_at: Instant::now(),
            in_flight: false,
            last_failure: None,
            done: None,
        })
        .collect();

    // Cache pass: hits complete immediately; corrupt entries are
    // quarantined and fall through to recomputation.
    for job in &mut jobs {
        match cache::probe(&cfg.cache_dir, &job.name, job.fingerprint) {
            cache::Probe::Hit(output) => {
                eprintln!("campaign: {}: cache hit", job.name);
                job.cache_hit = true;
                job.done = Some((JobOutcome::Cached, Some(output), None));
            }
            cache::Probe::Quarantined(_) => {
                eprintln!(
                    "campaign: {}: corrupt cache entry quarantined; recomputing",
                    job.name
                );
                job.quarantined = true;
            }
            cache::Probe::Miss => {}
        }
    }

    let mut running: Vec<Running> = Vec::new();
    while jobs.iter().any(|j| j.done.is_none()) {
        // Reap finished workers and police liveness.
        let mut i = 0;
        while i < running.len() {
            let now = Instant::now();
            let r = &mut running[i];
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    let r = running.swap_remove(i);
                    let job = &mut jobs[r.job];
                    job.in_flight = false;
                    if status.success() {
                        complete_from_frame(cfg, job, &r.out_path, &ckpt_root);
                    } else {
                        worker_died(cfg, job, &describe_exit(status), false);
                    }
                }
                Ok(None) => {
                    if let Ok(hb) = std::fs::read(&r.hb_path) {
                        if !hb.is_empty() && hb != r.last_hb {
                            r.last_hb = hb;
                            r.last_hb_change = now;
                        }
                    }
                    let reason = if now.duration_since(r.started) > cfg.job_timeout {
                        Some("wall-clock timeout")
                    } else if now.duration_since(r.last_hb_change) > cfg.heartbeat_timeout {
                        Some("stale heartbeat")
                    } else {
                        None
                    };
                    if let Some(why) = reason {
                        let mut r = running.swap_remove(i);
                        let _ = r.child.kill();
                        let _ = r.child.wait();
                        let job = &mut jobs[r.job];
                        job.in_flight = false;
                        worker_died(cfg, job, &format!("SIGKILL after {why}"), true);
                    } else {
                        i += 1;
                    }
                }
                Err(e) => {
                    let mut r = running.swap_remove(i);
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    let job = &mut jobs[r.job];
                    job.in_flight = false;
                    worker_died(cfg, job, &format!("wait failed: {e}"), false);
                }
            }
        }
        // Fill free worker slots with ready jobs, canonical order first.
        while running.len() < cfg.workers {
            let now = Instant::now();
            let Some(idx) = jobs
                .iter()
                .position(|j| j.done.is_none() && !j.in_flight && j.ready_at <= now)
            else {
                break;
            };
            let r = spawn_attempt(cfg, &mut jobs[idx], idx, &out_dir, &hb_dir, &ckpt_root)?;
            jobs[idx].in_flight = true;
            running.push(r);
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let records: Vec<JobRecord> = jobs
        .iter()
        .map(|j| {
            let (outcome, _, error) = j.done.as_ref().expect("loop ran every job to done");
            JobRecord {
                name: j.name.clone(),
                fingerprint: j.fingerprint,
                outcome: outcome.clone(),
                attempts: j.attempts,
                kills: j.kills,
                timeouts: j.timeouts,
                resumed_from_checkpoint: j.resumed,
                cache_hit: j.cache_hit,
                quarantined: j.quarantined,
                error: error.clone(),
            }
        })
        .collect();
    let manifest = Manifest {
        scale: cfg.scale_name.clone(),
        workers: cfg.workers,
        chaos_kill_every: cfg.chaos.map(|c| c.kill_every),
        seed: cfg.chaos.map(|c| c.seed).unwrap_or(0),
        jobs: records,
    };
    let manifest_path = cfg.work_dir.join("manifest.json");
    if let Err(e) = simt_sim::write_atomic(&manifest_path, manifest.to_json().as_bytes()) {
        eprintln!(
            "warning: campaign: cannot write {}: {e}",
            manifest_path.display()
        );
    } else {
        eprintln!("campaign: manifest written to {}", manifest_path.display());
    }
    let outputs = jobs
        .into_iter()
        .map(|j| j.done.expect("loop ran every job to done").1)
        .collect();
    Ok(CampaignOutcome { manifest, outputs })
}

/// Finishes a job from the result frame its worker committed. A frame
/// that is unreadable, corrupt, or stamped with the wrong identity is
/// treated as a worker failure (the attempt is retried); a frame
/// carrying a job-level error finishes the job as `Failed` without
/// burning retries — the error is deterministic.
fn complete_from_frame(
    cfg: &CampaignConfig,
    job: &mut Job,
    out_path: &std::path::Path,
    ckpt_root: &std::path::Path,
) {
    let verdict = std::fs::read(out_path)
        .map_err(|e| format!("result frame unreadable: {e}"))
        .and_then(|bytes| cache::open_result(&bytes));
    match verdict {
        Ok((meta, output)) if meta.artifact == job.name && meta.fingerprint == job.fingerprint => {
            if meta.ok {
                if let Err(e) = cache::store(&cfg.cache_dir, &job.name, job.fingerprint, &output) {
                    eprintln!("warning: campaign: {}: cache store failed: {e}", job.name);
                }
                let outcome = if job.attempts > 0 {
                    JobOutcome::Resumed(job.attempts)
                } else {
                    JobOutcome::Completed
                };
                eprintln!("campaign: {}: {}", job.name, outcome);
                job.done = Some((outcome, Some(output), None));
            } else {
                eprintln!("campaign: {}: job-level error: {}", job.name, meta.error);
                job.done = Some((JobOutcome::Failed, None, Some(meta.error)));
            }
            let _ = std::fs::remove_dir_all(ckpt_root.join(&job.name));
        }
        Ok((meta, _)) => worker_died(
            cfg,
            job,
            &format!(
                "result frame stamped {}/{:#018x}, expected {}/{:#018x}",
                meta.artifact, meta.fingerprint, job.name, job.fingerprint
            ),
            false,
        ),
        Err(e) => worker_died(cfg, job, &format!("exited 0 but {e}"), false),
    }
}

/// Consumes one attempt after a worker death/hang: reschedules with
/// exponential backoff under the retry budget, or finishes the job as
/// `GaveUp` — the campaign itself keeps going either way.
fn worker_died(cfg: &CampaignConfig, job: &mut Job, reason: &str, timeout: bool) {
    job.kills += 1;
    if timeout {
        job.timeouts += 1;
    }
    job.attempts += 1;
    job.last_failure = Some(reason.to_string());
    if job.attempts > cfg.max_retries {
        let error = format!(
            "gave up after {} attempt(s); last failure: {reason}",
            job.attempts
        );
        eprintln!("campaign: {}: {error}", job.name);
        job.done = Some((JobOutcome::GaveUp, None, Some(error)));
        return;
    }
    let backoff = cfg
        .backoff_base
        .checked_mul(1u32.checked_shl(job.attempts - 1).unwrap_or(u32::MAX))
        .unwrap_or(cfg.backoff_cap)
        .min(cfg.backoff_cap);
    job.ready_at = Instant::now() + backoff;
    eprintln!(
        "campaign: {}: worker died ({reason}); retry {}/{} in {:?}",
        job.name, job.attempts, cfg.max_retries, backoff
    );
}

/// Spawns one worker attempt for `job`, wiring its heartbeat, result
/// shard, checkpoint directory, chaos plan, and test hooks.
fn spawn_attempt(
    cfg: &CampaignConfig,
    job: &mut Job,
    idx: usize,
    out_dir: &std::path::Path,
    hb_dir: &std::path::Path,
    ckpt_root: &std::path::Path,
) -> Result<Running, String> {
    let out_path = out_dir.join(format!("{}.result", job.name));
    let hb_path = hb_dir.join(format!("{}.hb", job.name));
    let ckpt_dir = ckpt_root.join(&job.name);
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&hb_path);
    if job.attempts > 0 {
        // A checkpoint left by the killed attempt means the retry resumes
        // mid-job instead of restarting from cycle 0.
        let has_ckpt = std::fs::read_dir(&ckpt_dir)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false);
        if has_ckpt {
            job.resumed = true;
            eprintln!(
                "campaign: {}: attempt {} will resume from checkpoint",
                job.name,
                job.attempts + 1
            );
        }
    }
    let mut cmd = Command::new(&cfg.worker_exe);
    cmd.arg("__worker")
        .arg(&job.name)
        .arg("--worker-out")
        .arg(&out_path)
        .arg("--worker-heartbeat")
        .arg(&hb_path)
        .arg("--worker-fingerprint")
        .arg(format!("{:016x}", job.fingerprint))
        .arg("--checkpoint-every")
        .arg(cfg.checkpoint_every.to_string())
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .arg("--scale")
        .arg(&cfg.scale_name)
        .args(&cfg.passthrough)
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if let Some(chaos) = cfg.chaos {
        if let Some(after) = chaos.kill_plan(&job.name, job.attempts, cfg.max_retries) {
            eprintln!(
                "campaign: {}: chaos will abort attempt {} after {after} checkpoint write(s)",
                job.name,
                job.attempts + 1
            );
            cmd.arg("--kill-after-checkpoints")
                .arg(after.to_string())
                .arg("--chaos-abort");
        }
    }
    if cfg.test_fail_job.as_deref() == Some(job.name.as_str()) {
        cmd.arg("--worker-test-fail");
    }
    if cfg.test_hang_job.as_deref() == Some(job.name.as_str()) && job.attempts == 0 {
        cmd.arg("--worker-test-hang");
    }
    let child = cmd.spawn().map_err(|e| {
        format!(
            "cannot spawn worker {} for {}: {e}",
            cfg.worker_exe.display(),
            job.name
        )
    })?;
    eprintln!(
        "campaign: {}: attempt {} started (worker pid {}, slot {idx})",
        job.name,
        job.attempts + 1,
        child.id()
    );
    let now = Instant::now();
    Ok(Running {
        child,
        job: idx,
        started: now,
        hb_path,
        out_path,
        last_hb: Vec::new(),
        last_hb_change: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_fingerprint_keys_on_artifact_scale_and_mode() {
        let base = job_fingerprint("fig3", Scale::test(), false);
        assert_eq!(base, job_fingerprint("fig3", Scale::test(), false));
        assert_ne!(base, job_fingerprint("fig7", Scale::test(), false));
        assert_ne!(base, job_fingerprint("fig3", Scale::quick(), false));
        assert_ne!(base, job_fingerprint("fig3", Scale::test(), true));
    }

    #[test]
    fn rendered_artifacts_match_known_set() {
        // Every canonical artifact renders (at the cheapest scale the
        // static ones allow); unknown names are rejected.
        assert!(render_artifact("table1", Scale::test(), false)
            .expect("known")
            .is_ok());
        assert!(render_artifact("nope", Scale::test(), false).is_none());
        let json = render_artifact("table1", Scale::test(), true)
            .expect("known")
            .expect("renders");
        assert!(json.starts_with("{\"artifact\":\"table1\""));
        assert!(json.ends_with("\"}\n"));
    }

    #[test]
    fn unknown_artifact_fails_fast() {
        let mut cfg = CampaignConfig::new(Scale::test(), "test");
        cfg.artifacts = vec!["bogus".to_string()];
        assert!(run(&cfg).is_err());
    }
}
