//! `repro campaign` — a sharded, crash-tolerant campaign runner.
//!
//! The paper's figures come from a matrix of per-scene/per-config
//! simulation jobs. `repro all` runs that matrix sequentially in one
//! process; this module fans it across N **worker processes** (the
//! `repro` binary re-invoked in a single-job `__worker` mode, see
//! [`worker`]), supervised by a [`Coordinator`] that:
//!
//! - tracks per-worker liveness via heartbeat files and imposes per-job
//!   wall-clock timeouts, SIGKILLing wedged workers;
//! - reschedules dead or hung jobs with exponential backoff under a
//!   bounded retry budget, each retry resuming from the worker's last
//!   good `.ckpt` through the existing `supervisor::try_resume` path
//!   instead of restarting from cycle 0;
//! - serves repeated jobs from a content-addressed result [`cache`]
//!   keyed by an FNV hash of (program bytes, scene, `GpuConfig`, scale,
//!   telemetry spec), detecting and quarantining corrupt entries;
//! - enforces optional per-job deadlines (SIGKILLing and reporting
//!   [`JobOutcome::DeadlineExceeded`] without retry — the `repro serve`
//!   front-end attaches these);
//! - reports every job in a campaign [`manifest`] — a job that exhausts
//!   its retries is `GaveUp` there while the rest of the matrix
//!   completes.
//!
//! The [`Coordinator`] is deliberately a *pumped* engine: [`Coordinator::poll`]
//! performs one non-blocking supervision pass (reap, liveness, deadline,
//! spawn), so the batch [`run`] loop and the long-running `repro serve`
//! front-end (`crate::serve`) drive the identical scheduling code —
//! serve just keeps submitting while it pumps.
//!
//! Because each job's simulation is deterministic and checkpoint resume
//! is bit-identical, a completed campaign's artifact bytes are the same
//! whether they were computed serially (`repro all`), sharded across
//! workers, served from the cache, or chaos-tested: the process-level
//! [`chaos`] mode deterministically kills workers mid-job and the
//! campaign still converges to identical output. See `DESIGN.md` §12.

pub mod cache;
pub mod chaos;
pub mod manifest;
pub mod worker;

use crate::runner::{run_fingerprint, Scale};
use crate::workload::{RenderError, ScenarioSpec};
use chaos::Chaos;
use manifest::{JobOutcome, JobRecord, Manifest};
use simt_isa::codec::{fnv1a64, Encoder};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// The paper-group artifacts of a full campaign, in canonical
/// presentation order (the order `repro all` runs them). Delegates to
/// the [`crate::workload`] registry — the single source of truth for
/// what is runnable.
pub fn artifacts() -> Vec<&'static str> {
    crate::workload::paper_ids()
}

/// Renders one job to the exact bytes `repro` prints on stdout for
/// it — `Display` text plus the trailing blank line, or the one-line
/// JSON envelope under `--json`. Campaign workers, the serial `repro`
/// path, and the result cache all share this definition (via the
/// [`crate::workload`] registry), which is what makes "byte-identical
/// however computed" checkable.
///
/// Returns `None` for a name no registered workload covers, `Some(Err)`
/// when the job itself failed (a deterministic job-level error the
/// campaign reports without retrying).
pub fn render_artifact(name: &str, scale: Scale, json: bool) -> Option<Result<String, String>> {
    match ScenarioSpec::new(name, scale, "").render(json) {
        Ok(rendered) => Some(Ok(rendered)),
        Err(RenderError::Unknown(_)) => None,
        Err(RenderError::Job(e)) => Some(Err(e)),
    }
}

/// Identity fingerprint of one campaign job: FNV-1a-64 over the
/// scenario's canonical job name, output mode, and the
/// [`run_fingerprint`] of every (scene × variant) render the matrix can
/// touch at this scale — which folds in the kernel program bytes, the
/// full `GpuConfig` per variant, the scene identities, the [`Scale`],
/// and the telemetry spec. Workloads with private inputs (extra kernel
/// programs, their own configuration) extend the encoding through
/// [`crate::workload::Workload::extend_fingerprint`]; the hook appends
/// *after* the historical encoding and is a no-op for the paper
/// artifacts, so their fingerprints — and every existing cache entry and
/// journal id — are unchanged. Any change to any input re-keys the job;
/// the content-addressed cache can therefore never serve a stale result.
pub fn scenario_fingerprint(spec: &ScenarioSpec, json: bool) -> u64 {
    let mut enc = Encoder::new();
    enc.put_str("usimt-campaign-fp-v1");
    enc.put_str(spec.name());
    enc.put_bool(json);
    for scene in raytrace::scenes::all(spec.scale.scene) {
        for variant in crate::configs::Variant::ALL {
            enc.put_u64(run_fingerprint(&scene, variant, spec.scale));
        }
    }
    if let Ok(w) = spec.resolve() {
        w.extend_fingerprint(&mut enc, spec.scale);
    }
    fnv1a64(&enc.into_bytes())
}

/// [`scenario_fingerprint`] for a bare job name (see there).
pub fn job_fingerprint(artifact: &str, scale: Scale, json: bool) -> u64 {
    scenario_fingerprint(&ScenarioSpec::new(artifact, scale, ""), json)
}

/// Campaign configuration, built by the `repro campaign` argument
/// parser (or directly by tests and the benchmark harness).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Experiment scale every job runs at.
    pub scale: Scale,
    /// Scale name forwarded to workers (`--scale <name>`).
    pub scale_name: String,
    /// Render jobs in `--json` mode.
    pub json: bool,
    /// Job names to run (validated against the [`crate::workload`]
    /// registry, executed in canonical registry order).
    pub artifacts: Vec<String>,
    /// Worker process count.
    pub workers: usize,
    /// Coordinator working directory (result shards, heartbeats,
    /// checkpoints, manifest).
    pub work_dir: PathBuf,
    /// Content-addressed result cache directory.
    pub cache_dir: PathBuf,
    /// Binary to re-invoke in `__worker` mode (defaults to this
    /// process's executable — the coordinator *is* `repro`).
    pub worker_exe: PathBuf,
    /// Checkpoint interval forwarded to workers (cycles).
    pub checkpoint_every: u64,
    /// Worker-process reschedules allowed per job before `GaveUp`
    /// (a job gets `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Per-job wall-clock timeout; a worker past it is SIGKILLed.
    pub job_timeout: Duration,
    /// Heartbeat staleness bound; a worker whose heartbeat file stops
    /// changing for this long is SIGKILLed as wedged.
    pub heartbeat_timeout: Duration,
    /// Base reschedule delay; doubles per consumed attempt.
    pub backoff_base: Duration,
    /// Reschedule delay cap.
    pub backoff_cap: Duration,
    /// Deterministic process-level chaos (kill rate + seed).
    pub chaos: Option<Chaos>,
    /// Extra `repro` flags forwarded verbatim to every worker
    /// (`--json`, `--parallel`, `--trace`, ...).
    pub passthrough: Vec<String>,
    /// Test hook: this job's workers abort on every attempt (drives the
    /// job to `GaveUp` while the rest of the campaign completes).
    pub test_fail_job: Option<String>,
    /// Test hook: this job's first worker wedges without heartbeating
    /// (drives the coordinator's liveness kill + reschedule path).
    pub test_hang_job: Option<String>,
}

impl CampaignConfig {
    /// A full-matrix campaign at `scale` with production defaults.
    pub fn new(scale: Scale, scale_name: &str) -> Self {
        let work_dir = PathBuf::from("campaign");
        CampaignConfig {
            scale,
            scale_name: scale_name.to_string(),
            json: false,
            artifacts: artifacts().iter().map(|s| s.to_string()).collect(),
            workers: 2,
            cache_dir: work_dir.join("cache"),
            work_dir,
            worker_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("repro")),
            checkpoint_every: 2000,
            max_retries: 3,
            job_timeout: Duration::from_secs(3600),
            heartbeat_timeout: Duration::from_secs(120),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            chaos: None,
            passthrough: Vec::new(),
            test_fail_job: None,
            test_hang_job: None,
        }
    }

    /// The execution-engine half of this configuration (everything the
    /// [`Coordinator`] needs; the artifact list and per-job scale live in
    /// the [`JobSpec`]s submitted to it).
    pub fn exec(&self) -> ExecConfig {
        ExecConfig {
            workers: self.workers,
            work_dir: self.work_dir.clone(),
            cache_dir: self.cache_dir.clone(),
            worker_exe: self.worker_exe.clone(),
            checkpoint_every: self.checkpoint_every,
            max_retries: self.max_retries,
            job_timeout: self.job_timeout,
            heartbeat_timeout: self.heartbeat_timeout,
            backoff_base: self.backoff_base,
            backoff_cap: self.backoff_cap,
            chaos: self.chaos,
            passthrough: self.passthrough.clone(),
            test_fail_job: self.test_fail_job.clone(),
            test_hang_job: self.test_hang_job.clone(),
        }
    }
}

/// Configuration of the job-execution engine itself, shared by batch
/// campaigns and the `repro serve` front-end. Field meanings match
/// [`CampaignConfig`].
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub struct ExecConfig {
    pub workers: usize,
    pub work_dir: PathBuf,
    pub cache_dir: PathBuf,
    pub worker_exe: PathBuf,
    pub checkpoint_every: u64,
    pub max_retries: u32,
    pub job_timeout: Duration,
    pub heartbeat_timeout: Duration,
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    pub chaos: Option<Chaos>,
    pub passthrough: Vec<String>,
    pub test_fail_job: Option<String>,
    pub test_hang_job: Option<String>,
}

/// One job submission: which scenario, in which output mode, and under
/// what (optional) completion deadline.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The typed scenario this job renders (workload, optional variant
    /// narrowing, scale).
    pub scenario: ScenarioSpec,
    /// Render in `--json` mode.
    pub json: bool,
    /// Wall-clock budget from submission; on expiry the job's worker is
    /// SIGKILLed and the job finishes [`JobOutcome::DeadlineExceeded`]
    /// without retry.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A no-deadline spec for the job name `name` (`workload` or
    /// `workload@variant`) at `scale`.
    pub fn new(name: &str, scale: Scale, scale_name: &str, json: bool) -> Self {
        JobSpec {
            scenario: ScenarioSpec::new(name, scale, scale_name),
            json,
            deadline: None,
        }
    }

    /// Canonical job name (wire format, worker argv, manifest entry;
    /// byte-identical to the bare artifact name for paper jobs).
    pub fn name(&self) -> &str {
        self.scenario.name()
    }

    /// Identity fingerprint of the work this spec names (deadlines do not
    /// re-key: the same render under a different deadline is the same
    /// bytes).
    pub fn fingerprint(&self) -> u64 {
        scenario_fingerprint(&self.scenario, self.json)
    }
}

/// A finished campaign: the manifest plus, parallel to
/// `manifest.jobs`, each job's output bytes (`None` for `GaveUp` /
/// `Failed`).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-job supervision records.
    pub manifest: Manifest,
    /// Output bytes per job, in `manifest.jobs` order.
    pub outputs: Vec<Option<Vec<u8>>>,
}

impl CampaignOutcome {
    /// True when every job produced output (nothing gave up or failed).
    pub fn complete(&self) -> bool {
        self.manifest.gave_up() == 0
            && self.manifest.failed() == 0
            && self.manifest.deadline_exceeded() == 0
    }
}

/// Coordinator-side record of one job.
#[derive(Debug)]
pub struct Job {
    spec: JobSpec,
    /// Unique file-system key: `<artifact>-<fingerprint>` — two jobs for
    /// the same artifact at different scales must not share result-shard,
    /// heartbeat, or checkpoint paths.
    key: String,
    fingerprint: u64,
    attempts: u32,
    kills: u32,
    timeouts: u32,
    resumed: bool,
    quarantined: bool,
    cache_hit: bool,
    deadline_at: Option<Instant>,
    ready_at: Instant,
    in_flight: bool,
    /// Latest worker progress pulse (cycle + machine vitals), parsed from
    /// the heartbeat file.
    progress: Option<String>,
    last_failure: Option<String>,
    done: Option<(JobOutcome, Option<Vec<u8>>, Option<String>)>,
}

impl Job {
    /// Canonical job name (the artifact name, for paper jobs).
    pub fn artifact(&self) -> &str {
        self.spec.name()
    }

    /// The submitted spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Job identity fingerprint (cache key, public job id).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True once the job reached a terminal state.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// True while a worker process is executing this job.
    pub fn is_running(&self) -> bool {
        self.in_flight
    }

    /// Terminal outcome, when reached.
    pub fn outcome(&self) -> Option<&JobOutcome> {
        self.done.as_ref().map(|(o, _, _)| o)
    }

    /// Rendered output bytes, when the job completed with output.
    pub fn output(&self) -> Option<&[u8]> {
        self.done.as_ref().and_then(|(_, out, _)| out.as_deref())
    }

    /// Terminal error message, when the job degraded.
    pub fn error(&self) -> Option<&str> {
        self.done.as_ref().and_then(|(_, _, e)| e.as_deref())
    }

    /// Latest worker progress pulse ("cycle N: issues ...").
    pub fn progress(&self) -> Option<&str> {
        self.progress.as_deref()
    }

    /// Worker attempts consumed by deaths/timeouts so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Manifest record for this job. A job the scheduling loop somehow
    /// abandoned without a terminal state is *degraded to `Failed`* with
    /// a typed internal error — never a panic: one confused job must not
    /// take down the whole campaign's reporting (or the serve process).
    pub fn record(&self) -> JobRecord {
        let (outcome, error) = match &self.done {
            Some((outcome, _, error)) => (outcome.clone(), error.clone()),
            None => (
                JobOutcome::Failed,
                Some(
                    "internal: coordinator finished with this job in a non-terminal state"
                        .to_string(),
                ),
            ),
        };
        JobRecord {
            name: self.spec.name().to_string(),
            fingerprint: self.fingerprint,
            outcome,
            attempts: self.attempts,
            kills: self.kills,
            timeouts: self.timeouts,
            resumed_from_checkpoint: self.resumed,
            cache_hit: self.cache_hit,
            quarantined: self.quarantined,
            error,
        }
    }

    /// Consumes the job, yielding its output bytes (if any).
    fn into_output(self) -> Option<Vec<u8>> {
        self.done.and_then(|(_, out, _)| out)
    }
}

/// Aggregate degradation counters across everything a [`Coordinator`]
/// has supervised, for end-of-run summaries and the serve `/healthz`
/// endpoint — degradation must be visible, never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Worker attempts consumed by retries (deaths, hangs, timeouts).
    pub retried_attempts: u32,
    /// SIGKILLs delivered by the coordinator (wall-clock timeout, stale
    /// heartbeat, or deadline expiry).
    pub sigkills: u32,
    /// Subset of `sigkills` delivered for per-job deadline expiry.
    pub deadline_kills: u32,
    /// Corrupt cache entries quarantined.
    pub quarantined: u32,
    /// Jobs served from the content-addressed cache.
    pub cache_hits: u32,
    /// Jobs completed by a worker this coordinator ran (not cached).
    pub fresh_completions: u32,
}

/// One live worker process.
struct Running {
    child: Child,
    job: usize,
    started: Instant,
    hb_path: PathBuf,
    out_path: PathBuf,
    last_hb: Vec<u8>,
    last_hb_change: Instant,
}

/// Human description of a worker exit status.
fn describe_exit(status: ExitStatus) -> String {
    match status.code() {
        Some(code) if code == i32::from(crate::supervisor::KILL_EXIT_CODE) => {
            format!("kill hook exit {code}")
        }
        Some(code) => format!("exit code {code}"),
        None => "killed by signal".to_string(),
    }
}

/// The pumped job-execution engine: accepts [`JobSpec`]s, fans them over
/// worker processes under crash supervision, and reaches a terminal
/// [`JobOutcome`] for every one. [`run`] pumps it to completion for
/// batch campaigns; `repro serve` pumps it continuously while admitting
/// new work.
pub struct Coordinator {
    cfg: ExecConfig,
    out_dir: PathBuf,
    hb_dir: PathBuf,
    ckpt_root: PathBuf,
    jobs: Vec<Job>,
    running: Vec<Running>,
    counters: ExecCounters,
}

impl Coordinator {
    /// Creates the engine and its working directories.
    ///
    /// # Errors
    ///
    /// Misconfiguration only: zero workers or unusable directories.
    pub fn new(cfg: ExecConfig) -> Result<Self, String> {
        if cfg.workers == 0 {
            return Err("campaign needs at least one worker".to_string());
        }
        let out_dir = cfg.work_dir.join("out");
        let hb_dir = cfg.work_dir.join("hb");
        let ckpt_root = cfg.work_dir.join("ckpt");
        for d in [&cfg.work_dir, &out_dir, &hb_dir, &ckpt_root, &cfg.cache_dir] {
            std::fs::create_dir_all(d)
                .map_err(|e| format!("cannot create {}: {e}", d.display()))?;
        }
        Ok(Coordinator {
            cfg,
            out_dir,
            hb_dir,
            ckpt_root,
            jobs: Vec::new(),
            running: Vec::new(),
            counters: ExecCounters::default(),
        })
    }

    /// Submits a job. Probes the result cache first: a warm hit
    /// completes the job immediately ([`JobOutcome::Cached`]); a corrupt
    /// entry is quarantined and the job recomputes. A resubmission whose
    /// fingerprint matches a job that is still queued or running attaches
    /// to that job instead of double-scheduling the same work. Returns
    /// the job's index (stable for this coordinator's lifetime).
    ///
    /// # Errors
    ///
    /// Rejects scenarios no registered workload covers (the typed
    /// [`crate::workload::UnknownWorkload`] error, stringified).
    pub fn submit(&mut self, spec: JobSpec) -> Result<usize, String> {
        spec.scenario.resolve().map_err(|e| e.to_string())?;
        let fingerprint = spec.fingerprint();
        if let Some(idx) = self
            .jobs
            .iter()
            .position(|j| j.fingerprint == fingerprint && !j.is_done())
        {
            return Ok(idx);
        }
        let now = Instant::now();
        let mut job = Job {
            key: format!("{}-{fingerprint:016x}", spec.name()),
            fingerprint,
            attempts: 0,
            kills: 0,
            timeouts: 0,
            resumed: false,
            quarantined: false,
            cache_hit: false,
            deadline_at: spec.deadline.map(|d| now + d),
            ready_at: now,
            in_flight: false,
            progress: None,
            last_failure: None,
            done: None,
            spec,
        };
        match cache::probe(&self.cfg.cache_dir, job.spec.name(), fingerprint) {
            cache::Probe::Hit(output) => {
                eprintln!("campaign: {}: cache hit", job.spec.name());
                job.cache_hit = true;
                job.done = Some((JobOutcome::Cached, Some(output), None));
                self.counters.cache_hits += 1;
            }
            cache::Probe::Quarantined(_) => {
                eprintln!(
                    "campaign: {}: corrupt cache entry quarantined; recomputing",
                    job.spec.name()
                );
                job.quarantined = true;
                self.counters.quarantined += 1;
            }
            cache::Probe::Miss => {}
        }
        self.jobs.push(job);
        Ok(self.jobs.len() - 1)
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// One job by index.
    pub fn job(&self, idx: usize) -> Option<&Job> {
        self.jobs.get(idx)
    }

    /// Aggregate degradation counters.
    pub fn counters(&self) -> ExecCounters {
        self.counters
    }

    /// True when every submitted job reached a terminal state.
    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(Job::is_done)
    }

    /// Jobs currently executing in a worker process.
    pub fn in_flight(&self) -> usize {
        self.running.len()
    }

    /// Jobs accepted but not yet terminal (queued + running).
    pub fn backlog(&self) -> usize {
        self.jobs.iter().filter(|j| !j.is_done()).count()
    }

    /// One non-blocking supervision pass: reap exited workers, police
    /// heartbeat liveness, wall-clock timeouts, and per-job deadlines,
    /// then fill free worker slots with ready jobs in submission order.
    /// Returns how many jobs reached a terminal state during the pass.
    ///
    /// # Errors
    ///
    /// Only an unspawnable worker binary is an engine-level error;
    /// everything job-level degrades into the job's record.
    pub fn poll(&mut self) -> Result<usize, String> {
        let mut finished = 0usize;
        // Reap finished workers and police liveness + deadlines.
        let mut i = 0;
        while i < self.running.len() {
            let now = Instant::now();
            let r = &mut self.running[i];
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    let r = self.running.swap_remove(i);
                    let job = &mut self.jobs[r.job];
                    job.in_flight = false;
                    if status.success() {
                        complete_from_frame(
                            &self.cfg,
                            &mut self.counters,
                            job,
                            &r.out_path,
                            &self.ckpt_root,
                        );
                    } else {
                        worker_died(
                            &self.cfg,
                            &mut self.counters,
                            job,
                            &describe_exit(status),
                            false,
                        );
                    }
                    if job.is_done() {
                        finished += 1;
                    }
                }
                Ok(None) => {
                    if let Ok(hb) = std::fs::read(&r.hb_path) {
                        if !hb.is_empty() && hb != r.last_hb {
                            r.last_hb = hb;
                            r.last_hb_change = now;
                            // Heartbeat line 2 (when present) is the
                            // worker's latest progress pulse.
                            if let Some(pulse) = std::str::from_utf8(&r.last_hb)
                                .ok()
                                .and_then(|s| s.lines().nth(1))
                            {
                                self.jobs[r.job].progress = Some(pulse.to_string());
                            }
                        }
                    }
                    let deadline_hit = self.jobs[r.job].deadline_at.is_some_and(|d| now >= d);
                    let reason = if deadline_hit {
                        Some("deadline expired")
                    } else if now.duration_since(r.started) > self.cfg.job_timeout {
                        Some("wall-clock timeout")
                    } else if now.duration_since(r.last_hb_change) > self.cfg.heartbeat_timeout {
                        Some("stale heartbeat")
                    } else {
                        None
                    };
                    if let Some(why) = reason {
                        let mut r = self.running.swap_remove(i);
                        let _ = r.child.kill();
                        let _ = r.child.wait();
                        let job = &mut self.jobs[r.job];
                        job.in_flight = false;
                        self.counters.sigkills += 1;
                        if deadline_hit {
                            expire_deadline(&mut self.counters, job);
                        } else {
                            worker_died(
                                &self.cfg,
                                &mut self.counters,
                                job,
                                &format!("SIGKILL after {why}"),
                                true,
                            );
                        }
                        if job.is_done() {
                            finished += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
                Err(e) => {
                    let mut r = self.running.swap_remove(i);
                    let _ = r.child.kill();
                    let _ = r.child.wait();
                    let job = &mut self.jobs[r.job];
                    job.in_flight = false;
                    worker_died(
                        &self.cfg,
                        &mut self.counters,
                        job,
                        &format!("wait failed: {e}"),
                        false,
                    );
                    if job.is_done() {
                        finished += 1;
                    }
                }
            }
        }
        // Queued jobs whose deadline already expired never get a worker.
        let now = Instant::now();
        for job in &mut self.jobs {
            if job.done.is_none() && !job.in_flight && job.deadline_at.is_some_and(|d| now >= d) {
                expire_deadline(&mut self.counters, job);
                finished += 1;
            }
        }
        // Fill free worker slots with ready jobs, submission order first.
        while self.running.len() < self.cfg.workers {
            let now = Instant::now();
            let Some(idx) = self
                .jobs
                .iter()
                .position(|j| j.done.is_none() && !j.in_flight && j.ready_at <= now)
            else {
                break;
            };
            let r = spawn_attempt(
                &self.cfg,
                &mut self.jobs[idx],
                idx,
                &self.out_dir,
                &self.hb_dir,
                &self.ckpt_root,
            )?;
            self.jobs[idx].in_flight = true;
            self.running.push(r);
        }
        Ok(finished)
    }

    /// SIGKILLs every live worker, leaving their checkpoints on disk (a
    /// later attempt resumes from them). Used by `repro serve` on
    /// graceful drain when in-flight work cannot finish in time, and by
    /// `Drop` so an abandoned coordinator never leaks worker processes.
    pub fn kill_workers(&mut self) {
        for r in &mut self.running {
            let _ = r.child.kill();
            let _ = r.child.wait();
            let job = &mut self.jobs[r.job];
            job.in_flight = false;
            job.kills += 1;
        }
        self.running.clear();
    }

    /// Consumes the coordinator into its jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        // `self` is moved; Drop must not double-kill. Take the running
        // set out first.
        let mut me = self;
        me.kill_workers();
        std::mem::take(&mut me.jobs)
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.kill_workers();
    }
}

/// Runs a campaign to completion. Every scheduling decision is logged to
/// stderr; the returned outcome carries the manifest and the per-job
/// output bytes in canonical order.
///
/// # Errors
///
/// Returns `Err` only for campaign-level misconfiguration (unknown
/// artifact names, unusable work directory, unspawnable worker binary).
/// Job-level trouble — worker deaths, hangs, corrupt cache entries,
/// deterministic job errors — is supervised and reported per job in the
/// manifest instead.
pub fn run(cfg: &CampaignConfig) -> Result<CampaignOutcome, String> {
    let mut requested = Vec::new();
    for name in &cfg.artifacts {
        let spec = ScenarioSpec::new(name, cfg.scale, &cfg.scale_name);
        spec.resolve().map_err(|e| e.to_string())?;
        requested.push(spec);
    }
    let mut coord = Coordinator::new(cfg.exec())?;
    // Canonical registry order; duplicates collapse (requests for the
    // same workload keep their relative request order, so a narrowed
    // `id@variant` job sorts with its workload).
    for w in crate::workload::all() {
        for spec in requested.iter().filter(|s| s.workload_id == w.id()) {
            coord.submit(JobSpec {
                scenario: spec.clone(),
                json: cfg.json,
                deadline: None,
            })?;
        }
    }
    while !coord.all_done() {
        coord.poll()?;
        std::thread::sleep(Duration::from_millis(10));
    }

    let jobs = coord.into_jobs();
    let records: Vec<JobRecord> = jobs.iter().map(Job::record).collect();
    let manifest = Manifest {
        scale: cfg.scale_name.clone(),
        workers: cfg.workers,
        chaos_kill_every: cfg.chaos.map(|c| c.kill_every),
        seed: cfg.chaos.map(|c| c.seed).unwrap_or(0),
        jobs: records,
    };
    let manifest_path = cfg.work_dir.join("manifest.json");
    if let Err(e) = simt_sim::write_atomic(&manifest_path, manifest.to_json().as_bytes()) {
        eprintln!(
            "warning: campaign: cannot write {}: {e}",
            manifest_path.display()
        );
    } else {
        eprintln!("campaign: manifest written to {}", manifest_path.display());
    }
    let outputs = jobs.into_iter().map(Job::into_output).collect();
    Ok(CampaignOutcome { manifest, outputs })
}

/// Finishes a job from the result frame its worker committed. A frame
/// that is unreadable, corrupt, or stamped with the wrong identity is
/// treated as a worker failure (the attempt is retried); a frame
/// carrying a job-level error finishes the job as `Failed` without
/// burning retries — the error is deterministic.
fn complete_from_frame(
    cfg: &ExecConfig,
    counters: &mut ExecCounters,
    job: &mut Job,
    out_path: &std::path::Path,
    ckpt_root: &std::path::Path,
) {
    let verdict = std::fs::read(out_path)
        .map_err(|e| format!("result frame unreadable: {e}"))
        .and_then(|bytes| cache::open_result(&bytes));
    match verdict {
        Ok((meta, output))
            if meta.artifact == job.spec.name() && meta.fingerprint == job.fingerprint =>
        {
            if meta.ok {
                if let Err(e) =
                    cache::store(&cfg.cache_dir, job.spec.name(), job.fingerprint, &output)
                {
                    eprintln!(
                        "warning: campaign: {}: cache store failed: {e}",
                        job.spec.name()
                    );
                }
                let outcome = if job.attempts > 0 {
                    JobOutcome::Resumed(job.attempts)
                } else {
                    JobOutcome::Completed
                };
                eprintln!("campaign: {}: {}", job.spec.name(), outcome);
                job.done = Some((outcome, Some(output), None));
                counters.fresh_completions += 1;
            } else {
                eprintln!(
                    "campaign: {}: job-level error: {}",
                    job.spec.name(),
                    meta.error
                );
                job.done = Some((JobOutcome::Failed, None, Some(meta.error)));
            }
            let _ = std::fs::remove_dir_all(ckpt_root.join(&job.key));
        }
        Ok((meta, _)) => worker_died(
            cfg,
            counters,
            job,
            &format!(
                "result frame stamped {}/{:#018x}, expected {}/{:#018x}",
                meta.artifact,
                meta.fingerprint,
                job.spec.name(),
                job.fingerprint
            ),
            false,
        ),
        Err(e) => worker_died(cfg, counters, job, &format!("exited 0 but {e}"), false),
    }
}

/// Finishes a job whose deadline expired: no retry, typed outcome, the
/// checkpoint (if any) stays on disk so an idempotent resubmission with a
/// longer budget resumes instead of restarting.
fn expire_deadline(counters: &mut ExecCounters, job: &mut Job) {
    counters.deadline_kills += 1;
    job.kills += 1;
    let error = format!(
        "deadline expired after {} attempt(s); partial progress checkpointed",
        job.attempts + u32::from(job.in_flight)
    );
    eprintln!("campaign: {}: {error}", job.spec.name());
    job.done = Some((JobOutcome::DeadlineExceeded, None, Some(error)));
}

/// Consumes one attempt after a worker death/hang: reschedules with
/// exponential backoff under the retry budget, or finishes the job as
/// `GaveUp` — the campaign itself keeps going either way.
fn worker_died(
    cfg: &ExecConfig,
    counters: &mut ExecCounters,
    job: &mut Job,
    reason: &str,
    timeout: bool,
) {
    job.kills += 1;
    if timeout {
        job.timeouts += 1;
    }
    job.attempts += 1;
    counters.retried_attempts += 1;
    job.last_failure = Some(reason.to_string());
    if job.attempts > cfg.max_retries {
        let error = format!(
            "gave up after {} attempt(s); last failure: {reason}",
            job.attempts
        );
        eprintln!("campaign: {}: {error}", job.spec.name());
        job.done = Some((JobOutcome::GaveUp, None, Some(error)));
        return;
    }
    let backoff = cfg
        .backoff_base
        .checked_mul(1u32.checked_shl(job.attempts - 1).unwrap_or(u32::MAX))
        .unwrap_or(cfg.backoff_cap)
        .min(cfg.backoff_cap);
    job.ready_at = Instant::now() + backoff;
    eprintln!(
        "campaign: {}: worker died ({reason}); retry {}/{} in {:?}",
        job.spec.name(),
        job.attempts,
        cfg.max_retries,
        backoff
    );
}

/// Spawns one worker attempt for `job`, wiring its heartbeat, result
/// shard, checkpoint directory, chaos plan, and test hooks.
fn spawn_attempt(
    cfg: &ExecConfig,
    job: &mut Job,
    idx: usize,
    out_dir: &std::path::Path,
    hb_dir: &std::path::Path,
    ckpt_root: &std::path::Path,
) -> Result<Running, String> {
    let out_path = out_dir.join(format!("{}.result", job.key));
    let hb_path = hb_dir.join(format!("{}.hb", job.key));
    let ckpt_dir = ckpt_root.join(&job.key);
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&hb_path);
    if job.attempts > 0 {
        // A checkpoint left by the killed attempt means the retry resumes
        // mid-job instead of restarting from cycle 0.
        let has_ckpt = std::fs::read_dir(&ckpt_dir)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false);
        if has_ckpt {
            job.resumed = true;
            eprintln!(
                "campaign: {}: attempt {} will resume from checkpoint",
                job.spec.name(),
                job.attempts + 1
            );
        }
    }
    let mut cmd = Command::new(&cfg.worker_exe);
    cmd.arg("__worker")
        .arg(job.spec.name())
        .arg("--worker-out")
        .arg(&out_path)
        .arg("--worker-heartbeat")
        .arg(&hb_path)
        .arg("--worker-fingerprint")
        .arg(format!("{:016x}", job.fingerprint))
        .arg("--checkpoint-every")
        .arg(cfg.checkpoint_every.to_string())
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .arg("--scale")
        .arg(&job.spec.scenario.scale_name)
        .args(&cfg.passthrough)
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if job.spec.json && !cfg.passthrough.iter().any(|f| f == "--json") {
        cmd.arg("--json");
    }
    if let Some(chaos) = cfg.chaos {
        if let Some(after) = chaos.kill_plan(job.spec.name(), job.attempts, cfg.max_retries) {
            eprintln!(
                "campaign: {}: chaos will abort attempt {} after {after} checkpoint write(s)",
                job.spec.name(),
                job.attempts + 1
            );
            cmd.arg("--kill-after-checkpoints")
                .arg(after.to_string())
                .arg("--chaos-abort");
        }
    }
    if cfg.test_fail_job.as_deref() == Some(job.spec.name()) {
        cmd.arg("--worker-test-fail");
    }
    if cfg.test_hang_job.as_deref() == Some(job.spec.name()) && job.attempts == 0 {
        cmd.arg("--worker-test-hang");
    }
    let child = cmd.spawn().map_err(|e| {
        format!(
            "cannot spawn worker {} for {}: {e}",
            cfg.worker_exe.display(),
            job.spec.name()
        )
    })?;
    eprintln!(
        "campaign: {}: attempt {} started (worker pid {}, slot {idx})",
        job.spec.name(),
        job.attempts + 1,
        child.id()
    );
    let now = Instant::now();
    Ok(Running {
        child,
        job: idx,
        started: now,
        hb_path,
        out_path,
        last_hb: Vec::new(),
        last_hb_change: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_fingerprint_keys_on_artifact_scale_and_mode() {
        let base = job_fingerprint("fig3", Scale::test(), false);
        assert_eq!(base, job_fingerprint("fig3", Scale::test(), false));
        assert_ne!(base, job_fingerprint("fig7", Scale::test(), false));
        assert_ne!(base, job_fingerprint("fig3", Scale::quick(), false));
        assert_ne!(base, job_fingerprint("fig3", Scale::test(), true));
    }

    #[test]
    fn rendered_artifacts_match_known_set() {
        // Every canonical artifact renders (at the cheapest scale the
        // static ones allow); unknown names are rejected.
        assert!(render_artifact("table1", Scale::test(), false)
            .expect("known")
            .is_ok());
        assert!(render_artifact("nope", Scale::test(), false).is_none());
        let json = render_artifact("table1", Scale::test(), true)
            .expect("known")
            .expect("renders");
        assert!(json.starts_with("{\"artifact\":\"table1\""));
        assert!(json.ends_with("\"}\n"));
    }

    #[test]
    fn unknown_artifact_fails_fast() {
        let mut cfg = CampaignConfig::new(Scale::test(), "test");
        cfg.artifacts = vec!["bogus".to_string()];
        assert!(run(&cfg).is_err());
        let mut coord = Coordinator::new(cfg.exec()).expect("engine builds");
        assert!(coord
            .submit(JobSpec::new("bogus", Scale::test(), "test", false))
            .is_err());
    }

    #[test]
    fn abandoned_job_degrades_to_failed_record_instead_of_panicking() {
        // Satellite of PR 8: a job that never reaches a terminal state
        // must produce a typed Failed record, not an expect() abort.
        let dir = std::env::temp_dir().join(format!("coord-test-{}", std::process::id()));
        let mut cfg = CampaignConfig::new(Scale::test(), "test");
        cfg.cache_dir = dir.join("cache");
        cfg.work_dir = dir.clone();
        let mut coord = Coordinator::new(cfg.exec()).expect("engine builds");
        let idx = coord
            .submit(JobSpec::new("table3", Scale::test(), "test", false))
            .expect("submits");
        // Never polled: the job is still queued.
        let rec = coord.job(idx).expect("job exists").record();
        assert_eq!(rec.outcome, JobOutcome::Failed);
        assert!(rec.error.as_deref().unwrap_or("").contains("non-terminal"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmitting_an_unfinished_fingerprint_attaches() {
        let dir = std::env::temp_dir().join(format!("coord-dedup-{}", std::process::id()));
        let mut cfg = CampaignConfig::new(Scale::test(), "test");
        cfg.cache_dir = dir.join("cache");
        cfg.work_dir = dir.clone();
        let mut coord = Coordinator::new(cfg.exec()).expect("engine builds");
        let a = coord
            .submit(JobSpec::new("table3", Scale::test(), "test", false))
            .expect("submits");
        let b = coord
            .submit(JobSpec::new("table3", Scale::test(), "test", false))
            .expect("submits");
        assert_eq!(a, b, "identical in-flight work is deduplicated");
        let c = coord
            .submit(JobSpec::new("fig3", Scale::test(), "test", false))
            .expect("submits");
        assert_ne!(a, c);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
