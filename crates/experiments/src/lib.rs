//! # experiments — regenerating every table and figure of the paper
//!
//! One runner per artifact of Steffen & Zambreno's evaluation (§VI–VII).
//! Each runner returns a serializable result and implements `Display`,
//! printing the same rows/series the paper reports. The `repro` binary
//! dispatches them from the command line; the `bench` crate wraps them in
//! Criterion benchmarks.
//!
//! | runner | paper artifact |
//! |--------|----------------|
//! | [`table1::run`] | Table I — simulator configuration |
//! | [`table2::run`] | Table II — per-thread resource requirements |
//! | [`table3::run`] | Table III — benchmark scenes + tree parameters |
//! | [`table4::run`] | Table IV — memory bandwidth per frame |
//! | [`fig2::run`]   | Fig. 2 — PDOM efficiency of a single looping warp |
//! | [`fig3::run`]   | Fig. 3 — divergence breakdown, traditional |
//! | [`fig7::run`]   | Fig. 7 — divergence breakdown, μ-kernels |
//! | [`fig8::run`]   | Fig. 8 — rays/s across scenes and schedulers |
//! | [`fig9::run`]   | Fig. 9 — μ-kernels with spawn-memory bank conflicts |
//! | [`fig10::run`]  | Fig. 10 — branching performance vs MIMD theoretical |
//! | [`ablation::run`] | §IX branch-instead-of-spawn ablation (beyond the paper) |
//! | [`shadow::run`] | shadow-ray pass study (beyond the paper) |
//!
//! All runners take a [`Scale`] so tests can run them at toy sizes while
//! the recorded numbers use [`Scale::paper`].
//!
//! Artifact dispatch goes through the [`workload`] registry: every
//! runnable scenario — the twelve paper artifacts above plus the
//! extended [`workload::bvh`] path tracer and [`workload::microdiv`]
//! divergence microbenchmarks — registers a typed [`workload::Workload`]
//! there, and `repro`, the campaign engine, and the serve front-end all
//! enumerate it instead of keeping their own name lists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod configs;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod runner;
pub mod serve;
pub mod shadow;
pub mod supervisor;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod workload;

pub use configs::{
    config_for, gpu_for, gpu_for_with, metrics_every, parallelism, set_metrics_every,
    set_parallelism, set_trace, telemetry_spec, trace, Variant,
};
pub use runner::{run_fingerprint, RenderRun, Scale};
pub use supervisor::{JobStatus, Policy};
pub use workload::{ScenarioSpec, UnknownWorkload, Workload};
