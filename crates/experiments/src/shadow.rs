//! Beyond the paper: the shadow-ray pass of §III-A as a measured workload.
//!
//! The paper's introduction motivates dynamic μ-kernels with multi-pass
//! global rendering (shadows, reflections, global illumination) but only
//! evaluates primary rays. This runner measures the shadow pass — whose
//! rays start on scattered surfaces and are therefore less coherent —
//! under both branching models.

use crate::configs::{gpu_for, Variant};
use crate::runner::Scale;
use raytrace::scenes;
use raytrace::Vec3;
use rt_kernels::render::RenderSetup;
use serde::Serialize;
use std::fmt;

/// Measurements for one branching model over both passes.
#[derive(Debug, Clone, Serialize)]
pub struct ShadowRun {
    /// Variant label.
    pub variant: String,
    /// IPC over the primary pass.
    pub primary_ipc: f64,
    /// IPC over the shadow pass alone.
    pub shadow_ipc: f64,
    /// Mean active lanes over the whole two-pass run.
    pub mean_active_lanes: f64,
    /// Shadowed pixels (must agree across variants).
    pub occluded: usize,
}

/// The shadow-workload comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ShadowStudy {
    /// PDOM baseline.
    pub pdom: ShadowRun,
    /// Dynamic μ-kernels.
    pub dynamic: ShadowRun,
}

impl ShadowStudy {
    /// Shadow-pass IPC improvement of dynamic over PDOM.
    pub fn shadow_ipc_ratio(&self) -> f64 {
        if self.pdom.shadow_ipc == 0.0 {
            0.0
        } else {
            self.dynamic.shadow_ipc / self.pdom.shadow_ipc
        }
    }
}

fn run_variant(variant: Variant, scale: Scale) -> ShadowRun {
    let scene = scenes::conference(scale.scene);
    let light = Vec3::new(0.0, 4.7, 0.0);
    let mut gpu = gpu_for(variant);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    if variant.is_dynamic() {
        setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    } else {
        setup.launch_traditional(&mut gpu, scale.threads_per_block);
    }
    // Run each pass to completion so the shadow rays are well-defined.
    let s1 = gpu.run(u64::MAX / 4).expect("fault-free run");
    assert_eq!(s1.outcome, simt_sim::RunOutcome::Completed, "primary pass");
    let primary_instr = s1.stats.thread_instructions;
    let primary_cycles = s1.stats.cycles;

    let dev2 = setup.launch_shadow_pass(
        &mut gpu,
        light,
        variant.is_dynamic(),
        scale.threads_per_block,
    );
    let s2 = gpu.run(u64::MAX / 4).expect("fault-free run");
    assert_eq!(s2.outcome, simt_sim::RunOutcome::Completed, "shadow pass");
    let shadow_instr = s2.stats.thread_instructions - primary_instr;
    let shadow_cycles = s2.stats.cycles - primary_cycles;
    let occluded = dev2.read_results(gpu.mem()).iter().flatten().count();
    ShadowRun {
        variant: variant.to_string(),
        primary_ipc: primary_instr as f64 / primary_cycles.max(1) as f64,
        shadow_ipc: shadow_instr as f64 / shadow_cycles.max(1) as f64,
        mean_active_lanes: s2.stats.divergence.mean_active_lanes(),
        occluded,
    }
}

/// Runs the two-pass study on the conference benchmark.
pub fn run(scale: Scale) -> ShadowStudy {
    ShadowStudy {
        pdom: run_variant(Variant::PdomWarp, scale),
        dynamic: run_variant(Variant::Dynamic, scale),
    }
}

impl fmt::Display for ShadowStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Shadow-pass study (beyond the paper; conference + point light)"
        )?;
        writeln!(
            f,
            "  {:<12} {:>12} {:>12} {:>12} {:>10}",
            "method", "primary IPC", "shadow IPC", "mean lanes", "shadowed"
        )?;
        for r in [&self.pdom, &self.dynamic] {
            writeln!(
                f,
                "  {:<12} {:>12.0} {:>12.0} {:>12.1} {:>10}",
                r.variant, r.primary_ipc, r.shadow_ipc, r.mean_active_lanes, r.occluded
            )?;
        }
        write!(
            f,
            "  shadow-pass IPC ratio: {:.2}x",
            self.shadow_ipc_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_study_runs_and_agrees_on_occlusion() {
        let s = run(Scale::test());
        assert_eq!(s.pdom.occluded, s.dynamic.occluded, "occlusion must agree");
        assert!(s.pdom.shadow_ipc > 0.0);
        assert!(s.dynamic.shadow_ipc > 0.0);
    }
}
