//! Fig. 7 — divergence breakdown for warps using dynamic μ-kernels
//! (conference benchmark, spawn-memory bank conflicts eliminated).
//!
//! The paper reports an average IPC of 615 here, 1.9× the traditional
//! hardware's 326 (Fig. 3). The comparison against our regenerated Fig. 3
//! is bundled in [`Fig7`].

use crate::configs::Variant;
use crate::fig3::{self, divergence_figure, DivergenceFigure};
use crate::runner::Scale;
use serde::Serialize;
use std::fmt;

/// Fig. 7 plus the IPC comparison against Fig. 3.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// The μ-kernel breakdown.
    pub dynamic: DivergenceFigure,
    /// The traditional breakdown it is compared against.
    pub traditional: DivergenceFigure,
}

impl Fig7 {
    /// IPC improvement of dynamic μ-kernels over traditional branching
    /// (paper: 1.9×).
    pub fn ipc_ratio(&self) -> f64 {
        if self.traditional.ipc == 0.0 {
            0.0
        } else {
            self.dynamic.ipc / self.traditional.ipc
        }
    }
}

/// Runs both configurations on the conference benchmark.
pub fn run(scale: Scale) -> Fig7 {
    Fig7 {
        dynamic: divergence_figure(Variant::Dynamic, scale),
        traditional: fig3::run(scale),
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.dynamic)?;
        writeln!(
            f,
            "  vs traditional IPC: {:.0} -> {:.0}  ({:.2}x, paper: 326 -> 615, 1.9x)",
            self.traditional.ipc,
            self.dynamic.ipc,
            self.ipc_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_keeps_more_lanes_active() {
        let fig = run(Scale::test());
        assert!(
            fig.dynamic.mean_active_lanes > fig.traditional.mean_active_lanes,
            "dynamic {:.1} !> traditional {:.1}",
            fig.dynamic.mean_active_lanes,
            fig.traditional.mean_active_lanes
        );
    }

    #[test]
    fn ipc_ratio_is_positive() {
        let fig = run(Scale::test());
        assert!(fig.ipc_ratio() > 0.0);
    }
}
