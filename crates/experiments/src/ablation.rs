//! Ablation: the §IX branch-instead-of-spawn optimization.
//!
//! "Development of a more advanced algorithm can improve performance by
//! allowing branching instead of thread creation when all threads in a
//! warp follow the same branch." This runner quantifies that future-work
//! claim on the conference benchmark by running the μ-kernel tracer under
//! both spawn policies.

use crate::configs::{gpu_for, Variant};
use crate::runner::Scale;
use raytrace::scenes;
use rt_kernels::render::RenderSetup;
use serde::Serialize;
use simt_sim::SpawnPolicy;
use std::fmt;

/// One policy's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRun {
    /// Policy label.
    pub policy: String,
    /// Average IPC.
    pub ipc: f64,
    /// Rays completed in the window.
    pub rays_completed: u64,
    /// Threads created.
    pub threads_spawned: u64,
    /// Spawns elided into branches.
    pub spawn_elisions: u64,
}

/// The ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct SpawnPolicyAblation {
    /// The paper's evaluated (naïve) policy.
    pub naive: PolicyRun,
    /// The §IX optimized policy.
    pub on_divergence: PolicyRun,
}

impl SpawnPolicyAblation {
    /// Reduction in created threads (1.0 = none created).
    pub fn thread_reduction(&self) -> f64 {
        if self.naive.threads_spawned == 0 {
            return 0.0;
        }
        1.0 - self.on_divergence.threads_spawned as f64 / self.naive.threads_spawned as f64
    }
}

fn run_policy(policy: SpawnPolicy, scale: Scale) -> PolicyRun {
    let scene = scenes::conference(scale.scene);
    let mut gpu = gpu_for(Variant::Dynamic);
    let mut cfg = gpu.config().clone();
    cfg.spawn_policy = policy;
    gpu = simt_sim::Gpu::builder(cfg).build();
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    let s = gpu.run(scale.cycles).expect("fault-free run");
    PolicyRun {
        policy: format!("{policy:?}"),
        ipc: s.stats.ipc(),
        rays_completed: s.stats.lineages_completed,
        threads_spawned: s.stats.threads_spawned,
        spawn_elisions: s.stats.spawn_elisions,
    }
}

/// Runs the ablation on the conference benchmark.
pub fn run(scale: Scale) -> SpawnPolicyAblation {
    SpawnPolicyAblation {
        naive: run_policy(SpawnPolicy::Always, scale),
        on_divergence: run_policy(SpawnPolicy::OnDivergence, scale),
    }
}

impl fmt::Display for SpawnPolicyAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — §IX branch-instead-of-spawn (conference)")?;
        writeln!(
            f,
            "  {:<14} {:>8} {:>10} {:>12} {:>10}",
            "policy", "IPC", "rays", "spawned", "elisions"
        )?;
        for p in [&self.naive, &self.on_divergence] {
            writeln!(
                f,
                "  {:<14} {:>8.0} {:>10} {:>12} {:>10}",
                p.policy, p.ipc, p.rays_completed, p.threads_spawned, p.spawn_elisions
            )?;
        }
        write!(
            f,
            "  thread creation reduced by {:.0}%",
            self.thread_reduction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elision_reduces_thread_creation_without_breaking_rays() {
        let a = run(Scale::test());
        assert_eq!(a.naive.spawn_elisions, 0);
        assert!(a.on_divergence.spawn_elisions > 0);
        assert!(a.on_divergence.threads_spawned < a.naive.threads_spawned);
        assert!(a.thread_reduction() > 0.0);
    }
}
