//! Supervised, retry-capable execution of simulator jobs.
//!
//! The experiment drivers run every render through [`run_to_target`],
//! which slices the simulation at a configurable checkpoint interval and
//! keeps the last good [`Snapshot`] (in memory, and on disk when a
//! checkpoint directory is configured). When a run raises a typed
//! [`simt_sim::Fault`] under `FaultPolicy::Abort` or the watchdog reports
//! [`RunOutcome::Deadlock`], the supervisor rolls the machine back to the
//! last good snapshot and retries with an exponentially grown slice
//! budget; after [`Policy::max_retries`] interventions it gives up and
//! reports the job's figures from the last good state instead of
//! aborting the whole campaign.
//!
//! Because the simulator is deterministic, a retry only changes the
//! outcome when the grown cycle budget lets a slice run past a spurious
//! slice-boundary watchdog window; a genuinely wedged or faulting run
//! deterministically exhausts its retries and lands on
//! [`JobStatus::GaveUp`] — which is exactly the point: the campaign
//! keeps going and the per-job status says what happened.
//!
//! On-disk snapshots double as crash/kill recovery: `repro --resume`
//! restores each job from its last snapshot and continues, bit-identical
//! to an uninterrupted run (see `DESIGN.md` §9).

use crate::configs::parallelism;
use simt_sim::{Gpu, ProgressPulse, RunOutcome, RunSummary, Snapshot};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process exit code used by the deterministic kill test hook
/// (`--kill-after-checkpoints`), so CI can tell an intentional
/// mid-campaign kill from a real failure.
pub const KILL_EXIT_CODE: u8 = 42;

/// Supervisor policy, set once from the `repro` command line and read by
/// every job. Like the parallelism knob in [`crate::configs`], this is a
/// process-global: it never changes simulated results (checkpointing at
/// a slice boundary is transparent), only how runs are supervised.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Cycles between snapshots. 0 disables periodic checkpoints; a
    /// rollback snapshot is still taken at each phase entry.
    pub checkpoint_every: u64,
    /// Directory for on-disk snapshots (`None` = in-memory only).
    pub checkpoint_dir: Option<PathBuf>,
    /// Restore jobs from their last on-disk snapshot when present.
    pub resume: bool,
    /// Rollback/retry interventions allowed per phase before giving up.
    pub max_retries: u32,
    /// Test hook: exit the process with [`KILL_EXIT_CODE`] after this
    /// many on-disk snapshot writes, simulating a mid-campaign kill at a
    /// deterministic point.
    pub kill_after_checkpoints: Option<u64>,
    /// Chaos variant of the kill hook: when set, the hook dies by
    /// [`std::process::abort`] (an uncatchable, signal-style death)
    /// instead of the orderly exit-42, so the campaign coordinator's
    /// worker supervision sees a genuine process kill mid-job.
    pub chaos_abort: bool,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            max_retries: 3,
            kill_after_checkpoints: None,
            chaos_abort: false,
        }
    }
}

impl Policy {
    /// Whether any supervision feature beyond plain fault rollback is on.
    pub fn is_active(&self) -> bool {
        self.checkpoint_every > 0 || self.checkpoint_dir.is_some() || self.resume
    }
}

static POLICY: Mutex<Option<Policy>> = Mutex::new(None);

/// Count of on-disk snapshot writes, for the kill test hook.
static DISK_WRITES: AtomicU64 = AtomicU64::new(0);

/// Latest progress pulse published by `run_to_target`, rendered to its
/// one-line form. Campaign workers poll this to relay live progress in
/// their heartbeat files.
static LAST_PULSE: Mutex<Option<String>> = Mutex::new(None);

/// Publishes a slice-boundary progress pulse for heartbeat relaying.
fn publish_pulse(pulse: &ProgressPulse) {
    *LAST_PULSE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(pulse.to_string());
}

/// The latest slice-boundary progress pulse ("cycle N" or
/// "cycle N: issues ..."), if any run has reached a boundary yet.
pub fn last_progress_pulse() -> Option<String> {
    LAST_PULSE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Locks the policy slot, recovering from poison. The policy is plain
/// data with no invariants spanning the critical section, so a campaign
/// worker that panicked mid-job while holding the lock must not cascade
/// into poisoned-lock aborts on every subsequent job in the process.
fn policy_slot() -> std::sync::MutexGuard<'static, Option<Policy>> {
    POLICY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs the process-wide supervisor policy.
pub fn set_policy(policy: Policy) {
    *policy_slot() = Some(policy);
}

/// The current supervisor policy (defaults when none was installed).
pub fn policy() -> Policy {
    policy_slot().clone().unwrap_or_default()
}

/// Final supervision status of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to its cycle target with no intervention.
    Completed,
    /// Finished after `n` rollback or resume interventions.
    Resumed(u32),
    /// Exhausted the retry budget; reported figures come from the last
    /// good snapshot.
    GaveUp,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStatus::Completed => f.write_str("completed"),
            JobStatus::Resumed(n) => write!(f, "completed after {n} intervention(s)"),
            JobStatus::GaveUp => f.write_str("gave up (results from last good snapshot)"),
        }
    }
}

/// Result of one supervised phase.
#[derive(Debug)]
pub struct Supervised {
    /// Summary at the end of the phase (cumulative machine statistics).
    pub summary: RunSummary,
    /// Rollback interventions performed during the phase.
    pub interventions: u32,
    /// True when the retry budget ran out and the phase stopped at the
    /// last good snapshot instead of its cycle target.
    pub gave_up: bool,
}

/// Path of the on-disk snapshot for `job` under `dir`.
fn snapshot_path(dir: &std::path::Path, job: &str) -> PathBuf {
    let safe: String = job
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.ckpt"))
}

/// Persists `snap` for `job` when a checkpoint directory is configured.
/// Write failures are reported and tolerated: losing a checkpoint must
/// never fail the job it protects. Honours the deterministic kill hook.
fn persist(job: &str, snap: &Snapshot, pol: &Policy) {
    let Some(dir) = &pol.checkpoint_dir else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: {job}: cannot create {}: {e}", dir.display());
        return;
    }
    let path = snapshot_path(dir, job);
    if let Err(e) = snap.write_to(&path) {
        eprintln!("warning: {job}: checkpoint write failed: {e}");
        return;
    }
    let written = DISK_WRITES.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(kill_after) = pol.kill_after_checkpoints {
        if written >= kill_after {
            eprintln!(
                "supervisor: kill hook: {} after {written} checkpoint write(s) \
                 (last: {})",
                if pol.chaos_abort {
                    "aborting"
                } else {
                    "exiting"
                },
                path.display()
            );
            if pol.chaos_abort {
                // Die the way a SIGKILLed worker dies: no unwinding, no
                // exit code — the parent sees death by signal.
                std::process::abort();
            }
            std::process::exit(i32::from(KILL_EXIT_CODE));
        }
    }
}

/// Loads the last on-disk snapshot for `job` when `--resume` is active.
///
/// A corrupt or truncated snapshot (bad magic, checksum mismatch,
/// unsupported version, decode error) is reported and ignored — the job
/// restarts from scratch rather than poisoning the campaign.
pub fn try_resume(job: &str) -> Option<Snapshot> {
    let pol = policy();
    if !pol.resume {
        return None;
    }
    let path = snapshot_path(pol.checkpoint_dir.as_deref()?, job);
    if !path.exists() {
        return None;
    }
    match Snapshot::read_from(&path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!(
                "warning: {job}: ignoring unusable checkpoint {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Removes the on-disk snapshot for `job` (called once a job finishes so
/// a later `--resume` does not replay a completed job).
pub fn clear(job: &str) {
    let pol = policy();
    let Some(dir) = &pol.checkpoint_dir else {
        return;
    };
    let path = snapshot_path(dir, job);
    if path.exists() {
        if let Err(e) = std::fs::remove_file(&path) {
            eprintln!("warning: {job}: cannot remove {}: {e}", path.display());
        }
    }
}

/// Takes a snapshot tagged with `meta`, remembers it as the last good
/// state, and persists it when configured. Snapshot failures are
/// reported and tolerated (the phase simply loses rollback coverage).
fn take_snapshot(
    gpu: &Gpu,
    job: &str,
    meta: &[u8],
    pol: &Policy,
    last_good: &mut Option<Snapshot>,
) {
    match gpu.checkpoint() {
        Ok(mut snap) => {
            snap.set_meta(meta.to_vec());
            persist(job, &snap, pol);
            *last_good = Some(snap);
        }
        Err(e) => eprintln!("warning: {job}: checkpoint failed: {e}"),
    }
}

/// Rolls `gpu` back to `last_good`. Returns false when no usable
/// snapshot exists (the caller must give up).
fn rollback(gpu: &mut Gpu, job: &str, last_good: &Option<Snapshot>) -> bool {
    let Some(snap) = last_good else {
        eprintln!("warning: {job}: no good snapshot to roll back to");
        return false;
    };
    match Gpu::restore(snap) {
        Ok(restored) => {
            *gpu = restored.with_parallelism(parallelism());
            true
        }
        Err(e) => {
            eprintln!("warning: {job}: rollback restore failed: {e}");
            false
        }
    }
}

/// Produces a consistent [`RunSummary`] for the machine's current state
/// without advancing it (a zero-cycle run merges statistics only).
fn summarize(gpu: &mut Gpu, job: &str) -> RunSummary {
    match gpu.run(0) {
        Ok(s) => s,
        Err(e) => {
            // A zero-cycle run issues no work; a fault here means the
            // machine was left mid-fault with no snapshot to return to.
            unreachable!("{job}: zero-cycle summary run faulted: {e}")
        }
    }
}

/// Runs `gpu` forward to the absolute cycle `target` under supervision.
///
/// The run is sliced at [`Policy::checkpoint_every`] cycles; each slice
/// boundary snapshots the machine (the only safe point — see
/// `DESIGN.md` §9). On a [`SimError::Fault`] or a watchdog
/// [`RunOutcome::Deadlock`] the machine rolls back to the last good
/// snapshot and the slice budget doubles (`checkpoint_every << retries`)
/// so a retry is not re-interrupted at the same boundary; after
/// [`Policy::max_retries`] interventions the phase gives up and reports
/// the last good state.
///
/// `job` names the on-disk snapshot; `meta` is stored verbatim in every
/// snapshot so the caller can rebuild its own phase bookkeeping on
/// resume (see [`crate::runner::RenderRun::execute`]).
pub fn run_to_target(gpu: &mut Gpu, target: u64, job: &str, meta: &[u8]) -> Supervised {
    let pol = policy();
    let mut interventions = 0u32;
    let mut last_good: Option<Snapshot> = None;
    take_snapshot(gpu, job, meta, &pol, &mut last_good);
    loop {
        let now = gpu.now();
        if now >= target {
            return Supervised {
                summary: summarize(gpu, job),
                interventions,
                gave_up: false,
            };
        }
        let slice = if pol.checkpoint_every > 0 {
            // Exponential budget growth on retries, saturating.
            let grown = pol
                .checkpoint_every
                .saturating_mul(1u64.checked_shl(interventions).unwrap_or(u64::MAX));
            grown.min(target - now)
        } else {
            target - now
        };
        let failure = match gpu.run(slice) {
            Ok(summary) => match summary.outcome {
                RunOutcome::Completed => {
                    return Supervised {
                        summary,
                        interventions,
                        gave_up: false,
                    };
                }
                RunOutcome::CycleLimit => {
                    if gpu.now() >= target {
                        return Supervised {
                            summary,
                            interventions,
                            gave_up: false,
                        };
                    }
                    // Healthy slice boundary: record the new good state
                    // and publish a one-line pulse of the machine's
                    // vitals (campaign workers relay it to their
                    // heartbeat for live status reporting).
                    take_snapshot(gpu, job, meta, &pol, &mut last_good);
                    let pulse = if gpu.telemetry_enabled() {
                        ProgressPulse::collect(gpu.now(), &gpu.telemetry_report())
                    } else {
                        ProgressPulse::at_cycle(gpu.now())
                    };
                    if pulse.telemetry {
                        eprintln!("supervisor: {job}: {pulse}");
                    }
                    publish_pulse(&pulse);
                    continue;
                }
                RunOutcome::Deadlock { .. } => "watchdog deadlock".to_string(),
                // `RunOutcome` is non-exhaustive: treat anything newer
                // than this crate as a failed slice and retry.
                other => format!("unexpected outcome: {other:?}"),
            },
            Err(e) => e.to_string(),
        };
        // Roll back to the last good snapshot; when that fails (or the
        // retry budget is spent) the phase gives up, reporting whatever
        // consistent state it could recover.
        let rolled = rollback(gpu, job, &last_good);
        if !rolled || interventions >= pol.max_retries {
            eprintln!(
                "warning: {job}: giving up after {interventions} intervention(s) ({failure})"
            );
            return Supervised {
                summary: summarize(gpu, job),
                interventions,
                gave_up: true,
            };
        }
        interventions += 1;
        eprintln!(
            "supervisor: {job}: {failure} at cycle {}; rolled back to cycle {} \
             (retry {interventions}/{})",
            now,
            gpu.now(),
            pol.max_retries
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_sim::{FaultPolicy, GpuConfig, InjectedFault, Injector, Launch};

    fn small_gpu() -> Gpu {
        let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
        gpu.mem_mut().alloc_global(256, "out");
        let program = simt_isa::assemble(
            r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 4
                ld.global.u32 r3, [r2+0]
                add.s32 r3, r3, 7
                st.global.u32 [r2+0], r3
                exit
            "#,
        )
        .expect("assembles");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 32,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        gpu
    }

    #[test]
    fn policy_lock_recovers_from_poison() {
        // A job that panics while holding the policy lock poisons it;
        // later jobs in the same campaign worker must keep working.
        let _ = std::thread::spawn(|| {
            let _guard = POLICY
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("deliberate poison");
        })
        .join();
        set_policy(Policy::default());
        assert_eq!(policy().max_retries, Policy::default().max_retries);
    }

    #[test]
    fn clean_run_needs_no_intervention() {
        let mut gpu = small_gpu();
        let s = run_to_target(&mut gpu, 10_000, "test-clean", &[]);
        assert_eq!(s.interventions, 0);
        assert!(!s.gave_up);
        assert_eq!(s.summary.outcome, RunOutcome::Completed);
    }

    #[test]
    fn sliced_run_matches_unsliced() {
        // A run sliced at a checkpoint interval is bit-identical to an
        // uninterrupted run of the same machine.
        let mut reference = small_gpu();
        let want = reference.run(10_000).expect("fault-free");

        set_policy(Policy {
            checkpoint_every: 3,
            ..Policy::default()
        });
        let mut gpu = small_gpu();
        let got = run_to_target(&mut gpu, 10_000, "test-sliced", &[]);
        set_policy(Policy::default());

        assert_eq!(got.summary.outcome, want.outcome);
        assert_eq!(got.summary.stats, want.stats);
        assert_eq!(got.summary.traffic, want.traffic);
        for addr in (0..128).step_by(4) {
            assert_eq!(
                gpu.mem().read_u32(simt_isa::Space::Global, addr),
                reference.mem().read_u32(simt_isa::Space::Global, addr),
            );
        }
    }

    #[test]
    fn deterministic_fault_exhausts_retries_and_gives_up() {
        // An injected trap under Abort recurs on every deterministic
        // retry; the supervisor must bound the retries and give up with
        // figures from the last good snapshot instead of panicking.
        let mut cfg = GpuConfig::tiny();
        cfg.fault_policy = FaultPolicy::Abort;
        let mut gpu = Gpu::builder(cfg).build();
        gpu.mem_mut().alloc_global(256, "out");
        let program = simt_isa::assemble(
            r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 4
                st.global.u32 [r2+0], r1
                exit
            "#,
        )
        .expect("assembles");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 64,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        gpu.set_injector(Injector::new(7).force(InjectedFault::Trap, 3..4));

        set_policy(Policy {
            checkpoint_every: 2,
            max_retries: 2,
            ..Policy::default()
        });
        let s = run_to_target(&mut gpu, 10_000, "test-gaveup", &[]);
        set_policy(Policy::default());

        assert!(s.gave_up);
        assert_eq!(s.interventions, 2);
        // The machine sits at the last good snapshot, before the trap.
        assert!(gpu.now() < 4);
    }

    #[test]
    fn snapshot_files_roundtrip_and_clear() {
        let dir = std::env::temp_dir().join(format!("sup-test-{}", std::process::id()));
        set_policy(Policy {
            checkpoint_every: 5,
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..Policy::default()
        });
        let mut gpu = small_gpu();
        let _ = run_to_target(&mut gpu, 12, "test-disk", b"meta-bytes");
        let resumed = try_resume("test-disk").expect("snapshot on disk");
        assert_eq!(resumed.meta(), b"meta-bytes");
        let restored = Gpu::restore(&resumed).expect("restores");
        assert!(restored.now() <= gpu.now());
        clear("test-disk");
        assert!(try_resume("test-disk").is_none());
        set_policy(Policy::default());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
