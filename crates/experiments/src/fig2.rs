//! Fig. 2 — PDOM branching efficiency for a single warp performing a
//! data-dependent looping operation.
//!
//! A single warp runs `A; do { B } while (lane-dependent count); C`. PDOM
//! keeps all lanes together through `A`, then loses lanes from `B` as
//! their loops finish, reconverging at `C` — exactly the example of the
//! paper's Fig. 2. We report the per-issue active-lane trace and the
//! resulting SIMT efficiency.

use serde::Serialize;
use simt_isa::{assemble_named, AsmError};
use simt_sim::{Gpu, GpuConfig, Launch};
use std::fmt;

/// Result of the single-warp loop demonstration.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// Active lanes at each issued warp-instruction, in issue order.
    pub lane_trace: Vec<u32>,
    /// SIMT efficiency over the whole run (committed / issued·width).
    pub efficiency: f64,
    /// Efficiency of an ideal MIMD machine on the same work (always 1.0;
    /// shown for contrast).
    pub mimd_efficiency: f64,
}

/// Source of the loop kernel: lane `i` iterates `i % 8 + 1` times.
pub fn loop_kernel_source() -> &'static str {
    r#"
    .kernel main
    main:
        mov.u32 r1, %tid       ; A
        and.b32 r2, r1, 7
        add.s32 r2, r2, 1      ; trips = tid%8 + 1
        mov.u32 r3, 0
    body:
        add.s32 r3, r3, 1      ; B
        sub.s32 r2, r2, 1
        setp.gt.s32 p0, r2, 0
        @p0 bra body
        mul.lo.s32 r4, r1, 4   ; C
        st.global.u32 [r4+0], r3
        exit
    "#
}

/// Runs one 32-thread warp on one SM and records the divergence trace.
///
/// Returns the assembler's typed error if the embedded kernel fails to
/// assemble, so `repro` can report it as a job-level failure instead of
/// aborting the campaign.
pub fn run() -> Result<Fig2, AsmError> {
    let mut cfg = GpuConfig::fx5800_warp_sched();
    cfg.num_sms = 1;
    cfg.mem.ideal = true; // isolate branching behaviour, like the figure
    cfg.divergence_window = 1;
    let mut gpu = Gpu::builder(cfg)
        .telemetry(crate::configs::telemetry_spec())
        .build();
    gpu.mem_mut().alloc_global(32 * 4, "out");
    let program = assemble_named("fig2-loop", loop_kernel_source())?;
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: 32,
        threads_per_block: 32,
    })
    .expect("launch accepted");
    let summary = gpu.run(100_000).expect("fault-free run");
    let report = gpu.telemetry_report();
    if crate::configs::trace() {
        crate::runner::write_trace_artifacts("fig2", &report);
    }
    // Rebuild the per-issue lane counts from the telemetry divergence
    // mirror's 1-cycle windows: with one SM and one warp, each window has
    // at most one issue. The mirror is bit-identical to
    // `summary.stats.divergence`, so this is the same trace the figure
    // always printed.
    let lane_trace: Vec<u32> = report
        .divergence
        .windows()
        .iter()
        .filter_map(|w| {
            w.iter()
                .enumerate()
                .skip(1)
                .find(|(_, &n)| n > 0)
                .map(|(b, _)| (b as u32 - 1) * 4 + 4) // bucket upper bound
        })
        .collect();
    Ok(Fig2 {
        lane_trace,
        efficiency: summary.stats.simt_efficiency(32),
        mimd_efficiency: 1.0,
    })
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 2 — PDOM efficiency of one warp in a data-dependent loop"
        )?;
        write!(f, "  active lanes per issue: ")?;
        for (i, l) in self.lane_trace.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        writeln!(f)?;
        writeln!(f, "  PDOM SIMT efficiency: {:.0}%", self.efficiency * 100.0)?;
        write!(
            f,
            "  MIMD efficiency:      {:.0}%",
            self.mimd_efficiency * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_demo_shows_decaying_occupancy() {
        let r = run().expect("fig2 kernel assembles");
        assert!(!r.lane_trace.is_empty());
        // Starts fully occupied...
        assert_eq!(r.lane_trace[0], 32);
        // ...and at some point drops below half.
        assert!(r.lane_trace.iter().any(|&l| l <= 16), "{:?}", r.lane_trace);
        // Efficiency strictly between the degenerate extremes.
        assert!(r.efficiency > 0.2 && r.efficiency < 1.0, "{}", r.efficiency);
    }

    #[test]
    fn trace_is_monotone_after_reconvergence_structure() {
        // The loop only sheds lanes, so the minimum over time decreases.
        let r = run().expect("fig2 kernel assembles");
        let min_early: u32 = *r.lane_trace[..r.lane_trace.len() / 2].iter().min().unwrap();
        let min_late: u32 = *r.lane_trace[r.lane_trace.len() / 2..].iter().min().unwrap();
        assert!(min_late <= min_early);
    }
}
