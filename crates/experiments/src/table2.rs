//! Table II — kernel processor resource requirements per thread.
//!
//! The "μ-kernel minimum" column reports the cheapest *individual*
//! μ-kernel (registers reachable from its entry alone): the resources a
//! scheduler could charge if it tracked per-μ-kernel requirements instead
//! of the maximum (the trade-off the paper discusses in §IV-D).

use serde::Serialize;
use simt_isa::{Instr, Program};
use std::fmt;

/// One column of Table II.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ResourceColumn {
    /// Registers per thread.
    pub registers: u32,
    /// Shared-memory bytes.
    pub shared_bytes: u32,
    /// Global-memory bytes.
    pub global_bytes: u32,
    /// Constant-memory bytes.
    pub const_bytes: u32,
    /// Spawn-memory bytes.
    pub spawn_bytes: u32,
}

/// The regenerated Table II.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// Traditional kernel.
    pub traditional: ResourceColumn,
    /// μ-kernel program (maximum across μ-kernels — what the scheduler
    /// charges).
    pub ukernel: ResourceColumn,
    /// Cheapest single μ-kernel.
    pub ukernel_minimum: ResourceColumn,
}

/// Registers used by code reachable from `entry_pc` following branches and
/// fall-through (not `spawn`, which starts a fresh context).
pub fn registers_reachable_from(program: &Program, entry_pc: usize) -> u32 {
    let n = program.len();
    let mut seen = vec![false; n];
    let mut stack = vec![entry_pc];
    let mut max_reg = 0u32;
    while let Some(pc) = stack.pop() {
        if pc >= n || seen[pc] {
            continue;
        }
        seen[pc] = true;
        let i = program.fetch(pc);
        for r in i.reads().into_iter().chain(i.writes()) {
            max_reg = max_reg.max(u32::from(r.0) + 1);
        }
        match i.op {
            Instr::Bra { target } => {
                stack.push(target);
                if i.guard.is_some() {
                    stack.push(pc + 1);
                }
            }
            Instr::Exit => {
                if i.guard.is_some() {
                    stack.push(pc + 1);
                }
            }
            _ => stack.push(pc + 1),
        }
    }
    max_reg
}

fn column(program: &Program, registers: u32) -> ResourceColumn {
    let r = program.resource_usage();
    ResourceColumn {
        registers,
        shared_bytes: r.shared_bytes,
        global_bytes: r.global_bytes,
        const_bytes: r.const_bytes,
        spawn_bytes: r.spawn_state_bytes,
    }
}

/// Builds the table from the two benchmark kernels.
pub fn run() -> Table2 {
    let trad = rt_kernels::traditional::program();
    let uk = rt_kernels::ukernel::program();
    let min_regs = uk
        .entry_points()
        .iter()
        .map(|e| registers_reachable_from(&uk, e.pc))
        .min()
        .unwrap_or(0);
    Table2 {
        traditional: column(&trad, trad.resource_usage().registers),
        ukernel: column(&uk, uk.resource_usage().registers),
        ukernel_minimum: column(&uk, min_regs),
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II — kernel processor resource requirements per thread"
        )?;
        writeln!(
            f,
            "  {:<16} {:>12} {:>12} {:>18}",
            "Resource", "Traditional", "μ-kernel", "μ-kernel Minimum"
        )?;
        let rows = [
            (
                "Registers",
                self.traditional.registers,
                self.ukernel.registers,
                self.ukernel_minimum.registers,
            ),
            (
                "Shared Memory",
                self.traditional.shared_bytes,
                self.ukernel.shared_bytes,
                self.ukernel_minimum.shared_bytes,
            ),
            (
                "Global Memory",
                self.traditional.global_bytes,
                self.ukernel.global_bytes,
                self.ukernel_minimum.global_bytes,
            ),
            (
                "Constant Memory",
                self.traditional.const_bytes,
                self.ukernel.const_bytes,
                self.ukernel_minimum.const_bytes,
            ),
            (
                "Spawn Memory",
                self.traditional.spawn_bytes,
                self.ukernel.spawn_bytes,
                self.ukernel_minimum.spawn_bytes,
            ),
        ];
        for (name, a, b, c) in rows {
            writeln!(f, "  {name:<16} {a:>12} {b:>12} {c:>18}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        let t = run();
        // Spawn memory: 0 for traditional, 48 for μ-kernels (Table II).
        assert_eq!(t.traditional.spawn_bytes, 0);
        assert_eq!(t.ukernel.spawn_bytes, 48);
        // The cheapest μ-kernel needs no more than the whole program.
        assert!(t.ukernel_minimum.registers <= t.ukernel.registers);
        assert!(t.ukernel_minimum.registers > 0);
        // Register budgets stay within the architectural file.
        assert!(t.traditional.registers <= 64);
        assert!(t.ukernel.registers <= 64);
    }

    #[test]
    fn reachability_ignores_spawn_edges() {
        let p = simt_isa::assemble(
            r#"
            .kernel main
            .kernel child
            main:
                mov.u32 r1, 0
                spawn $child, r1
                exit
            child:
                mov.u32 r40, 0
                exit
            "#,
        )
        .unwrap();
        // From main: r1 only (spawn target not followed).
        assert_eq!(registers_reachable_from(&p, 0), 2);
        // From child: r40.
        assert_eq!(registers_reachable_from(&p, 3), 41);
    }

    #[test]
    fn display_has_all_rows() {
        let s = run().to_string();
        for key in ["Registers", "Shared", "Global", "Constant", "Spawn"] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
