//! End-to-end tests of the workload registry front-ends: the `repro
//! list` catalog, typed unknown-workload errors at the CLI and over
//! `repro serve`, extended workloads (`bvh`, `microdiv`) running
//! through the campaign engine with ground-truth validation,
//! variant-qualified job names, parallelism-independent `repro all`
//! bytes, and replay of journal entries written in the pre-registry
//! bare-name format.

use experiments::campaign;
use experiments::serve::client::{self, ClientOpts};
use experiments::serve::journal::Journal;
use experiments::serve::json;
use experiments::Scale;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("registry-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn repro(args: &[&str]) -> Output {
    Command::new(REPRO)
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// Serial reference bytes: each job rendered alone at test scale,
/// stdout concatenated in the given order.
fn serial_bytes(jobs: &[&str]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for job in jobs {
        let out = repro(&[job, "--scale", "test"]);
        assert!(out.status.success(), "serial {job} run succeeds");
        bytes.extend_from_slice(&out.stdout);
    }
    bytes
}

#[test]
fn repro_list_prints_the_full_catalog() {
    let out = repro(&["list"]);
    assert!(out.status.success(), "repro list exits 0");
    let text = String::from_utf8(out.stdout).expect("utf-8 catalog");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 12,
        "catalog lists every workload, got {} lines",
        lines.len()
    );
    for w in experiments::workload::all() {
        let line = lines
            .iter()
            .find(|l| l.starts_with(w.id()))
            .unwrap_or_else(|| panic!("{} missing from `repro list`", w.id()));
        assert!(
            line.contains(&w.group().to_string()),
            "{} line carries its group: {line}",
            w.id()
        );
    }
    // Extended workloads advertise their standalone variants.
    assert!(text.contains("bvh") && text.contains("[variants: pdom-warp, dynamic]"));
    assert!(text.contains("microdiv"));
}

#[test]
fn unknown_workloads_are_typed_cli_errors() {
    for bad in ["bogus", "bvh@warp9"] {
        let out = repro(&[bad, "--scale", "test"]);
        assert_eq!(out.status.code(), Some(2), "{bad} exits 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown workload") && err.contains("repro list"),
            "{bad} reports the typed error and points at the catalog: {err}"
        );
    }
    // A known workload with a variant it does not run standalone is the
    // other typed rejection.
    let out = repro(&["fig3@dynamic", "--scale", "test"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("does not run standalone variant"),
        "variant-on-paper-artifact is a typed error: {err}"
    );
}

/// Satellite 4: `repro all` stdout must not depend on the phase-A
/// simulator parallelism.
#[test]
fn repro_all_is_byte_identical_across_parallelism() {
    let p1 = repro(&["all", "--scale", "quick", "--parallel", "1"]);
    assert!(p1.status.success(), "repro all --parallel 1 succeeds");
    let p4 = repro(&["all", "--scale", "quick", "--parallel", "4"]);
    assert!(p4.status.success(), "repro all --parallel 4 succeeds");
    assert_eq!(
        p1.stdout, p4.stdout,
        "repro all bytes are parallelism-independent"
    );
}

/// The extended workloads run through the full campaign engine: sharded
/// workers, result cache, manifest — with their built-in host-reference
/// validation (a ground-truth mismatch would fail the job and the
/// campaign).
#[test]
fn extended_workloads_run_through_campaign_with_ground_truth() {
    let dir = temp_dir("extended");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let want = serial_bytes(&["bvh", "microdiv"]);

    let cold = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "bvh,microdiv",
        "--campaign-dir",
        dir_s,
    ]);
    assert!(
        cold.status.success(),
        "extended campaign succeeds: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(cold.stdout, want, "campaign bytes == serial bytes");

    // Warm: both jobs replay from the content-addressed cache.
    let warm = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "bvh,microdiv",
        "--campaign-dir",
        dir_s,
    ]);
    assert!(warm.status.success());
    assert_eq!(warm.stdout, want, "cached bytes == serial bytes");
    let manifest =
        std::fs::read_to_string(dir.join("manifest.json")).expect("campaign wrote its manifest");
    assert_eq!(
        manifest.matches("\"outcome\": \"cached\"").count(),
        2,
        "both extended jobs served from cache: {manifest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Variant-qualified job names (`workload@variant`) are first-class
/// campaign citizens: scheduled, cached, and byte-stable like any other
/// job.
#[test]
fn variant_qualified_names_are_first_class_jobs() {
    let dir = temp_dir("variant");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    // Campaign output follows canonical registry order (bvh before
    // microdiv), not the `--only` listing order.
    let want = serial_bytes(&["bvh@pdom-warp", "microdiv@dynamic"]);

    let cold = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "microdiv@dynamic,bvh@pdom-warp",
        "--campaign-dir",
        dir_s,
    ]);
    assert!(
        cold.status.success(),
        "variant campaign succeeds: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(cold.stdout, want, "variant-narrowed bytes == serial bytes");

    // An unknown job name fails the campaign up front with the typed
    // error, before any worker runs.
    let bad = repro(&[
        "campaign",
        "--scale",
        "test",
        "--only",
        "microdiv@warp9",
        "--campaign-dir",
        dir_s,
    ]);
    assert!(!bad.status.success(), "unknown job name fails the campaign");
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("unknown workload"),
        "campaign reports the typed error"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

struct Server {
    child: Child,
    serve_dir: PathBuf,
}

impl Server {
    fn start(serve_dir: &Path) -> Server {
        let log = std::fs::File::create(serve_dir.join("serve.log")).expect("server log file");
        let child = Command::new(REPRO)
            .args([
                "serve",
                "--serve-dir",
                serve_dir.to_str().expect("utf-8 path"),
                "--scale",
                "test",
                "--workers",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(log)
            .spawn()
            .expect("server spawns");
        Server {
            child,
            serve_dir: serve_dir.to_path_buf(),
        }
    }

    fn opts(&self) -> ClientOpts {
        let endpoint = self.serve_dir.join("endpoint");
        ClientOpts {
            server: client::read_endpoint(&endpoint, Duration::from_secs(30))
                .expect("server advertises its endpoint"),
            endpoint_file: Some(endpoint),
            artifacts: Vec::new(),
            scale_name: "test".to_string(),
            json: false,
            deadline_ms: None,
            concurrency: 2,
            out_dir: None,
            timeout: Duration::from_secs(240),
        }
    }

    fn drain(mut self) {
        let opts = self.opts();
        let deadline = Instant::now() + Duration::from_secs(120);
        client::request_retry(&opts, "POST", "/drain", "", deadline).expect("drain accepted");
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "drained server exits 0, got {status}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Satellite 2's compat contract: a journal entry written before the
/// registry existed — a bare artifact name in the unchanged frame
/// format — must replay on boot and finish with serial-identical bytes.
/// Piggybacks the serve-side typed rejection: an unknown workload name
/// is a 400, not a crash or a queued ghost.
#[test]
fn pre_registry_journal_entries_replay_after_restart() {
    let dir = temp_dir("journal-compat");

    // Hand-write the journal entry exactly as a pre-registry server
    // would have: bare artifact name, same sealed frame format.
    let fingerprint = campaign::job_fingerprint("table3", Scale::test(), false);
    {
        let (mut journal, replay) =
            Journal::open(&dir.join("journal")).expect("fresh journal opens");
        assert!(replay.is_empty());
        journal
            .append("table3", "test", false, 0, fingerprint)
            .expect("entry journaled");
    }

    // Boot on that serve dir: replay must resubmit the job with no
    // client action; we only poll its public id.
    let server = Server::start(&dir);
    let opts = server.opts();
    let job_id = format!("{fingerprint:016x}");
    let wait_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::request_retry(
            &opts,
            "GET",
            &format!("/jobs/{job_id}?wait_ms=2000"),
            "",
            wait_deadline,
        )
        .expect("status reachable");
        assert_ne!(resp.status, 404, "journaled job must be replayed, not lost");
        let map = json::parse_flat(&String::from_utf8_lossy(&resp.body)).expect("status JSON");
        if json::get_str(&map, "state") == Some("done") {
            break;
        }
        assert!(
            Instant::now() < wait_deadline,
            "replayed job must finish in time"
        );
    }
    let out = client::request_retry(
        &opts,
        "GET",
        &format!("/jobs/{job_id}/output"),
        "",
        Instant::now() + Duration::from_secs(30),
    )
    .expect("output fetch");
    assert_eq!(out.status, 200);
    assert_eq!(
        out.body,
        serial_bytes(&["table3"]),
        "replayed bytes == serial bytes"
    );

    // Unknown workload over the wire: typed 400 with the catalog hint.
    let resp = client::request_retry(
        &opts,
        "POST",
        "/jobs",
        "{\"artifact\": \"bogus\", \"scale\": \"test\"}",
        Instant::now() + Duration::from_secs(30),
    )
    .expect("submit reaches the server");
    assert_eq!(resp.status, 400, "unknown workload is shed as a 400");
    assert!(
        String::from_utf8_lossy(&resp.body).contains("unknown workload"),
        "400 body carries the typed error"
    );

    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
