//! End-to-end tests of `repro serve`: crash recovery via journal
//! replay, idempotent resubmission across restarts, provably bounded
//! admission control, per-request deadlines, and byte-identity of
//! served artifacts with serial renders.

use experiments::serve::client::{self, ClientOpts};
use experiments::serve::json;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

/// Serial reference bytes for one artifact at test scale.
fn serial_bytes(artifact: &str) -> Vec<u8> {
    let out = Command::new(REPRO)
        .args([artifact, "--scale", "test"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "serial {artifact} run succeeds");
    out.stdout
}

/// A running server incarnation; killed on drop so a panicking test
/// never leaks the process.
struct Server {
    child: Child,
    serve_dir: PathBuf,
}

impl Server {
    fn start(serve_dir: &Path, extra: &[&str]) -> Server {
        let log = std::fs::File::create(serve_dir.join(format!(
            "serve-{}.log",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0)
        )))
        .expect("server log file");
        let child = Command::new(REPRO)
            .args([
                "serve",
                "--serve-dir",
                serve_dir.to_str().expect("utf-8 path"),
                "--scale",
                "test",
                "--workers",
                "2",
            ])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(log)
            .spawn()
            .expect("server spawns");
        Server {
            child,
            serve_dir: serve_dir.to_path_buf(),
        }
    }

    fn endpoint_file(&self) -> PathBuf {
        self.serve_dir.join("endpoint")
    }

    fn opts(&self, artifacts: &[&str]) -> ClientOpts {
        ClientOpts {
            server: client::read_endpoint(&self.endpoint_file(), Duration::from_secs(30))
                .expect("server advertises its endpoint"),
            endpoint_file: Some(self.endpoint_file()),
            artifacts: artifacts.iter().map(|s| s.to_string()).collect(),
            scale_name: "test".to_string(),
            json: false,
            deadline_ms: None,
            concurrency: 2,
            out_dir: None,
            timeout: Duration::from_secs(240),
        }
    }

    /// `kill -9`: no drain, no cleanup — the crash the journal exists
    /// for.
    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL delivered");
        let _ = self.child.wait();
    }

    /// Requests graceful drain and waits for a clean exit.
    fn drain(mut self) {
        let opts = self.opts(&[]);
        let deadline = Instant::now() + Duration::from_secs(120);
        client::request_retry(&opts, "POST", "/drain", "", deadline).expect("drain accepted");
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "drained server exits 0, got {status}");
        // Disarm the Drop kill (already reaped).
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn healthz(opts: &ClientOpts) -> std::collections::BTreeMap<String, json::Value> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let resp = client::request_retry(opts, "GET", "/healthz", "", deadline).expect("healthz");
    assert_eq!(resp.status, 200);
    json::parse_flat(&String::from_utf8_lossy(&resp.body)).expect("healthz is flat JSON")
}

/// The satellite-3 e2e: a request mix of cold, warm-cache, and
/// deadline-exceeding jobs; `kill -9` mid-flight; restart; journal
/// replay finishes accepted work with bytes identical to serial
/// renders — without the client resubmitting.
#[test]
fn kill9_recovery_replays_journal_and_matches_serial_bytes() {
    let dir = temp_dir("kill9");
    // The first incarnation hangs fig7's worker (test hook), pinning
    // that job in-flight so the kill below is deterministic, not a race
    // against a fast render.
    let mut server = Server::start(&dir, &["--chaos-hang-job", "fig7"]);
    let opts = server.opts(&[]);

    // Cold request runs to completion before any crash.
    let table3 = client::run_job(&opts, "table3").expect("cold table3");
    assert_eq!(table3.outcome, "completed");
    assert_eq!(
        table3.output.as_deref(),
        Some(serial_bytes("table3").as_slice()),
        "served bytes == serial bytes"
    );

    // Accept a longer job, then kill -9 the server mid-flight. The 202
    // has been issued, so this request must survive the crash.
    let fig7_body = "{\"artifact\": \"fig7\", \"scale\": \"test\"}";
    let deadline = Instant::now() + Duration::from_secs(60);
    let accept =
        client::request_retry(&opts, "POST", "/jobs", fig7_body, deadline).expect("fig7 submitted");
    assert_eq!(accept.status, 202, "fig7 accepted and journaled");
    let accept_map =
        json::parse_flat(&String::from_utf8_lossy(&accept.body)).expect("202 body parses");
    let fig7_id = json::get_str(&accept_map, "job")
        .expect("job id")
        .to_string();
    std::thread::sleep(Duration::from_millis(500));
    server.kill9();

    // Restart on the same serve dir — WITHOUT the hang hook, so the
    // replayed job can actually run. Journal replay must resubmit fig7
    // with no client action; we only poll the same job id.
    let server = Server::start(&dir, &[]);
    let opts = server.opts(&[]);
    let wait_deadline = Instant::now() + Duration::from_secs(180);
    let fig7_done = loop {
        let resp = client::request_retry(
            &opts,
            "GET",
            &format!("/jobs/{fig7_id}?wait_ms=2000"),
            "",
            wait_deadline,
        )
        .expect("status reachable after restart");
        assert_ne!(
            resp.status, 404,
            "journaled-but-unfinished job must be replayed, not lost"
        );
        let map = json::parse_flat(&String::from_utf8_lossy(&resp.body)).expect("status JSON");
        if json::get_str(&map, "state") == Some("done") {
            break map;
        }
        assert!(
            Instant::now() < wait_deadline,
            "fig7 must finish after replay"
        );
    };
    let outcome = json::get_str(&fig7_done, "outcome").expect("outcome");
    assert!(
        outcome == "completed" || outcome == "resumed" || outcome == "cached",
        "replayed job converges, got {outcome}"
    );
    let out = client::request_retry(
        &opts,
        "GET",
        &format!("/jobs/{fig7_id}/output"),
        "",
        Instant::now() + Duration::from_secs(30),
    )
    .expect("output fetch");
    assert_eq!(out.status, 200);
    assert_eq!(
        out.body,
        serial_bytes("fig7"),
        "post-crash bytes == serial bytes"
    );

    // Warm resubmission of the pre-crash artifact: the cache survived
    // the kill, so this is instant and still byte-identical.
    let warm = client::run_job(&opts, "table3").expect("warm table3");
    assert_eq!(warm.outcome, "cached");
    assert_eq!(
        warm.output.as_deref(),
        Some(serial_bytes("table3").as_slice())
    );

    // Deadline-exceeding request: a 1ms budget expires before any worker
    // finishes; typed outcome, no output, counted in /healthz.
    let mut dl_opts = opts.clone();
    dl_opts.deadline_ms = Some(1);
    let expired = client::run_job(&dl_opts, "fig9").expect("deadline job terminal");
    assert_eq!(expired.outcome, "deadline-exceeded");
    assert!(expired.output.is_none());

    let health = healthz(&opts);
    assert!(
        json::get_num(&health, "deadline_kills").unwrap_or(0) >= 1,
        "deadline kill surfaced in /healthz: {health:?}"
    );
    assert_eq!(
        json::get_num(&health, "queue_depth"),
        Some(0),
        "everything terminal"
    );

    server.drain();
    // After drain: journal empty (nothing accepted was lost or left
    // behind) and the final manifest records the degraded deadline job.
    let journal_left = std::fs::read_dir(dir.join("journal"))
        .map(|d| {
            d.flatten()
                .filter(|i| i.path().extension().and_then(|e| e.to_str()) == Some("job"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(journal_left, 0, "journal fully retired after drain");
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("final manifest");
    assert!(
        manifest.contains("\"outcome\": \"deadline-exceeded\""),
        "manifest records the deadline job: {manifest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The admission-bound acceptance criterion: under a flood the queue
/// never exceeds its configured capacity, excess requests get typed
/// shed responses with retry hints, the sheds are counted in
/// `/healthz`, and nothing accepted is lost.
#[test]
fn flood_sheds_typed_and_queue_stays_bounded() {
    let dir = temp_dir("flood");
    // Capacity 1: the first cold job occupies the whole queue.
    let server = Server::start(&dir, &["--queue-capacity", "1"]);
    let opts = server.opts(&[]);
    let deadline = Instant::now() + Duration::from_secs(60);

    let first = client::request_retry(
        &opts,
        "POST",
        "/jobs",
        "{\"artifact\": \"fig7\", \"scale\": \"test\"}",
        deadline,
    )
    .expect("first submit");
    assert_eq!(first.status, 202, "first job fills the queue");

    // Distinct artifacts (distinct fingerprints) must shed queue-full;
    // resubmitting the SAME artifact attaches idempotently instead.
    let mut sheds = 0;
    for artifact in ["fig3", "fig9", "table4"] {
        let body = format!("{{\"artifact\": \"{artifact}\", \"scale\": \"test\"}}");
        let resp =
            client::request_retry(&opts, "POST", "/jobs", &body, deadline).expect("flood submit");
        if resp.status == 429 {
            let map =
                json::parse_flat(&String::from_utf8_lossy(&resp.body)).expect("shed body JSON");
            assert_eq!(json::get_str(&map, "shed"), Some("queue-full"));
            assert!(resp.retry_after_ms.is_some(), "shed carries a retry hint");
            sheds += 1;
        } else {
            // fig7 may complete mid-flood and free the slot; anything
            // accepted must have been journaled, which drain verifies.
            assert_eq!(resp.status, 202);
        }
    }
    let dup = client::request_retry(
        &opts,
        "POST",
        "/jobs",
        "{\"artifact\": \"fig7\", \"scale\": \"test\"}",
        deadline,
    )
    .expect("duplicate submit");
    assert_eq!(
        dup.status, 202,
        "identical in-flight work attaches, never sheds"
    );

    let health = healthz(&opts);
    let depth = json::get_num(&health, "queue_depth").expect("queue_depth");
    assert!(depth <= 1, "queue depth {depth} exceeds capacity 1");
    assert!(
        json::get_num(&health, "shed_queue_full").unwrap_or(0) >= i64::from(sheds),
        "sheds counted in /healthz: {health:?}"
    );
    assert!(sheds >= 1, "flood produced at least one typed shed");

    // Everything accepted (202) must converge; drain proves it.
    server.drain();
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("final manifest");
    assert!(
        !manifest.contains("\"gave_up\": 1"),
        "accepted jobs all converge: {manifest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rate limiting: with a 1-token bucket and no refill to speak of, the
/// second immediate submission sheds `rate-limited`.
#[test]
fn token_bucket_sheds_rate_limited() {
    let dir = temp_dir("rate");
    let server = Server::start(&dir, &["--rate", "1", "--burst", "1"]);
    let opts = server.opts(&[]);
    let deadline = Instant::now() + Duration::from_secs(30);

    let first = client::request_retry(
        &opts,
        "POST",
        "/jobs",
        "{\"artifact\": \"table3\", \"scale\": \"test\"}",
        deadline,
    )
    .expect("first submit");
    assert_eq!(first.status, 202);
    let second = client::request_retry(
        &opts,
        "POST",
        "/jobs",
        "{\"artifact\": \"fig3\", \"scale\": \"test\"}",
        deadline,
    )
    .expect("second submit");
    assert_eq!(second.status, 429, "bucket empty: typed shed");
    let map = json::parse_flat(&String::from_utf8_lossy(&second.body)).expect("shed body");
    assert_eq!(json::get_str(&map, "shed"), Some("rate-limited"));
    let hint = second.retry_after_ms.expect("retry hint present");
    assert!(hint >= 1, "hint must be a real wait, got {hint}");

    let health = healthz(&opts);
    assert!(json::get_num(&health, "shed_rate_limited").unwrap_or(0) >= 1);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The drop-directory ingress accepts the same JSON bodies as `POST
/// /jobs` and answers through `.resp` files.
#[test]
fn drop_directory_ingress_accepts_and_responds() {
    let dir = temp_dir("drop");
    let server = Server::start(&dir, &[]);
    let opts = server.opts(&[]);
    // Wait for boot (endpoint visible), then drop a request file in.
    let drop_dir = dir.join("drop");
    std::fs::write(
        drop_dir.join("req1.json"),
        "{\"artifact\": \"table3\", \"scale\": \"test\"}",
    )
    .expect("drop request");
    let resp_path = drop_dir.join("req1.resp");
    let deadline = Instant::now() + Duration::from_secs(60);
    let body = loop {
        if let Ok(text) = std::fs::read_to_string(&resp_path) {
            break text;
        }
        assert!(Instant::now() < deadline, "drop response appears");
        std::thread::sleep(Duration::from_millis(50));
    };
    let map = json::parse_flat(&body).expect("drop response is flat JSON");
    assert_eq!(json::get_bool(&map, "accepted"), Some(true), "{body}");
    let job = json::get_str(&map, "job").expect("job id").to_string();

    // The dropped job is a normal job: poll it over HTTP to done.
    let wait_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::request_retry(
            &opts,
            "GET",
            &format!("/jobs/{job}?wait_ms=2000"),
            "",
            wait_deadline,
        )
        .expect("status");
        let map = json::parse_flat(&String::from_utf8_lossy(&resp.body)).expect("status JSON");
        if json::get_str(&map, "state") == Some("done") {
            break;
        }
        assert!(Instant::now() < wait_deadline, "dropped job finishes");
    }
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
