//! End-to-end checkpoint/resume correctness: a render interrupted at an
//! arbitrary cycle, serialized through the on-disk snapshot format,
//! restored, and run to the original budget must be **bit-identical** to
//! an uninterrupted run — statistics, memory traffic, fault log,
//! windowed telemetry metrics, and the rendered image — at every phase-A
//! parallelism level.

use experiments::{gpu_for, Variant};
use raytrace::scenes::{self, SceneScale};
use rt_kernels::render::RenderSetup;
use rt_kernels::RESULT_RECORD_BYTES;
use simt_isa::codec::fnv1a64;
use simt_sim::{CsvMetricsSink, Gpu, Snapshot, TraceSink};

const RESOLUTION: u32 = 16;
const BUDGET: u64 = 20_000;

fn launch(variant: Variant, setup: &RenderSetup, gpu: &mut Gpu) {
    if variant.is_dynamic() {
        setup.launch_ukernel(gpu, 32);
    } else {
        setup.launch_traditional(gpu, 32);
    }
}

/// FNV-1a hash of the raw result records — the "image" the render wrote.
fn image_hash(gpu: &Gpu, setup: &RenderSetup) -> u64 {
    let mut bytes = Vec::with_capacity(setup.dev.num_rays as usize * 8);
    for i in 0..setup.dev.num_rays {
        let base = setup.dev.results_base + i * RESULT_RECORD_BYTES;
        for off in [0, 4] {
            let word = gpu.mem().read_u32(simt_isa::Space::Global, base + off);
            bytes.extend_from_slice(&word.to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

/// Runs `variant` uninterrupted and interrupted-at-`interrupt_at` (with a
/// full serialize → deserialize → restore cycle in between) and asserts
/// the two machines end bit-identical.
fn assert_resume_matches(variant: Variant, parallel: usize, interrupt_at: u64) {
    let scene = scenes::conference(SceneScale::Tiny);

    let mut reference = gpu_for(variant).with_parallelism(parallel);
    let ref_setup = RenderSetup::upload(&mut reference, &scene, RESOLUTION, RESOLUTION);
    launch(variant, &ref_setup, &mut reference);
    let want = reference.run(BUDGET).expect("fault-free reference run");

    let mut gpu = gpu_for(variant).with_parallelism(parallel);
    let setup = RenderSetup::upload(&mut gpu, &scene, RESOLUTION, RESOLUTION);
    launch(variant, &setup, &mut gpu);
    gpu.run(interrupt_at).expect("fault-free partial run");
    let bytes = gpu.checkpoint().expect("snapshot encodes").to_bytes();
    drop(gpu); // everything must come back from the serialized bytes

    let snap = Snapshot::from_bytes(&bytes).expect("snapshot frame is valid");
    let mut restored = Gpu::restore(&snap)
        .expect("snapshot restores")
        .with_parallelism(parallel);
    let got = restored
        .run(BUDGET - interrupt_at)
        .expect("fault-free resumed run");

    let tag = format!("{variant:?} parallel={parallel} interrupt@{interrupt_at}");
    assert_eq!(got.outcome, want.outcome, "{tag}: outcome");
    assert_eq!(got.stats, want.stats, "{tag}: stats");
    assert_eq!(got.traffic, want.traffic, "{tag}: traffic");
    assert_eq!(got.dmk, want.dmk, "{tag}: dmk stats");
    assert_eq!(got.faults, want.faults, "{tag}: fault log");
    assert_eq!(
        image_hash(&restored, &setup),
        image_hash(&reference, &ref_setup),
        "{tag}: image hash"
    );
    // The windowed telemetry counters ride the snapshot with the rest of
    // the machine state: a resumed run must render the same metrics CSV
    // as the uninterrupted reference.
    assert!(
        restored.telemetry_enabled(),
        "{tag}: telemetry config survives restore"
    );
    assert_eq!(
        CsvMetricsSink.render(&restored.telemetry_report()),
        CsvMetricsSink.render(&reference.telemetry_report()),
        "{tag}: windowed telemetry metrics"
    );
}

#[test]
fn resume_is_bit_identical_serial() {
    assert_resume_matches(Variant::Dynamic, 1, 7_301);
    assert_resume_matches(Variant::PdomWarp, 1, 4_097);
}

#[test]
fn resume_is_bit_identical_parallel_4() {
    assert_resume_matches(Variant::Dynamic, 4, 7_301);
    assert_resume_matches(Variant::PdomWarp, 4, 4_097);
}
