//! Determinism regression tests for the two-phase pipeline: the same
//! launch must produce bit-identical statistics, traffic, fault logs,
//! telemetry artifacts, and output images at every phase-A parallelism
//! level, and across repeated runs at the same level.

use dmk_core::DmkConfig;
use experiments::{gpu_for, gpu_for_with, Scale, Variant};
use raytrace::scenes::{self, SceneScale};
use rt_kernels::render::RenderSetup;
use simt_sim::{
    ChromeTraceSink, CsvMetricsSink, FaultPolicy, Gpu, GpuConfig, InjectedFault, Injector,
    RunSummary, SimStats, TelemetrySpec, TraceSink,
};

/// FNV-1a 64 over the rendered hit buffer (t bits + triangle id per ray).
fn image_hash(results: &[Option<raytrace::Hit>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u32| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for r in results {
        match r {
            Some(hit) => {
                mix(hit.t.to_bits());
                mix(hit.tri);
            }
            None => mix(u32::MAX),
        }
    }
    h
}

/// One fully rendered frame at the given parallelism.
struct Frame {
    summary: RunSummary,
    stats: SimStats,
    image: u64,
}

fn render_at(variant: Variant, parallel: usize) -> Frame {
    let scale = Scale::test();
    let scene = scenes::conference(SceneScale::Tiny);
    let mut gpu = gpu_for(variant).with_parallelism(parallel);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    if variant.is_dynamic() {
        setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    } else {
        setup.launch_traditional(&mut gpu, scale.threads_per_block);
    }
    let summary = gpu.run(1_000_000).expect("fault-free run");
    Frame {
        image: image_hash(&setup.device_results(&gpu)),
        stats: gpu.stats().clone(),
        summary,
    }
}

fn assert_frames_identical(a: &Frame, b: &Frame, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: SimStats diverged");
    assert_eq!(
        a.summary.stats, b.summary.stats,
        "{what}: summary stats diverged"
    );
    assert_eq!(
        a.summary.traffic, b.summary.traffic,
        "{what}: traffic diverged"
    );
    assert_eq!(
        a.summary.faults, b.summary.faults,
        "{what}: fault log diverged"
    );
    assert_eq!(a.summary.outcome, b.summary.outcome);
    assert_eq!(a.image, b.image, "{what}: output image diverged");
}

#[test]
fn dynamic_render_is_identical_across_parallelism() {
    let serial = render_at(Variant::Dynamic, 1);
    let par4 = render_at(Variant::Dynamic, 4);
    assert_frames_identical(&serial, &par4, "dynamic parallel 1 vs 4");
    assert!(serial.stats.threads_spawned > 0, "render actually spawned");
}

#[test]
fn traditional_render_is_identical_across_parallelism() {
    let serial = render_at(Variant::PdomWarp, 1);
    let par4 = render_at(Variant::PdomWarp, 4);
    assert_frames_identical(&serial, &par4, "traditional parallel 1 vs 4");
}

#[test]
fn repeated_runs_at_same_parallelism_are_identical() {
    let a = render_at(Variant::Dynamic, 4);
    let b = render_at(Variant::Dynamic, 4);
    assert_frames_identical(&a, &b, "dynamic parallel 4, run twice");
}

/// Injected warp traps under `KillWarp` must land on the same warps at the
/// same cycles regardless of how many worker threads step phase A.
#[test]
fn injected_fault_log_is_identical_across_parallelism() {
    let run_at = |parallel: usize| {
        let mut cfg = GpuConfig::fx5800_dmk(DmkConfig::paper());
        cfg.fault_policy = FaultPolicy::KillWarp;
        let mut gpu = Gpu::builder(cfg)
            .parallelism(parallel)
            .injector(Injector::new(7).force_with_probability(
                InjectedFault::Trap,
                500..4_000,
                0.02,
            ))
            .build();
        let scale = Scale::test();
        let scene = scenes::conference(SceneScale::Tiny);
        let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
        setup.launch_ukernel(&mut gpu, scale.threads_per_block);
        let summary = gpu.run(scale.cycles).expect("KillWarp never aborts");
        (summary.faults.clone(), summary.stats.clone())
    };
    let (faults1, stats1) = run_at(1);
    let (faults4, stats4) = run_at(4);
    assert!(!faults1.is_empty(), "the injector actually trapped warps");
    assert_eq!(faults1, faults4, "fault logs diverged across parallelism");
    assert_eq!(stats1, stats4);
}

/// One fully traced render: the rendered Chrome-trace JSON, the rendered
/// metrics CSV, and the `SimStats` divergence CSV for cross-checking.
fn traced_render_at(parallel: usize) -> (String, String, String) {
    let scale = Scale::test();
    let scene = scenes::conference(SceneScale::Tiny);
    let mut gpu = gpu_for_with(Variant::Dynamic, TelemetrySpec::trace()).with_parallelism(parallel);
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    gpu.run(1_000_000).expect("fault-free run");
    let report = gpu.telemetry_report();
    (
        ChromeTraceSink.render(&report),
        CsvMetricsSink.render(&report),
        gpu.stats().divergence.to_csv(),
    )
}

/// Telemetry is produced in per-SM shards during phase A and merged in
/// SM-id order, so the rendered artifacts — not just the aggregate
/// statistics — must be byte-identical at every parallelism level.
#[test]
fn telemetry_artifacts_are_identical_across_parallelism() {
    let (trace1, csv1, _) = traced_render_at(1);
    let (trace4, csv4, _) = traced_render_at(4);
    assert!(
        trace1.contains("\"traceEvents\""),
        "trace JSON looks malformed: {trace1:.120}"
    );
    assert_eq!(trace1, trace4, "Chrome trace diverged across parallelism");
    assert_eq!(csv1, csv4, "metrics CSV diverged across parallelism");
}

/// The CSV sink's divergence section is defined to be byte-identical to
/// `SimStats::divergence.to_csv()` — the figures that moved onto the
/// telemetry pipeline must keep printing exactly the numbers they did
/// when they scraped `SimStats` directly.
#[test]
fn telemetry_csv_divergence_section_matches_sim_stats() {
    let (_, csv, stats_csv) = traced_render_at(1);
    let section = CsvMetricsSink::divergence_section(&csv)
        .expect("metrics CSV has a divergence timeline section");
    assert_eq!(section, stats_csv, "telemetry divergence != SimStats");
    assert!(
        stats_csv.lines().count() > 1,
        "divergence timeline is non-trivial"
    );
}
