//! End-to-end tests of the `repro campaign` coordinator/worker protocol:
//! a campaign's stdout must be byte-identical to the serial runs of the
//! same artifacts whether it was computed by sharded workers, replayed
//! from the result cache, recomputed after cache corruption, or
//! chaos-killed mid-job and resumed from checkpoints — and a job that
//! exhausts its retry budget must be reported `GaveUp` in the manifest
//! without taking the rest of the campaign down.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("campaign-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn repro(args: &[&str]) -> Output {
    Command::new(REPRO)
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// Serial reference bytes for `artifacts`: each rendered alone at test
/// scale, stdout concatenated in the given order.
fn serial_bytes(artifacts: &[&str]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for artifact in artifacts {
        let out = repro(&[artifact, "--scale", "test"]);
        assert!(out.status.success(), "serial {artifact} run succeeds");
        bytes.extend_from_slice(&out.stdout);
    }
    bytes
}

fn manifest(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("manifest.json")).expect("campaign wrote its manifest")
}

#[test]
fn sharded_campaign_matches_serial_and_round_trips_through_cache() {
    let dir = temp_dir("shard");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let want = serial_bytes(&["table3", "fig3"]);

    // Cold: computed by two worker processes.
    let cold = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "table3,fig3",
        "--campaign-dir",
        dir_s,
    ]);
    assert!(cold.status.success(), "cold campaign succeeds");
    assert_eq!(cold.stdout, want, "sharded bytes == serial bytes");
    let m = manifest(&dir);
    assert!(
        m.contains("\"outcome\": \"completed\""),
        "computed, not cached: {m}"
    );

    // Warm: served entirely from the content-addressed cache.
    let warm = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "table3,fig3",
        "--campaign-dir",
        dir_s,
    ]);
    assert!(warm.status.success(), "warm campaign succeeds");
    assert_eq!(warm.stdout, want, "cached bytes == serial bytes");
    let m = manifest(&dir);
    assert_eq!(
        m.matches("\"outcome\": \"cached\"").count(),
        2,
        "both jobs served from cache: {m}"
    );

    // A different output mode must re-key, not reuse, the cache.
    let json = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "table3",
        "--campaign-dir",
        dir_s,
        "--json",
    ]);
    assert!(json.status.success(), "json campaign succeeds");
    let json_serial = repro(&["table3", "--scale", "test", "--json"]);
    assert_eq!(
        json.stdout, json_serial.stdout,
        "json campaign == json serial"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_quarantined_and_recomputed() {
    let dir = temp_dir("corrupt");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let want = serial_bytes(&["table3"]);
    let args = [
        "campaign",
        "--scale",
        "test",
        "--workers",
        "1",
        "--only",
        "table3",
        "--campaign-dir",
        dir_s,
    ];
    assert!(repro(&args).status.success(), "seed campaign succeeds");

    let cache = dir.join("cache");
    let entry = std::fs::read_dir(&cache)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "result"))
        .expect("cache holds the table3 entry");

    // Bit-flip: the checksum must catch it; the entry must be moved
    // aside (not deleted) and the job recomputed to identical bytes.
    let mut bytes = std::fs::read(&entry).expect("entry readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&entry, &bytes).expect("entry writable");
    let rerun = repro(&args);
    assert!(rerun.status.success(), "campaign recovers from bit flip");
    assert_eq!(rerun.stdout, want, "recomputed bytes == serial bytes");
    let m = manifest(&dir);
    assert!(
        m.contains("\"quarantined\": true"),
        "quarantine recorded: {m}"
    );
    assert!(
        m.contains("\"outcome\": \"completed\""),
        "recomputed, not served: {m}"
    );
    let quarantined: Vec<_> = std::fs::read_dir(&cache)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "corrupt entry kept for post-mortem");

    // Truncation: same contract.
    let bytes = std::fs::read(&entry).expect("recomputed entry readable");
    std::fs::write(&entry, &bytes[..bytes.len() - 5]).expect("entry writable");
    let rerun = repro(&args);
    assert!(rerun.status.success(), "campaign recovers from truncation");
    assert_eq!(rerun.stdout, want, "recomputed bytes == serial bytes");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_kills_are_survived_via_checkpoint_resume() {
    let dir = temp_dir("chaos");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let want = serial_bytes(&["fig9"]);

    // kill-every 1: every attempt under the retry budget is aborted by
    // the in-worker kill hook after a few checkpoint writes; retries
    // resume from the dead worker's checkpoint and must still converge
    // to the serial bytes.
    let out = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "1",
        "--only",
        "fig9",
        "--campaign-dir",
        dir_s,
        "--chaos-kill-every",
        "1",
        "--seed",
        "7",
        "--checkpoint-every",
        "500",
    ]);
    assert!(out.status.success(), "chaos campaign converges");
    assert_eq!(out.stdout, want, "post-chaos bytes == serial bytes");
    let m = manifest(&dir);
    assert!(
        m.contains("\"outcome\": \"resumed\""),
        "job survived kills: {m}"
    );
    assert!(
        m.contains("\"resumed_from_checkpoint\": true"),
        "resume recorded: {m}"
    );
    assert!(
        !m.contains("\"kills\": 0,"),
        "at least one kill observed: {m}"
    );
    assert!(
        m.contains("\"chaos_kill_every\": 1"),
        "chaos settings recorded: {m}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_is_killed_by_liveness_and_rescheduled() {
    let dir = temp_dir("hang");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let want = serial_bytes(&["table3"]);

    // The first attempt wedges without heartbeating; the coordinator
    // must SIGKILL it on heartbeat staleness and the retry must finish.
    let out = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "1",
        "--only",
        "table3",
        "--campaign-dir",
        dir_s,
        "--chaos-hang-job",
        "table3",
        "--heartbeat-timeout-secs",
        "1",
    ]);
    assert!(out.status.success(), "campaign recovers from the hang");
    assert_eq!(out.stdout, want, "post-hang bytes == serial bytes");
    let m = manifest(&dir);
    assert!(
        m.contains("\"timeouts\": 1"),
        "coordinator kill recorded: {m}"
    );
    assert!(
        m.contains("\"outcome\": \"resumed\""),
        "rescheduled to done: {m}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_gave_up_without_aborting_the_campaign() {
    let dir = temp_dir("gaveup");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let want = serial_bytes(&["table3"]);

    // table1's workers abort on every attempt; with --retries 1 it burns
    // its budget and must be reported GaveUp while table3 completes.
    let out = repro(&[
        "campaign",
        "--scale",
        "test",
        "--workers",
        "2",
        "--only",
        "table1,table3",
        "--campaign-dir",
        dir_s,
        "--chaos-fail-job",
        "table1",
        "--retries",
        "1",
    ]);
    assert!(
        !out.status.success(),
        "a GaveUp job fails the campaign exit code"
    );
    assert_eq!(
        out.stdout, want,
        "the surviving job's bytes == serial bytes"
    );
    let m = manifest(&dir);
    assert!(
        m.contains("\"outcome\": \"gave-up\""),
        "GaveUp recorded: {m}"
    );
    assert!(
        m.contains("\"outcome\": \"completed\""),
        "other job completed: {m}"
    );
    assert!(
        m.contains("\"gave_up\": 1"),
        "summary counts the casualty: {m}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
