//! Differential tests for the event-driven cycle loop at render scale:
//! skip-to-next-event scheduling must be observationally invisible. The
//! same render jobs run with skipping on (the default) and with the
//! forced tick-every-cycle debug mode, at `--parallel 1` and `4`, and
//! every artifact — `SimStats`, the rendered metrics CSV, the fault log,
//! and the output image hash — must be byte-identical.

use experiments::{config_for, Scale, Variant};
use raytrace::scenes::{self, SceneScale};
use rt_kernels::render::RenderSetup;
use simt_sim::{CsvMetricsSink, Gpu, RunSummary, SimStats, TelemetrySpec, TraceSink};

/// FNV-1a 64 over the rendered hit buffer (t bits + triangle id per ray).
fn image_hash(results: &[Option<raytrace::Hit>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u32| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    for r in results {
        match r {
            Some(hit) => {
                mix(hit.t.to_bits());
                mix(hit.tri);
            }
            None => mix(u32::MAX),
        }
    }
    h
}

struct Frame {
    summary: RunSummary,
    stats: SimStats,
    metrics_csv: String,
    image: u64,
    skipped_cycles: u64,
}

fn render(variant: Variant, parallel: usize, force_tick: bool) -> Frame {
    let scale = Scale::test();
    let scene = scenes::conference(SceneScale::Tiny);
    let mut gpu = Gpu::builder(config_for(variant))
        .parallelism(parallel)
        .telemetry(TelemetrySpec::metrics())
        .force_tick(force_tick)
        .build();
    let setup = RenderSetup::upload(&mut gpu, &scene, scale.resolution, scale.resolution);
    if variant.is_dynamic() {
        setup.launch_ukernel(&mut gpu, scale.threads_per_block);
    } else {
        setup.launch_traditional(&mut gpu, scale.threads_per_block);
    }
    let summary = gpu.run(1_000_000).expect("fault-free run");
    Frame {
        image: image_hash(&setup.device_results(&gpu)),
        metrics_csv: CsvMetricsSink.render(&gpu.telemetry_report()),
        stats: gpu.stats().clone(),
        skipped_cycles: gpu.skipped_cycles(),
        summary,
    }
}

fn assert_frames_identical(tick: &Frame, skip: &Frame, what: &str) {
    assert_eq!(tick.stats, skip.stats, "{what}: SimStats diverged");
    assert_eq!(
        tick.summary.stats, skip.summary.stats,
        "{what}: summary stats diverged"
    );
    assert_eq!(
        tick.summary.traffic, skip.summary.traffic,
        "{what}: traffic diverged"
    );
    assert_eq!(
        tick.summary.faults, skip.summary.faults,
        "{what}: fault log diverged"
    );
    assert_eq!(tick.summary.outcome, skip.summary.outcome);
    assert_eq!(
        tick.metrics_csv, skip.metrics_csv,
        "{what}: metrics CSV diverged"
    );
    assert_eq!(tick.image, skip.image, "{what}: output image diverged");
}

#[test]
fn dynamic_render_matrix_skip_vs_forced_tick() {
    for parallel in [1usize, 4] {
        let tick = render(Variant::Dynamic, parallel, true);
        let skip = render(Variant::Dynamic, parallel, false);
        assert_frames_identical(&tick, &skip, &format!("dynamic parallel {parallel}"));
        assert_eq!(tick.skipped_cycles, 0, "force_tick must never skip");
        assert!(skip.stats.threads_spawned > 0, "render actually spawned");
    }
}

#[test]
fn traditional_render_matrix_skip_vs_forced_tick() {
    for parallel in [1usize, 4] {
        let tick = render(Variant::PdomWarp, parallel, true);
        let skip = render(Variant::PdomWarp, parallel, false);
        assert_frames_identical(&tick, &skip, &format!("traditional parallel {parallel}"));
    }
}
