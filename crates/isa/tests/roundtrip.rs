//! Assembler/disassembler round-trip: `assemble → to_source → assemble`
//! must reproduce an identical program (instructions, labels, entry
//! points, resources) over the full generated-program corpus.
//!
//! Burned-down bugs pinned here:
//! * `bra`/`spawn` printed numeric targets the assembler could not
//!   re-parse (fixed by the numeric-target fallback in `resolve`).
//! * `Program`'s `Display` dropped `.kernel` and resource directives, so
//!   spawn programs failed entry-point validation on re-assembly (fixed
//!   by `Program::to_source`).

use proptest::prelude::*;
use simt_isa::gen::{generate, GenConfig};
use simt_isa::{assemble_named, Program};

fn roundtrip(p: &Program) {
    let src = p.to_source();
    let again = assemble_named("generated", &src).unwrap_or_else(|e| {
        panic!("round-trip source failed to assemble: {e}\n{src}");
    });
    assert_eq!(p.instrs(), again.instrs(), "instructions differ\n{src}");
    assert_eq!(p.labels(), again.labels(), "labels differ\n{src}");
    assert_eq!(
        p.resource_usage(),
        again.resource_usage(),
        "resources differ\n{src}"
    );
    let entries = |q: &Program| -> Vec<(String, usize)> {
        let mut v: Vec<_> = q
            .entry_points()
            .iter()
            .map(|e| (e.name.clone(), e.pc))
            .collect();
        v.sort();
        v
    };
    assert_eq!(entries(p), entries(&again), "entry points differ\n{src}");
}

#[test]
fn generated_corpus_round_trips() {
    for seed in 0..300 {
        let g = generate(&GenConfig::from_seed(seed));
        roundtrip(&g.program);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_round_trip(seed in any::<u64>()) {
        let g = generate(&GenConfig::from_seed(seed));
        roundtrip(&g.program);
    }
}

#[test]
fn numeric_branch_targets_assemble() {
    // Regression: the disassembler prints anonymous targets numerically.
    let p = assemble_named("n", "start:\nnop\nbra start").unwrap();
    roundtrip(&p);
    let direct = assemble_named("n", "nop\nbra 0").unwrap();
    assert_eq!(p.instrs(), direct.instrs());
}

#[test]
fn spawn_programs_round_trip_with_directives() {
    let src = r#"
        .spawnstate 48
        .local 64
        .kernel main
        .kernel child
        main:
            mov.u32 r1, %spawnmem
            spawn $child, r1
            exit
        child:
            mov.u32 r2, %spawnmem
            ld.spawn r3, [r2+0]
            exit
    "#;
    let p = assemble_named("s", src).unwrap();
    roundtrip(&p);
}

#[test]
fn negative_offsets_and_hex_immediates_round_trip() {
    let src = r#"
        mov.u32 r1, -2147483648
        add.s32 r2, r1, 255
        st.global.u32 [r2-4], r1
        ld.global.v4 r4, [r2+16]
        @!p0 xor.b32 r3, r1, 0xdeadbeef
        exit
    "#;
    let p = assemble_named("h", src).unwrap();
    roundtrip(&p);
}
