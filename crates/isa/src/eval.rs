//! Pure evaluation of ALU and comparison operations.
//!
//! Keeping evaluation free of simulator state makes the datapath trivially
//! unit- and property-testable, and lets the MIMD-theoretical model in
//! `simt-sim` share exactly the same semantics as the SIMT pipeline.

use crate::instr::{AluOp, CmpOp};

#[inline]
fn f(v: u32) -> f32 {
    f32::from_bits(v)
}

#[inline]
fn b(v: f32) -> u32 {
    v.to_bits()
}

/// Evaluates an ALU operation over raw 32-bit register values.
///
/// Unary operations ignore `bv`; only `FFma`/`IMad` read `cv`.
///
/// Edge-case semantics (the oracle and the pipeline share this function,
/// so they agree by construction):
///
/// * Integer division/remainder by zero produce `0` (a deterministic
///   simulator convention; real PTX leaves this unspecified), and
///   `i32::MIN / -1` wraps to `i32::MIN` with remainder `0`.
/// * Shifts *clamp* like PTX `shl.b32`/`shr.{u,s}32` rather than masking
///   the amount mod 32: amounts ≥ 32 yield `0` for `shl`/`shr.u32` and
///   the sign fill (`0` or `0xffff_ffff`) for `shr.s32`.
/// * `F2I` (`cvt.s32.f32`) saturates: NaN → `0`, values beyond the `i32`
///   range (incl. ±inf) clamp to `i32::MIN`/`i32::MAX`. `F2U`
///   (`cvt.u32.f32`) maps NaN and anything below zero to `0` and
///   saturates at `u32::MAX` (so `-0.5` → `0`, matching
///   round-toward-zero).
/// * `FRcp`/`FDiv` follow IEEE-754: `1/±0 → ±inf`, `0/0 → NaN`.
#[inline]
pub fn eval_alu(op: AluOp, av: u32, bv: u32, cv: u32) -> u32 {
    match op {
        AluOp::IAdd => av.wrapping_add(bv),
        AluOp::ISub => av.wrapping_sub(bv),
        AluOp::IMul => av.wrapping_mul(bv),
        AluOp::IMad => av.wrapping_mul(bv).wrapping_add(cv),
        AluOp::IMin => (av as i32).min(bv as i32) as u32,
        AluOp::IMax => (av as i32).max(bv as i32) as u32,
        AluOp::IDiv => {
            if bv == 0 {
                0
            } else {
                ((av as i32).wrapping_div(bv as i32)) as u32
            }
        }
        AluOp::IRem => {
            if bv == 0 {
                0
            } else {
                ((av as i32).wrapping_rem(bv as i32)) as u32
            }
        }
        AluOp::And => av & bv,
        AluOp::Or => av | bv,
        AluOp::Xor => av ^ bv,
        AluOp::Not => !av,
        AluOp::Shl => {
            if bv >= 32 {
                0
            } else {
                av << bv
            }
        }
        AluOp::ShrU => {
            if bv >= 32 {
                0
            } else {
                av >> bv
            }
        }
        AluOp::ShrS => ((av as i32) >> bv.min(31)) as u32,
        AluOp::FAdd => b(f(av) + f(bv)),
        AluOp::FSub => b(f(av) - f(bv)),
        AluOp::FMul => b(f(av) * f(bv)),
        AluOp::FDiv => b(f(av) / f(bv)),
        AluOp::FMin => b(f(av).min(f(bv))),
        AluOp::FMax => b(f(av).max(f(bv))),
        AluOp::FFma => b(f(av).mul_add(f(bv), f(cv))),
        AluOp::FSqrt => b(f(av).sqrt()),
        AluOp::FRcp => b(1.0 / f(av)),
        AluOp::FAbs => b(f(av).abs()),
        AluOp::FNeg => b(-f(av)),
        AluOp::FFloor => b(f(av).floor()),
        AluOp::I2F => b(av as i32 as f32),
        AluOp::F2I => {
            let x = f(av);
            if x.is_nan() {
                0
            } else {
                (x as i32) as u32
            }
        }
        AluOp::U2F => b(av as f32),
        AluOp::F2U => {
            let x = f(av);
            if x.is_nan() || x < 0.0 {
                0
            } else {
                x as u32
            }
        }
    }
}

/// Evaluates a comparison, producing the predicate value.
///
/// Float comparisons are *ordered*: any comparison with NaN (other than
/// `NeF`) is false, matching PTX `setp.lt.f32` etc.
#[inline]
pub fn eval_cmp(cmp: CmpOp, av: u32, bv: u32) -> bool {
    match cmp {
        CmpOp::EqS => (av as i32) == (bv as i32),
        CmpOp::NeS => (av as i32) != (bv as i32),
        CmpOp::LtS => (av as i32) < (bv as i32),
        CmpOp::LeS => (av as i32) <= (bv as i32),
        CmpOp::GtS => (av as i32) > (bv as i32),
        CmpOp::GeS => (av as i32) >= (bv as i32),
        CmpOp::LtU => av < bv,
        CmpOp::LeU => av <= bv,
        CmpOp::GtU => av > bv,
        CmpOp::GeU => av >= bv,
        CmpOp::EqF => f(av) == f(bv),
        CmpOp::NeF => f(av) != f(bv),
        CmpOp::LtF => f(av) < f(bv),
        CmpOp::LeF => f(av) <= f(bv),
        CmpOp::GtF => f(av) > f(bv),
        CmpOp::GeF => f(av) >= f(bv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn integer_ops() {
        assert_eq!(eval_alu(AluOp::IAdd, 2, 3, 0), 5);
        assert_eq!(eval_alu(AluOp::ISub, 2, 3, 0), (-1i32) as u32);
        assert_eq!(eval_alu(AluOp::IMul, 7, 6, 0), 42);
        assert_eq!(eval_alu(AluOp::IMad, 3, 4, 5), 17);
        assert_eq!(eval_alu(AluOp::IMin, (-4i32) as u32, 3, 0), (-4i32) as u32);
        assert_eq!(eval_alu(AluOp::IMax, (-4i32) as u32, 3, 0), 3);
        assert_eq!(eval_alu(AluOp::IDiv, 7, 2, 0), 3);
        assert_eq!(eval_alu(AluOp::IRem, 7, 2, 0), 1);
    }

    #[test]
    fn division_by_zero_is_deterministic() {
        assert_eq!(eval_alu(AluOp::IDiv, 7, 0, 0), 0);
        assert_eq!(eval_alu(AluOp::IRem, 7, 0, 0), 0);
    }

    #[test]
    fn shifts() {
        assert_eq!(eval_alu(AluOp::Shl, 1, 4, 0), 16);
        assert_eq!(eval_alu(AluOp::ShrU, 0x8000_0000, 31, 0), 1);
        assert_eq!(
            eval_alu(AluOp::ShrS, 0x8000_0000, 31, 0),
            0xffff_ffff,
            "arithmetic shift sign-extends"
        );
    }

    #[test]
    fn shifts_clamp_at_32_like_ptx() {
        // PTX `shl.b32`/`shr.u32` produce 0 for amounts >= 32 (no mod-32
        // masking); `shr.s32` saturates to the sign fill.
        for amt in [32u32, 33, 255, u32::MAX] {
            assert_eq!(eval_alu(AluOp::Shl, 0xdead_beef, amt, 0), 0, "shl {amt}");
            assert_eq!(eval_alu(AluOp::ShrU, 0xdead_beef, amt, 0), 0, "shr.u {amt}");
            assert_eq!(
                eval_alu(AluOp::ShrS, 0x8000_0000, amt, 0),
                0xffff_ffff,
                "shr.s of negative fills with sign at {amt}"
            );
            assert_eq!(
                eval_alu(AluOp::ShrS, 0x7fff_ffff, amt, 0),
                0,
                "shr.s of positive drains to 0 at {amt}"
            );
        }
        // Amounts < 32 still behave normally.
        assert_eq!(eval_alu(AluOp::Shl, 1, 31, 0), 0x8000_0000);
        assert_eq!(eval_alu(AluOp::ShrU, 0x8000_0000, 31, 0), 1);
    }

    #[test]
    fn division_overflow_wraps() {
        let min = i32::MIN as u32;
        assert_eq!(eval_alu(AluOp::IDiv, min, (-1i32) as u32, 0), min);
        assert_eq!(eval_alu(AluOp::IRem, min, (-1i32) as u32, 0), 0);
    }

    #[test]
    fn float_ops() {
        let one = 1.0f32.to_bits();
        let two = 2.0f32.to_bits();
        assert_eq!(eval_alu(AluOp::FAdd, one, two, 0), 3.0f32.to_bits());
        assert_eq!(eval_alu(AluOp::FMul, two, two, 0), 4.0f32.to_bits());
        assert_eq!(eval_alu(AluOp::FSqrt, 4.0f32.to_bits(), 0, 0), two);
        assert_eq!(eval_alu(AluOp::FRcp, two, 0, 0), 0.5f32.to_bits());
        assert_eq!(
            eval_alu(AluOp::FFma, two, two, one),
            5.0f32.to_bits(),
            "fma is fused"
        );
        assert_eq!(eval_alu(AluOp::FNeg, one, 0, 0), (-1.0f32).to_bits());
        assert_eq!(eval_alu(AluOp::FFloor, 1.75f32.to_bits(), 0, 0), one);
    }

    #[test]
    fn conversions() {
        assert_eq!(
            eval_alu(AluOp::I2F, (-3i32) as u32, 0, 0),
            (-3.0f32).to_bits()
        );
        assert_eq!(
            eval_alu(AluOp::F2I, (-3.7f32).to_bits(), 0, 0),
            (-3i32) as u32
        );
        assert_eq!(eval_alu(AluOp::U2F, 5, 0, 0), 5.0f32.to_bits());
        assert_eq!(eval_alu(AluOp::F2U, 5.9f32.to_bits(), 0, 0), 5);
        assert_eq!(eval_alu(AluOp::F2U, (-1.0f32).to_bits(), 0, 0), 0);
        assert_eq!(eval_alu(AluOp::F2I, f32::NAN.to_bits(), 0, 0), 0);
    }

    #[test]
    fn f2i_saturates_out_of_range() {
        let max = i32::MAX as u32;
        let min = i32::MIN as u32;
        assert_eq!(eval_alu(AluOp::F2I, f32::INFINITY.to_bits(), 0, 0), max);
        assert_eq!(eval_alu(AluOp::F2I, f32::NEG_INFINITY.to_bits(), 0, 0), min);
        assert_eq!(eval_alu(AluOp::F2I, 3.0e9f32.to_bits(), 0, 0), max);
        assert_eq!(eval_alu(AluOp::F2I, (-3.0e9f32).to_bits(), 0, 0), min);
        assert_eq!(eval_alu(AluOp::F2I, f32::MAX.to_bits(), 0, 0), max);
    }

    #[test]
    fn f2u_saturates_and_zeroes_negatives() {
        assert_eq!(eval_alu(AluOp::F2U, f32::NAN.to_bits(), 0, 0), 0);
        assert_eq!(eval_alu(AluOp::F2U, f32::NEG_INFINITY.to_bits(), 0, 0), 0);
        assert_eq!(eval_alu(AluOp::F2U, (-0.5f32).to_bits(), 0, 0), 0);
        assert_eq!(eval_alu(AluOp::F2U, (-0.0f32).to_bits(), 0, 0), 0);
        assert_eq!(
            eval_alu(AluOp::F2U, f32::INFINITY.to_bits(), 0, 0),
            u32::MAX
        );
        assert_eq!(eval_alu(AluOp::F2U, 1.0e12f32.to_bits(), 0, 0), u32::MAX);
    }

    #[test]
    fn rcp_and_div_at_signed_zero() {
        let pz = 0.0f32.to_bits();
        let nz = (-0.0f32).to_bits();
        assert_eq!(eval_alu(AluOp::FRcp, pz, 0, 0), f32::INFINITY.to_bits());
        assert_eq!(eval_alu(AluOp::FRcp, nz, 0, 0), f32::NEG_INFINITY.to_bits());
        assert_eq!(
            eval_alu(AluOp::FDiv, 1.0f32.to_bits(), nz, 0),
            f32::NEG_INFINITY.to_bits()
        );
        // 0/0 is a NaN (any NaN payload compares unequal to itself).
        let q = f32::from_bits(eval_alu(AluOp::FDiv, pz, pz, 0));
        assert!(q.is_nan());
    }

    #[test]
    fn comparisons() {
        assert!(eval_cmp(CmpOp::LtS, (-1i32) as u32, 0));
        assert!(
            !eval_cmp(CmpOp::LtU, (-1i32) as u32, 0),
            "unsigned -1 is large"
        );
        assert!(eval_cmp(CmpOp::GeU, (-1i32) as u32, 0));
        assert!(eval_cmp(CmpOp::LtF, 1.0f32.to_bits(), 2.0f32.to_bits()));
        let nan = f32::NAN.to_bits();
        assert!(!eval_cmp(CmpOp::LtF, nan, nan));
        assert!(!eval_cmp(CmpOp::EqF, nan, nan));
        assert!(eval_cmp(CmpOp::NeF, nan, nan));
    }

    proptest! {
        #[test]
        fn add_sub_inverse(a: u32, b: u32) {
            let s = eval_alu(AluOp::IAdd, a, b, 0);
            prop_assert_eq!(eval_alu(AluOp::ISub, s, b, 0), a);
        }

        #[test]
        fn min_max_partition(a: i32, b: i32) {
            let mn = eval_alu(AluOp::IMin, a as u32, b as u32, 0) as i32;
            let mx = eval_alu(AluOp::IMax, a as u32, b as u32, 0) as i32;
            prop_assert!(mn <= mx);
            prop_assert!((mn == a && mx == b) || (mn == b && mx == a));
        }

        #[test]
        fn not_is_involution(a: u32) {
            prop_assert_eq!(eval_alu(AluOp::Not, eval_alu(AluOp::Not, a, 0, 0), 0, 0), a);
        }

        #[test]
        fn float_neg_involution(a in proptest::num::f32::NORMAL) {
            let once = eval_alu(AluOp::FNeg, a.to_bits(), 0, 0);
            let twice = eval_alu(AluOp::FNeg, once, 0, 0);
            prop_assert_eq!(twice, a.to_bits());
        }

        #[test]
        fn cmp_lt_ge_complement_signed(a: i32, b: i32) {
            prop_assert_ne!(
                eval_cmp(CmpOp::LtS, a as u32, b as u32),
                eval_cmp(CmpOp::GeS, a as u32, b as u32)
            );
        }

        #[test]
        fn mad_matches_mul_add(a: u32, b: u32, c: u32) {
            let mad = eval_alu(AluOp::IMad, a, b, c);
            let mul = eval_alu(AluOp::IMul, a, b, 0);
            prop_assert_eq!(mad, eval_alu(AluOp::IAdd, mul, c, 0));
        }
    }
}
