//! Assembled program representation and static resource accounting.

use crate::instr::{Instr, Instruction};
use crate::reg::{Reg, MAX_REGS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A named entry point: either the launch kernel or a μ-kernel that
/// [`Instr::Spawn`] may target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryPoint {
    /// The `.kernel` name.
    pub name: String,
    /// Instruction index of the first instruction.
    pub pc: usize,
}

/// Static per-thread resource requirements of a program (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// General-purpose registers required per thread.
    pub registers: u32,
    /// Shared-memory bytes per thread.
    pub shared_bytes: u32,
    /// Global-memory bytes per thread (e.g. traversal stacks).
    pub global_bytes: u32,
    /// Constant-memory bytes (per launch, reported per thread as the paper does).
    pub const_bytes: u32,
    /// Local-memory bytes per thread.
    pub local_bytes: u32,
    /// Spawn-memory state-record bytes per thread (0 for traditional kernels).
    pub spawn_state_bytes: u32,
}

/// An assembled program: instructions plus metadata.
///
/// Programs are immutable after assembly; the simulator indexes
/// instructions by PC (instruction index, not byte address).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    instrs: Vec<Instruction>,
    labels: BTreeMap<String, usize>,
    entry_points: Vec<EntryPoint>,
    resources: ResourceUsage,
}

/// Errors produced by program validation (run by [`Program::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch or spawn targets a PC beyond the program.
    TargetOutOfRange {
        /// PC of the offending instruction.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A spawn targets a PC that is not a declared entry point.
    SpawnTargetNotEntry {
        /// PC of the spawn instruction.
        pc: usize,
        /// The target that is not an entry point.
        target: usize,
    },
    /// An instruction references a register above the architectural limit.
    RegisterOutOfRange {
        /// PC of the offending instruction.
        pc: usize,
        /// The offending register.
        reg: Reg,
    },
    /// The program has no instructions.
    Empty,
    /// Control can fall off the end of the program (last instruction is not
    /// an unconditional `bra`/`exit`).
    FallsOffEnd,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::TargetOutOfRange { pc, target } => {
                write!(f, "instruction {pc}: branch target {target} out of range")
            }
            ValidateError::SpawnTargetNotEntry { pc, target } => {
                write!(
                    f,
                    "instruction {pc}: spawn target {target} is not a .kernel entry point"
                )
            }
            ValidateError::RegisterOutOfRange { pc, reg } => {
                write!(
                    f,
                    "instruction {pc}: register {reg} exceeds the architectural limit"
                )
            }
            ValidateError::Empty => write!(f, "program contains no instructions"),
            ValidateError::FallsOffEnd => {
                write!(f, "control flow can fall off the end of the program")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Builds a program from parts, validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] when branch/spawn targets are out of
    /// range, a spawn targets a non-entry PC, a register exceeds the
    /// architectural file size, the program is empty, or control can fall
    /// off the end.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instruction>,
        labels: BTreeMap<String, usize>,
        entry_points: Vec<EntryPoint>,
        mut resources: ResourceUsage,
    ) -> Result<Self, ValidateError> {
        resources.registers = Self::count_registers(&instrs);
        let p = Program {
            name: name.into(),
            instrs,
            labels,
            entry_points,
            resources,
        };
        p.validate()?;
        Ok(p)
    }

    fn count_registers(instrs: &[Instruction]) -> u32 {
        let mut max = 0u32;
        for i in instrs {
            for r in i.reads().into_iter().chain(i.writes()) {
                max = max.max(r.0 as u32 + 1);
            }
        }
        max
    }

    fn validate(&self) -> Result<(), ValidateError> {
        if self.instrs.is_empty() {
            return Err(ValidateError::Empty);
        }
        let entry_pcs: Vec<usize> = self.entry_points.iter().map(|e| e.pc).collect();
        for (pc, i) in self.instrs.iter().enumerate() {
            match i.op {
                Instr::Bra { target } if target >= self.instrs.len() => {
                    return Err(ValidateError::TargetOutOfRange { pc, target });
                }
                Instr::Spawn { target, .. } => {
                    if target >= self.instrs.len() {
                        return Err(ValidateError::TargetOutOfRange { pc, target });
                    }
                    if !entry_pcs.contains(&target) {
                        return Err(ValidateError::SpawnTargetNotEntry { pc, target });
                    }
                }
                _ => {}
            }
            for r in i.reads().into_iter().chain(i.writes()) {
                if (r.0 as usize) >= MAX_REGS {
                    return Err(ValidateError::RegisterOutOfRange { pc, reg: r });
                }
            }
        }
        let last = self.instrs.last().expect("non-empty");
        let terminal = match last.op {
            Instr::Exit => last.guard.is_none(),
            Instr::Bra { .. } => last.guard.is_none(),
            _ => false,
        };
        if !terminal {
            return Err(ValidateError::FallsOffEnd);
        }
        Ok(())
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true post-validation).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range; the simulator treats this as a
    /// machine check.
    pub fn fetch(&self, pc: usize) -> &Instruction {
        &self.instrs[pc]
    }

    /// Fetches the instruction at `pc`, or `None` when `pc` is outside the
    /// program. The simulator uses this on its issue path so a wild PC
    /// becomes a typed fault instead of a process abort.
    pub fn get(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// Label table (name → pc).
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// Resolves a label to its PC.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Declared entry points (`.kernel` directives), in source order. The
    /// first one is the launch kernel.
    pub fn entry_points(&self) -> &[EntryPoint] {
        &self.entry_points
    }

    /// Looks up an entry point by name.
    pub fn entry(&self, name: &str) -> Option<&EntryPoint> {
        self.entry_points.iter().find(|e| e.name == name)
    }

    /// Static per-thread resource requirements (regenerates paper Table II
    /// rows when applied to the benchmark kernels).
    pub fn resource_usage(&self) -> ResourceUsage {
        self.resources
    }

    /// PCs of all `spawn` instructions, i.e. the *spawn locations* that size
    /// the warp-formation area of spawn memory (paper §IV-A2).
    pub fn spawn_sites(&self) -> Vec<usize> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_spawn())
            .map(|(pc, _)| pc)
            .collect()
    }

    /// Distinct μ-kernel targets reachable via `spawn`.
    pub fn spawn_targets(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self
            .instrs
            .iter()
            .filter_map(|i| match i.op {
                Instr::Spawn { target, .. } => Some(target),
                _ => None,
            })
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Instr};
    use crate::reg::Operand;

    fn exit() -> Instruction {
        Instruction::new(Instr::Exit)
    }

    #[test]
    fn register_counting() {
        let instrs = vec![
            Instruction::new(Instr::Alu {
                op: AluOp::IAdd,
                d: Reg(7),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(2),
                c: Operand::Imm(0),
            }),
            exit(),
        ];
        let p = Program::new(
            "t",
            instrs,
            BTreeMap::new(),
            vec![],
            ResourceUsage::default(),
        )
        .unwrap();
        assert_eq!(p.resource_usage().registers, 8);
    }

    #[test]
    fn rejects_empty() {
        let err = Program::new(
            "t",
            vec![],
            BTreeMap::new(),
            vec![],
            ResourceUsage::default(),
        )
        .unwrap_err();
        assert_eq!(err, ValidateError::Empty);
    }

    #[test]
    fn rejects_fall_off_end() {
        let instrs = vec![Instruction::new(Instr::Nop)];
        let err = Program::new(
            "t",
            instrs,
            BTreeMap::new(),
            vec![],
            ResourceUsage::default(),
        )
        .unwrap_err();
        assert_eq!(err, ValidateError::FallsOffEnd);
    }

    #[test]
    fn guarded_exit_is_not_terminal() {
        let instrs = vec![Instruction::guarded(
            crate::reg::Pred(0),
            false,
            Instr::Exit,
        )];
        let err = Program::new(
            "t",
            instrs,
            BTreeMap::new(),
            vec![],
            ResourceUsage::default(),
        )
        .unwrap_err();
        assert_eq!(err, ValidateError::FallsOffEnd);
    }

    #[test]
    fn rejects_out_of_range_branch() {
        let instrs = vec![Instruction::new(Instr::Bra { target: 9 }), exit()];
        let err = Program::new(
            "t",
            instrs,
            BTreeMap::new(),
            vec![],
            ResourceUsage::default(),
        )
        .unwrap_err();
        assert_eq!(err, ValidateError::TargetOutOfRange { pc: 0, target: 9 });
    }

    #[test]
    fn rejects_spawn_to_non_entry() {
        let instrs = vec![
            Instruction::new(Instr::Spawn {
                target: 1,
                ptr: Reg(0),
            }),
            exit(),
        ];
        let err = Program::new(
            "t",
            instrs,
            BTreeMap::new(),
            vec![],
            ResourceUsage::default(),
        )
        .unwrap_err();
        assert_eq!(err, ValidateError::SpawnTargetNotEntry { pc: 0, target: 1 });
    }

    #[test]
    fn accepts_spawn_to_entry() {
        let instrs = vec![
            Instruction::new(Instr::Spawn {
                target: 1,
                ptr: Reg(0),
            }),
            exit(),
        ];
        let entries = vec![
            EntryPoint {
                name: "main".into(),
                pc: 0,
            },
            EntryPoint {
                name: "uk".into(),
                pc: 1,
            },
        ];
        let p = Program::new(
            "t",
            instrs,
            BTreeMap::new(),
            entries,
            ResourceUsage::default(),
        )
        .unwrap();
        assert_eq!(p.spawn_sites(), vec![0]);
        assert_eq!(p.spawn_targets(), vec![1]);
        assert_eq!(p.entry("uk").unwrap().pc, 1);
    }
}
