//! Binary instruction encoding.
//!
//! Every instruction encodes to exactly **three 32-bit words** (a
//! fixed-width 96-bit format; real GPU ISAs of the FX5800 era used 64/96
//! bit forms). The encoding is lossless — [`decode`] ∘ [`encode`] is the
//! identity — which the property tests verify over arbitrary
//! instructions. Useful for measuring static code size
//! ([`encoded_bytes`]) and for storing programs in device memory images.
//!
//! ## Format
//!
//! ```text
//! word 0: opcode[7:0] | dst[15:8] | aux[23:16] | guard[31:24]
//! word 1: op_a[7:0] | op_b[15:8] | op_c[23:16] | addr_reg[31:24]
//! word 2: immediate / branch target / byte offset
//! ```
//!
//! * `dst` is the destination register, predicate, or spawn pointer reg.
//! * `aux` holds the `selp` predicate, the special-register index, or the
//!   `space | width<<3` bits of memory instructions.
//! * `guard`: `0` = none, `0x80 | p` = `@p`, `0xC0 | p` = `@!p`.
//! * operand bytes: bit 7 set marks "the immediate in word 2"; otherwise
//!   the low 7 bits are a register index. At most one operand may be an
//!   immediate ([`EncodeError::TooManyImmediates`] otherwise — the
//!   assembler never produces such instructions).

use crate::instr::{AluOp, CmpOp, Guard, Instr, Instruction, Space, Width};
use crate::reg::{Operand, Pred, Reg, Special};
use std::fmt;

/// Encoded instruction: three words.
pub type EncodedInstr = [u32; 3];

/// Bytes per encoded instruction.
pub const ENCODED_INSTR_BYTES: u32 = 12;

/// Errors from [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The instruction carries more than one immediate operand (word 2 can
    /// hold only one).
    TooManyImmediates,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooManyImmediates => {
                write!(f, "at most one immediate operand is encodable")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Malformed field combination.
    BadFields,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadFields => write!(f, "malformed instruction fields"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_ALU_BASE: u8 = 0x00; // + AluOp index
const OP_SETP_BASE: u8 = 0x40; // + CmpOp index
const OP_SELP: u8 = 0x60;
const OP_MOV: u8 = 0x61;
const OP_SPECIAL: u8 = 0x62;
const OP_LD: u8 = 0x63;
const OP_ST: u8 = 0x64;
const OP_BRA: u8 = 0x65;
const OP_EXIT: u8 = 0x66;
const OP_SPAWN: u8 = 0x67;
const OP_NOP: u8 = 0x68;

const ALU_OPS: [AluOp; 31] = [
    AluOp::IAdd,
    AluOp::ISub,
    AluOp::IMul,
    AluOp::IMad,
    AluOp::IMin,
    AluOp::IMax,
    AluOp::IDiv,
    AluOp::IRem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Not,
    AluOp::Shl,
    AluOp::ShrU,
    AluOp::ShrS,
    AluOp::FAdd,
    AluOp::FSub,
    AluOp::FMul,
    AluOp::FDiv,
    AluOp::FMin,
    AluOp::FMax,
    AluOp::FFma,
    AluOp::FSqrt,
    AluOp::FRcp,
    AluOp::FAbs,
    AluOp::FNeg,
    AluOp::FFloor,
    AluOp::I2F,
    AluOp::F2I,
    AluOp::U2F,
    AluOp::F2U,
];

const CMP_OPS: [CmpOp; 16] = [
    CmpOp::EqS,
    CmpOp::NeS,
    CmpOp::LtS,
    CmpOp::LeS,
    CmpOp::GtS,
    CmpOp::GeS,
    CmpOp::LtU,
    CmpOp::LeU,
    CmpOp::GtU,
    CmpOp::GeU,
    CmpOp::EqF,
    CmpOp::NeF,
    CmpOp::LtF,
    CmpOp::LeF,
    CmpOp::GtF,
    CmpOp::GeF,
];

const SPECIALS: [Special; 6] = [
    Special::Tid,
    Special::LaneId,
    Special::WarpId,
    Special::SmId,
    Special::NTid,
    Special::SpawnMem,
];

const SPACES: [Space; 5] = [
    Space::Global,
    Space::Shared,
    Space::Local,
    Space::Const,
    Space::Spawn,
];

const IMM_MARK: u8 = 0x80;
/// Marker for a literal zero immediate (does not consume the imm word, so
/// the assembler's `Imm(0)` operand padding encodes freely).
const IMM_ZERO: u8 = 0x81;

fn guard_byte(g: Option<Guard>) -> u8 {
    match g {
        None => 0,
        Some(Guard {
            pred,
            negate: false,
        }) => 0x80 | pred.0,
        Some(Guard { pred, negate: true }) => 0xC0 | pred.0,
    }
}

fn guard_from(b: u8) -> Result<Option<Guard>, DecodeError> {
    match b & 0xC0 {
        0x00 if b == 0 => Ok(None),
        0x80 => Ok(Some(Guard {
            pred: Pred(b & 0x3F),
            negate: false,
        })),
        0xC0 => Ok(Some(Guard {
            pred: Pred(b & 0x3F),
            negate: true,
        })),
        _ => Err(DecodeError::BadFields),
    }
}

struct Packer {
    imm: Option<u32>,
}

impl Packer {
    fn new() -> Self {
        Packer { imm: None }
    }

    fn pack(&mut self, o: Operand) -> Result<u8, EncodeError> {
        match o {
            Operand::Reg(r) => Ok(r.0 & 0x7F),
            Operand::Imm(0) => Ok(IMM_ZERO),
            Operand::Imm(v) => {
                if self.imm.replace(v).is_some() {
                    return Err(EncodeError::TooManyImmediates);
                }
                Ok(IMM_MARK)
            }
        }
    }
}

fn unpack(b: u8, imm: u32) -> Operand {
    if b == IMM_ZERO {
        Operand::Imm(0)
    } else if b & IMM_MARK != 0 {
        Operand::Imm(imm)
    } else {
        Operand::Reg(Reg(b))
    }
}

fn words(opcode: u8, dst: u8, aux: u8, guard: u8, w1: u32, w2: u32) -> EncodedInstr {
    [
        u32::from(opcode) | u32::from(dst) << 8 | u32::from(aux) << 16 | u32::from(guard) << 24,
        w1,
        w2,
    ]
}

/// Encodes one instruction.
///
/// # Errors
///
/// Returns [`EncodeError::TooManyImmediates`] when more than one operand
/// is an immediate.
pub fn encode(i: &Instruction) -> Result<EncodedInstr, EncodeError> {
    let g = guard_byte(i.guard);
    Ok(match i.op {
        Instr::Alu { op, d, a, b, c } => {
            let idx = ALU_OPS.iter().position(|&x| x == op).expect("listed") as u8;
            let mut p = Packer::new();
            let (pa, pb, pc) = (p.pack(a)?, p.pack(b)?, p.pack(c)?);
            words(
                OP_ALU_BASE + idx,
                d.0,
                0,
                g,
                u32::from(pa) | u32::from(pb) << 8 | u32::from(pc) << 16,
                p.imm.unwrap_or(0),
            )
        }
        Instr::Setp { cmp, p, a, b } => {
            let idx = CMP_OPS.iter().position(|&x| x == cmp).expect("listed") as u8;
            let mut pk = Packer::new();
            let (pa, pb) = (pk.pack(a)?, pk.pack(b)?);
            words(
                OP_SETP_BASE + idx,
                p.0,
                0,
                g,
                u32::from(pa) | u32::from(pb) << 8,
                pk.imm.unwrap_or(0),
            )
        }
        Instr::Selp { d, a, b, p } => {
            let mut pk = Packer::new();
            let (pa, pb) = (pk.pack(a)?, pk.pack(b)?);
            words(
                OP_SELP,
                d.0,
                p.0,
                g,
                u32::from(pa) | u32::from(pb) << 8,
                pk.imm.unwrap_or(0),
            )
        }
        Instr::Mov { d, a } => {
            let mut pk = Packer::new();
            let pa = pk.pack(a)?;
            words(OP_MOV, d.0, 0, g, u32::from(pa), pk.imm.unwrap_or(0))
        }
        Instr::ReadSpecial { d, s } => {
            let idx = SPECIALS.iter().position(|&x| x == s).expect("listed") as u8;
            words(OP_SPECIAL, d.0, idx, g, 0, 0)
        }
        Instr::Ld {
            space,
            d,
            addr,
            offset,
            width,
        } => {
            let sp = SPACES.iter().position(|&x| x == space).expect("listed") as u8;
            let wv = match width {
                Width::W1 => 0u8,
                Width::V4 => 1,
            };
            words(
                OP_LD,
                d.0,
                sp | wv << 3,
                g,
                u32::from(addr.0) << 24,
                offset as u32,
            )
        }
        Instr::St {
            space,
            a,
            addr,
            offset,
            width,
        } => {
            let sp = SPACES.iter().position(|&x| x == space).expect("listed") as u8;
            let wv = match width {
                Width::W1 => 0u8,
                Width::V4 => 1,
            };
            words(
                OP_ST,
                a.0,
                sp | wv << 3,
                g,
                u32::from(addr.0) << 24,
                offset as u32,
            )
        }
        Instr::Bra { target } => words(OP_BRA, 0, 0, g, 0, target as u32),
        Instr::Exit => words(OP_EXIT, 0, 0, g, 0, 0),
        Instr::Spawn { target, ptr } => words(OP_SPAWN, ptr.0, 0, g, 0, target as u32),
        Instr::Nop => words(OP_NOP, 0, 0, g, 0, 0),
    })
}

/// Decodes three words back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcodes or malformed fields.
pub fn decode(w: EncodedInstr) -> Result<Instruction, DecodeError> {
    let opc = (w[0] & 0xFF) as u8;
    let dst = ((w[0] >> 8) & 0xFF) as u8;
    let aux = ((w[0] >> 16) & 0xFF) as u8;
    let guard = guard_from(((w[0] >> 24) & 0xFF) as u8)?;
    let (pa, pb, pc) = (
        (w[1] & 0xFF) as u8,
        ((w[1] >> 8) & 0xFF) as u8,
        ((w[1] >> 16) & 0xFF) as u8,
    );
    let addr_reg = Reg(((w[1] >> 24) & 0xFF) as u8);
    let imm = w[2];
    let make = |op: Instr| Instruction { guard, op };

    if (opc as usize) < ALU_OPS.len() {
        return Ok(make(Instr::Alu {
            op: ALU_OPS[opc as usize],
            d: Reg(dst),
            a: unpack(pa, imm),
            b: unpack(pb, imm),
            c: unpack(pc, imm),
        }));
    }
    if (OP_SETP_BASE..OP_SETP_BASE + CMP_OPS.len() as u8).contains(&opc) {
        return Ok(make(Instr::Setp {
            cmp: CMP_OPS[(opc - OP_SETP_BASE) as usize],
            p: Pred(dst),
            a: unpack(pa, imm),
            b: unpack(pb, imm),
        }));
    }
    match opc {
        OP_SELP => Ok(make(Instr::Selp {
            d: Reg(dst),
            a: unpack(pa, imm),
            b: unpack(pb, imm),
            p: Pred(aux),
        })),
        OP_MOV => Ok(make(Instr::Mov {
            d: Reg(dst),
            a: unpack(pa, imm),
        })),
        OP_SPECIAL => Ok(make(Instr::ReadSpecial {
            d: Reg(dst),
            s: *SPECIALS.get(aux as usize).ok_or(DecodeError::BadFields)?,
        })),
        OP_LD | OP_ST => {
            let space = *SPACES
                .get((aux & 0x7) as usize)
                .ok_or(DecodeError::BadFields)?;
            let width = if aux & 0x8 != 0 { Width::V4 } else { Width::W1 };
            let op = if opc == OP_LD {
                Instr::Ld {
                    space,
                    d: Reg(dst),
                    addr: addr_reg,
                    offset: imm as i32,
                    width,
                }
            } else {
                Instr::St {
                    space,
                    a: Reg(dst),
                    addr: addr_reg,
                    offset: imm as i32,
                    width,
                }
            };
            Ok(make(op))
        }
        OP_BRA => Ok(make(Instr::Bra {
            target: imm as usize,
        })),
        OP_EXIT => Ok(make(Instr::Exit)),
        OP_SPAWN => Ok(make(Instr::Spawn {
            target: imm as usize,
            ptr: Reg(dst),
        })),
        OP_NOP => Ok(make(Instr::Nop)),
        _ => Err(DecodeError::BadOpcode(opc)),
    }
}

/// Encodes a whole program; returns the flat word image.
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_program(p: &crate::program::Program) -> Result<Vec<u32>, EncodeError> {
    let mut out = Vec::with_capacity(p.len() * 3);
    for i in p.instrs() {
        out.extend_from_slice(&encode(i)?);
    }
    Ok(out)
}

/// Static code size of a program in its binary encoding.
pub fn encoded_bytes(p: &crate::program::Program) -> u32 {
    p.len() as u32 * ENCODED_INSTR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(i: &Instruction) {
        let enc = encode(i).expect("encodable");
        let dec = decode(enc).expect("decodable");
        assert_eq!(*i, dec, "encoded as {enc:?}");
    }

    #[test]
    fn representative_instructions_roundtrip() {
        use crate::asm::assemble;
        let p = assemble(
            r#"
            .kernel main
            .kernel child
            main:
                mov.u32 r1, %tid
                mov.f32 r2, 1.5
            @p0 add.s32 r3, r1, 7
            @!p1 bra done
                setp.lt.f32 p0, r2, 3.25
                selp.b32 r4, r1, r3, p0
                fma.f32 r5, r2, r2, r2
                ld.global.v4 r8, [r4+16]
                st.spawn.u32 [r4-4], r1
                spawn $child, r4
            done:
                exit
            child:
                nop
                exit
            "#,
        )
        .unwrap();
        for i in p.instrs() {
            roundtrip(i);
        }
        assert_eq!(encoded_bytes(&p), p.len() as u32 * 12);
        assert_eq!(encode_program(&p).unwrap().len(), p.len() * 3);
    }

    #[test]
    fn two_immediates_are_rejected() {
        let i = Instruction::new(Instr::Alu {
            op: AluOp::FFma,
            d: Reg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
            c: Operand::Reg(Reg(1)),
        });
        assert_eq!(encode(&i), Err(EncodeError::TooManyImmediates));
    }

    #[test]
    fn bad_opcode_is_rejected() {
        assert_eq!(decode([0xFF, 0, 0]), Err(DecodeError::BadOpcode(0xFF)));
    }

    #[test]
    fn bad_special_index_is_rejected() {
        // OP_SPECIAL with aux out of range.
        let w0 = u32::from(OP_SPECIAL) | 99u32 << 16;
        assert_eq!(decode([w0, 0, 0]), Err(DecodeError::BadFields));
    }

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            (0u8..64).prop_map(|r| Operand::Reg(Reg(r))),
            any::<u32>().prop_map(Operand::Imm),
        ]
    }

    fn arb_guard() -> impl Strategy<Value = Option<Guard>> {
        prop_oneof![
            Just(None),
            ((0u8..8), any::<bool>()).prop_map(|(p, n)| Some(Guard {
                pred: Pred(p),
                negate: n
            })),
        ]
    }

    fn arb_space() -> impl Strategy<Value = Space> {
        prop_oneof![
            Just(Space::Global),
            Just(Space::Shared),
            Just(Space::Local),
            Just(Space::Const),
            Just(Space::Spawn),
        ]
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            (
                0usize..ALU_OPS.len(),
                0u8..64,
                arb_operand(),
                arb_operand(),
                arb_operand()
            )
                .prop_map(|(op, d, a, b, c)| Instr::Alu {
                    op: ALU_OPS[op],
                    d: Reg(d),
                    a,
                    b,
                    c
                }),
            (0usize..CMP_OPS.len(), 0u8..8, arb_operand(), arb_operand()).prop_map(
                |(c, p, a, b)| Instr::Setp {
                    cmp: CMP_OPS[c],
                    p: Pred(p),
                    a,
                    b
                }
            ),
            (0u8..64, arb_operand(), arb_operand(), 0u8..8).prop_map(|(d, a, b, p)| {
                Instr::Selp {
                    d: Reg(d),
                    a,
                    b,
                    p: Pred(p),
                }
            }),
            (0u8..64, arb_operand()).prop_map(|(d, a)| Instr::Mov { d: Reg(d), a }),
            (0u8..64, 0usize..SPECIALS.len()).prop_map(|(d, s)| Instr::ReadSpecial {
                d: Reg(d),
                s: SPECIALS[s]
            }),
            (arb_space(), 0u8..64, 0u8..64, any::<i32>(), any::<bool>()).prop_map(
                |(space, d, addr, offset, v4)| Instr::Ld {
                    space,
                    d: Reg(d),
                    addr: Reg(addr),
                    offset,
                    width: if v4 { Width::V4 } else { Width::W1 }
                }
            ),
            (arb_space(), 0u8..64, 0u8..64, any::<i32>(), any::<bool>()).prop_map(
                |(space, a, addr, offset, v4)| Instr::St {
                    space,
                    a: Reg(a),
                    addr: Reg(addr),
                    offset,
                    width: if v4 { Width::V4 } else { Width::W1 }
                }
            ),
            (0usize..10_000).prop_map(|t| Instr::Bra { target: t }),
            Just(Instr::Exit),
            (0usize..10_000, 0u8..64).prop_map(|(t, p)| Instr::Spawn {
                target: t,
                ptr: Reg(p)
            }),
            Just(Instr::Nop),
        ]
    }

    proptest! {
        /// decode(encode(i)) == i for every encodable instruction.
        #[test]
        fn encode_decode_roundtrip(op in arb_instr(), guard in arb_guard()) {
            let i = Instruction { guard, op };
            match encode(&i) {
                Ok(enc) => {
                    let dec = decode(enc).expect("decodable");
                    prop_assert_eq!(i, dec);
                }
                Err(EncodeError::TooManyImmediates) => {
                    // Only possible with >= 2 *non-zero* immediates
                    // (zeros encode via the dedicated marker).
                    let nonzero = match i.op {
                        Instr::Alu { a, b, c, .. } => [a, b, c]
                            .iter()
                            .filter(|o| matches!(o, Operand::Imm(v) if *v != 0))
                            .count(),
                        Instr::Setp { a, b, .. } | Instr::Selp { a, b, .. } => [a, b]
                            .iter()
                            .filter(|o| matches!(o, Operand::Imm(v) if *v != 0))
                            .count(),
                        _ => 0,
                    };
                    prop_assert!(nonzero >= 2, "spurious rejection of {i:?}");
                }
            }
        }

        /// Decoding random words either fails cleanly or yields an
        /// instruction that re-encodes (no panics, no junk states).
        #[test]
        fn decode_never_panics(w0: u32, w1: u32, w2: u32) {
            if let Ok(i) = decode([w0, w1, w2]) {
                // Re-encoding may normalize, but must not error for
                // instructions that came out of the decoder.
                let _ = encode(&i);
            }
        }
    }
}
