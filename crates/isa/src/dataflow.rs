//! Backward register/predicate liveness analysis.
//!
//! Computes, for every instruction, the set of general-purpose registers
//! and predicate registers that are *live-in* (may be read before being
//! overwritten on some path from that point). Used by the μ-kernel
//! extraction pass in `dmk-core` to decide which registers a spawned
//! continuation must carry through spawn memory — the paper's §IX
//! "compiler to ease implementation" direction.
//!
//! The analysis is a classic backward may-dataflow over the CFG:
//!
//! ```text
//! live_out(i) = ∪ live_in(s)  for each successor s of i
//! live_in(i)  = reads(i) ∪ (live_out(i) \ writes(i))
//! ```
//!
//! Guarded instructions may not commit, so their writes do **not** kill
//! (the old value may survive); their reads and guard predicates are
//! always live. `spawn` is not a successor edge (the child starts a fresh
//! register file), but its pointer register is read.

use crate::instr::Instr;
use crate::program::Program;

/// Liveness sets for one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveSet {
    /// Bitmask of live general-purpose registers (bit `i` = `r<i>`).
    pub regs: u64,
    /// Bitmask of live predicate registers (bit `i` = `p<i>`).
    pub preds: u8,
}

impl LiveSet {
    /// Number of live registers.
    pub fn reg_count(&self) -> u32 {
        self.regs.count_ones()
    }

    /// Registers in this set, ascending.
    pub fn reg_list(&self) -> Vec<u8> {
        (0..64).filter(|r| self.regs & (1 << r) != 0).collect()
    }

    /// Whether register `r` is live.
    pub fn has_reg(&self, r: u8) -> bool {
        self.regs & (1 << r) != 0
    }
}

/// Per-instruction live-in sets for a whole program.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<LiveSet>,
}

impl Liveness {
    /// Runs the analysis.
    pub fn compute(program: &Program) -> Self {
        let n = program.len();
        let mut live_in = vec![LiveSet::default(); n];
        // Successor lists per instruction.
        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (pc, i) in program.instrs().iter().enumerate() {
            let mut s = Vec::new();
            match i.op {
                Instr::Bra { target } => {
                    s.push(target);
                    if i.guard.is_some() && pc + 1 < n {
                        s.push(pc + 1);
                    }
                }
                Instr::Exit => {
                    if i.guard.is_some() && pc + 1 < n {
                        s.push(pc + 1);
                    }
                }
                _ => {
                    if pc + 1 < n {
                        s.push(pc + 1);
                    }
                }
            }
            succs.push(s);
        }
        // Iterate to a fixed point (backward).
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                let i = program.fetch(pc);
                let mut out = LiveSet::default();
                for &s in &succs[pc] {
                    out.regs |= live_in[s].regs;
                    out.preds |= live_in[s].preds;
                }
                let mut inn = out;
                // Writes kill only when unguarded (a guarded write may not
                // commit, leaving the old value observable).
                if i.guard.is_none() {
                    for w in i.writes() {
                        inn.regs &= !(1 << w.0);
                    }
                    if let Instr::Setp { p, .. } = i.op {
                        inn.preds &= !(1 << p.0);
                    }
                }
                // Reads gen.
                for r in i.reads() {
                    inn.regs |= 1 << r.0;
                }
                if let Some(g) = i.guard {
                    inn.preds |= 1 << g.pred.0;
                }
                match i.op {
                    Instr::Selp { p, .. } => inn.preds |= 1 << p.0,
                    Instr::Setp { .. } => {}
                    _ => {}
                }
                if inn != live_in[pc] {
                    live_in[pc] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in }
    }

    /// Live-in set at instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn live_in(&self, pc: usize) -> LiveSet {
        self.live_in[pc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn straight_line_liveness() {
        let p = assemble(
            r#"
            mov.u32 r1, 5
            add.s32 r2, r1, 1
            mul.lo.s32 r3, r2, r2
            st.global.u32 [r3+0], r2
            exit
            "#,
        )
        .unwrap();
        let l = Liveness::compute(&p);
        // Before the store, r2 and r3 are live.
        assert!(l.live_in(3).has_reg(2));
        assert!(l.live_in(3).has_reg(3));
        // Before the add, r1 is live but r2 is not yet.
        assert!(l.live_in(1).has_reg(1));
        assert!(!l.live_in(1).has_reg(2));
        // Nothing is live at entry (r1 is defined first).
        assert_eq!(l.live_in(0).regs, 0);
    }

    #[test]
    fn loop_carried_values_stay_live() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            mov.u32 r2, 0
            loop:
            add.s32 r2, r2, r1       ; r1 and r2 both loop-carried
            sub.s32 r1, r1, 1
            setp.gt.s32 p0, r1, 0
            @p0 bra loop
            st.global.u32 [r2+0], r2
            exit
            "#,
        )
        .unwrap();
        let l = Liveness::compute(&p);
        let header = p.label("loop").unwrap();
        assert!(l.live_in(header).has_reg(1), "loop counter live at header");
        assert!(l.live_in(header).has_reg(2), "accumulator live at header");
        assert_eq!(l.live_in(header).reg_list(), vec![1, 2]);
    }

    #[test]
    fn guarded_writes_do_not_kill() {
        let p = assemble(
            r#"
            setp.eq.s32 p0, r1, 0
            @p0 mov.u32 r2, 7        ; may not commit: old r2 can survive
            st.global.u32 [r3+0], r2
            exit
            "#,
        )
        .unwrap();
        let l = Liveness::compute(&p);
        assert!(
            l.live_in(1).has_reg(2),
            "r2 must stay live across a guarded redefinition"
        );
    }

    #[test]
    fn predicate_liveness_tracked() {
        let p = assemble(
            r#"
            setp.eq.s32 p1, r1, 0
            nop
            @p1 bra skip
            nop
            skip:
            exit
            "#,
        )
        .unwrap();
        let l = Liveness::compute(&p);
        assert_eq!(l.live_in(1).preds & 0b10, 0b10, "p1 live before its use");
        assert_eq!(l.live_in(0).preds & 0b10, 0, "p1 dead before its def");
    }

    #[test]
    fn branch_joins_merge_liveness() {
        let p = assemble(
            r#"
            @p0 bra other
            mov.u32 r5, 1
            bra join
            other:
            mov.u32 r6, 2
            join:
            add.s32 r7, r5, r6
            st.global.u32 [r7+0], r7
            exit
            "#,
        )
        .unwrap();
        let l = Liveness::compute(&p);
        // At the diverging branch both r5 and r6 are live (each side
        // defines only one of them).
        assert!(l.live_in(0).has_reg(5));
        assert!(l.live_in(0).has_reg(6));
    }

    #[test]
    fn spawn_pointer_is_read_but_child_regs_are_not() {
        let p = assemble(
            r#"
            .kernel main
            .kernel child
            main:
                spawn $child, r3
                exit
            child:
                add.s32 r9, r9, 1
                exit
            "#,
        )
        .unwrap();
        let l = Liveness::compute(&p);
        assert!(l.live_in(0).has_reg(3), "spawn pointer read");
        assert!(
            !l.live_in(0).has_reg(9),
            "child's registers are a fresh file, not successors"
        );
    }
}
