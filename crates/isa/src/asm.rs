//! Two-pass textual assembler for the PTX-like ISA.
//!
//! ## Syntax
//!
//! ```text
//! ; comment        # comment        // comment
//! .kernel main                 ; entry point at the next instruction
//! .shared 56                   ; per-thread shared-memory bytes
//! .local  384                  ; per-thread local-memory bytes
//! .global 384                  ; per-thread global-memory bytes
//! .const  24                   ; constant-memory bytes
//! .spawnstate 48               ; spawn-memory state-record bytes
//!
//! main:
//!     mov.u32      r1, %tid
//!     mov.f32      r2, 1.5
//! @p0 add.s32      r3, r1, 7
//! @!p1 bra         done
//!     setp.lt.f32  p0, r2, r3
//!     selp.b32     r4, r1, r3, p0
//!     ld.global.u32 r5, [r4+16]
//!     st.spawn.v4  [r4+0], r8
//!     spawn        $traverse, r4
//! done:
//!     exit
//! ```
//!
//! Labels resolve to instruction indices. Immediates in `.f32` instructions
//! are parsed as floats, everything else as integers (decimal, `0x` hex, or
//! negative decimal).

use crate::instr::{AluOp, CmpOp, Instr, Instruction, Space, Width};
use crate::program::{EntryPoint, Program, ResourceUsage, ValidateError};
use crate::reg::{Operand, Pred, Reg, Special};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A line failed to parse.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A referenced label was never defined.
    UnknownLabel {
        /// 1-based source line.
        line: usize,
        /// The missing label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// 1-based source line of the second definition.
        line: usize,
        /// The label name.
        label: String,
    },
    /// The assembled program failed validation.
    Invalid(ValidateError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::UnknownLabel { line, label } => {
                write!(f, "line {line}: unknown label `{label}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ValidateError> for AsmError {
    fn from(e: ValidateError) -> Self {
        AsmError::Invalid(e)
    }
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] on syntax errors, unknown/duplicate labels, or when
/// the resulting program fails [`Program`] validation (see
/// [`ValidateError`]).
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble("program", src)
}

/// Assembles source text under an explicit program name.
///
/// # Errors
///
/// Same conditions as [`assemble`].
pub fn assemble_named(name: &str, src: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(name, src)
}

struct PendingInstr {
    line: usize,
    text: String,
}

struct Assembler {
    labels: BTreeMap<String, usize>,
    entries: Vec<EntryPoint>,
    resources: ResourceUsage,
    pending: Vec<PendingInstr>,
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in [";", "#", "//"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            labels: BTreeMap::new(),
            entries: Vec::new(),
            resources: ResourceUsage::default(),
            pending: Vec::new(),
        }
    }

    fn assemble(mut self, name: &str, src: &str) -> Result<Program, AsmError> {
        // Pass 1: labels, directives, instruction collection.
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            let mut line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                self.directive(line_no, rest)?;
                continue;
            }
            // `label:` possibly followed by an instruction on the same line.
            while let Some(colon) = line.find(':') {
                let (head, tail) = line.split_at(colon);
                let head = head.trim();
                if !is_ident(head) {
                    break;
                }
                if self
                    .labels
                    .insert(head.to_string(), self.pending.len())
                    .is_some()
                {
                    return Err(AsmError::DuplicateLabel {
                        line: line_no,
                        label: head.to_string(),
                    });
                }
                line = tail[1..].trim();
                if line.is_empty() {
                    break;
                }
            }
            if !line.is_empty() {
                self.pending.push(PendingInstr {
                    line: line_no,
                    text: line.to_string(),
                });
            }
        }
        // Bind `.kernel` entries declared before any instruction of their body:
        // entries recorded with usize::MAX bind to the label of the same name,
        // or to the next instruction emitted after the directive (handled in
        // `directive` by recording pending.len()).
        for e in &mut self.entries {
            if let Some(&pc) = self.labels.get(&e.name) {
                e.pc = pc;
            }
        }

        // Pass 2: parse instructions with label resolution.
        let mut instrs = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            instrs.push(parse_instruction(p.line, &p.text, &self.labels)?);
        }
        Ok(Program::new(
            name,
            instrs,
            self.labels,
            self.entries,
            self.resources,
        )?)
    }

    fn directive(&mut self, line: usize, rest: &str) -> Result<(), AsmError> {
        let mut it = rest.split_whitespace();
        let key = it.next().unwrap_or("");
        let arg = it.next();
        let parse_bytes = |arg: Option<&str>| -> Result<u32, AsmError> {
            arg.and_then(|a| a.parse::<u32>().ok())
                .ok_or(AsmError::Parse {
                    line,
                    msg: format!(".{key} expects a byte count"),
                })
        };
        match key {
            "kernel" => {
                let name = arg.ok_or(AsmError::Parse {
                    line,
                    msg: ".kernel expects a name".into(),
                })?;
                if !is_ident(name) {
                    return Err(AsmError::Parse {
                        line,
                        msg: format!("invalid kernel name `{name}`"),
                    });
                }
                self.entries.push(EntryPoint {
                    name: name.to_string(),
                    // Provisional: next instruction; overridden by a
                    // same-named label if one exists.
                    pc: self.pending.len(),
                });
            }
            "shared" => self.resources.shared_bytes = parse_bytes(arg)?,
            "local" => self.resources.local_bytes = parse_bytes(arg)?,
            "global" => self.resources.global_bytes = parse_bytes(arg)?,
            "const" => self.resources.const_bytes = parse_bytes(arg)?,
            "spawnstate" => self.resources.spawn_state_bytes = parse_bytes(arg)?,
            _ => {
                return Err(AsmError::Parse {
                    line,
                    msg: format!("unknown directive `.{key}`"),
                })
            }
        }
        Ok(())
    }
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Reg)
        .ok_or_else(|| AsmError::Parse {
            line,
            msg: format!("expected register, found `{tok}`"),
        })
}

fn parse_pred(line: usize, tok: &str) -> Result<Pred, AsmError> {
    let tok = tok.trim();
    tok.strip_prefix('p')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Pred)
        .ok_or_else(|| AsmError::Parse {
            line,
            msg: format!("expected predicate register, found `{tok}`"),
        })
}

fn parse_special(tok: &str) -> Option<Special> {
    match tok {
        "%tid" => Some(Special::Tid),
        "%laneid" => Some(Special::LaneId),
        "%warpid" => Some(Special::WarpId),
        "%smid" => Some(Special::SmId),
        "%ntid" => Some(Special::NTid),
        "%spawnmem" => Some(Special::SpawnMem),
        _ => None,
    }
}

fn parse_int(tok: &str) -> Option<u32> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok();
    }
    if let Some(neg) = tok.strip_prefix('-') {
        return neg
            .parse::<u32>()
            .ok()
            .map(|v| (v as i64).wrapping_neg() as u32);
    }
    tok.parse::<u32>().ok()
}

/// Parses an operand; `float_ctx` selects float parsing for immediates.
fn parse_operand(line: usize, tok: &str, float_ctx: bool) -> Result<Operand, AsmError> {
    let tok = tok.trim();
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) && tok.len() > 1 {
        return Ok(Operand::Reg(parse_reg(line, tok)?));
    }
    if float_ctx {
        if let Ok(v) = tok.parse::<f32>() {
            return Ok(Operand::imm_f32(v));
        }
    }
    if let Some(v) = parse_int(tok) {
        return Ok(Operand::Imm(v));
    }
    if !float_ctx {
        // Allow float-looking literals in integer context only if exact.
        if let Ok(v) = tok.parse::<f32>() {
            if v.fract() == 0.0 {
                return Ok(Operand::Imm(v as i64 as u32));
            }
        }
    }
    Err(AsmError::Parse {
        line,
        msg: format!("cannot parse operand `{tok}`"),
    })
}

/// Parses a `[rN+off]` or `[rN-off]` address expression.
fn parse_addr(line: usize, tok: &str) -> Result<(Reg, i32), AsmError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError::Parse {
            line,
            msg: format!("expected [reg+offset], found `{tok}`"),
        })?;
    let (reg_s, off) = if let Some(plus) = inner.find('+') {
        let off = inner[plus + 1..].trim();
        let off = parse_int(off).ok_or_else(|| AsmError::Parse {
            line,
            msg: format!("bad offset in `{tok}`"),
        })? as i32;
        (&inner[..plus], off)
    } else if let Some(minus) = inner.find('-') {
        let off = inner[minus + 1..].trim();
        let off = parse_int(off).ok_or_else(|| AsmError::Parse {
            line,
            msg: format!("bad offset in `{tok}`"),
        })? as i32;
        (&inner[..minus], -off)
    } else {
        (inner, 0)
    };
    Ok((parse_reg(line, reg_s)?, off))
}

fn parse_space(line: usize, tok: &str) -> Result<Space, AsmError> {
    match tok {
        "global" => Ok(Space::Global),
        "shared" => Ok(Space::Shared),
        "local" => Ok(Space::Local),
        "const" => Ok(Space::Const),
        "spawn" | "spawnmem" => Ok(Space::Spawn),
        _ => Err(AsmError::Parse {
            line,
            msg: format!("unknown address space `{tok}`"),
        }),
    }
}

fn split_args(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

fn alu_for(line: usize, base: &str, parts: &[&str]) -> Result<(AluOp, bool), AsmError> {
    // Returns (op, float_context_for_immediates).
    let has = |t: &str| parts.contains(&t);
    let fl = has("f32");
    let op = match (base, fl) {
        ("add", false) => AluOp::IAdd,
        ("add", true) => AluOp::FAdd,
        ("sub", false) => AluOp::ISub,
        ("sub", true) => AluOp::FSub,
        ("mul", false) => AluOp::IMul,
        ("mul", true) => AluOp::FMul,
        ("mad", false) => AluOp::IMad,
        ("fma", true) => AluOp::FFma,
        ("min", false) => AluOp::IMin,
        ("min", true) => AluOp::FMin,
        ("max", false) => AluOp::IMax,
        ("max", true) => AluOp::FMax,
        ("div", false) => AluOp::IDiv,
        ("div", true) => AluOp::FDiv,
        ("rem", false) => AluOp::IRem,
        ("and", _) => AluOp::And,
        ("or", _) => AluOp::Or,
        ("xor", _) => AluOp::Xor,
        ("not", _) => AluOp::Not,
        ("shl", _) => AluOp::Shl,
        ("shr", _) => {
            if has("s32") {
                AluOp::ShrS
            } else {
                AluOp::ShrU
            }
        }
        ("sqrt", true) => AluOp::FSqrt,
        ("rcp", true) => AluOp::FRcp,
        ("abs", true) => AluOp::FAbs,
        ("neg", true) => AluOp::FNeg,
        ("floor", true) => AluOp::FFloor,
        _ => {
            return Err(AsmError::Parse {
                line,
                msg: format!("unknown instruction `{base}.{}`", parts.join(".")),
            })
        }
    };
    Ok((op, fl))
}

fn parse_cmp(line: usize, cmp: &str, ty: &str) -> Result<CmpOp, AsmError> {
    let op = match (cmp, ty) {
        ("eq", "f32") => CmpOp::EqF,
        ("ne", "f32") => CmpOp::NeF,
        ("lt", "f32") => CmpOp::LtF,
        ("le", "f32") => CmpOp::LeF,
        ("gt", "f32") => CmpOp::GtF,
        ("ge", "f32") => CmpOp::GeF,
        ("eq", _) => CmpOp::EqS,
        ("ne", _) => CmpOp::NeS,
        ("lt", "u32") => CmpOp::LtU,
        ("le", "u32") => CmpOp::LeU,
        ("gt", "u32") => CmpOp::GtU,
        ("ge", "u32") => CmpOp::GeU,
        ("lt", _) => CmpOp::LtS,
        ("le", _) => CmpOp::LeS,
        ("gt", _) => CmpOp::GtS,
        ("ge", _) => CmpOp::GeS,
        _ => {
            return Err(AsmError::Parse {
                line,
                msg: format!("unknown comparison `setp.{cmp}.{ty}`"),
            })
        }
    };
    Ok(op)
}

fn parse_instruction(
    line: usize,
    text: &str,
    labels: &BTreeMap<String, usize>,
) -> Result<Instruction, AsmError> {
    let mut text = text.trim();
    // Guard.
    let mut guard = None;
    if let Some(rest) = text.strip_prefix('@') {
        let (g, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or(AsmError::Parse {
                line,
                msg: "guard without instruction".into(),
            })?;
        let (negate, pname) = match g.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, g),
        };
        guard = Some(crate::instr::Guard {
            pred: parse_pred(line, pname)?,
            negate,
        });
        text = rest.trim();
    }

    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let mut dotted = mnemonic.split('.');
    let base = dotted.next().unwrap_or("");
    let parts: Vec<&str> = dotted.collect();
    let resolve = |lbl: &str| -> Result<usize, AsmError> {
        let name = lbl.trim().trim_start_matches('$');
        if let Some(&pc) = labels.get(name) {
            return Ok(pc);
        }
        // Raw numeric targets (as the disassembler prints for anonymous
        // branch/spawn targets) resolve to the instruction index directly;
        // `Program::new` still range-checks them.
        if let Ok(pc) = name.parse::<usize>() {
            return Ok(pc);
        }
        Err(AsmError::UnknownLabel {
            line,
            label: name.to_string(),
        })
    };

    let op = match base {
        "nop" => Instr::Nop,
        "exit" => Instr::Exit,
        "bra" => Instr::Bra {
            target: resolve(rest)?,
        },
        "spawn" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    msg: "spawn expects `spawn $kernel, rptr`".into(),
                });
            }
            Instr::Spawn {
                target: resolve(args[0])?,
                ptr: parse_reg(line, args[1])?,
            }
        }
        "mov" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    msg: "mov expects two operands".into(),
                });
            }
            let d = parse_reg(line, args[0])?;
            if let Some(s) = parse_special(args[1]) {
                Instr::ReadSpecial { d, s }
            } else {
                let fl = parts.contains(&"f32");
                Instr::Mov {
                    d,
                    a: parse_operand(line, args[1], fl)?,
                }
            }
        }
        "setp" => {
            if parts.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    msg: "setp expects `setp.<cmp>.<type>`".into(),
                });
            }
            let cmp = parse_cmp(line, parts[0], parts[1])?;
            let fl = parts[1] == "f32";
            let args = split_args(rest);
            if args.len() != 3 {
                return Err(AsmError::Parse {
                    line,
                    msg: "setp expects `p, a, b`".into(),
                });
            }
            Instr::Setp {
                cmp,
                p: parse_pred(line, args[0])?,
                a: parse_operand(line, args[1], fl)?,
                b: parse_operand(line, args[2], fl)?,
            }
        }
        "selp" => {
            let fl = parts.contains(&"f32");
            let args = split_args(rest);
            if args.len() != 4 {
                return Err(AsmError::Parse {
                    line,
                    msg: "selp expects `d, a, b, p`".into(),
                });
            }
            Instr::Selp {
                d: parse_reg(line, args[0])?,
                a: parse_operand(line, args[1], fl)?,
                b: parse_operand(line, args[2], fl)?,
                p: parse_pred(line, args[3])?,
            }
        }
        "ld" | "st" => {
            if parts.is_empty() {
                return Err(AsmError::Parse {
                    line,
                    msg: format!("`{base}` needs an address space"),
                });
            }
            let space = parse_space(line, parts[0])?;
            let width = if parts.contains(&"v4") {
                Width::V4
            } else {
                Width::W1
            };
            let args = split_args(rest);
            if args.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    msg: format!("`{base}` expects two operands"),
                });
            }
            if base == "ld" {
                let d = parse_reg(line, args[0])?;
                let (addr, offset) = parse_addr(line, args[1])?;
                Instr::Ld {
                    space,
                    d,
                    addr,
                    offset,
                    width,
                }
            } else {
                let (addr, offset) = parse_addr(line, args[0])?;
                let a = parse_reg(line, args[1])?;
                Instr::St {
                    space,
                    a,
                    addr,
                    offset,
                    width,
                }
            }
        }
        "cvt" => {
            // cvt.<dst>.<src>  (ignoring optional rounding mode parts)
            let tys: Vec<&str> = parts
                .iter()
                .copied()
                .filter(|p| matches!(*p, "f32" | "s32" | "u32"))
                .collect();
            if tys.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    msg: "cvt expects `cvt.<dst>.<src>`".into(),
                });
            }
            let op = match (tys[0], tys[1]) {
                ("f32", "s32") => AluOp::I2F,
                ("s32", "f32") => AluOp::F2I,
                ("f32", "u32") => AluOp::U2F,
                ("u32", "f32") => AluOp::F2U,
                (d, s) => {
                    return Err(AsmError::Parse {
                        line,
                        msg: format!("unsupported conversion `{s}` -> `{d}`"),
                    })
                }
            };
            let args = split_args(rest);
            if args.len() != 2 {
                return Err(AsmError::Parse {
                    line,
                    msg: "cvt expects two operands".into(),
                });
            }
            Instr::Alu {
                op,
                d: parse_reg(line, args[0])?,
                a: parse_operand(line, args[1], false)?,
                b: Operand::Imm(0),
                c: Operand::Imm(0),
            }
        }
        _ => {
            let (op, fl) = alu_for(line, base, &parts)?;
            let args = split_args(rest);
            let need = if op.is_unary() {
                2
            } else if op.is_ternary() {
                4
            } else {
                3
            };
            if args.len() != need {
                return Err(AsmError::Parse {
                    line,
                    msg: format!("`{base}` expects {need} operands, found {}", args.len()),
                });
            }
            let d = parse_reg(line, args[0])?;
            let a = parse_operand(line, args[1], fl)?;
            let b = if op.is_unary() {
                Operand::Imm(0)
            } else {
                parse_operand(line, args[2], fl)?
            };
            let c = if op.is_ternary() {
                parse_operand(line, args[3], fl)?
            } else {
                Operand::Imm(0)
            };
            Instr::Alu { op, d, a, b, c }
        }
    };
    Ok(Instruction { guard, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Instr, Space, Width};
    use crate::reg::{Operand, Pred, Reg, Special};

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            r#"
            .kernel main
            .shared 60
            main:
                mov.u32 r1, %tid
                add.s32 r2, r1, 1
                exit
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.entry("main").unwrap().pc, 0);
        assert_eq!(p.resource_usage().shared_bytes, 60);
        assert_eq!(p.resource_usage().registers, 3);
        assert_eq!(
            p.instrs()[0].op,
            Instr::ReadSpecial {
                d: Reg(1),
                s: Special::Tid
            }
        );
    }

    #[test]
    fn parses_guards() {
        let p = assemble(
            r#"
            loop:
            @p0 bra loop
            @!p1 add.s32 r1, r1, 1
                exit
            "#,
        )
        .unwrap();
        let g0 = p.instrs()[0].guard.unwrap();
        assert_eq!(g0.pred, Pred(0));
        assert!(!g0.negate);
        let g1 = p.instrs()[1].guard.unwrap();
        assert_eq!(g1.pred, Pred(1));
        assert!(g1.negate);
    }

    #[test]
    fn parses_memory_ops() {
        let p = assemble(
            r#"
                ld.global.u32 r1, [r2+8]
                ld.spawn.v4 r4, [r2+0]
                st.shared.u32 [r2-4], r1
                st.spawn.v4 [r2+16], r8
                exit
            "#,
        )
        .unwrap();
        assert_eq!(
            p.instrs()[0].op,
            Instr::Ld {
                space: Space::Global,
                d: Reg(1),
                addr: Reg(2),
                offset: 8,
                width: Width::W1
            }
        );
        assert_eq!(
            p.instrs()[1].op,
            Instr::Ld {
                space: Space::Spawn,
                d: Reg(4),
                addr: Reg(2),
                offset: 0,
                width: Width::V4
            }
        );
        assert_eq!(
            p.instrs()[2].op,
            Instr::St {
                space: Space::Shared,
                a: Reg(1),
                addr: Reg(2),
                offset: -4,
                width: Width::W1
            }
        );
    }

    #[test]
    fn parses_float_immediates_in_float_context() {
        let p = assemble("mov.f32 r1, 1.5\nadd.f32 r2, r1, -2.25\nexit").unwrap();
        assert_eq!(
            p.instrs()[0].op,
            Instr::Mov {
                d: Reg(1),
                a: Operand::imm_f32(1.5)
            }
        );
        match p.instrs()[1].op {
            Instr::Alu {
                op: AluOp::FAdd, b, ..
            } => assert_eq!(b, Operand::imm_f32(-2.25)),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_spawn_with_dollar_label() {
        let p = assemble(
            r#"
            .kernel main
            .kernel child
            main:
                spawn $child, r3
                exit
            child:
                exit
            "#,
        )
        .unwrap();
        assert_eq!(
            p.instrs()[0].op,
            Instr::Spawn {
                target: 2,
                ptr: Reg(3)
            }
        );
    }

    #[test]
    fn errors_on_unknown_label() {
        let err = assemble("bra nowhere\nexit").unwrap_err();
        assert!(matches!(err, AsmError::UnknownLabel { label, .. } if label == "nowhere"));
    }

    #[test]
    fn errors_on_duplicate_label() {
        let err = assemble("a:\nnop\na:\nexit").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { label, .. } if label == "a"));
    }

    #[test]
    fn errors_on_bad_syntax() {
        assert!(matches!(
            assemble("frobnicate r1, r2\nexit"),
            Err(AsmError::Parse { .. })
        ));
        assert!(matches!(
            assemble("add.s32 r1\nexit"),
            Err(AsmError::Parse { .. })
        ));
        assert!(matches!(
            assemble("ld.bogus.u32 r1, [r2+0]\nexit"),
            Err(AsmError::Parse { .. })
        ));
    }

    #[test]
    fn spawn_to_non_kernel_label_is_invalid() {
        let err = assemble(
            r#"
            main:
                spawn $other, r1
                exit
            other:
                exit
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, AsmError::Invalid(_)));
    }

    #[test]
    fn label_and_instruction_on_same_line() {
        let p = assemble("start: mov.u32 r1, 5\nexit").unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("mov.u32 r1, 0xff\nmov.s32 r2, -7\nexit").unwrap();
        assert_eq!(
            p.instrs()[0].op,
            Instr::Mov {
                d: Reg(1),
                a: Operand::Imm(0xff)
            }
        );
        assert_eq!(
            p.instrs()[1].op,
            Instr::Mov {
                d: Reg(2),
                a: Operand::Imm((-7i32) as u32)
            }
        );
    }

    #[test]
    fn kernel_directive_without_label_binds_next_instruction() {
        let p = assemble(
            r#"
                nop
            .kernel uk
                add.s32 r1, r1, 1
                exit
            "#,
        )
        .unwrap();
        assert_eq!(p.entry("uk").unwrap().pc, 1);
    }

    #[test]
    fn comments_are_stripped() {
        let p = assemble("nop ; trailing\n# whole line\nnop // also\nexit").unwrap();
        assert_eq!(p.len(), 3);
    }
}
