//! A tiny deterministic binary codec for simulator snapshots.
//!
//! The offline serde shim expands its derives to nothing, so checkpointing
//! cannot lean on `serde` for real byte-level serialization. This module
//! provides the hand-rolled alternative: an append-only [`Encoder`], a
//! bounds-checked [`Decoder`] whose every read returns a [`CodecError`]
//! instead of panicking on truncated input, and the FNV-1a-64 hash the
//! workspace already uses for image fingerprints, here reused as a snapshot
//! checksum.
//!
//! Layout rules (shared by every `encode_state`/`restore_state` pair in the
//! workspace):
//!
//! - all integers are little-endian fixed width; `usize` travels as `u64`;
//! - `f64` travels as its IEEE-754 bit pattern (`to_bits`/`from_bits`), so
//!   encode→decode is exactly identity, NaN payloads included;
//! - collections are prefixed by a `u64` length;
//! - `Option<T>` is a `bool` presence flag followed by the payload;
//! - map-like state (e.g. per-block thread counts) is emitted sorted by key
//!   so identical machine states always produce identical bytes.

use std::fmt;

/// Error produced when decoding malformed, truncated, or corrupt bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a fixed-width read could complete.
    UnexpectedEof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A tag byte did not name any variant of the expected type.
    BadTag {
        /// Human-readable name of the type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A length prefix was implausibly large for the remaining input.
    BadLength {
        /// The decoded element count.
        len: u64,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A string section was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            CodecError::BadLength { len, remaining } => write!(
                f,
                "length prefix {len} exceeds remaining input ({remaining} bytes)"
            ),
            CodecError::BadUtf8 => f.write_str("string section is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte-buffer writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed raw byte section.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed slice of `u32` words.
    pub fn put_u32_slice(&mut self, words: &[u32]) {
        self.put_usize(words.len());
        for &w in words {
            self.put_u32(w);
        }
    }

    /// Appends a length-prefixed slice of `u64` values.
    pub fn put_u64_slice(&mut self, values: &[u64]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_u64(v);
        }
    }
}

/// Bounds-checked reader over encoded bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_finished(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        Ok(self.take_u64()? as usize)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is a [`CodecError::BadTag`].
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag {
                what: "bool",
                tag: u64::from(t),
            }),
        }
    }

    /// Reads a length prefix, validating it against the remaining input
    /// assuming at least `min_elem_bytes` bytes per element.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.take_u64()?;
        let need = len.saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(CodecError::BadLength {
                len,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let len = self.take_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a length-prefixed raw byte section.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.take_len(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed slice of `u32` words.
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let len = self.take_len(4)?;
        (0..len).map(|_| self.take_u32()).collect()
    }

    /// Reads a length-prefixed slice of `u64` values.
    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.take_len(8)?;
        (0..len).map(|_| self.take_u64()).collect()
    }
}

/// FNV-1a 64-bit hash — the workspace's standard fingerprint function,
/// reused as the snapshot checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 3);
        e.put_usize(1234);
        e.put_f64(3.25);
        e.put_bool(true);
        e.put_str("warp");
        e.put_u32_slice(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.take_usize().unwrap(), 1234);
        assert_eq!(d.take_f64().unwrap(), 3.25);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_str().unwrap(), "warp");
        assert_eq!(d.take_u32_vec().unwrap(), vec![1, 2, 3]);
        assert!(d.is_finished());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut e = Encoder::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(
            d.take_u64(),
            Err(CodecError::UnexpectedEof { needed: 8, .. })
        ));
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.take_u32_vec(),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut d = Decoder::new(&[2]);
        assert!(matches!(d.take_bool(), Err(CodecError::BadTag { .. })));
    }

    #[test]
    fn nan_bits_survive_roundtrip() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut e = Encoder::new();
        e.put_f64(weird);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    proptest! {
        #[test]
        fn u64_roundtrip(v: u64) {
            let mut e = Encoder::new();
            e.put_u64(v);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.take_u64().unwrap(), v);
        }

        #[test]
        fn words_roundtrip(words in proptest::collection::vec(any::<u32>(), 1..64)) {
            let mut e = Encoder::new();
            e.put_u32_slice(&words);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.take_u32_vec().unwrap(), words.clone());
            prop_assert!(d.is_finished());
        }
    }
}
