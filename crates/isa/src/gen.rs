//! Seeded random program generator for differential fuzzing.
//!
//! Produces well-formed assembly programs that exercise the whole ISA —
//! predication, structured control flow with guaranteed-terminating
//! data-dependent loops, every address space (incl. `v4` vector accesses),
//! and nested `spawn` chains — while staying *comparable* across machines
//! that assign machine-specific resources differently (thread ids of
//! spawned children, `%spawnmem` addresses, SM placement):
//!
//! * every thread derives its identity from an inherited *lineage id*
//!   (the launch `%tid`, passed to children through the spawn-state
//!   record), never from `%tid`/`%laneid`/`%warpid`/`%smid` in child
//!   kernels;
//! * machine-specific addresses (`%spawnmem` values, state pointers) are
//!   used for spawn-space dataflow only and never stored to compared
//!   global memory;
//! * each thread touches only its own `(level, lineage)`-keyed disjoint
//!   regions of global and shared memory; only the launch kernel touches
//!   local memory (spawned children have machine-assigned thread ids and
//!   therefore machine-specific local windows);
//! * child kernels write every register and predicate before reading it,
//!   so a `SpawnPolicy::OnDivergence` elision (the parent branching in
//!   place with its stale register file) is observationally identical to
//!   a fresh child. This is *checked*, not assumed: [`generate`] runs the
//!   [`crate::Liveness`] analysis and panics if any entry point has a
//!   non-empty live-in set, and builds the [`crate::Cfg`] to ensure
//!   reconvergence analysis accepts the program.
//!
//! All randomness is drawn from a SplitMix64 stream seeded by
//! [`GenConfig::seed`], so a config fully reproduces its program.

use crate::asm::assemble_named;
use crate::cfg::Cfg;
use crate::dataflow::Liveness;
use crate::program::Program;
use std::fmt::Write as _;

/// Words in each thread's compared output region.
pub const OUT_WORDS: u32 = 4;
/// Words in each thread's private global scratch region.
pub const SCRATCH_WORDS: u32 = 4;
/// Words in each thread's private shared-memory region.
pub const SHARED_WORDS: u32 = 8;
/// Words of host-initialised constant memory.
pub const CONST_WORDS: u32 = 16;
/// Per-thread local-memory bytes (launch kernel only).
pub const LOCAL_BYTES: u32 = 32;
/// Spawn-state record bytes (matches the paper's 48-byte record).
pub const STATE_BYTES: u32 = 48;

/// Knobs controlling one generated program. Every knob is ordered so a
/// failure can be *shrunk* by monotonically reducing fields (the proptest
/// shim reports failing inputs but does not shrink them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// PRNG seed; fully determines the program given the other knobs.
    pub seed: u64,
    /// Launch threads (lineages), 1..=16.
    pub ntid: u32,
    /// Random constructs per kernel body.
    pub blocks: u32,
    /// Operations per straight-line block.
    pub ops_per_block: u32,
    /// Maximum loop-nest depth (0..=2).
    pub max_loop_depth: u32,
    /// Levels of spawned child kernels (0..=2).
    pub spawn_levels: u32,
    /// Whether spawns sit behind a data-dependent guard predicate.
    pub spawn_guarded: bool,
    /// Emit shared-memory traffic.
    pub use_shared: bool,
    /// Emit local-memory traffic (launch kernel only).
    pub use_local: bool,
    /// Emit constant-memory reads.
    pub use_const: bool,
    /// Emit `v4` vector loads/stores.
    pub use_v4: bool,
    /// Include float arithmetic and conversions in the op pool.
    pub use_float: bool,
}

impl GenConfig {
    /// Derives a diverse configuration from a single seed (the fuzzing
    /// driver's per-iteration entry point).
    pub fn from_seed(seed: u64) -> Self {
        let mut r = Rng::new(seed ^ 0x5eed_0f0a_ac1e_c0de_u64);
        GenConfig {
            seed,
            ntid: [1, 2, 4, 7, 8, 12, 16][r.below(7) as usize],
            blocks: 1 + r.below(4),
            ops_per_block: 1 + r.below(6),
            max_loop_depth: r.below(3),
            spawn_levels: r.below(3),
            spawn_guarded: r.chance(50),
            use_shared: r.chance(70),
            use_local: r.chance(50),
            use_const: r.chance(60),
            use_v4: r.chance(50),
            use_float: r.chance(60),
        }
    }

    /// Total `(level, lineage)` output slots.
    pub fn slots(&self) -> u32 {
        self.ntid * (self.spawn_levels + 1)
    }

    /// Bytes of the compared output region at the base of global memory.
    pub fn out_bytes(&self) -> u32 {
        self.slots() * OUT_WORDS * 4
    }

    /// Total global allocation (output region + per-slot scratch).
    pub fn global_bytes(&self) -> u32 {
        self.slots() * (OUT_WORDS + SCRATCH_WORDS) * 4
    }

    /// The deterministic constant-memory image both machines must load.
    pub fn const_image(&self) -> Vec<u32> {
        let mut r = Rng::new(self.seed ^ 0xc057_a7b1_e000_1111_u64);
        (0..CONST_WORDS).map(|_| r.next() as u32).collect()
    }

    /// Serialises the config as a single `key=value` line (embedded in
    /// repro-file headers).
    pub fn to_kv(&self) -> String {
        format!(
            "seed={} ntid={} blocks={} ops={} loops={} spawn={} guarded={} \
             shared={} local={} const={} v4={} float={}",
            self.seed,
            self.ntid,
            self.blocks,
            self.ops_per_block,
            self.max_loop_depth,
            self.spawn_levels,
            u8::from(self.spawn_guarded),
            u8::from(self.use_shared),
            u8::from(self.use_local),
            u8::from(self.use_const),
            u8::from(self.use_v4),
            u8::from(self.use_float),
        )
    }

    /// Parses a line produced by [`GenConfig::to_kv`].
    pub fn from_kv(line: &str) -> Option<Self> {
        let mut cfg = GenConfig {
            seed: 0,
            ntid: 1,
            blocks: 0,
            ops_per_block: 1,
            max_loop_depth: 0,
            spawn_levels: 0,
            spawn_guarded: false,
            use_shared: false,
            use_local: false,
            use_const: false,
            use_v4: false,
            use_float: false,
        };
        for pair in line.split_whitespace() {
            let (k, v) = pair.split_once('=')?;
            let n: u64 = v.parse().ok()?;
            match k {
                "seed" => cfg.seed = n,
                "ntid" => cfg.ntid = n as u32,
                "blocks" => cfg.blocks = n as u32,
                "ops" => cfg.ops_per_block = n as u32,
                "loops" => cfg.max_loop_depth = n as u32,
                "spawn" => cfg.spawn_levels = n as u32,
                "guarded" => cfg.spawn_guarded = n != 0,
                "shared" => cfg.use_shared = n != 0,
                "local" => cfg.use_local = n != 0,
                "const" => cfg.use_const = n != 0,
                "v4" => cfg.use_v4 = n != 0,
                "float" => cfg.use_float = n != 0,
                _ => return None,
            }
        }
        (cfg.ntid >= 1 && cfg.ntid <= 16 && cfg.spawn_levels <= 2 && cfg.max_loop_depth <= 2)
            .then_some(cfg)
    }
}

/// A generated program plus the source it came from.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// The assembled, validated program.
    pub program: Program,
    /// The assembly source text (repro-file payload).
    pub source: String,
    /// The configuration that produced it.
    pub cfg: GenConfig,
}

/// SplitMix64: small, fast, deterministic.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n` > 0).
    fn below(&mut self, n: u32) -> u32 {
        (self.next() % u64::from(n.max(1))) as u32
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct
    }
}

// Register allocation (fixed roles keep write-before-read auditable):
//   r1        lineage id (launch %tid, inherited by children)
//   r2..r6    data registers (op pool destinations)
//   r7        address temporary
//   r8, r9    loop counters (nest depth 0, 1)
//   r10       %spawnmem
//   r11       spawn-state record pointer
//   r12..r15  v4 vector quad
//   r16       output-region base, r17 scratch base, r18 shared base,
//   r19       slot id (level * ntid + lineage)
const DATA_REGS: [u8; 5] = [2, 3, 4, 5, 6];

/// Interesting immediates (div/rem/shift edge cases appear organically).
const SPECIAL_IMMS: [i32; 10] = [0, 1, -1, 2, 7, 32, 33, 255, i32::MIN, -100];

struct Emitter {
    cfg: GenConfig,
    rng: Rng,
    s: String,
    labels: u32,
    preds: u8,
}

impl Emitter {
    fn fresh_label(&mut self) -> String {
        self.labels += 1;
        format!("L{}", self.labels)
    }

    /// Cycles p0..p2 (p3 is reserved for the spawn guard).
    fn fresh_pred(&mut self) -> u8 {
        let p = self.preds % 3;
        self.preds = self.preds.wrapping_add(1);
        p
    }

    fn data_reg(&mut self) -> u8 {
        DATA_REGS[self.rng.below(DATA_REGS.len() as u32) as usize]
    }

    /// A readable register: lineage id or any data register.
    fn src_reg(&mut self) -> u8 {
        if self.rng.chance(15) {
            1
        } else {
            self.data_reg()
        }
    }

    fn int_imm(&mut self) -> i32 {
        if self.rng.chance(35) {
            SPECIAL_IMMS[self.rng.below(SPECIAL_IMMS.len() as u32) as usize]
        } else {
            self.rng.below(201) as i32 - 100
        }
    }

    fn int_operand(&mut self) -> String {
        if self.rng.chance(40) {
            format!("{}", self.int_imm())
        } else {
            format!("r{}", self.src_reg())
        }
    }

    /// One random ALU/setp/selp/cvt operation writing a data register.
    fn emit_op(&mut self) {
        const INT_BIN: [&str; 13] = [
            "add.s32",
            "sub.s32",
            "mul.lo.s32",
            "and.b32",
            "or.b32",
            "xor.b32",
            "min.s32",
            "max.s32",
            "shl.b32",
            "shr.u32",
            "shr.s32",
            "div.s32",
            "rem.s32",
        ];
        const FLT_BIN: [&str; 7] = [
            "add.f32", "sub.f32", "mul.f32", "div.f32", "min.f32", "max.f32", "fma.f32",
        ];
        const FLT_UN: [&str; 5] = ["neg.f32", "abs.f32", "sqrt.f32", "rcp.f32", "floor.f32"];
        const CVT: [&str; 4] = ["cvt.f32.s32", "cvt.s32.f32", "cvt.f32.u32", "cvt.u32.f32"];
        let d = self.data_reg();
        let kind = self.rng.below(if self.cfg.use_float { 100 } else { 55 });
        match kind {
            0..=39 => {
                let m = INT_BIN[self.rng.below(INT_BIN.len() as u32) as usize];
                let a = self.src_reg();
                let b = self.int_operand();
                let _ = writeln!(self.s, "    {m} r{d}, r{a}, {b}");
            }
            40..=44 => {
                let (a, b, c) = (self.src_reg(), self.int_operand(), self.src_reg());
                let _ = writeln!(self.s, "    mad.lo.s32 r{d}, r{a}, {b}, r{c}");
            }
            45..=49 => {
                let a = self.src_reg();
                let _ = writeln!(self.s, "    not.b32 r{d}, r{a}");
            }
            50..=54 => {
                // selp on a freshly computed predicate.
                let p = self.fresh_pred();
                let (a, b) = (self.src_reg(), self.int_operand());
                let cmp = ["eq", "ne", "lt", "le", "gt", "ge"][self.rng.below(6) as usize];
                let _ = writeln!(self.s, "    setp.{cmp}.s32 p{p}, r{a}, {b}");
                let (x, y) = (self.src_reg(), self.src_reg());
                let _ = writeln!(self.s, "    selp.b32 r{d}, r{x}, r{y}, p{p}");
            }
            55..=79 => {
                let m = FLT_BIN[self.rng.below(FLT_BIN.len() as u32) as usize];
                let (a, b) = (self.src_reg(), self.src_reg());
                if m == "fma.f32" {
                    let c = self.src_reg();
                    let _ = writeln!(self.s, "    {m} r{d}, r{a}, r{b}, r{c}");
                } else {
                    let _ = writeln!(self.s, "    {m} r{d}, r{a}, r{b}");
                }
            }
            80..=89 => {
                let m = FLT_UN[self.rng.below(FLT_UN.len() as u32) as usize];
                let a = self.src_reg();
                let _ = writeln!(self.s, "    {m} r{d}, r{a}");
            }
            _ => {
                let m = CVT[self.rng.below(CVT.len() as u32) as usize];
                let a = self.src_reg();
                let _ = writeln!(self.s, "    {m} r{d}, r{a}");
            }
        }
    }

    /// One structured construct; `depth` is the current loop-nest depth.
    fn emit_construct(&mut self, depth: u32, level: u32) {
        match self.rng.below(100) {
            0..=34 => {
                for _ in 0..self.cfg.ops_per_block.max(1) {
                    self.emit_op();
                }
            }
            35..=49 => self.emit_guarded(),
            50..=64 => self.emit_if_else(depth, level),
            65..=79 if depth < self.cfg.max_loop_depth => self.emit_loop(depth, level),
            _ => self.emit_mem_op(level),
        }
    }

    /// A data-predicated operation. The predicate is always set by an
    /// unconditional `setp` immediately before use, and the destination is
    /// a data register the prologue already defined — so a skipped write
    /// leaves a machine-identical old value (elision-safe).
    fn emit_guarded(&mut self) {
        const GUARDABLE: [&str; 8] = [
            "add.s32",
            "sub.s32",
            "mul.lo.s32",
            "xor.b32",
            "min.s32",
            "max.s32",
            "shl.b32",
            "div.s32",
        ];
        let p = self.fresh_pred();
        let (a, b) = (self.src_reg(), self.int_imm());
        let cmp = ["eq", "ne", "lt", "gt"][self.rng.below(4) as usize];
        let _ = writeln!(self.s, "    setp.{cmp}.s32 p{p}, r{a}, {b}");
        let neg = if self.rng.chance(30) { "!" } else { "" };
        let m = GUARDABLE[self.rng.below(GUARDABLE.len() as u32) as usize];
        let d = self.data_reg();
        let x = self.src_reg();
        let y = self.int_operand();
        let _ = writeln!(self.s, "    @{neg}p{p} {m} r{d}, r{x}, {y}");
    }

    fn emit_if_else(&mut self, depth: u32, level: u32) {
        let p = self.fresh_pred();
        let (a, b) = (self.src_reg(), self.int_imm());
        let cmp = ["lt", "ge", "eq", "ne"][self.rng.below(4) as usize];
        let l_else = self.fresh_label();
        let l_end = self.fresh_label();
        let _ = writeln!(self.s, "    setp.{cmp}.s32 p{p}, r{a}, {b}");
        let _ = writeln!(self.s, "    @!p{p} bra {l_else}");
        for _ in 0..1 + self.rng.below(2) {
            self.emit_construct(depth, level);
        }
        let _ = writeln!(self.s, "    bra {l_end}");
        let _ = writeln!(self.s, "{l_else}:");
        for _ in 0..1 + self.rng.below(2) {
            self.emit_construct(depth, level);
        }
        let _ = writeln!(self.s, "{l_end}:");
    }

    /// A data-dependent but guaranteed-terminating loop: trip count is
    /// `(reg & 3) + 1` and the counter register (r8/r9 per nest level) is
    /// never a destination of body constructs.
    fn emit_loop(&mut self, depth: u32, level: u32) {
        let ctr = 8 + depth as u8;
        let head = self.fresh_label();
        let p = self.fresh_pred();
        let seed = self.src_reg();
        let _ = writeln!(self.s, "    and.b32 r{ctr}, r{seed}, 3");
        let _ = writeln!(self.s, "    add.s32 r{ctr}, r{ctr}, 1");
        let _ = writeln!(self.s, "{head}:");
        for _ in 0..1 + self.rng.below(2) {
            self.emit_construct(depth + 1, level);
        }
        let _ = writeln!(self.s, "    sub.s32 r{ctr}, r{ctr}, 1");
        let _ = writeln!(self.s, "    setp.gt.s32 p{p}, r{ctr}, 0");
        let _ = writeln!(self.s, "    @p{p} bra {head}");
    }

    /// A memory operation in a randomly chosen (enabled) space, confined
    /// to this thread's disjoint region.
    fn emit_mem_op(&mut self, level: u32) {
        let mut kinds: Vec<u32> = vec![0]; // global scratch always available
        if self.cfg.use_shared {
            kinds.push(1);
        }
        if self.cfg.use_const {
            kinds.push(2);
        }
        if self.cfg.use_local && level == 0 {
            kinds.push(3);
        }
        if self.cfg.use_v4 {
            kinds.push(4);
        }
        let kind = kinds[self.rng.below(kinds.len() as u32) as usize];
        match kind {
            0 => self.emit_scratch(17, SCRATCH_WORDS),
            1 => self.emit_scratch(18, SHARED_WORDS),
            2 => {
                // Data-dependent constant read.
                let mask = (CONST_WORDS - 1) * 4;
                let (a, d) = (self.src_reg(), self.data_reg());
                let _ = writeln!(self.s, "    and.b32 r7, r{a}, {mask}");
                let _ = writeln!(self.s, "    ld.const.u32 r{d}, [r7+0]");
            }
            3 => {
                // Local store + load (per-thread window, base 0).
                let k = self.rng.below(LOCAL_BYTES / 4) * 4;
                let (v, d) = (self.src_reg(), self.data_reg());
                let _ = writeln!(self.s, "    mov.u32 r7, 0");
                let _ = writeln!(self.s, "    st.local.u32 [r7+{k}], r{v}");
                let _ = writeln!(self.s, "    ld.local.u32 r{d}, [r7+{k}]");
            }
            _ => self.emit_v4(),
        }
    }

    /// Store/load through a region base register (`r17` global scratch,
    /// `r18` shared), with static or data-dependent word index.
    fn emit_scratch(&mut self, base: u8, words: u32) {
        let space = if base == 17 { "global" } else { "shared" };
        let v = self.src_reg();
        if self.rng.chance(50) {
            let k = self.rng.below(words) * 4;
            let _ = writeln!(self.s, "    st.{space}.u32 [r{base}+{k}], r{v}");
            if self.rng.chance(70) {
                let d = self.data_reg();
                let j = self.rng.below(words) * 4;
                let _ = writeln!(self.s, "    ld.{space}.u32 r{d}, [r{base}+{j}]");
            }
        } else {
            // Data-dependent index, masked word-aligned and in-region.
            let mask = (words - 1) * 4;
            let idx = self.src_reg();
            let _ = writeln!(self.s, "    and.b32 r7, r{idx}, {mask}");
            let _ = writeln!(self.s, "    add.s32 r7, r7, r{base}");
            let _ = writeln!(self.s, "    st.{space}.u32 [r7+0], r{v}");
            let d = self.data_reg();
            let _ = writeln!(self.s, "    ld.{space}.u32 r{d}, [r7+0]");
        }
    }

    /// Vector quad: define r12..r15, store/load them as `v4`.
    fn emit_v4(&mut self) {
        let (a, b) = (self.src_reg(), self.src_reg());
        let _ = writeln!(self.s, "    mov.b32 r12, r{a}");
        let _ = writeln!(self.s, "    add.s32 r13, r12, 1");
        let _ = writeln!(self.s, "    xor.b32 r14, r12, r{b}");
        let _ = writeln!(self.s, "    not.b32 r15, r13");
        let (space, base) = if self.cfg.use_shared && self.rng.chance(40) {
            ("shared", 18)
        } else {
            ("global", 17)
        };
        let _ = writeln!(self.s, "    st.{space}.v4 [r{base}+0], r12");
        if self.rng.chance(60) {
            let _ = writeln!(self.s, "    ld.{space}.v4 r12, [r{base}+0]");
            let d = self.data_reg();
            let _ = writeln!(self.s, "    add.s32 r{d}, r12, r15");
        }
    }

    /// One kernel body: prologue (identity + region bases), random
    /// constructs, compared output stores, optional spawn, exit.
    fn emit_kernel(&mut self, level: u32) {
        let cfg = self.cfg.clone();
        let name = kernel_name(level);
        let _ = writeln!(self.s, "{name}:");
        if level == 0 {
            let _ = writeln!(self.s, "    mov.u32 r1, %tid");
            for &r in &DATA_REGS {
                if self.rng.chance(20) {
                    let v = self.int_imm();
                    let _ = writeln!(self.s, "    mov.u32 r{r}, {v}");
                } else {
                    let m = self.rng.below(97) + 1;
                    let a = self.int_imm();
                    let _ = writeln!(self.s, "    mul.lo.s32 r{r}, r1, {m}");
                    let _ = writeln!(self.s, "    add.s32 r{r}, r{r}, {a}");
                }
            }
        } else {
            // Restore inherited state: the formation slot at `%spawnmem`
            // holds the state-record pointer the parent passed.
            let _ = writeln!(self.s, "    mov.u32 r10, %spawnmem");
            let _ = writeln!(self.s, "    ld.spawn r11, [r10+0]");
            let _ = writeln!(self.s, "    ld.spawn r1, [r11+0]");
            let _ = writeln!(self.s, "    ld.spawn r2, [r11+4]");
            let _ = writeln!(self.s, "    ld.spawn r3, [r11+8]");
            for &r in &DATA_REGS[2..] {
                let src = [1u8, 2, 3][self.rng.below(3) as usize];
                let a = self.int_imm();
                let _ = writeln!(self.s, "    xor.b32 r{r}, r{src}, {a}");
                let _ = writeln!(self.s, "    add.s32 r{r}, r{r}, r{src}");
            }
        }
        // Region bases from the slot id (level * ntid + lineage).
        let _ = writeln!(self.s, "    mov.u32 r19, {}", level * cfg.ntid);
        let _ = writeln!(self.s, "    add.s32 r19, r19, r1");
        let _ = writeln!(self.s, "    mul.lo.s32 r16, r19, {}", OUT_WORDS * 4);
        let _ = writeln!(self.s, "    mul.lo.s32 r17, r19, {}", SCRATCH_WORDS * 4);
        let _ = writeln!(self.s, "    add.s32 r17, r17, {}", cfg.out_bytes());
        let _ = writeln!(self.s, "    mul.lo.s32 r18, r19, {}", SHARED_WORDS * 4);
        for _ in 0..cfg.blocks.max(1) {
            self.emit_construct(0, level);
        }
        // Compared output: the final data registers.
        for (i, &r) in DATA_REGS[..OUT_WORDS as usize].iter().enumerate() {
            let _ = writeln!(self.s, "    st.global.u32 [r16+{}], r{r}", i * 4);
        }
        if level < cfg.spawn_levels {
            // Save the continuation state and spawn the next level. The
            // launch kernel owns a full state record at `%spawnmem`;
            // children re-use the record they inherited (its pointer is in
            // r11) — the hardware only recycles it when the lineage ends.
            let state = if level == 0 {
                let _ = writeln!(self.s, "    mov.u32 r10, %spawnmem");
                10
            } else {
                11
            };
            let _ = writeln!(self.s, "    st.spawn [r{state}+0], r1");
            let _ = writeln!(self.s, "    st.spawn [r{state}+4], r2");
            let _ = writeln!(self.s, "    st.spawn [r{state}+8], r3");
            let child = kernel_name(level + 1);
            if cfg.spawn_guarded {
                let a = self.src_reg();
                let cmp = ["ne", "lt", "ge"][self.rng.below(3) as usize];
                let b = self.int_imm();
                let _ = writeln!(self.s, "    setp.{cmp}.s32 p3, r{a}, {b}");
                let _ = writeln!(self.s, "    @p3 spawn ${child}, r{state}");
            } else {
                let _ = writeln!(self.s, "    spawn ${child}, r{state}");
            }
        }
        let _ = writeln!(self.s, "    exit");
    }
}

fn kernel_name(level: u32) -> String {
    if level == 0 {
        "main".to_string()
    } else {
        format!("uk{level}")
    }
}

/// Generates, assembles, and validates one random program.
///
/// # Panics
///
/// Panics if the generated source fails to assemble or violates the
/// well-formedness invariants (empty live-in at every entry point) — a
/// bug in the generator itself, not in the program under test.
pub fn generate(cfg: &GenConfig) -> GenProgram {
    let mut e = Emitter {
        cfg: cfg.clone(),
        rng: Rng::new(cfg.seed),
        s: String::new(),
        labels: 0,
        preds: 0,
    };
    let _ = writeln!(e.s, ".global {}", cfg.global_bytes());
    if cfg.use_const {
        let _ = writeln!(e.s, ".const {}", CONST_WORDS * 4);
    }
    if cfg.use_local {
        let _ = writeln!(e.s, ".local {LOCAL_BYTES}");
    }
    if cfg.spawn_levels > 0 {
        let _ = writeln!(e.s, ".spawnstate {STATE_BYTES}");
    }
    for level in 0..=cfg.spawn_levels {
        let _ = writeln!(e.s, ".kernel {}", kernel_name(level));
    }
    for level in 0..=cfg.spawn_levels {
        e.emit_kernel(level);
    }
    let source = e.s;
    let program = match assemble_named("generated", &source) {
        Ok(p) => p,
        Err(err) => panic!("generator produced unassemblable source: {err}\n{source}"),
    };
    // Well-formedness: reconvergence analysis must accept the CFG, and no
    // entry point may read a register or predicate before writing it
    // (required for OnDivergence elision equivalence).
    let _cfg = Cfg::build(&program);
    let live = Liveness::compute(&program);
    for entry in program.entry_points() {
        let li = live.live_in(entry.pc);
        assert!(
            li.regs == 0 && li.preds == 0,
            "entry `{}` reads before write (regs {:#x}, preds {:#x})\n{source}",
            entry.name,
            li.regs,
            li.preds,
        );
    }
    GenProgram {
        program,
        source,
        cfg: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::from_seed(42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn seeds_produce_diverse_programs() {
        let a = generate(&GenConfig::from_seed(1));
        let b = generate(&GenConfig::from_seed(2));
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn spawned_programs_declare_entries() {
        let mut cfg = GenConfig::from_seed(7);
        cfg.spawn_levels = 2;
        let g = generate(&cfg);
        assert!(g.program.entry("main").is_some());
        assert!(g.program.entry("uk1").is_some());
        assert!(g.program.entry("uk2").is_some());
        assert!(!g.program.spawn_sites().is_empty());
    }

    #[test]
    fn kv_round_trip() {
        for seed in 0..32 {
            let cfg = GenConfig::from_seed(seed);
            assert_eq!(GenConfig::from_kv(&cfg.to_kv()), Some(cfg));
        }
    }

    #[test]
    fn corpus_assembles_and_passes_liveness() {
        // `generate` panics internally on any violation; sweep a corpus.
        for seed in 0..200 {
            let _ = generate(&GenConfig::from_seed(seed));
        }
    }
}
