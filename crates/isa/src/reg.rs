//! Register, predicate-register, operand and special-register types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit general-purpose register index.
///
/// The architecture exposes a flat file of 32-bit registers per thread
/// (`r0` .. `r63`). Integer and floating-point values share the same file;
/// the interpretation is determined by the operating instruction, exactly
/// as raw PTX `.b32` registers behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// Maximum number of addressable general-purpose registers per thread.
pub const MAX_REGS: usize = 64;

/// A 1-bit predicate register index (`p0` .. `p7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pred(pub u8);

/// Maximum number of predicate registers per thread.
pub const MAX_PREDS: usize = 8;

/// A source operand: either a register or a 32-bit immediate.
///
/// Floating-point immediates are stored as their IEEE-754 bit pattern so
/// that `Operand` stays `Eq + Hash` and round-trips exactly through the
/// assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read the value of a general-purpose register.
    Reg(Reg),
    /// A 32-bit immediate (integer value or `f32` bit pattern).
    Imm(u32),
}

impl Operand {
    /// Builds a floating-point immediate from an `f32` value.
    pub fn imm_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }

    /// Builds an integer immediate from an `i32` value (two's complement).
    pub fn imm_i32(v: i32) -> Self {
        Operand::Imm(v as u32)
    }

    /// Returns the register if this operand reads one.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

/// Special (read-only) registers exposed to device code.
///
/// Mirrors the CUDA/PTX special registers used by the paper's kernels, plus
/// the paper's new `%spawnmem` (`spawnMemAddr`, §IV-A1) register through
/// which dynamically created threads locate their parent's state record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Global thread id (unique across the launch, including respawns).
    Tid,
    /// Lane index within the warp (`0 .. warp_size`).
    LaneId,
    /// Warp id within the SM.
    WarpId,
    /// SM (streaming multiprocessor) index.
    SmId,
    /// Total number of threads in the launch grid.
    NTid,
    /// The spawn-memory address register (`spawnMemAddr` in the paper).
    ///
    /// For launch-time threads this is initialized by hardware to
    /// `SpawnMemoryBase + tid * state_size`; for dynamically created threads
    /// it points into the warp-formation half of spawn memory, where the
    /// parent-provided state pointer was stored (paper Fig. 6).
    SpawnMem,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "0x{v:x}"),
        }
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Special::Tid => "%tid",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
            Special::SmId => "%smid",
            Special::NTid => "%ntid",
            Special::SpawnMem => "%spawnmem",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_float_roundtrip() {
        let op = Operand::imm_f32(1.5);
        assert_eq!(op, Operand::Imm(1.5f32.to_bits()));
    }

    #[test]
    fn operand_from_reg() {
        let op: Operand = Reg(3).into();
        assert_eq!(op.as_reg(), Some(Reg(3)));
        assert_eq!(Operand::Imm(7).as_reg(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(5).to_string(), "r5");
        assert_eq!(Pred(1).to_string(), "p1");
        assert_eq!(Special::SpawnMem.to_string(), "%spawnmem");
    }

    #[test]
    fn negative_immediate_roundtrip() {
        let op = Operand::imm_i32(-2);
        assert_eq!(op, Operand::Imm(0xffff_fffe));
    }
}
