//! # simt-isa — a PTX-like instruction set for SIMT simulation
//!
//! This crate defines the instruction set executed by the `simt-sim`
//! cycle-level simulator, together with a two-pass textual assembler, a
//! disassembler, a pure (side-effect free) ALU evaluator, and the
//! control-flow analyses (CFG construction and immediate post-dominator
//! computation) required by PDOM-style branch reconvergence.
//!
//! The ISA is deliberately close to NVIDIA PTX 1.x, the abstraction level at
//! which Steffen & Zambreno (MICRO 2010) instrumented their benchmark
//! kernels, and adds their proposed [`Instr::Spawn`] instruction plus the
//! `spawn` address space and the `%spawnmem` special register.
//!
//! ## Example
//!
//! ```
//! use simt_isa::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .kernel main
//!     .local 16
//!     main:
//!         mov.u32   r1, %tid
//!         mul.lo.s32 r2, r1, 4
//!         ld.global.u32 r3, [r2+0]
//!         add.s32   r3, r3, 1
//!         st.global.u32 [r2+0], r3
//!         exit
//!     "#,
//! )?;
//! assert_eq!(program.len(), 6);
//! assert_eq!(program.resource_usage().registers, 4);
//! # Ok::<(), simt_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cfg;
pub mod codec;
mod dataflow;
mod disasm;
mod encode;
mod eval;
pub mod gen;
mod instr;
mod program;
mod reg;

pub use asm::{assemble, assemble_named, AsmError};
pub use cfg::{BasicBlock, Cfg, ReconvergenceTable, RECONVERGE_AT_EXIT};
pub use dataflow::{LiveSet, Liveness};
pub use encode::{
    decode, encode, encode_program, encoded_bytes, DecodeError, EncodeError, EncodedInstr,
    ENCODED_INSTR_BYTES,
};
pub use eval::{eval_alu, eval_cmp};
pub use gen::{generate, GenConfig, GenProgram};
pub use instr::{AluOp, CmpOp, Guard, Instr, Instruction, Space, Width};
pub use program::{EntryPoint, Program, ResourceUsage, ValidateError};
pub use reg::{Operand, Pred, Reg, Special, MAX_PREDS, MAX_REGS};

/// Number of bytes in one machine word (all registers are 32-bit).
pub const WORD_BYTES: u32 = 4;
