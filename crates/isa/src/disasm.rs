//! Disassembly: `Display` implementations for instructions and programs.

use crate::instr::{AluOp, CmpOp, Instr, Instruction, Space, Width};
use crate::program::Program;
use std::fmt;

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
            Space::Const => "const",
            Space::Spawn => "spawn",
        };
        f.write_str(s)
    }
}

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::IAdd => "add.s32",
        AluOp::ISub => "sub.s32",
        AluOp::IMul => "mul.lo.s32",
        AluOp::IMad => "mad.lo.s32",
        AluOp::IMin => "min.s32",
        AluOp::IMax => "max.s32",
        AluOp::IDiv => "div.s32",
        AluOp::IRem => "rem.s32",
        AluOp::And => "and.b32",
        AluOp::Or => "or.b32",
        AluOp::Xor => "xor.b32",
        AluOp::Not => "not.b32",
        AluOp::Shl => "shl.b32",
        AluOp::ShrU => "shr.u32",
        AluOp::ShrS => "shr.s32",
        AluOp::FAdd => "add.f32",
        AluOp::FSub => "sub.f32",
        AluOp::FMul => "mul.f32",
        AluOp::FDiv => "div.f32",
        AluOp::FMin => "min.f32",
        AluOp::FMax => "max.f32",
        AluOp::FFma => "fma.f32",
        AluOp::FSqrt => "sqrt.f32",
        AluOp::FRcp => "rcp.f32",
        AluOp::FAbs => "abs.f32",
        AluOp::FNeg => "neg.f32",
        AluOp::FFloor => "floor.f32",
        AluOp::I2F => "cvt.f32.s32",
        AluOp::F2I => "cvt.s32.f32",
        AluOp::U2F => "cvt.f32.u32",
        AluOp::F2U => "cvt.u32.f32",
    }
}

fn cmp_mnemonic(cmp: CmpOp) -> &'static str {
    match cmp {
        CmpOp::EqS => "setp.eq.s32",
        CmpOp::NeS => "setp.ne.s32",
        CmpOp::LtS => "setp.lt.s32",
        CmpOp::LeS => "setp.le.s32",
        CmpOp::GtS => "setp.gt.s32",
        CmpOp::GeS => "setp.ge.s32",
        CmpOp::LtU => "setp.lt.u32",
        CmpOp::LeU => "setp.le.u32",
        CmpOp::GtU => "setp.gt.u32",
        CmpOp::GeU => "setp.ge.u32",
        CmpOp::EqF => "setp.eq.f32",
        CmpOp::NeF => "setp.ne.f32",
        CmpOp::LtF => "setp.lt.f32",
        CmpOp::LeF => "setp.le.f32",
        CmpOp::GtF => "setp.gt.f32",
        CmpOp::GeF => "setp.ge.f32",
    }
}

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::W1 => "u32",
        Width::V4 => "v4",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, d, a, b, c } => {
                if op.is_unary() {
                    write!(f, "{} {d}, {a}", alu_mnemonic(*op))
                } else if op.is_ternary() {
                    write!(f, "{} {d}, {a}, {b}, {c}", alu_mnemonic(*op))
                } else {
                    write!(f, "{} {d}, {a}, {b}", alu_mnemonic(*op))
                }
            }
            Instr::Setp { cmp, p, a, b } => write!(f, "{} {p}, {a}, {b}", cmp_mnemonic(*cmp)),
            Instr::Selp { d, a, b, p } => write!(f, "selp.b32 {d}, {a}, {b}, {p}"),
            Instr::Mov { d, a } => write!(f, "mov.b32 {d}, {a}"),
            Instr::ReadSpecial { d, s } => write!(f, "mov.u32 {d}, {s}"),
            Instr::Ld {
                space,
                d,
                addr,
                offset,
                width,
            } => write!(
                f,
                "ld.{space}.{} {d}, [{addr}{offset:+}]",
                width_suffix(*width)
            ),
            Instr::St {
                space,
                a,
                addr,
                offset,
                width,
            } => write!(
                f,
                "st.{space}.{} [{addr}{offset:+}], {a}",
                width_suffix(*width)
            ),
            Instr::Bra { target } => write!(f, "bra {target}"),
            Instr::Exit => f.write_str("exit"),
            Instr::Spawn { target, ptr } => write!(f, "spawn {target}, {ptr}"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            if g.negate {
                write!(f, "@!{} ", g.pred)?;
            } else {
                write!(f, "@{} ", g.pred)?;
            }
        }
        write!(f, "{}", self.op)
    }
}

impl Program {
    /// Emits assembly source that re-assembles to an equivalent program:
    /// resource directives, `.kernel` entry declarations, labels, and one
    /// instruction per line. Anonymous branch/spawn targets (no label at
    /// the target pc) print numerically and rely on the assembler's
    /// numeric-target fallback.
    ///
    /// Entry points whose name is also a label *elsewhere* in the program
    /// cannot be expressed in source (the assembler binds `.kernel` to the
    /// same-named label); the assembler itself never produces such a
    /// program.
    pub fn to_source(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let r = self.resource_usage();
        if r.shared_bytes != 0 {
            let _ = writeln!(s, ".shared {}", r.shared_bytes);
        }
        if r.local_bytes != 0 {
            let _ = writeln!(s, ".local {}", r.local_bytes);
        }
        if r.global_bytes != 0 {
            let _ = writeln!(s, ".global {}", r.global_bytes);
        }
        if r.const_bytes != 0 {
            let _ = writeln!(s, ".const {}", r.const_bytes);
        }
        if r.spawn_state_bytes != 0 {
            let _ = writeln!(s, ".spawnstate {}", r.spawn_state_bytes);
        }
        // Entries with a same-named label bind through the label and can be
        // declared up front; the rest must sit directly before their pc so
        // the directive's "next instruction" binding lands correctly.
        let mut inline_entries: Vec<(usize, &str)> = Vec::new();
        for e in self.entry_points() {
            if self.labels().get(&e.name) == Some(&e.pc) {
                let _ = writeln!(s, ".kernel {}", e.name);
            } else {
                inline_entries.push((e.pc, e.name.as_str()));
            }
        }
        for (pc, i) in self.instrs().iter().enumerate() {
            for &(epc, name) in &inline_entries {
                if epc == pc {
                    let _ = writeln!(s, ".kernel {name}");
                }
            }
            for (name, &lpc) in self.labels() {
                if lpc == pc {
                    let _ = writeln!(s, "{name}:");
                }
            }
            let _ = writeln!(s, "    {i}");
        }
        // Trailing labels (pc == len) re-bind to the same off-end index.
        for (name, &lpc) in self.labels() {
            if lpc == self.len() {
                let _ = writeln!(s, "{name}:");
            }
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; program `{}` ({} instructions)",
            self.name(),
            self.len()
        )?;
        // Reverse label map for annotation.
        for (pc, i) in self.instrs().iter().enumerate() {
            for (name, &lpc) in self.labels() {
                if lpc == pc {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  {pc:4}: {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::reg::{Operand, Pred, Reg};

    #[test]
    fn instruction_display_is_nonempty() {
        let i = Instruction::guarded(
            Pred(0),
            true,
            Instr::Alu {
                op: AluOp::FAdd,
                d: Reg(1),
                a: Operand::Reg(Reg(2)),
                b: Operand::imm_f32(1.0),
                c: Operand::Imm(0),
            },
        );
        let s = i.to_string();
        assert!(s.starts_with("@!p0 add.f32 r1, r2"), "{s}");
    }

    #[test]
    fn program_display_contains_labels() {
        let p = assemble("start:\nnop\nbra start").unwrap();
        let s = p.to_string();
        assert!(s.contains("start:"), "{s}");
        assert!(s.contains("bra 0"), "{s}");
    }

    #[test]
    fn memory_display_roundtrip_shape() {
        let p = assemble("ld.spawn.v4 r4, [r2+16]\nexit").unwrap();
        assert_eq!(p.instrs()[0].to_string(), "ld.spawn.v4 r4, [r2+16]");
        let p = assemble("st.global.u32 [r2-4], r1\nexit").unwrap();
        assert_eq!(p.instrs()[0].to_string(), "st.global.u32 [r2-4], r1");
    }
}
