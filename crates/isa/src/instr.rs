//! Instruction definitions.

use crate::reg::{Operand, Pred, Reg};
use serde::{Deserialize, Serialize};

/// Arithmetic/logic operations evaluated per lane.
///
/// Unary operations ignore operand `b`; only [`AluOp::FFma`] and
/// [`AluOp::IMad`] use operand `c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// 32-bit integer add (wrapping).
    IAdd,
    /// 32-bit integer subtract (wrapping).
    ISub,
    /// 32-bit integer multiply, low 32 bits (wrapping).
    IMul,
    /// Integer multiply-add: `a * b + c` (wrapping).
    IMad,
    /// Signed integer minimum.
    IMin,
    /// Signed integer maximum.
    IMax,
    /// Signed division; division by zero yields `0` (simulator convention).
    IDiv,
    /// Signed remainder; remainder by zero yields `0`.
    IRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not (unary).
    Not,
    /// Logical shift left (amounts ≥ 32 clamp to 0, like PTX `shl.b32`).
    Shl,
    /// Logical shift right (amounts ≥ 32 clamp to 0, like PTX `shr.u32`).
    ShrU,
    /// Arithmetic shift right (amounts ≥ 32 saturate to the sign fill).
    ShrS,
    /// IEEE-754 single add.
    FAdd,
    /// IEEE-754 single subtract.
    FSub,
    /// IEEE-754 single multiply.
    FMul,
    /// IEEE-754 single divide.
    FDiv,
    /// Floating minimum (NaN-propagating like PTX `min.f32`).
    FMin,
    /// Floating maximum.
    FMax,
    /// Fused multiply-add: `a * b + c`.
    FFma,
    /// Square root (unary).
    FSqrt,
    /// Reciprocal `1/a` (unary).
    FRcp,
    /// Absolute value (unary).
    FAbs,
    /// Negate (unary).
    FNeg,
    /// Floor (unary).
    FFloor,
    /// Convert signed int to float (unary).
    I2F,
    /// Convert float to signed int, truncating (unary).
    F2I,
    /// Convert unsigned int to float (unary).
    U2F,
    /// Convert float to unsigned int, truncating (unary).
    F2U,
}

impl AluOp {
    /// Returns `true` for single-operand operations (operand `b` unused).
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            AluOp::Not
                | AluOp::FSqrt
                | AluOp::FRcp
                | AluOp::FAbs
                | AluOp::FNeg
                | AluOp::FFloor
                | AluOp::I2F
                | AluOp::F2I
                | AluOp::U2F
                | AluOp::F2U
        )
    }

    /// Returns `true` for three-operand operations (operand `c` used).
    pub fn is_ternary(self) -> bool {
        matches!(self, AluOp::FFma | AluOp::IMad)
    }
}

/// Comparison operators for [`Instr::Setp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal (signed int compare).
    EqS,
    /// Not equal (signed).
    NeS,
    /// Less-than (signed).
    LtS,
    /// Less-or-equal (signed).
    LeS,
    /// Greater-than (signed).
    GtS,
    /// Greater-or-equal (signed).
    GeS,
    /// Less-than (unsigned).
    LtU,
    /// Less-or-equal (unsigned).
    LeU,
    /// Greater-than (unsigned).
    GtU,
    /// Greater-or-equal (unsigned).
    GeU,
    /// Equal (float).
    EqF,
    /// Not equal (float).
    NeF,
    /// Less-than (float).
    LtF,
    /// Less-or-equal (float).
    LeF,
    /// Greater-than (float).
    GtF,
    /// Greater-or-equal (float).
    GeF,
}

/// Address spaces visible to device code (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Space {
    /// Off-chip device memory, shared by all SMs (high latency, 8 modules).
    Global,
    /// On-chip per-SM scratchpad, banked.
    Shared,
    /// Per-thread off-chip memory (register spill, traversal stacks).
    Local,
    /// Read-only off-chip memory (broadcast-friendly).
    Const,
    /// The paper's new spawn-memory space: parent→child state records and
    /// the warp-formation metadata area (on-chip, banked).
    Spawn,
}

impl Space {
    /// All address spaces, in a stable order.
    pub const ALL: [Space; 5] = [
        Space::Global,
        Space::Shared,
        Space::Local,
        Space::Const,
        Space::Spawn,
    ];

    /// Whether this space lives on-chip (no off-chip bandwidth consumed).
    pub fn is_on_chip(self) -> bool {
        matches!(self, Space::Shared | Space::Spawn)
    }
}

/// Access width of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Width {
    /// One 32-bit word.
    W1,
    /// A `v4` vector access: four consecutive words / registers (16 bytes).
    V4,
}

impl Width {
    /// The number of bytes transferred per lane.
    pub fn bytes(self) -> u32 {
        match self {
            Width::W1 => 4,
            Width::V4 => 16,
        }
    }

    /// The number of consecutive registers read/written.
    pub fn regs(self) -> u8 {
        match self {
            Width::W1 => 1,
            Width::V4 => 4,
        }
    }
}

/// A guard predicate (`@p0` / `@!p0`): the instruction only commits for
/// lanes whose predicate matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// The predicate register consulted.
    pub pred: Pred,
    /// If `true`, the guard passes when the predicate is **false** (`@!p`).
    pub negate: bool,
}

/// The operation performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Arithmetic/logic: `d = op(a, b, c)`.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        d: Reg,
        /// First source.
        a: Operand,
        /// Second source (ignored by unary ops).
        b: Operand,
        /// Third source (used by `fma`/`mad` only).
        c: Operand,
    },
    /// Compare and set predicate: `p = cmp(a, b)`.
    Setp {
        /// Comparison operator (carries the type interpretation).
        cmp: CmpOp,
        /// Destination predicate.
        p: Pred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Select on predicate: `d = p ? a : b`.
    Selp {
        /// Destination register.
        d: Reg,
        /// Value when predicate is true.
        a: Operand,
        /// Value when predicate is false.
        b: Operand,
        /// Selector predicate.
        p: Pred,
    },
    /// Register move / load-immediate: `d = a`.
    Mov {
        /// Destination register.
        d: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Read a special register: `d = special`.
    ReadSpecial {
        /// Destination register.
        d: Reg,
        /// The special register read.
        s: crate::reg::Special,
    },
    /// Memory load: `d[..w] = space[addr + offset]`.
    Ld {
        /// Address space accessed.
        space: Space,
        /// First destination register (`V4` writes `d..d+3`).
        d: Reg,
        /// Base-address register (byte address).
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: i32,
        /// Access width.
        width: Width,
    },
    /// Memory store: `space[addr + offset] = a[..w]`.
    St {
        /// Address space accessed.
        space: Space,
        /// First source register (`V4` reads `a..a+3`).
        a: Reg,
        /// Base-address register (byte address).
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: i32,
        /// Access width.
        width: Width,
    },
    /// Branch to an absolute instruction index. Divergence arises when the
    /// branch is guarded and lanes disagree.
    Bra {
        /// Target program counter (instruction index).
        target: usize,
    },
    /// Thread exit. The lane retires and frees its resources.
    Exit,
    /// The paper's dynamic thread-creation instruction (§IV-B).
    ///
    /// Creates one new thread per active lane, beginning execution at the
    /// μ-kernel whose first instruction is `target`, and hands the child the
    /// spawn-memory state pointer held in `ptr`.
    Spawn {
        /// Entry PC of the μ-kernel the child executes.
        target: usize,
        /// Register holding the spawn-memory pointer passed to the child.
        ptr: Reg,
    },
    /// No operation.
    Nop,
}

/// A fully-formed instruction: an optional guard plus the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Guard predicate, if any.
    pub guard: Option<Guard>,
    /// The operation.
    pub op: Instr,
}

impl Instruction {
    /// Creates an unguarded instruction.
    pub fn new(op: Instr) -> Self {
        Instruction { guard: None, op }
    }

    /// Creates a guarded instruction (`@p` or `@!p`).
    pub fn guarded(pred: Pred, negate: bool, op: Instr) -> Self {
        Instruction {
            guard: Some(Guard { pred, negate }),
            op,
        }
    }

    /// Whether this instruction may change control flow.
    pub fn is_control(&self) -> bool {
        matches!(self.op, Instr::Bra { .. } | Instr::Exit)
    }

    /// Whether this instruction accesses memory (and thus carries latency).
    pub fn is_memory(&self) -> bool {
        matches!(self.op, Instr::Ld { .. } | Instr::St { .. })
    }

    /// Whether this is the dynamic thread-creation instruction.
    pub fn is_spawn(&self) -> bool {
        matches!(self.op, Instr::Spawn { .. })
    }

    /// Number of immediate operands this instruction carries (relevant to
    /// the binary encoding, which holds at most one).
    pub fn op_immediate_count(&self) -> usize {
        let count = |ops: &[Operand]| ops.iter().filter(|o| matches!(o, Operand::Imm(_))).count();
        match &self.op {
            Instr::Alu { a, b, c, .. } => count(&[*a, *b, *c]),
            Instr::Setp { a, b, .. } | Instr::Selp { a, b, .. } => count(&[*a, *b]),
            Instr::Mov { a, .. } => count(&[*a]),
            _ => 0,
        }
    }

    /// Registers read by this instruction (upper bound; used by hazard
    /// checks and resource accounting).
    pub fn reads(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match &self.op {
            Instr::Alu { a, b, c, .. } => {
                push(a);
                push(b);
                push(c);
            }
            Instr::Setp { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::Selp { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::Mov { a, .. } => push(a),
            Instr::ReadSpecial { .. } => {}
            Instr::Ld { addr, .. } => out.push(*addr),
            Instr::St { a, addr, width, .. } => {
                out.push(*addr);
                for i in 0..width.regs() {
                    out.push(Reg(a.0 + i));
                }
            }
            Instr::Spawn { ptr, .. } => out.push(*ptr),
            Instr::Bra { .. } | Instr::Exit | Instr::Nop => {}
        }
        out
    }

    /// Registers written by this instruction.
    pub fn writes(&self) -> Vec<Reg> {
        match &self.op {
            Instr::Alu { d, .. }
            | Instr::Selp { d, .. }
            | Instr::Mov { d, .. }
            | Instr::ReadSpecial { d, .. } => vec![*d],
            Instr::Ld { d, width, .. } => (0..width.regs()).map(|i| Reg(d.0 + i)).collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Special;

    #[test]
    fn unary_and_ternary_classification() {
        assert!(AluOp::FSqrt.is_unary());
        assert!(!AluOp::FAdd.is_unary());
        assert!(AluOp::FFma.is_ternary());
        assert!(AluOp::IMad.is_ternary());
        assert!(!AluOp::IAdd.is_ternary());
    }

    #[test]
    fn width_sizes() {
        assert_eq!(Width::W1.bytes(), 4);
        assert_eq!(Width::V4.bytes(), 16);
        assert_eq!(Width::V4.regs(), 4);
    }

    #[test]
    fn space_chip_location() {
        assert!(Space::Shared.is_on_chip());
        assert!(Space::Spawn.is_on_chip());
        assert!(!Space::Global.is_on_chip());
        assert!(!Space::Local.is_on_chip());
        assert!(!Space::Const.is_on_chip());
    }

    #[test]
    fn instruction_classification() {
        let bra = Instruction::new(Instr::Bra { target: 0 });
        assert!(bra.is_control());
        let ld = Instruction::new(Instr::Ld {
            space: Space::Global,
            d: Reg(1),
            addr: Reg(2),
            offset: 0,
            width: Width::W1,
        });
        assert!(ld.is_memory());
        let spawn = Instruction::new(Instr::Spawn {
            target: 0,
            ptr: Reg(1),
        });
        assert!(spawn.is_spawn());
    }

    #[test]
    fn read_write_sets() {
        let i = Instruction::new(Instr::Alu {
            op: AluOp::FFma,
            d: Reg(0),
            a: Reg(1).into(),
            b: Reg(2).into(),
            c: Reg(3).into(),
        });
        assert_eq!(i.reads(), vec![Reg(1), Reg(2), Reg(3)]);
        assert_eq!(i.writes(), vec![Reg(0)]);

        let v4 = Instruction::new(Instr::Ld {
            space: Space::Spawn,
            d: Reg(4),
            addr: Reg(1),
            offset: 0,
            width: Width::V4,
        });
        assert_eq!(v4.writes(), vec![Reg(4), Reg(5), Reg(6), Reg(7)]);

        let st = Instruction::new(Instr::St {
            space: Space::Spawn,
            a: Reg(8),
            addr: Reg(1),
            offset: 16,
            width: Width::V4,
        });
        assert_eq!(st.reads(), vec![Reg(1), Reg(8), Reg(9), Reg(10), Reg(11)]);

        let special = Instruction::new(Instr::ReadSpecial {
            d: Reg(2),
            s: Special::Tid,
        });
        assert!(special.reads().is_empty());
        assert_eq!(special.writes(), vec![Reg(2)]);
    }
}
