//! Control-flow graph construction and immediate post-dominator analysis.
//!
//! PDOM branch reconvergence (Fung et al., MICRO 2007; used as the baseline
//! in the paper) needs, for every potentially-divergent branch, the PC at
//! which the diverged paths are guaranteed to rejoin — the branch's
//! *immediate post-dominator*. We compute it once per program with the
//! Cooper–Harvey–Kennedy iterative dominator algorithm on the reverse CFG.
//!
//! `spawn` is deliberately **not** a CFG edge: the child thread starts a new
//! control-flow context, which is precisely why μ-kernels sidestep
//! divergence.

use crate::instr::Instr;
use crate::program::Program;

/// A maximal straight-line sequence of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub start: usize,
    /// PC one past the last instruction.
    pub end: usize,
}

impl BasicBlock {
    /// PC of the final instruction in the block.
    pub fn last_pc(&self) -> usize {
        self.end - 1
    }
}

/// Sentinel "reconverge at thread exit" PC (no common rejoin point exists
/// before the thread retires).
pub const RECONVERGE_AT_EXIT: usize = usize::MAX;

/// The control-flow graph of a [`Program`] plus post-dominator results.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Map from PC to owning block index.
    block_of_pc: Vec<usize>,
    succs: Vec<Vec<usize>>,
    /// Immediate post-dominator per block; `None` means the virtual exit.
    ipdom: Vec<Option<usize>>,
}

/// Virtual-exit marker used internally during analysis.
const VEXIT: usize = usize::MAX;

impl Cfg {
    /// Builds the CFG and runs post-dominator analysis.
    pub fn build(program: &Program) -> Self {
        let n = program.len();
        // --- leaders ---
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for e in program.entry_points() {
            if e.pc < n {
                leader[e.pc] = true;
            }
        }
        for (pc, i) in program.instrs().iter().enumerate() {
            match i.op {
                Instr::Bra { target } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Exit if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        // --- blocks ---
        let mut blocks = Vec::new();
        let mut block_of_pc = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &lead) in leader.iter().enumerate() {
            if pc > start && lead {
                blocks.push(BasicBlock { start, end: pc });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock { start, end: n });
        }
        for (bi, b) in blocks.iter().enumerate() {
            for slot in &mut block_of_pc[b.start..b.end] {
                *slot = bi;
            }
        }
        // --- edges ---
        let nb = blocks.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (bi, b) in blocks.iter().enumerate() {
            let last = program.fetch(b.last_pc());
            let push = |s: &mut Vec<usize>, t: usize| {
                if !s.contains(&t) {
                    s.push(t);
                }
            };
            match last.op {
                Instr::Bra { target } => {
                    push(&mut succs[bi], block_of_pc[target]);
                    if last.guard.is_some() && b.end < n {
                        push(&mut succs[bi], block_of_pc[b.end]);
                    }
                }
                Instr::Exit => {
                    push(&mut succs[bi], VEXIT);
                    if last.guard.is_some() && b.end < n {
                        push(&mut succs[bi], block_of_pc[b.end]);
                    }
                }
                _ => {
                    if b.end < n {
                        push(&mut succs[bi], block_of_pc[b.end]);
                    } else {
                        push(&mut succs[bi], VEXIT);
                    }
                }
            }
        }
        let ipdom = postdominators(nb, &succs);
        Cfg {
            blocks,
            block_of_pc,
            succs,
            ipdom,
        }
    }

    /// The basic blocks, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Index of the block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of_pc[pc]
    }

    /// Successor block indices of block `b` ([`RECONVERGE_AT_EXIT`] marks
    /// the virtual exit).
    pub fn successors(&self, b: usize) -> &[usize] {
        &self.succs[b]
    }

    /// Immediate post-dominator block of block `b`, or `None` when it is
    /// the virtual exit.
    pub fn immediate_postdominator(&self, b: usize) -> Option<usize> {
        self.ipdom[b]
    }

    /// Computes the PDOM reconvergence PC for the branch at `pc`: the first
    /// instruction of the branch block's immediate post-dominator, or
    /// [`RECONVERGE_AT_EXIT`] when paths only rejoin at thread exit.
    pub fn reconvergence_pc(&self, pc: usize) -> usize {
        match self.ipdom[self.block_of_pc[pc]] {
            Some(b) => self.blocks[b].start,
            None => RECONVERGE_AT_EXIT,
        }
    }
}

/// Per-branch reconvergence PCs, precomputed for the whole program.
///
/// Indexed by branch PC; non-branch PCs carry `None`.
#[derive(Debug, Clone)]
pub struct ReconvergenceTable {
    rpc: Vec<Option<usize>>,
}

impl ReconvergenceTable {
    /// Builds the table for `program`.
    pub fn build(program: &Program) -> Self {
        let cfg = Cfg::build(program);
        let mut rpc = vec![None; program.len()];
        for (pc, i) in program.instrs().iter().enumerate() {
            if matches!(i.op, Instr::Bra { .. }) {
                rpc[pc] = Some(cfg.reconvergence_pc(pc));
            }
        }
        ReconvergenceTable { rpc }
    }

    /// Reconvergence PC of the branch at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not a branch instruction (the simulator only
    /// queries branches).
    pub fn reconvergence_pc(&self, pc: usize) -> usize {
        self.rpc[pc].expect("reconvergence queried for a non-branch pc")
    }
}

/// Iterative immediate post-dominator computation (Cooper–Harvey–Kennedy on
/// the reverse graph, rooted at the virtual exit).
///
/// Returns, per block, `Some(block)` or `None` when the immediate
/// post-dominator is the virtual exit itself. Blocks that cannot reach the
/// exit (infinite loops) also get `None`.
fn postdominators(nb: usize, succs: &[Vec<usize>]) -> Vec<Option<usize>> {
    if nb == 0 {
        return Vec::new();
    }
    // Reverse CFG: nodes 0..nb plus virtual exit `nb`.
    let vexit = nb;
    let total = nb + 1;
    let mut preds_rev: Vec<Vec<usize>> = vec![Vec::new(); total]; // preds in reverse graph = succs in forward
    let mut succs_rev: Vec<Vec<usize>> = vec![Vec::new(); total]; // succs in reverse graph = preds in forward
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            let t = if s == VEXIT { vexit } else { s };
            preds_rev[b].push(t);
            succs_rev[t].push(b);
        }
    }
    // Postorder DFS on the reverse graph from the virtual exit.
    let mut postorder = Vec::with_capacity(total);
    let mut visited = vec![false; total];
    let mut stack: Vec<(usize, usize)> = vec![(vexit, 0)];
    visited[vexit] = true;
    while let Some((node, idx)) = stack.pop() {
        if idx < succs_rev[node].len() {
            stack.push((node, idx + 1));
            let next = succs_rev[node][idx];
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            postorder.push(node);
        }
    }
    let mut order_index = vec![usize::MAX; total];
    for (i, &n) in postorder.iter().enumerate() {
        order_index[n] = i;
    }
    let mut idom = vec![usize::MAX; total];
    idom[vexit] = vexit;
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder over the reverse graph (exit first).
        for &b in postorder.iter().rev() {
            if b == vexit {
                continue;
            }
            let mut new_idom = usize::MAX;
            for &p in &preds_rev[b] {
                if idom[p] == usize::MAX {
                    continue;
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &order_index, p, new_idom)
                };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    (0..nb)
        .map(|b| match idom[b] {
            x if x == usize::MAX || x == vexit => None,
            x => Some(x),
        })
        .collect()
}

fn intersect(idom: &[usize], order: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order[a] < order[b] {
            a = idom[a];
        }
        while order[b] < order[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn straight_line_single_block() {
        let p = assemble("nop\nnop\nexit").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0], BasicBlock { start: 0, end: 3 });
    }

    #[test]
    fn if_then_reconverges_after_join() {
        // 0: setp
        // 1: @p0 bra skip      <- diverges; rejoin at 3
        // 2: nop               (then-side work)
        // 3: skip: nop
        // 4: exit
        let p = assemble(
            r#"
            setp.eq.s32 p0, r1, 0
            @p0 bra skip
            nop
            skip:
            nop
            exit
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.reconvergence_pc(1), 3);
    }

    #[test]
    fn if_else_reconverges_at_merge() {
        // 0: @p0 bra else_
        // 1: nop
        // 2: bra merge
        // 3: else_: nop
        // 4: merge: exit
        let p = assemble(
            r#"
            @p0 bra else_
            nop
            bra merge
            else_:
            nop
            merge:
            exit
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.reconvergence_pc(0), 4);
        // The unconditional bra also has a reconvergence PC (its target).
        assert_eq!(cfg.reconvergence_pc(2), 4);
    }

    #[test]
    fn loop_back_edge_reconverges_at_loop_exit() {
        // Figure 2 of the paper: A; do { B } while(p); C
        // 0: nop              (A)
        // 1: body: nop        (B)
        // 2: setp
        // 3: @p0 bra body     <- back edge; reconverges at 4 (C)
        // 4: nop              (C)
        // 5: exit
        let p = assemble(
            r#"
            nop
            body:
            nop
            setp.ne.s32 p0, r1, 0
            @p0 bra body
            nop
            exit
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.reconvergence_pc(3), 4);
    }

    #[test]
    fn guarded_exit_then_code_reconverges_at_exit_sentinel_free() {
        // Diverging branch whose paths only meet at thread exit.
        // 0: @p0 bra b
        // 1: exit
        // 2: b: exit
        let p = assemble("@p0 bra b\nexit\nb:\nexit").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.reconvergence_pc(0), RECONVERGE_AT_EXIT);
    }

    #[test]
    fn nested_loops_reconverge_correctly() {
        // outer: { inner: { ... @p0 bra inner } @p1 bra outer }
        let p = assemble(
            r#"
            outer:
            nop
            inner:
            nop
            @p0 bra inner
            nop
            @p1 bra outer
            exit
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        // inner branch at pc 2 reconverges at pc 3 (after inner loop)
        assert_eq!(cfg.reconvergence_pc(2), 3);
        // outer branch at pc 4 reconverges at pc 5 (the exit instruction)
        assert_eq!(cfg.reconvergence_pc(4), 5);
    }

    #[test]
    fn reconvergence_table_covers_all_branches() {
        let p = assemble(
            r#"
            setp.eq.s32 p0, r1, 0
            @p0 bra skip
            nop
            skip:
            exit
            "#,
        )
        .unwrap();
        let t = ReconvergenceTable::build(&p);
        assert_eq!(t.reconvergence_pc(1), 3);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn reconvergence_table_panics_for_non_branch() {
        let p = assemble("nop\nexit").unwrap();
        let t = ReconvergenceTable::build(&p);
        let _ = t.reconvergence_pc(0);
    }

    #[test]
    fn ukernel_entries_form_separate_roots() {
        // main spawns child; child is CFG-unreachable from main but must
        // still be a block leader with valid analysis.
        let p = assemble(
            r#"
            .kernel main
            .kernel child
            main:
                spawn $child, r1
                exit
            child:
                setp.eq.s32 p0, r1, 0
                @p0 bra done
                nop
            done:
                exit
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        // The branch inside the spawned μ-kernel reconverges at `done`.
        assert_eq!(cfg.reconvergence_pc(3), 5);
        // Blocks: [0..2), [2..4), [4..5), [5..6)
        assert!(cfg.blocks().len() >= 4);
    }

    #[test]
    fn infinite_loop_gets_exit_sentinel() {
        let p = assemble(
            r#"
            spin:
            @p0 bra spin
            bra spin
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.reconvergence_pc(0), RECONVERGE_AT_EXIT);
    }
}
