//! Minimal 3-component f32 vector.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A 3D vector of `f32` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector.
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all components equal to `v`.
    pub fn splat(v: f32) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics (debug) on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        debug_assert!(l > 0.0, "cannot normalize the zero vector");
        self / l
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Index of the component with the largest absolute value.
    pub fn dominant_axis(self) -> usize {
        let a = [self.x.abs(), self.y.abs(), self.z.abs()];
        if a[0] >= a[1] && a[0] >= a[2] {
            0
        } else if a[1] >= a[2] {
            1
        } else {
            2
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn normalize_gives_unit_length() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dominant_axis_selection() {
        assert_eq!(Vec3::new(-5.0, 1.0, 2.0).dominant_axis(), 0);
        assert_eq!(Vec3::new(0.0, -3.0, 2.0).dominant_axis(), 1);
        assert_eq!(Vec3::new(0.0, 1.0, -2.0).dominant_axis(), 2);
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    fn small_vec() -> impl Strategy<Value = Vec3> {
        (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0)
            .prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn cross_orthogonal_to_inputs(a in small_vec(), b in small_vec()) {
            let c = a.cross(b);
            let scale = (a.length() * b.length()).max(1.0);
            prop_assert!((c.dot(a) / (scale * scale.max(1.0))).abs() < 1e-3);
            prop_assert!((c.dot(b) / (scale * scale.max(1.0))).abs() < 1e-3);
        }

        #[test]
        fn min_max_bracket(a in small_vec(), b in small_vec()) {
            let lo = a.min(b);
            let hi = a.max(b);
            for i in 0..3 {
                prop_assert!(lo[i] <= hi[i]);
            }
        }
    }
}
