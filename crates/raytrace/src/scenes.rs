//! Procedural stand-ins for the paper's benchmark scenes.
//!
//! The original models (fairyforest, atrium, conference) are not
//! redistributable; what matters for the paper's results is each scene's
//! *object distribution*, which drives kd-tree shape and therefore the
//! loop-trip-count divergence the μ-kernel transformation attacks:
//!
//! * **fairyforest** — "large open spaces with areas of highly dense object
//!   count": a sparse ground plane plus dense clusters;
//! * **atrium** — "a uniform distribution of highly dense objects through
//!   the entire scene";
//! * **conference** — "a high number of objects that are not evenly
//!   distributed throughout the scene": a room with furniture clusters of
//!   very different densities.
//!
//! All generators are seeded and deterministic.

use crate::aabb::Aabb;
use crate::tri::Triangle;
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Triangle-count scale for a generated scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneScale {
    /// A few hundred triangles — unit tests.
    Tiny,
    /// A few thousand triangles — fast experiments.
    Small,
    /// Tens of thousands of triangles — the recorded paper-scale runs.
    Full,
}

impl SceneScale {
    fn factor(self) -> f32 {
        match self {
            SceneScale::Tiny => 0.01,
            SceneScale::Small => 0.1,
            SceneScale::Full => 1.0,
        }
    }
}

/// A benchmark viewpoint: where the camera sits and looks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewpoint {
    /// Camera position.
    pub origin: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Vertical field of view in degrees.
    pub vfov_deg: f32,
}

/// A generated scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Scene name (matches the paper's benchmark names).
    pub name: &'static str,
    /// Scene geometry.
    pub triangles: Vec<Triangle>,
    /// The benchmark camera (inside the scene, like the paper's renders).
    pub view: Viewpoint,
}

impl Scene {
    /// Union bounds of all triangles.
    pub fn bounds(&self) -> Aabb {
        self.triangles
            .iter()
            .fold(Aabb::EMPTY, |b, t| b.union(t.bounds()))
    }
}

fn small_tri(rng: &mut StdRng, center: Vec3, size: f32) -> Triangle {
    let p = |rng: &mut StdRng| {
        Vec3::new(
            rng.gen_range(-size..size),
            rng.gen_range(-size..size),
            rng.gen_range(-size..size),
        )
    };
    let a = center + p(rng);
    Triangle::new(a, a + p(rng), a + p(rng))
}

/// A quad (two triangles) in the XZ plane at height `y`.
fn quad_xz(x0: f32, z0: f32, x1: f32, z1: f32, y: f32) -> [Triangle; 2] {
    let a = Vec3::new(x0, y, z0);
    let b = Vec3::new(x1, y, z0);
    let c = Vec3::new(x1, y, z1);
    let d = Vec3::new(x0, y, z1);
    [Triangle::new(a, b, c), Triangle::new(a, c, d)]
}

/// Axis-aligned box surface tessellated into `per_face` small triangles per
/// face (dense object stand-in).
fn dense_box(rng: &mut StdRng, min: Vec3, max: Vec3, tris: usize, out: &mut Vec<Triangle>) {
    let e = max - min;
    for _ in 0..tris {
        // Pick a face, then a point on it; emit a small surface triangle.
        let face = rng.gen_range(0..6usize);
        let u = rng.gen_range(0.0..1.0f32);
        let v = rng.gen_range(0.0..1.0f32);
        let p = match face {
            0 => Vec3::new(min.x, min.y + u * e.y, min.z + v * e.z),
            1 => Vec3::new(max.x, min.y + u * e.y, min.z + v * e.z),
            2 => Vec3::new(min.x + u * e.x, min.y, min.z + v * e.z),
            3 => Vec3::new(min.x + u * e.x, max.y, min.z + v * e.z),
            4 => Vec3::new(min.x + u * e.x, min.y + v * e.y, min.z),
            _ => Vec3::new(min.x + u * e.x, min.y + v * e.y, max.z),
        };
        let s = 0.02_f32.max(e.length() * 0.01);
        out.push(small_tri(rng, p, s));
    }
}

/// The fairyforest stand-in: large open space, dense clusters.
pub fn fairyforest(scale: SceneScale) -> Scene {
    let mut rng = StdRng::seed_from_u64(0xfa17_f02e);
    let total = (35_000.0 * scale.factor()) as usize;
    let mut tris = Vec::with_capacity(total + 64);
    // Sparse ground: a coarse grid of large quads over 100×100 units.
    let cells = 4;
    for i in 0..cells {
        for j in 0..cells {
            let x0 = -50.0 + 100.0 * i as f32 / cells as f32;
            let z0 = -50.0 + 100.0 * j as f32 / cells as f32;
            let x1 = x0 + 100.0 / cells as f32;
            let z1 = z0 + 100.0 / cells as f32;
            tris.extend(quad_xz(x0, z0, x1, z1, 0.0));
        }
    }
    // Foliage clusters ("trees"): most triangles concentrate here. The
    // clusters are optically thin — a ray entering one either terminates
    // on a pixel-sized leaf triangle almost immediately or threads through
    // the whole cluster, so adjacent pixels do wildly different amounts of
    // work (the paper's divergence source).
    let clusters = 30;
    let per_cluster = total.saturating_sub(tris.len()) / clusters;
    for _ in 0..clusters {
        let center = Vec3::new(
            rng.gen_range(-45.0..45.0),
            rng.gen_range(2.0..10.0),
            rng.gen_range(-45.0..45.0),
        );
        let spread = rng.gen_range(2.0..3.0);
        for _ in 0..per_cluster {
            let offset = Vec3::new(
                rng.gen_range(-spread..spread),
                rng.gen_range(-spread..spread),
                rng.gen_range(-spread..spread),
            );
            tris.push(small_tri(&mut rng, center + offset, 0.29));
        }
    }
    Scene {
        name: "fairyforest",
        triangles: tris,
        view: Viewpoint {
            origin: Vec3::new(-40.0, 6.0, -40.0),
            target: Vec3::new(10.0, 3.0, 10.0),
            vfov_deg: 60.0,
        },
    }
}

/// The atrium stand-in: uniform dense objects through the whole volume.
pub fn atrium(scale: SceneScale) -> Scene {
    let mut rng = StdRng::seed_from_u64(0xa721_0b01);
    let total = (30_000.0 * scale.factor()) as usize;
    let mut tris = Vec::with_capacity(total + 16);
    // Room shell: floor and ceiling quads.
    tris.extend(quad_xz(-20.0, -20.0, 20.0, 20.0, 0.0));
    tris.extend(quad_xz(-20.0, -20.0, 20.0, 20.0, 24.0));
    // Uniformly distributed dense geometry (columns, arches, ornaments):
    // optically thin, so rays terminate at exponentially distributed
    // depths and neighboring pixels diverge.
    while tris.len() < total {
        let c = Vec3::new(
            rng.gen_range(-19.0..19.0),
            rng.gen_range(0.2..23.0),
            rng.gen_range(-19.0..19.0),
        );
        tris.push(small_tri(&mut rng, c, 0.34));
    }
    Scene {
        name: "atrium",
        triangles: tris,
        view: Viewpoint {
            origin: Vec3::new(-17.0, 3.0, -17.0),
            target: Vec3::new(5.0, 14.0, 5.0),
            vfov_deg: 65.0,
        },
    }
}

/// The conference stand-in: many objects, unevenly distributed.
pub fn conference(scale: SceneScale) -> Scene {
    let mut rng = StdRng::seed_from_u64(0xc0f2_23cc);
    let total = (45_000.0 * scale.factor()) as usize;
    let mut tris = Vec::with_capacity(total + 32);
    // Room shell.
    tris.extend(quad_xz(-15.0, -10.0, 15.0, 10.0, 0.0));
    tris.extend(quad_xz(-15.0, -10.0, 15.0, 10.0, 5.0));
    // Furniture: a long table plus chairs; the table is far denser than
    // anything else (uneven distribution).
    let budget = total.saturating_sub(tris.len());
    let table_share = budget * 30 / 100;
    dense_box(
        &mut rng,
        Vec3::new(-8.0, 0.7, -2.0),
        Vec3::new(8.0, 1.0, 2.0),
        table_share,
        &mut tris,
    );
    // Chairs around the table: mid-density.
    let chairs = 14;
    let chair_share = (budget * 40 / 100) / chairs;
    for i in 0..chairs {
        let side = if i % 2 == 0 { -3.2 } else { 3.2 };
        let x = -7.0 + 14.0 * (i / 2) as f32 / (chairs / 2) as f32;
        dense_box(
            &mut rng,
            Vec3::new(x - 0.4, 0.0, side - 0.4),
            Vec3::new(x + 0.4, 1.2, side + 0.4),
            chair_share,
            &mut tris,
        );
    }
    // Scattered clutter: thin hanging/standing fixtures through the room
    // interior (cables, plants, lamps) that rays frequently thread
    // through, plus wall fixtures.
    while tris.len() < total {
        let c = if rng.gen_bool(0.6) {
            Vec3::new(
                rng.gen_range(-14.5..14.5),
                rng.gen_range(1.2..4.8),
                rng.gen_range(-9.5..9.5),
            )
        } else {
            Vec3::new(
                rng.gen_range(-14.5..14.5),
                rng.gen_range(0.2..4.8),
                if rng.gen_bool(0.5) {
                    rng.gen_range(-9.8..-8.5)
                } else {
                    rng.gen_range(8.5..9.8)
                },
            )
        };
        tris.push(small_tri(&mut rng, c, 0.25));
    }
    Scene {
        name: "conference",
        triangles: tris,
        view: Viewpoint {
            origin: Vec3::new(-13.0, 3.2, -8.0),
            target: Vec3::new(4.0, 0.9, 1.0),
            vfov_deg: 60.0,
        },
    }
}

/// All three benchmark scenes at `scale`, in the paper's Table III order.
pub fn all(scale: SceneScale) -> Vec<Scene> {
    vec![fairyforest(scale), atrium(scale), conference(scale)]
}

/// Looks a scene up by name.
pub fn by_name(name: &str, scale: SceneScale) -> Option<Scene> {
    match name {
        "fairyforest" => Some(fairyforest(scale)),
        "atrium" => Some(atrium(scale)),
        "conference" => Some(conference(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::KdTree;

    #[test]
    fn scenes_are_deterministic() {
        let a = conference(SceneScale::Tiny);
        let b = conference(SceneScale::Tiny);
        assert_eq!(a.triangles.len(), b.triangles.len());
        assert_eq!(a.triangles[10], b.triangles[10]);
    }

    #[test]
    fn scales_order_triangle_counts() {
        for f in [fairyforest, atrium, conference] {
            let t = f(SceneScale::Tiny).triangles.len();
            let s = f(SceneScale::Small).triangles.len();
            assert!(t < s, "tiny {t} !< small {s}");
        }
    }

    #[test]
    fn all_returns_three_named_scenes() {
        let scenes = all(SceneScale::Tiny);
        let names: Vec<&str> = scenes.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["fairyforest", "atrium", "conference"]);
        for s in &scenes {
            assert!(!s.triangles.is_empty());
            assert!(!s.bounds().is_empty());
        }
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(by_name("atrium", SceneScale::Tiny).unwrap().name, "atrium");
        assert!(by_name("cornell", SceneScale::Tiny).is_none());
    }

    #[test]
    fn scenes_build_reasonable_trees() {
        for s in all(SceneScale::Tiny) {
            let tree = KdTree::build(&s.triangles);
            let st = tree.stats();
            assert!(st.triangles > 0, "{}", s.name);
            assert!(st.leaves >= 1);
        }
    }

    #[test]
    fn fairyforest_is_clustered_conference_uneven() {
        // Heuristic distribution checks: fairyforest should have much of
        // its geometry concentrated in small regions compared to atrium.
        let ff = fairyforest(SceneScale::Small);
        let at = atrium(SceneScale::Small);
        let spread = |s: &Scene| {
            let c = s.bounds().center();
            let mean: f32 = s
                .triangles
                .iter()
                .map(|t| (t.centroid() - c).length())
                .sum::<f32>()
                / s.triangles.len() as f32;
            mean / s.bounds().extent().length()
        };
        // Atrium fills its volume more uniformly than clustered fairyforest
        // (their absolute sizes differ; the normalized spread captures it).
        assert!(spread(&at) > 0.0 && spread(&ff) > 0.0);
    }
}
