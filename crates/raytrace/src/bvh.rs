//! A bounding-volume hierarchy over triangles.
//!
//! The BVH is the acceleration structure of the path-traced workload
//! (registry id `bvh`): unlike the kd-tree, every triangle lives in
//! exactly one leaf, so the flattened layout needs no triangle-reference
//! indirection — each leaf names a contiguous run of Wald records.
//!
//! The builder is a deterministic median split on the longest centroid
//! axis (no SAH): identical input always yields an identical tree, which
//! the workload fingerprints rely on. Host traversal
//! ([`Bvh::intersect`]) is the sanity oracle for the tree itself; the
//! bit-exact device mirror lives in `rt-kernels` next to the kernels it
//! mirrors.

use crate::aabb::Aabb;
use crate::tri::{Hit, Triangle, WaldTriangle};
use crate::Ray;

/// One flattened BVH node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BvhNode {
    /// Interior node with two children.
    Inner {
        /// Bounds of everything below.
        bounds: Aabb,
        /// Index of the left child (visited first).
        left: u32,
        /// Index of the right child (pushed on the stack).
        right: u32,
    },
    /// Leaf owning `count` consecutive Wald records starting at `first`.
    Leaf {
        /// Bounds of the leaf's triangles.
        bounds: Aabb,
        /// First Wald-record slot.
        first: u32,
        /// Number of records.
        count: u32,
    },
}

impl BvhNode {
    /// The node's bounds.
    pub fn bounds(&self) -> Aabb {
        match *self {
            BvhNode::Inner { bounds, .. } | BvhNode::Leaf { bounds, .. } => bounds,
        }
    }
}

/// Shape statistics, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BvhStats {
    /// Total nodes.
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Deepest leaf (root = depth 0).
    pub max_depth: usize,
    /// Wald records (== referenced triangles).
    pub tris: usize,
}

/// A flattened BVH plus its leaf-ordered Wald records.
#[derive(Debug, Clone)]
pub struct Bvh {
    nodes: Vec<BvhNode>,
    /// Wald records in leaf order; slot `i` came from triangle
    /// `original[i]` of the build input.
    wald: Vec<WaldTriangle>,
    /// Original triangle index of each Wald slot.
    original: Vec<u32>,
    bounds: Aabb,
}

/// Largest leaf the builder emits. Kept under 256 so a leaf's
/// `(count, first)` pair packs into one 32-bit traversal cursor
/// (`count << 24 | slot`), same packing the kd μ-kernels use.
pub const BVH_MAX_LEAF: usize = 4;

impl Bvh {
    /// Builds the hierarchy. Degenerate triangles are dropped (they have
    /// no Wald record), matching the kd-tree builder's behaviour.
    pub fn build(triangles: &[Triangle]) -> Self {
        // Items: (original index, wald record, centroid, bounds).
        let mut items: Vec<(u32, WaldTriangle, crate::Vec3, Aabb)> = triangles
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let w = WaldTriangle::new(t)?;
                Some((i as u32, w, t.centroid(), t.bounds()))
            })
            .collect();
        let mut nodes = Vec::new();
        let mut wald = Vec::new();
        let mut original = Vec::new();
        if items.is_empty() {
            nodes.push(BvhNode::Leaf {
                bounds: Aabb::EMPTY,
                first: 0,
                count: 0,
            });
            return Bvh {
                nodes,
                wald,
                original,
                bounds: Aabb::EMPTY,
            };
        }
        let n = items.len();
        build_node(&mut items[..n], &mut nodes, &mut wald, &mut original);
        let bounds = nodes[0].bounds();
        Bvh {
            nodes,
            wald,
            original,
            bounds,
        }
    }

    /// Bounds of the whole hierarchy.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Flattened nodes; index 0 is the root.
    pub fn nodes(&self) -> &[BvhNode] {
        &self.nodes
    }

    /// Wald records in leaf order.
    pub fn wald_triangles(&self) -> &[WaldTriangle] {
        &self.wald
    }

    /// Original triangle index of Wald slot `slot`.
    pub fn original_index(&self, slot: u32) -> u32 {
        self.original[slot as usize]
    }

    /// Shape statistics.
    pub fn stats(&self) -> BvhStats {
        let mut stats = BvhStats {
            nodes: self.nodes.len(),
            leaves: 0,
            max_depth: 0,
            tris: self.wald.len(),
        };
        // Depth-first with explicit (node, depth) stack.
        let mut stack = vec![(0u32, 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            stats.max_depth = stats.max_depth.max(depth);
            match self.nodes[idx as usize] {
                BvhNode::Leaf { .. } => stats.leaves += 1,
                BvhNode::Inner { left, right, .. } => {
                    stack.push((left, depth + 1));
                    stack.push((right, depth + 1));
                }
            }
        }
        stats
    }

    /// Closest hit along `ray`, or `None`. `Hit::tri` is the *original*
    /// triangle index, like [`crate::KdTree::intersect`].
    pub fn intersect(&self, ray: &Ray) -> Option<Hit> {
        let mut best_t = ray.tmax;
        let mut best_slot = None;
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        stack.push(0);
        while let Some(idx) = stack.pop() {
            let node = self.nodes[idx as usize];
            let mut clipped = *ray;
            clipped.tmax = best_t;
            if node.bounds().intersect(&clipped).is_none() {
                continue;
            }
            match node {
                BvhNode::Leaf { first, count, .. } => {
                    for slot in first..first + count {
                        if let Some(t) = self.wald[slot as usize].intersect(ray) {
                            if t <= best_t {
                                best_t = t;
                                best_slot = Some(slot);
                            }
                        }
                    }
                }
                BvhNode::Inner { left, right, .. } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
        best_slot.map(|slot| Hit {
            t: best_t,
            tri: self.original[slot as usize],
        })
    }
}

/// Recursively builds the subtree for `items`, returning its node index.
fn build_node(
    items: &mut [(u32, WaldTriangle, crate::Vec3, Aabb)],
    nodes: &mut Vec<BvhNode>,
    wald: &mut Vec<WaldTriangle>,
    original: &mut Vec<u32>,
) -> u32 {
    let mut bounds = Aabb::EMPTY;
    let mut cbounds = Aabb::EMPTY;
    for (_, _, c, b) in items.iter() {
        bounds = bounds.union(*b);
        cbounds.grow(*c);
    }
    let idx = nodes.len() as u32;
    // Flat centroid cloud (or tiny leaf): stop splitting.
    if items.len() <= BVH_MAX_LEAF || cbounds.extent()[cbounds.longest_axis()] <= 0.0 {
        let first = wald.len() as u32;
        for (orig, w, _, _) in items.iter() {
            wald.push(*w);
            original.push(*orig);
        }
        nodes.push(BvhNode::Leaf {
            bounds,
            first,
            count: items.len() as u32,
        });
        return idx;
    }
    let axis = cbounds.longest_axis();
    // Deterministic median split: order by centroid, ties by original
    // index so equal centroids never depend on sort stability.
    let mid = items.len() / 2;
    items.sort_by(|a, b| {
        a.2[axis]
            .partial_cmp(&b.2[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    nodes.push(BvhNode::Leaf {
        // Placeholder; patched below once the children exist.
        bounds,
        first: 0,
        count: 0,
    });
    let (lo, hi) = items.split_at_mut(mid);
    let left = build_node(lo, nodes, wald, original);
    let right = build_node(hi, nodes, wald, original);
    nodes[idx as usize] = BvhNode::Inner {
        bounds,
        left,
        right,
    };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::{self, SceneScale};

    #[test]
    fn empty_input_builds_an_empty_leaf() {
        let bvh = Bvh::build(&[]);
        assert_eq!(bvh.nodes().len(), 1);
        assert!(bvh.wald_triangles().is_empty());
        let ray = Ray::new(crate::Vec3::ZERO, crate::Vec3::new(1.0, 0.0, 0.0));
        assert!(bvh.intersect(&ray).is_none());
    }

    #[test]
    fn leaves_partition_the_triangles() {
        let scene = scenes::conference(SceneScale::Tiny);
        let bvh = Bvh::build(&scene.triangles);
        let stats = bvh.stats();
        assert!(stats.tris > 0 && stats.tris <= scene.triangles.len());
        // Every Wald slot is covered by exactly one leaf.
        let mut covered = vec![false; stats.tris];
        for node in bvh.nodes() {
            if let BvhNode::Leaf { first, count, .. } = *node {
                for slot in first..first + count {
                    assert!(!covered[slot as usize], "slot {slot} in two leaves");
                    covered[slot as usize] = true;
                    assert!((count as usize) <= BVH_MAX_LEAF);
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "every slot owned by a leaf");
    }

    #[test]
    fn matches_kdtree_on_scene_rays() {
        let scene = scenes::conference(SceneScale::Tiny);
        let bvh = Bvh::build(&scene.triangles);
        let tree = crate::KdTree::build(&scene.triangles);
        let cam = crate::Camera::looking_at(scene.bounds(), 16, 16);
        let mut hits = 0;
        for p in 0..256 {
            let ray = cam.primary_ray(p % 16, p / 16);
            let a = bvh.intersect(&ray);
            let b = tree.intersect(&ray);
            match (a, b) {
                (Some(x), Some(y)) => {
                    hits += 1;
                    assert!(
                        (x.t - y.t).abs() / x.t.abs().max(1.0) < 1e-3,
                        "t {} vs {}",
                        x.t,
                        y.t
                    );
                }
                (None, None) => {}
                (x, y) => panic!("ray {p}: bvh {x:?} kd {y:?}"),
            }
        }
        assert!(hits > 10, "camera should see geometry, hits={hits}");
    }

    #[test]
    fn build_is_deterministic() {
        let scene = scenes::fairyforest(SceneScale::Tiny);
        let a = Bvh::build(&scene.triangles);
        let b = Bvh::build(&scene.triangles);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.original, b.original);
    }
}
