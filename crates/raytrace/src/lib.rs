//! # raytrace — the ray-tracing substrate
//!
//! Everything the paper's benchmark application (Radius-CUDA, a kd-tree ray
//! tracer) needs, rebuilt from scratch:
//!
//! * [`Vec3`], [`Ray`], [`Aabb`] — 3D math;
//! * [`Triangle`] and [`WaldTriangle`] — Wald's projection-based
//!   ray-triangle intersection with its 48-byte precomputed record
//!   (paper §VI-A cites Wald's PhD algorithm);
//! * [`Bvh`] — a deterministic median-split bounding-volume hierarchy
//!   (the acceleration structure of the path-traced workload), with
//!   leaf-contiguous Wald records and a host-side traversal oracle;
//! * [`KdTree`] — a surface-area-heuristic kd-tree builder with host-side
//!   traversal ([`KdTree::intersect`]) used as the correctness oracle and
//!   by the Table IV bandwidth analytics ([`KdTree::intersect_counted`]);
//! * [`Camera`] — pinhole primary-ray generation;
//! * [`scenes`] — procedural stand-ins for the paper's three benchmark
//!   scenes (fairyforest / atrium / conference), seeded and deterministic,
//!   each preserving the object-distribution character Table III describes.
//!
//! ## Example
//!
//! ```
//! use raytrace::{scenes, Camera, KdTree};
//!
//! let scene = scenes::conference(scenes::SceneScale::Tiny);
//! let tree = KdTree::build(&scene.triangles);
//! let cam = Camera::looking_at(scene.bounds(), 16, 16);
//! let hits = (0..16 * 16)
//!     .filter(|&p| tree.intersect(&cam.primary_ray(p % 16, p / 16)).is_some())
//!     .count();
//! assert!(hits > 0, "camera must see the scene");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod bvh;
mod camera;
mod kdtree;
pub mod scenes;
mod tri;
mod vec3;

pub use aabb::Aabb;
pub use bvh::{Bvh, BvhNode, BvhStats, BVH_MAX_LEAF};
pub use camera::Camera;
pub use kdtree::{KdNode, KdTree, TraversalCounts, TreeStats};
pub use scenes::Scene;
pub use tri::{Hit, Triangle, WaldTriangle, WALD_TRI_BYTES};
pub use vec3::Vec3;

/// A ray with parametric interval `[tmin, tmax]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Origin point.
    pub origin: Vec3,
    /// Direction (not required to be normalized).
    pub dir: Vec3,
    /// Minimum accepted hit parameter.
    pub tmin: f32,
    /// Maximum accepted hit parameter.
    pub tmax: f32,
}

impl Ray {
    /// Creates a ray over `[1e-4, f32::MAX]`.
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray {
            origin,
            dir,
            tmin: 1e-4,
            tmax: f32::MAX,
        }
    }

    /// The point at parameter `t`.
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}
