//! Pinhole camera generating primary rays.

use crate::aabb::Aabb;
use crate::vec3::Vec3;
use crate::Ray;

/// A pinhole camera rasterizing `width × height` pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    origin: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
    width: u32,
    height: u32,
}

impl Camera {
    /// Creates a camera at `origin` looking at `target` with vertical field
    /// of view `vfov_deg` degrees.
    ///
    /// # Panics
    ///
    /// Panics if `width`/`height` are zero or origin equals target.
    pub fn new(origin: Vec3, target: Vec3, vfov_deg: f32, width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        let forward = (target - origin).normalized();
        let world_up = if forward.y.abs() > 0.99 {
            Vec3::new(1.0, 0.0, 0.0)
        } else {
            Vec3::new(0.0, 1.0, 0.0)
        };
        let right = forward.cross(world_up).normalized();
        let up = right.cross(forward);
        let aspect = width as f32 / height as f32;
        let half_h = (vfov_deg.to_radians() / 2.0).tan();
        let half_w = half_h * aspect;
        let horizontal = right * (2.0 * half_w);
        let vertical = up * (2.0 * half_h);
        let lower_left = forward - right * half_w - up * half_h;
        Camera {
            origin,
            lower_left,
            horizontal,
            vertical,
            width,
            height,
        }
    }

    /// Positions a camera automatically so the whole `bounds` is in view —
    /// the standard viewpoint for the benchmark scenes.
    pub fn looking_at(bounds: Aabb, width: u32, height: u32) -> Self {
        let center = bounds.center();
        let radius = bounds.extent().length() * 0.5;
        let dir = Vec3::new(0.6, 0.35, 0.7).normalized();
        let origin = center + dir * (radius * 2.2).max(1e-3);
        Camera::new(origin, center, 55.0, width, height)
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Camera position.
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// Primary ray through the center of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the pixel lies outside the image.
    pub fn primary_ray(&self, x: u32, y: u32) -> Ray {
        debug_assert!(x < self.width && y < self.height, "pixel out of image");
        let u = (x as f32 + 0.5) / self.width as f32;
        let v = (y as f32 + 0.5) / self.height as f32;
        let dir = self.lower_left + self.horizontal * u + self.vertical * v;
        Ray::new(self.origin, dir.normalized())
    }

    /// Primary ray for a flat pixel index (`y * width + x`).
    pub fn primary_ray_indexed(&self, pixel: u32) -> Ray {
        self.primary_ray(pixel % self.width, pixel / self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rays_originate_at_camera() {
        let c = Camera::new(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, 60.0, 8, 8);
        for p in 0..64 {
            let r = c.primary_ray_indexed(p);
            assert_eq!(r.origin, Vec3::new(0.0, 0.0, -5.0));
            assert!((r.dir.length() - 1.0).abs() < 1e-5, "normalized");
        }
    }

    #[test]
    fn center_pixel_points_at_target() {
        let c = Camera::new(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, 60.0, 101, 101);
        let r = c.primary_ray(50, 50);
        // Should point along +z.
        assert!(r.dir.z > 0.99, "dir {:?}", r.dir);
    }

    #[test]
    fn corner_rays_diverge() {
        let c = Camera::new(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, 60.0, 64, 64);
        let a = c.primary_ray(0, 0);
        let b = c.primary_ray(63, 63);
        assert!(a.dir.dot(b.dir) < 0.999, "corners must differ");
    }

    #[test]
    fn looking_at_sees_the_box() {
        let bounds = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let c = Camera::looking_at(bounds, 16, 16);
        let r = c.primary_ray(8, 8);
        assert!(
            bounds.intersect(&r).is_some(),
            "center ray must enter the bounds"
        );
    }

    #[test]
    fn straight_down_view_is_stable() {
        let c = Camera::new(Vec3::new(0.0, 10.0, 0.0), Vec3::ZERO, 60.0, 4, 4);
        let r = c.primary_ray(2, 2);
        assert!(r.dir.y < -0.9);
    }
}
