//! Triangles and Wald's precomputed ray-triangle intersection test.
//!
//! The paper's benchmark (Radius-CUDA) uses Wald's projection-based
//! intersection (Wald, *Realtime Ray Tracing and Interactive Global
//! Illumination*, PhD 2004): each triangle is preprocessed into a 48-byte
//! record (12 words) so the inner loop needs no cross products. The device
//! kernels in `rt-kernels` execute exactly this algorithm against the same
//! 12-word layout; this module is the host-side reference.

use crate::aabb::Aabb;
use crate::vec3::Vec3;
use crate::Ray;

/// A plain triangle (three vertices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

/// An intersection record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Ray parameter of the hit.
    pub t: f32,
    /// Index of the triangle hit.
    pub tri: u32,
}

impl Triangle {
    /// Creates a triangle.
    pub fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    /// Geometric (unnormalized) normal.
    pub fn normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Bounding box.
    pub fn bounds(&self) -> Aabb {
        let mut bb = Aabb::EMPTY;
        bb.grow(self.a);
        bb.grow(self.b);
        bb.grow(self.c);
        bb
    }

    /// Centroid.
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Whether the triangle has (numerically) zero area.
    pub fn is_degenerate(&self) -> bool {
        self.normal().length() < 1e-12
    }

    /// Reference Möller–Trumbore intersection (used to validate the Wald
    /// test in property tests). Returns the hit parameter within
    /// `[ray.tmin, ray.tmax]`.
    pub fn intersect_moller_trumbore(&self, ray: &Ray) -> Option<f32> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let p = ray.dir.cross(e2);
        let det = e1.dot(p);
        if det.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / det;
        let s = ray.origin - self.a;
        let u = s.dot(p) * inv;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.dir.dot(q) * inv;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv;
        (t >= ray.tmin && t <= ray.tmax).then_some(t)
    }
}

/// Wald's precomputed triangle record: 12 words / 48 bytes.
///
/// Word layout (matching the device serialization in `rt-kernels`):
///
/// | words | contents |
/// |-------|----------|
/// | 0–2   | `n_u, n_v, n_d` (plane, normalized so `N[k] = 1`) |
/// | 3     | `k` (projection axis, `u32`) |
/// | 4–6   | `b_nu, b_nv, b_d` (β barycentric row) |
/// | 7     | padding (0) |
/// | 8–10  | `c_nu, c_nv, c_d` (γ barycentric row) |
/// | 11    | padding (0) |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaldTriangle {
    /// Projection axis (0, 1 or 2).
    pub k: u32,
    /// Plane normal component along axis `u` (normalized by `N[k]`).
    pub n_u: f32,
    /// Plane normal component along axis `v`.
    pub n_v: f32,
    /// Plane offset.
    pub n_d: f32,
    /// β row.
    pub b_nu: f32,
    /// β row.
    pub b_nv: f32,
    /// β offset.
    pub b_d: f32,
    /// γ row.
    pub c_nu: f32,
    /// γ row.
    pub c_nv: f32,
    /// γ offset.
    pub c_d: f32,
}

/// Size of one serialized [`WaldTriangle`] record in bytes.
pub const WALD_TRI_BYTES: u32 = 48;

impl WaldTriangle {
    /// Precomputes the record. Returns `None` for degenerate triangles.
    pub fn new(tri: &Triangle) -> Option<Self> {
        let n = tri.normal();
        if n.length() < 1e-12 {
            return None;
        }
        let k = n.dominant_axis();
        let u = (k + 1) % 3;
        let v = (k + 2) % 3;
        if n[k].abs() < 1e-12 {
            return None;
        }
        let n_u = n[u] / n[k];
        let n_v = n[v] / n[k];
        let n_d = tri.a[k] + n_u * tri.a[u] + n_v * tri.a[v];

        // 2D edges in the (u, v) projection plane.
        let e1u = tri.b[u] - tri.a[u];
        let e1v = tri.b[v] - tri.a[v];
        let e2u = tri.c[u] - tri.a[u];
        let e2v = tri.c[v] - tri.a[v];
        let det = e1u * e2v - e1v * e2u;
        if det.abs() < 1e-12 {
            return None;
        }
        // β (weight of vertex b): β = hu*b_nu + hv*b_nv + b_d
        let b_nu = e2v / det;
        let b_nv = -e2u / det;
        let b_d = -(tri.a[u] * b_nu + tri.a[v] * b_nv);
        // γ (weight of vertex c).
        let c_nu = -e1v / det;
        let c_nv = e1u / det;
        let c_d = -(tri.a[u] * c_nu + tri.a[v] * c_nv);

        Some(WaldTriangle {
            k: k as u32,
            n_u,
            n_v,
            n_d,
            b_nu,
            b_nv,
            b_d,
            c_nu,
            c_nv,
            c_d,
        })
    }

    /// Wald's intersection test. Returns the hit parameter within
    /// `[ray.tmin, ray.tmax]`.
    pub fn intersect(&self, ray: &Ray) -> Option<f32> {
        let k = self.k as usize;
        let u = (k + 1) % 3;
        let v = (k + 2) % 3;
        let nd = ray.dir[k] + self.n_u * ray.dir[u] + self.n_v * ray.dir[v];
        if nd.abs() < 1e-12 {
            return None;
        }
        let t =
            (self.n_d - ray.origin[k] - self.n_u * ray.origin[u] - self.n_v * ray.origin[v]) / nd;
        if !(t >= ray.tmin && t <= ray.tmax) {
            return None;
        }
        let hu = ray.origin[u] + t * ray.dir[u];
        let hv = ray.origin[v] + t * ray.dir[v];
        let beta = hu * self.b_nu + hv * self.b_nv + self.b_d;
        if beta < 0.0 {
            return None;
        }
        let gamma = hu * self.c_nu + hv * self.c_nv + self.c_d;
        if gamma < 0.0 || beta + gamma > 1.0 {
            return None;
        }
        Some(t)
    }

    /// Serializes to the 12-word device layout.
    pub fn to_words(&self) -> [u32; 12] {
        [
            self.n_u.to_bits(),
            self.n_v.to_bits(),
            self.n_d.to_bits(),
            self.k,
            self.b_nu.to_bits(),
            self.b_nv.to_bits(),
            self.b_d.to_bits(),
            0,
            self.c_nu.to_bits(),
            self.c_nv.to_bits(),
            self.c_d.to_bits(),
            0,
        ]
    }

    /// Deserializes from the 12-word device layout.
    pub fn from_words(w: &[u32; 12]) -> Self {
        WaldTriangle {
            n_u: f32::from_bits(w[0]),
            n_v: f32::from_bits(w[1]),
            n_d: f32::from_bits(w[2]),
            k: w[3],
            b_nu: f32::from_bits(w[4]),
            b_nv: f32::from_bits(w[5]),
            b_d: f32::from_bits(w[6]),
            c_nu: f32::from_bits(w[8]),
            c_nv: f32::from_bits(w[9]),
            c_d: f32::from_bits(w[10]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tri_xy() -> Triangle {
        Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn wald_hits_center() {
        let w = WaldTriangle::new(&tri_xy()).unwrap();
        let r = Ray::new(Vec3::new(0.25, 0.25, 1.0), Vec3::new(0.0, 0.0, -1.0));
        let t = w.intersect(&r).unwrap();
        assert!((t - 1.0).abs() < 1e-5);
    }

    #[test]
    fn wald_misses_outside() {
        let w = WaldTriangle::new(&tri_xy()).unwrap();
        let r = Ray::new(Vec3::new(0.9, 0.9, 1.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(w.intersect(&r).is_none(), "outside the hypotenuse");
        let r = Ray::new(Vec3::new(-0.1, 0.5, 1.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(w.intersect(&r).is_none());
    }

    #[test]
    fn behind_origin_is_rejected() {
        let w = WaldTriangle::new(&tri_xy()).unwrap();
        let r = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(w.intersect(&r).is_none());
    }

    #[test]
    fn degenerate_triangles_rejected_at_precompute() {
        let line = Triangle::new(
            Vec3::ZERO,
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(2.0, 2.0, 2.0),
        );
        assert!(line.is_degenerate());
        assert!(WaldTriangle::new(&line).is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let w = WaldTriangle::new(&tri_xy()).unwrap();
        let words = w.to_words();
        assert_eq!(WaldTriangle::from_words(&words), w);
        assert_eq!(words.len() * 4, WALD_TRI_BYTES as usize);
    }

    fn arb_point() -> impl Strategy<Value = Vec3> {
        (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        /// Wald and Möller–Trumbore must agree (within epsilon slack at the
        /// edges) on arbitrary triangles and rays.
        #[test]
        fn wald_matches_moller_trumbore(
            a in arb_point(), b in arb_point(), c in arb_point(),
            o in arb_point(), d in arb_point(),
        ) {
            let tri = Triangle::new(a, b, c);
            prop_assume!(!tri.is_degenerate());
            prop_assume!(d.length() > 1e-3);
            let Some(w) = WaldTriangle::new(&tri) else { return Ok(()); };
            let ray = Ray::new(o, d);
            let mt = tri.intersect_moller_trumbore(&ray);
            let wd = w.intersect(&ray);
            match (mt, wd) {
                (Some(t1), Some(t2)) => {
                    prop_assert!((t1 - t2).abs() / t1.abs().max(1.0) < 1e-2,
                        "t mismatch {t1} vs {t2}");
                }
                (None, None) => {}
                // Near-edge disagreements are acceptable only when the hit
                // is marginal: re-test with a shrunken barycentric margin.
                (Some(t), None) | (None, Some(t)) => {
                    let p = ray.at(t);
                    let n = tri.normal().normalized();
                    let dist = (p - a).dot(n).abs();
                    prop_assert!(dist < 1e-2, "solid disagreement at t={t}, plane dist {dist}");
                }
            }
        }

        /// A ray aimed at a random interior point must hit.
        #[test]
        fn interior_point_always_hit(
            a in arb_point(), b in arb_point(), c in arb_point(),
            wa in 0.05f32..0.9, wb in 0.05f32..0.9,
        ) {
            let tri = Triangle::new(a, b, c);
            prop_assume!(tri.normal().length() > 1e-2);
            let Some(w) = WaldTriangle::new(&tri) else { return Ok(()); };
            let (wa, wb) = if wa + wb > 0.95 { (wa * 0.5, wb * 0.5) } else { (wa, wb) };
            let p = a * (1.0 - wa - wb) + b * wa + c * wb;
            let n = tri.normal().normalized();
            let o = p + n * 2.0;
            let ray = Ray::new(o, -n);
            prop_assert!(w.intersect(&ray).is_some(), "interior hit missed");
        }
    }
}
