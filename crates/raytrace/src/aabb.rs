//! Axis-aligned bounding boxes.

use crate::vec3::Vec3;
use crate::Ray;

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (inverted bounds; union identity).
    pub const EMPTY: Aabb = Aabb {
        min: Vec3 {
            x: f32::INFINITY,
            y: f32::INFINITY,
            z: f32::INFINITY,
        },
        max: Vec3 {
            x: f32::NEG_INFINITY,
            y: f32::NEG_INFINITY,
            z: f32::NEG_INFINITY,
        },
    };

    /// Builds a box from corners.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Grows the box to contain `p`.
    pub fn grow(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Union of two boxes.
    pub fn union(self, o: Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    /// Whether the box contains no space.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Box extent along each axis.
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Center point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Surface area (SAH metric).
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Index of the longest axis.
    pub fn longest_axis(&self) -> usize {
        self.extent().dominant_axis()
    }

    /// Slab test: the parametric interval where `ray` overlaps the box,
    /// clipped to `[ray.tmin, ray.tmax]`, or `None` when it misses.
    pub fn intersect(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = ray.tmin;
        let mut t1 = ray.tmax;
        for axis in 0..3 {
            let inv = 1.0 / ray.dir[axis];
            let mut near = (self.min[axis] - ray.origin[axis]) * inv;
            let mut far = (self.max[axis] - ray.origin[axis]) * inv;
            if inv < 0.0 {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn ray_through_box_hits() {
        let r = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(1.0, 0.0, 0.0));
        let (t0, t1) = unit_box().intersect(&r).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ray_missing_box() {
        let r = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(unit_box().intersect(&r).is_none());
    }

    #[test]
    fn ray_starting_inside() {
        let r = Ray::new(Vec3::splat(0.5), Vec3::new(0.0, 0.0, 1.0));
        let (t0, t1) = unit_box().intersect(&r).unwrap();
        assert!((t0 - r.tmin).abs() < 1e-6);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn negative_direction_swaps_slabs() {
        let r = Ray::new(Vec3::new(2.0, 0.5, 0.5), Vec3::new(-1.0, 0.0, 0.0));
        let (t0, t1) = unit_box().intersect(&r).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_box_properties() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.surface_area(), 0.0);
        let u = e.union(unit_box());
        assert_eq!(u, unit_box());
    }

    #[test]
    fn grow_and_union() {
        let mut b = Aabb::EMPTY;
        b.grow(Vec3::new(1.0, 2.0, 3.0));
        b.grow(Vec3::new(-1.0, 0.0, 6.0));
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 3.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 6.0));
        assert_eq!(b.longest_axis(), 2);
    }

    #[test]
    fn surface_area_of_unit_box() {
        assert!((unit_box().surface_area() - 6.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn interval_is_ordered_and_clipped(
            ox in -5.0f32..5.0, oy in -5.0f32..5.0, oz in -5.0f32..5.0,
            dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
        ) {
            prop_assume!(dx.abs() > 1e-3 && dy.abs() > 1e-3 && dz.abs() > 1e-3);
            let r = Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz));
            if let Some((t0, t1)) = unit_box().intersect(&r) {
                prop_assert!(t0 <= t1);
                prop_assert!(t0 >= r.tmin);
                prop_assert!(t1 <= r.tmax);
                // Midpoint of the interval lies inside the (slightly padded) box.
                let p = r.at((t0 + t1) * 0.5);
                for i in 0..3 {
                    prop_assert!(p[i] >= -1e-3 && p[i] <= 1.0 + 1e-3);
                }
            }
        }
    }
}
