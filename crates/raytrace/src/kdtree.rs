//! A kd-tree spatial index with SAH-style construction and host traversal.
//!
//! The paper's benchmark uses a kd-tree acceleration structure traversed by
//! the three-loop algorithm of its Example 1 (outer restart loop, inner
//! down-traversal loop, leaf object-test loop). This module is the host
//! reference: the same tree is serialized to device memory and traversed by
//! the assembly kernels in `rt-kernels`.

use crate::aabb::Aabb;
use crate::tri::{Hit, Triangle, WaldTriangle};
use crate::vec3::Vec3;
use crate::Ray;
use serde::{Deserialize, Serialize};

/// One kd-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KdNode {
    /// Interior node splitting space at `split` along `axis`.
    Inner {
        /// Split axis (0, 1, 2).
        axis: u8,
        /// Split plane position.
        split: f32,
        /// Index of the child covering `[min, split]`.
        left: u32,
        /// Index of the child covering `[split, max]`.
        right: u32,
    },
    /// Leaf holding `count` triangle references starting at `first` in the
    /// reference array.
    Leaf {
        /// First index into [`KdTree::tri_indices`].
        first: u32,
        /// Number of references.
        count: u32,
    },
}

/// Structural statistics (regenerates paper Table III's tree columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Triangles in the scene.
    pub triangles: u32,
    /// Total nodes.
    pub nodes: u32,
    /// Leaf nodes.
    pub leaves: u32,
    /// Maximum leaf depth.
    pub max_depth: u32,
    /// Mean triangle references per leaf.
    pub avg_tris_per_leaf: f64,
    /// Total triangle references (> `triangles` due to straddling).
    pub tri_refs: u32,
}

/// Per-ray traversal work counters (drives the Table IV bandwidth model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalCounts {
    /// Interior-node visits ("down traversals").
    pub node_visits: u64,
    /// Leaf visits.
    pub leaf_visits: u64,
    /// Ray-triangle intersection tests.
    pub tri_tests: u64,
}

/// The kd-tree.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    tri_indices: Vec<u32>,
    wald: Vec<WaldTriangle>,
    /// Map from wald index back to original triangle index (degenerate
    /// triangles are dropped at build).
    original: Vec<u32>,
    bounds: Aabb,
    max_depth_seen: u32,
}

/// Build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildOptions {
    /// Stop splitting below this many triangles.
    pub max_leaf_size: usize,
    /// Hard depth limit.
    pub max_depth: u32,
    /// SAH split candidates per node.
    pub candidates: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            max_leaf_size: 16,
            max_depth: 24,
            candidates: 8,
        }
    }
}

impl KdTree {
    /// Builds a tree over `triangles` with default options.
    pub fn build(triangles: &[Triangle]) -> Self {
        Self::build_with(triangles, BuildOptions::default())
    }

    /// Builds a tree with explicit options.
    pub fn build_with(triangles: &[Triangle], opt: BuildOptions) -> Self {
        let mut wald = Vec::with_capacity(triangles.len());
        let mut original = Vec::with_capacity(triangles.len());
        let mut boxes = Vec::with_capacity(triangles.len());
        let mut bounds = Aabb::EMPTY;
        for (i, t) in triangles.iter().enumerate() {
            if let Some(w) = WaldTriangle::new(t) {
                wald.push(w);
                original.push(i as u32);
                let bb = t.bounds();
                bounds = bounds.union(bb);
                boxes.push(bb);
            }
        }
        let mut tree = KdTree {
            nodes: Vec::new(),
            tri_indices: Vec::new(),
            wald,
            original,
            bounds,
            max_depth_seen: 0,
        };
        let all: Vec<u32> = (0..tree.wald.len() as u32).collect();
        if all.is_empty() {
            tree.nodes.push(KdNode::Leaf { first: 0, count: 0 });
        } else {
            tree.build_node(all, bounds, 0, &boxes, &opt);
        }
        tree
    }

    fn build_node(
        &mut self,
        tris: Vec<u32>,
        bounds: Aabb,
        depth: u32,
        boxes: &[Aabb],
        opt: &BuildOptions,
    ) -> u32 {
        self.max_depth_seen = self.max_depth_seen.max(depth);
        let make_leaf = |tree: &mut KdTree, tris: Vec<u32>| -> u32 {
            let first = tree.tri_indices.len() as u32;
            let count = tris.len() as u32;
            tree.tri_indices.extend(tris);
            let idx = tree.nodes.len() as u32;
            tree.nodes.push(KdNode::Leaf { first, count });
            idx
        };
        if tris.len() <= opt.max_leaf_size || depth >= opt.max_depth {
            return make_leaf(self, tris);
        }
        let axis = bounds.longest_axis();
        let lo = bounds.min[axis];
        let hi = bounds.max[axis];
        // NaN-aware: a degenerate or non-finite extent also becomes a leaf.
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return make_leaf(self, tris);
        }
        // Evaluate evenly spaced SAH candidates.
        let leaf_cost = tris.len() as f32 * bounds.surface_area();
        let mut best: Option<(f32, f32)> = None; // (cost, split)
        for c in 1..=opt.candidates {
            let split = lo + (hi - lo) * c as f32 / (opt.candidates + 1) as f32;
            let mut nl = 0usize;
            let mut nr = 0usize;
            for &t in &tris {
                let bb = &boxes[t as usize];
                if bb.min[axis] < split {
                    nl += 1;
                }
                if bb.max[axis] > split {
                    nr += 1;
                }
            }
            let mut lbox = bounds;
            lbox.max = match axis {
                0 => Vec3::new(split, bounds.max.y, bounds.max.z),
                1 => Vec3::new(bounds.max.x, split, bounds.max.z),
                _ => Vec3::new(bounds.max.x, bounds.max.y, split),
            };
            let mut rbox = bounds;
            rbox.min = match axis {
                0 => Vec3::new(split, bounds.min.y, bounds.min.z),
                1 => Vec3::new(bounds.min.x, split, bounds.min.z),
                _ => Vec3::new(bounds.min.x, bounds.min.y, split),
            };
            let cost = 1.0 + nl as f32 * lbox.surface_area() + nr as f32 * rbox.surface_area();
            // Reject useless splits that put everything on both sides.
            if nl == tris.len() && nr == tris.len() {
                continue;
            }
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, split));
            }
        }
        let Some((cost, split)) = best else {
            return make_leaf(self, tris);
        };
        if cost >= leaf_cost && tris.len() <= 4 * opt.max_leaf_size {
            return make_leaf(self, tris);
        }
        let mut left_tris = Vec::new();
        let mut right_tris = Vec::new();
        for &t in &tris {
            let bb = &boxes[t as usize];
            if bb.min[axis] < split {
                left_tris.push(t);
            }
            if bb.max[axis] > split {
                right_tris.push(t);
            }
        }
        // Degenerate partition: fall back to a leaf.
        if left_tris.is_empty() || right_tris.is_empty() {
            return make_leaf(self, tris);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(KdNode::Leaf { first: 0, count: 0 }); // placeholder
        let mut lbox = bounds;
        let mut rbox = bounds;
        match axis {
            0 => {
                lbox.max.x = split;
                rbox.min.x = split;
            }
            1 => {
                lbox.max.y = split;
                rbox.min.y = split;
            }
            _ => {
                lbox.max.z = split;
                rbox.min.z = split;
            }
        }
        let left = self.build_node(left_tris, lbox, depth + 1, boxes, opt);
        let right = self.build_node(right_tris, rbox, depth + 1, boxes, opt);
        self.nodes[idx as usize] = KdNode::Inner {
            axis: axis as u8,
            split,
            left,
            right,
        };
        idx
    }

    /// Scene bounds.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Flat node array (root is node 0).
    pub fn nodes(&self) -> &[KdNode] {
        &self.nodes
    }

    /// Leaf triangle-reference array.
    pub fn tri_indices(&self) -> &[u32] {
        &self.tri_indices
    }

    /// Precomputed Wald triangle records.
    pub fn wald_triangles(&self) -> &[WaldTriangle] {
        &self.wald
    }

    /// Maps a Wald-record index back to the input triangle index.
    pub fn original_index(&self, wald_index: u32) -> u32 {
        self.original[wald_index as usize]
    }

    /// Structural statistics.
    pub fn stats(&self) -> TreeStats {
        let leaves: Vec<&KdNode> = self
            .nodes
            .iter()
            .filter(|n| matches!(n, KdNode::Leaf { .. }))
            .collect();
        let refs: u32 = leaves
            .iter()
            .map(|n| match n {
                KdNode::Leaf { count, .. } => *count,
                _ => 0,
            })
            .sum();
        TreeStats {
            triangles: self.wald.len() as u32,
            nodes: self.nodes.len() as u32,
            leaves: leaves.len() as u32,
            max_depth: self.max_depth_seen,
            avg_tris_per_leaf: if leaves.is_empty() {
                0.0
            } else {
                f64::from(refs) / leaves.len() as f64
            },
            tri_refs: refs,
        }
    }

    /// Closest-hit traversal.
    pub fn intersect(&self, ray: &Ray) -> Option<Hit> {
        let mut counts = TraversalCounts::default();
        self.intersect_impl(ray, &mut counts)
    }

    /// Closest-hit traversal that also returns work counters.
    pub fn intersect_counted(&self, ray: &Ray) -> (Option<Hit>, TraversalCounts) {
        let mut counts = TraversalCounts::default();
        let hit = self.intersect_impl(ray, &mut counts);
        (hit, counts)
    }

    fn intersect_impl(&self, ray: &Ray, counts: &mut TraversalCounts) -> Option<Hit> {
        let (mut tmin, mut tmax) = self.bounds.intersect(ray)?;
        let mut best: Option<Hit> = None;
        let mut stack: Vec<(u32, f32, f32)> = Vec::with_capacity(32);
        let mut node = 0u32;
        loop {
            match self.nodes[node as usize] {
                KdNode::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    counts.node_visits += 1;
                    let a = axis as usize;
                    let o = ray.origin[a];
                    let d = ray.dir[a];
                    let (near, far) = if o < split || (o == split && d <= 0.0) {
                        (left, right)
                    } else {
                        (right, left)
                    };
                    if d.abs() < 1e-20 {
                        node = near;
                        continue;
                    }
                    let t = (split - o) / d;
                    if t >= tmax || t < 0.0 {
                        node = near;
                    } else if t <= tmin {
                        node = far;
                    } else {
                        stack.push((far, t, tmax));
                        node = near;
                        tmax = t;
                    }
                }
                KdNode::Leaf { first, count } => {
                    counts.leaf_visits += 1;
                    for i in first..first + count {
                        let w = self.tri_indices[i as usize];
                        counts.tri_tests += 1;
                        let mut r = *ray;
                        r.tmax = best.map_or(ray.tmax, |h| h.t);
                        if let Some(t) = self.wald[w as usize].intersect(&r) {
                            if best.is_none_or(|h| t < h.t) {
                                best = Some(Hit { t, tri: w });
                            }
                        }
                    }
                    // Early exit: the closest hit lies in this leaf's slab.
                    if let Some(h) = best {
                        if h.t <= tmax {
                            return best;
                        }
                    }
                    let Some((n, t0, t1)) = stack.pop() else {
                        return best;
                    };
                    node = n;
                    tmin = t0;
                    tmax = t1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scene(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                );
                let e = |rng: &mut StdRng| {
                    Vec3::new(
                        rng.gen_range(-0.5..0.5),
                        rng.gen_range(-0.5..0.5),
                        rng.gen_range(-0.5..0.5),
                    )
                };
                let e1 = e(&mut rng);
                let e2 = e(&mut rng);
                Triangle::new(base, base + e1, base + e2)
            })
            .collect()
    }

    /// Brute-force closest hit over all triangles (oracle).
    fn brute_force(tris: &[Triangle], tree: &KdTree, ray: &Ray) -> Option<f32> {
        let mut best: Option<f32> = None;
        let _ = tris;
        for w in tree.wald_triangles() {
            if let Some(t) = w.intersect(ray) {
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    #[test]
    fn tree_matches_brute_force_on_random_scene() {
        let tris = random_scene(300, 42);
        let tree = KdTree::build(&tris);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0;
        for i in 0..500 {
            let o = Vec3::new(
                rng.gen_range(-15.0..15.0),
                rng.gen_range(-15.0..15.0),
                rng.gen_range(-15.0..15.0),
            );
            // Aim half the rays at a random triangle's centroid so a
            // healthy fraction actually hits geometry.
            let d = if i % 2 == 0 {
                let t = &tris[rng.gen_range(0..tris.len())];
                t.centroid() - o
            } else {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            };
            if d.length() < 1e-3 {
                continue;
            }
            let ray = Ray::new(o, d);
            let tree_hit = tree.intersect(&ray).map(|h| h.t);
            let brute = brute_force(&tris, &tree, &ray);
            match (tree_hit, brute) {
                (Some(a), Some(b)) => {
                    hits += 1;
                    assert!((a - b).abs() < 1e-3, "t mismatch {a} vs {b}");
                }
                (None, None) => {}
                (a, b) => panic!("tree {a:?} vs brute {b:?}"),
            }
        }
        assert!(
            hits > 20,
            "expected a reasonable number of hits, got {hits}"
        );
    }

    #[test]
    fn empty_scene_builds_and_misses() {
        let tree = KdTree::build(&[]);
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!(tree.intersect(&ray).is_none());
        assert_eq!(tree.stats().triangles, 0);
    }

    #[test]
    fn single_triangle_tree() {
        let tris = vec![Triangle::new(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(1.0, 0.0, 5.0),
            Vec3::new(0.0, 1.0, 5.0),
        )];
        let tree = KdTree::build(&tris);
        let ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let h = tree.intersect(&ray).unwrap();
        assert!((h.t - 5.0).abs() < 1e-4);
        assert_eq!(h.tri, 0);
    }

    #[test]
    fn stats_are_consistent() {
        let tris = random_scene(500, 3);
        let tree = KdTree::build(&tris);
        let s = tree.stats();
        assert_eq!(s.triangles, 500);
        assert!(s.leaves > 1, "scene should split");
        assert!(s.nodes > s.leaves);
        assert!(s.tri_refs >= s.triangles);
        assert!(s.max_depth > 0 && s.max_depth <= 24);
        assert!(s.avg_tris_per_leaf > 0.0);
    }

    #[test]
    fn counted_traversal_reports_work() {
        let tris = random_scene(500, 3);
        let tree = KdTree::build(&tris);
        let center = tree.bounds().center();
        let o = center - Vec3::new(30.0, 0.0, 0.0);
        let ray = Ray::new(o, Vec3::new(1.0, 0.0, 0.0));
        let (_, counts) = tree.intersect_counted(&ray);
        assert!(counts.node_visits > 0);
        assert!(counts.leaf_visits > 0);
    }

    #[test]
    fn degenerate_triangles_are_dropped() {
        let tris = vec![
            Triangle::new(Vec3::ZERO, Vec3::splat(1.0), Vec3::splat(2.0)),
            Triangle::new(
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 0.0, 1.0),
                Vec3::new(0.0, 1.0, 1.0),
            ),
        ];
        let tree = KdTree::build(&tris);
        assert_eq!(tree.stats().triangles, 1);
        assert_eq!(tree.original_index(0), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn tree_never_reports_closer_than_brute(seed in 0u64..50) {
            let tris = random_scene(100, seed);
            let tree = KdTree::build(&tris);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
            for _ in 0..50 {
                let o = Vec3::new(
                    rng.gen_range(-15.0..15.0),
                    rng.gen_range(-15.0..15.0),
                    rng.gen_range(-15.0..15.0),
                );
                let d = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                if d.length() < 1e-3 { continue; }
                let ray = Ray::new(o, d);
                let th = tree.intersect(&ray).map(|h| h.t);
                let bf = brute_force(&tris, &tree, &ray);
                match (th, bf) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-3),
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "mismatch {a:?} vs {b:?}"),
                }
            }
        }
    }
}
