//! The dynamic μ-kernel decomposition of the ray tracer (paper §V).
//!
//! The three loops of the traditional kernel are removed; each loop
//! iteration becomes one spawned thread executing one of four μ-kernels:
//!
//! * `main` — launch kernel: loads the ray, builds the 48-byte state
//!   record in spawn memory, spawns `k_traverse`, exits;
//! * `k_traverse` — one down-traversal step (one kd-node); spawns itself
//!   while inner nodes remain, `k_intersect` at a non-empty leaf,
//!   `k_pop` at an empty one;
//! * `k_intersect` — one ray-triangle test; spawns itself while leaf
//!   objects remain, else `k_pop`;
//! * `k_pop` — early-exit check + stack pop; spawns `k_traverse` to
//!   continue, or writes the result and exits **without spawning**,
//!   completing the ray's lineage.
//!
//! Every μ-kernel follows the paper's Example 2 template: restore state
//! with a pointer load plus three `v4` spawn-memory loads, do one step of
//! work, save state with three `v4` stores, `spawn`, `exit`. This is the
//! paper's *naïve* variant — state is moved on every iteration.
//!
//! ## 48-byte state record (12 words)
//!
//! | word | contents |
//! |------|----------|
//! | 0–2  | ray origin |
//! | 3–5  | ray direction |
//! | 6/7  | best hit t / id |
//! | 8    | current node, or `(remaining << 24) \| cursor` inside a leaf |
//! | 9    | `(ray id << 8) \| stack pointer` |
//! | 10/11| current segment tmin / tmax |
//!
//! ## Register map (all μ-kernels)
//!
//! r0 zero · r2 state pointer · r3 address scratch ·
//! r4–r7 = words 0–3 · r8–r11 = words 4–7 · r12–r15 = words 8–11 ·
//! r16/r17 bases/cursor · r18/r19 ray id/sp · r20–r23 `v4` scratch ·
//! r24–r30 test scratch.

use crate::tri_test::{emit_tri_test, TriTestRegs};
use simt_isa::{assemble_named, Program};

/// Names of the spawnable μ-kernels, in ascending PC order.
pub const UKERNEL_NAMES: [&str; 3] = ["k_traverse", "k_intersect", "k_pop"];

/// Assembles the μ-kernel program.
///
/// # Panics
///
/// Panics only if the embedded assembly fails to assemble (a build-time
/// invariant covered by tests).
pub fn program() -> Program {
    assemble_named("rt-ukernel", &source()).expect("ukernel program assembles")
}

/// Shared state-restore prelude for dynamically created threads: the
/// `%spawnmem` register points at the warp-formation slot holding the
/// state pointer (paper Fig. 6).
fn restore() -> &'static str {
    r#"
    mov.u32 r0, 0
    mov.u32 r2, %spawnmem
    ld.spawn.u32 r2, [r2+0]           ; state pointer
    ld.spawn.v4 r4, [r2+0]
    ld.spawn.v4 r8, [r2+16]
    ld.spawn.v4 r12, [r2+32]
"#
}

/// Shared state-save epilogue; `target` is the μ-kernel to spawn.
fn save_and_spawn(target: &str) -> String {
    format!(
        r#"
    st.spawn.v4 [r2+0], r4
    st.spawn.v4 [r2+16], r8
    st.spawn.v4 [r2+32], r12
    spawn ${target}, r2
    exit
"#
    )
}

/// The program's assembly source (exposed for inspection/disassembly).
pub fn source() -> String {
    let tri = emit_tri_test(
        &TriTestRegs {
            ox: 4,
            oy: 5,
            oz: 6,
            dx: 7,
            dy: 8,
            dz: 9,
            best_t: 10,
            best_id: 11,
            tri_ref: 29,
            wald_addr: 3,
            w: 20,
            t: 24,
            hu: 25,
            hv: 26,
            x: 27,
            y: 28,
        },
        "i_next",
    );
    let restore = restore();
    let save_traverse = save_and_spawn("k_traverse");
    let save_intersect = save_and_spawn("k_intersect");
    let save_pop = save_and_spawn("k_pop");
    format!(
        r#"
.kernel main
.kernel k_traverse
.kernel k_intersect
.kernel k_pop
.global 424          ; per-ray stack (384) + ray record (32) + result (8)
.const 28
.spawnstate 48

; ============================ launch kernel ============================
main:
    mov.u32 r0, 0
    mov.u32 r18, %tid
    ld.const.u32 r3, [r0+24]          ; number of rays
    setp.ge.u32 p0, r18, r3
    @p0 exit
    ld.const.u32 r3, [r0+12]          ; ray base
    mad.lo.s32 r3, r18, 32, r3
    ld.global.v4 r4, [r3+0]           ; ox oy oz tmin
    ld.global.v4 r8, [r3+16]          ; dx dy dz tmax
    ; shuffle into the state layout
    mov.b32 r14, r7                   ; tmin_cur = ray tmin
    mov.b32 r7, r8                    ; dx
    mov.b32 r8, r9                    ; dy
    mov.b32 r9, r10                   ; dz
    mov.b32 r15, r11                  ; tmax_cur = ray tmax
    mov.b32 r10, r11                  ; best_t = ray tmax
    mov.s32 r11, -1                   ; best_id = miss
    mov.u32 r12, 0                    ; node = root
    shl.b32 r13, r18, 8               ; (ray id << 8) | sp=0
    mov.u32 r2, %spawnmem             ; launch threads: state record direct
{save_traverse}

; ======================= one down-traversal step =======================
k_traverse:
{restore}
    ld.const.u32 r16, [r0+0]          ; kd-node base
    mad.lo.s32 r3, r12, 16, r16
    ld.global.v4 r20, [r3+0]          ; tag split/first left/count right
    setp.eq.s32 p2, r20, 3
    @p2 bra t_leaf
    setp.eq.s32 p0, r20, 0
    setp.eq.s32 p1, r20, 1
    selp.b32 r24, r5, r6, p1
    selp.b32 r24, r4, r24, p0         ; origin[axis]
    selp.b32 r25, r8, r9, p1
    selp.b32 r25, r7, r25, p0         ; dir[axis]
    setp.lt.f32 p2, r24, r21
    sub.f32 r26, r21, r24
    rcp.f32 r25, r25
    mul.f32 r24, r26, r25             ; t = (split - o)/d
    selp.b32 r30, r22, r23, p2        ; near child
    selp.b32 r29, r23, r22, p2        ; far child
    setp.lt.f32 p2, r24, r15
    @!p2 bra t_near
    setp.ge.f32 p2, r24, 0.0
    @!p2 bra t_near
    setp.gt.f32 p2, r24, r14
    @!p2 bra t_far
    ; both sides: push far on the per-ray global stack
    shr.u32 r18, r13, 8               ; ray id
    and.b32 r19, r13, 255             ; sp
    ; entry address = base + (sp*nrays + rayid)*16 (ray-interleaved)
    ld.const.u32 r3, [r0+24]
    mul.lo.s32 r3, r3, r19
    add.s32 r3, r3, r18
    shl.b32 r3, r3, 4
    ld.const.u32 r16, [r0+20]
    add.s32 r3, r3, r16
    mov.b32 r20, r29
    mov.b32 r21, r24
    mov.b32 r22, r15
    mov.u32 r23, 0
    st.global.v4 [r3+0], r20
    add.s32 r19, r19, 1
    shl.b32 r13, r18, 8
    or.b32 r13, r13, r19              ; repack
    mov.b32 r15, r24                  ; tmax_cur = t
    mov.b32 r12, r30
    bra t_save
t_near:
    mov.b32 r12, r30
    bra t_save
t_far:
    mov.b32 r12, r29
    mov.b32 r14, r24                  ; tmin_cur = t
t_save:
{save_traverse_again}
t_leaf:
    setp.eq.s32 p2, r22, 0
    @p2 bra t_empty
    shl.b32 r12, r22, 24              ; (count << 24) | first
    or.b32 r12, r12, r21
{save_intersect}
t_empty:
{save_pop}

; ======================== one ray-triangle test ========================
k_intersect:
{restore}
    and.b32 r17, r12, 0xffffff        ; cursor
    shr.u32 r30, r12, 24              ; remaining
    ld.const.u32 r16, [r0+4]          ; tri-ref base
    mad.lo.s32 r3, r17, 4, r16
    ld.global.u32 r29, [r3+0]         ; triangle reference
    ld.const.u32 r16, [r0+8]          ; Wald base
    mad.lo.s32 r3, r29, 48, r16
{tri}
i_next:
    sub.s32 r30, r30, 1
    setp.le.s32 p2, r30, 0
    @p2 bra i_done
    add.s32 r17, r17, 1
    shl.b32 r12, r30, 24
    or.b32 r12, r12, r17
{save_intersect_again}
i_done:
{save_pop_again}

; ==================== early exit + stack pop ====================
k_pop:
{restore}
    setp.le.f32 p2, r10, r15          ; closest hit inside this segment?
    @p2 bra p_finish
    and.b32 r19, r13, 255             ; sp
    setp.eq.s32 p2, r19, 0
    @p2 bra p_finish
    shr.u32 r18, r13, 8               ; ray id
    sub.s32 r19, r19, 1
    ld.const.u32 r3, [r0+24]
    mul.lo.s32 r3, r3, r19
    add.s32 r3, r3, r18
    shl.b32 r3, r3, 4
    ld.const.u32 r16, [r0+20]
    add.s32 r3, r3, r16
    ld.global.v4 r20, [r3+0]          ; node t tmax pad
    mov.b32 r12, r20
    mov.b32 r14, r21
    mov.b32 r15, r22
    shl.b32 r13, r18, 8
    or.b32 r13, r13, r19
{save_traverse_final}
p_finish:
    shr.u32 r18, r13, 8
    ld.const.u32 r3, [r0+16]          ; result base
    mad.lo.s32 r3, r18, 8, r3
    st.global.u32 [r3+0], r10
    st.global.u32 [r3+4], r11
    exit                               ; no spawn: the ray's lineage ends
"#,
        save_traverse = save_traverse,
        save_traverse_again = save_traverse,
        save_traverse_final = save_traverse,
        save_intersect = save_intersect,
        save_intersect_again = save_intersect,
        save_pop = save_pop,
        save_pop_again = save_pop,
        restore = restore,
        tri = tri,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_with_four_entry_points() {
        let p = program();
        let names: Vec<&str> = p.entry_points().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["main", "k_traverse", "k_intersect", "k_pop"]);
    }

    #[test]
    fn spawn_targets_are_exactly_the_ukernels() {
        let p = program();
        let targets = p.spawn_targets();
        let expected: Vec<usize> = UKERNEL_NAMES
            .iter()
            .map(|n| p.entry(n).unwrap().pc)
            .collect();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        assert_eq!(targets, expected_sorted);
    }

    #[test]
    fn resources_match_paper_shape() {
        let p = program();
        let r = p.resource_usage();
        assert_eq!(r.spawn_state_bytes, 48, "48-byte state record (Table II)");
        assert!(r.registers <= 40, "registers {}", r.registers);
    }

    #[test]
    fn no_loop_back_edges_remain() {
        // The μ-kernel program must contain no backward branches: every
        // loop became a spawn.
        let p = program();
        for (pc, i) in p.instrs().iter().enumerate() {
            if let simt_isa::Instr::Bra { target } = i.op {
                assert!(target > pc, "backward branch at pc {pc} -> {target}");
            }
        }
    }

    #[test]
    fn every_ukernel_saves_state_with_three_v4_stores() {
        // Paper §VI-A: three 4-wide vector ops per state save.
        let p = program();
        let v4_spawn_stores = p
            .instrs()
            .iter()
            .filter(|i| {
                matches!(
                    i.op,
                    simt_isa::Instr::St {
                        space: simt_isa::Space::Spawn,
                        width: simt_isa::Width::V4,
                        ..
                    }
                )
            })
            .count();
        // 7 save sites (main, traverse×3, intersect×2, pop×1) × 3 stores.
        assert_eq!(v4_spawn_stores, 7 * 3);
    }

    #[test]
    fn reconvergence_analysis_succeeds() {
        let p = program();
        let _ = simt_isa::ReconvergenceTable::build(&p);
    }
}
