//! Device-memory serialization of scenes, rays and results.
//!
//! ## Constant-memory header (set up at launch, word offsets)
//!
//! | offset | contents |
//! |--------|----------|
//! | 0      | kd-node array base (global address) |
//! | 4      | triangle-reference array base |
//! | 8      | Wald-triangle array base |
//! | 12     | ray array base |
//! | 16     | result array base |
//! | 20     | traversal-stack area base |
//! | 24     | number of rays |
//!
//! ## kd-node record (16 bytes)
//!
//! | word | inner node | leaf |
//! |------|------------|------|
//! | 0    | axis (0/1/2) | 3 |
//! | 1    | split (f32) | first reference index |
//! | 2    | left child  | reference count |
//! | 3    | right child | 0 |

use crate::{MISS, NODE_RECORD_BYTES, RAY_RECORD_BYTES, RESULT_RECORD_BYTES, STACK_BYTES_PER_RAY};
use raytrace::{Hit, KdNode, KdTree, Ray};
use simt_mem::MemoryFabric;

/// Node-word tag marking a leaf.
pub const LEAF_TAG: u32 = 3;

/// Addresses of a scene uploaded to device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceScene {
    /// kd-node array base.
    pub nodes_base: u32,
    /// Triangle-reference array base.
    pub tri_idx_base: u32,
    /// Wald-triangle array base.
    pub wald_base: u32,
    /// Ray array base.
    pub rays_base: u32,
    /// Result array base.
    pub results_base: u32,
    /// Per-ray traversal-stack area base.
    pub stacks_base: u32,
    /// Number of rays uploaded.
    pub num_rays: u32,
}

impl DeviceScene {
    /// Uploads a kd-tree and ray set into `mem` and writes the
    /// constant-memory header. Returns the region addresses.
    pub fn upload(tree: &KdTree, rays: &[Ray], mem: &mut MemoryFabric) -> DeviceScene {
        // --- nodes ---
        let nodes = tree.nodes();
        let nodes_base = mem.alloc_global(nodes.len() as u32 * NODE_RECORD_BYTES, "kd-nodes");
        for (i, n) in nodes.iter().enumerate() {
            let words = match *n {
                KdNode::Inner {
                    axis,
                    split,
                    left,
                    right,
                } => [u32::from(axis), split.to_bits(), left, right],
                KdNode::Leaf { first, count } => [LEAF_TAG, first, count, 0],
            };
            mem.host_write_global(nodes_base + i as u32 * NODE_RECORD_BYTES, &words);
        }
        // --- triangle references ---
        let refs = tree.tri_indices();
        let tri_idx_base = mem.alloc_global((refs.len().max(1) as u32) * 4, "kd-tri-refs");
        mem.host_write_global(tri_idx_base, refs);
        // --- Wald triangles ---
        let wald = tree.wald_triangles();
        let wald_base = mem.alloc_global((wald.len().max(1) as u32) * 48, "wald-tris");
        for (i, w) in wald.iter().enumerate() {
            mem.host_write_global(wald_base + i as u32 * 48, &w.to_words());
        }
        // --- rays ---
        let rays_base = mem.alloc_global(rays.len() as u32 * RAY_RECORD_BYTES, "rays");
        for (i, r) in rays.iter().enumerate() {
            let words = [
                r.origin.x.to_bits(),
                r.origin.y.to_bits(),
                r.origin.z.to_bits(),
                r.tmin.to_bits(),
                r.dir.x.to_bits(),
                r.dir.y.to_bits(),
                r.dir.z.to_bits(),
                r.tmax.to_bits(),
            ];
            mem.host_write_global(rays_base + i as u32 * RAY_RECORD_BYTES, &words);
        }
        // --- results (pre-filled with misses) ---
        let results_base = mem.alloc_global(rays.len() as u32 * RESULT_RECORD_BYTES, "results");
        for i in 0..rays.len() as u32 {
            mem.host_write_global(
                results_base + i * RESULT_RECORD_BYTES,
                &[f32::MAX.to_bits(), MISS],
            );
        }
        // --- per-ray stacks ---
        let stacks_base = mem.alloc_global(rays.len() as u32 * STACK_BYTES_PER_RAY, "stacks");

        // Bind the scene data as textures: read-only, per-SM cacheable.
        mem.mark_read_only(nodes_base, nodes.len() as u32 * NODE_RECORD_BYTES);
        mem.mark_read_only(tri_idx_base, refs.len().max(1) as u32 * 4);
        mem.mark_read_only(wald_base, wald.len().max(1) as u32 * 48);

        let scene = DeviceScene {
            nodes_base,
            tri_idx_base,
            wald_base,
            rays_base,
            results_base,
            stacks_base,
            num_rays: rays.len() as u32,
        };
        scene.write_const_header(mem);
        scene
    }

    /// Uploads a **new ray set** against an already-uploaded scene:
    /// allocates fresh ray/result/stack buffers, reuses the kd-tree and
    /// triangle arrays, and rewrites the constant header. Used for
    /// multi-pass rendering (e.g. a shadow-ray pass after the primary
    /// pass, paper §III-A).
    pub fn upload_rays(&self, rays: &[raytrace::Ray], mem: &mut MemoryFabric) -> DeviceScene {
        let rays_base = mem.alloc_global(rays.len() as u32 * RAY_RECORD_BYTES, "rays-pass2");
        for (i, r) in rays.iter().enumerate() {
            let words = [
                r.origin.x.to_bits(),
                r.origin.y.to_bits(),
                r.origin.z.to_bits(),
                r.tmin.to_bits(),
                r.dir.x.to_bits(),
                r.dir.y.to_bits(),
                r.dir.z.to_bits(),
                r.tmax.to_bits(),
            ];
            mem.host_write_global(rays_base + i as u32 * RAY_RECORD_BYTES, &words);
        }
        let results_base =
            mem.alloc_global(rays.len() as u32 * RESULT_RECORD_BYTES, "results-pass2");
        for i in 0..rays.len() as u32 {
            mem.host_write_global(
                results_base + i * RESULT_RECORD_BYTES,
                &[f32::MAX.to_bits(), MISS],
            );
        }
        let stacks_base = mem.alloc_global(rays.len() as u32 * STACK_BYTES_PER_RAY, "stacks-pass2");
        let scene = DeviceScene {
            rays_base,
            results_base,
            stacks_base,
            num_rays: rays.len() as u32,
            ..*self
        };
        scene.write_const_header(mem);
        scene
    }

    /// Writes the constant-memory header (done automatically by
    /// [`DeviceScene::upload`]).
    pub fn write_const_header(&self, mem: &mut MemoryFabric) {
        let base = 0;
        for (i, v) in [
            self.nodes_base,
            self.tri_idx_base,
            self.wald_base,
            self.rays_base,
            self.results_base,
            self.stacks_base,
            self.num_rays,
        ]
        .into_iter()
        .enumerate()
        {
            mem.host_write_const(base + 4 * i as u32, v);
        }
    }

    /// Reads back the result buffer as `(t, hit)` pairs, `None` for misses.
    pub fn read_results(&self, mem: &MemoryFabric) -> Vec<Option<Hit>> {
        (0..self.num_rays)
            .map(|i| {
                let base = self.results_base + i * RESULT_RECORD_BYTES;
                let t = f32::from_bits(mem.read_u32(simt_isa::Space::Global, base));
                let id = mem.read_u32(simt_isa::Space::Global, base + 4);
                (id != MISS).then_some(Hit { t, tri: id })
            })
            .collect()
    }
}

/// Byte size of the constant header.
pub const CONST_HEADER_BYTES: u32 = 28;

#[cfg(test)]
mod tests {
    use super::*;
    use raytrace::{scenes, Camera};
    use simt_mem::MemConfig;

    #[test]
    fn upload_roundtrips_header_and_nodes() {
        let scene = scenes::conference(scenes::SceneScale::Tiny);
        let tree = KdTree::build(&scene.triangles);
        let cam = Camera::looking_at(scene.bounds(), 4, 4);
        let rays: Vec<Ray> = (0..16).map(|p| cam.primary_ray_indexed(p)).collect();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let dev = DeviceScene::upload(&tree, &rays, &mut mem);

        // Header.
        assert_eq!(mem.read_u32(simt_isa::Space::Const, 0), dev.nodes_base);
        assert_eq!(mem.read_u32(simt_isa::Space::Const, 24), 16);

        // Root node roundtrip.
        let w0 = mem.read_u32(simt_isa::Space::Global, dev.nodes_base);
        match tree.nodes()[0] {
            KdNode::Inner { axis, .. } => assert_eq!(w0, u32::from(axis)),
            KdNode::Leaf { .. } => assert_eq!(w0, LEAF_TAG),
        }

        // Ray 0 roundtrip.
        let ox = f32::from_bits(mem.read_u32(simt_isa::Space::Global, dev.rays_base));
        assert_eq!(ox, rays[0].origin.x);

        // Results pre-filled with misses.
        let results = dev.read_results(&mem);
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(|r| r.is_none()));
    }

    #[test]
    fn wald_records_roundtrip() {
        let scene = scenes::atrium(scenes::SceneScale::Tiny);
        let tree = KdTree::build(&scene.triangles);
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let dev = DeviceScene::upload(&tree, &[], &mut mem);
        let w = &tree.wald_triangles()[3];
        let words: Vec<u32> = (0..12)
            .map(|i| mem.read_u32(simt_isa::Space::Global, dev.wald_base + 3 * 48 + i * 4))
            .collect();
        assert_eq!(words, w.to_words().to_vec());
    }

    #[test]
    fn regions_do_not_overlap() {
        let scene = scenes::fairyforest(scenes::SceneScale::Tiny);
        let tree = KdTree::build(&scene.triangles);
        let rays = vec![Ray::new(raytrace::Vec3::ZERO, raytrace::Vec3::new(1.0, 0.0, 0.0)); 8];
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let dev = DeviceScene::upload(&tree, &rays, &mut mem);
        let mut spans = vec![
            (dev.nodes_base, tree.nodes().len() as u32 * 16),
            (dev.tri_idx_base, tree.tri_indices().len() as u32 * 4),
            (dev.wald_base, tree.wald_triangles().len() as u32 * 48),
            (dev.rays_base, 8 * RAY_RECORD_BYTES),
            (dev.results_base, 8 * RESULT_RECORD_BYTES),
            (dev.stacks_base, 8 * STACK_BYTES_PER_RAY),
        ];
        spans.sort_by_key(|s| s.0);
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {spans:?}");
        }
    }
}
