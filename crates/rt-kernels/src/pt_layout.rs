//! Device-memory serialization for the BVH path tracer.
//!
//! ## Constant-memory header (word offsets)
//!
//! | offset | contents |
//! |--------|----------|
//! | 0      | BVH-node array base (global address) |
//! | 4      | Wald-triangle array base (leaf order, no indirection) |
//! | 8      | ray array base |
//! | 12     | result array base |
//! | 16     | traversal-stack area base |
//! | 20     | path-state array base (throughput/radiance/segments) |
//! | 24     | number of rays |
//!
//! ## BVH-node record (32 bytes, 8 words)
//!
//! | word | inner node | leaf |
//! |------|------------|------|
//! | 0–2  | bounds min x/y/z (f32) | same |
//! | 3    | left child index | `0x8000_0000 \| first Wald slot` |
//! | 4–6  | bounds max x/y/z (f32) | same |
//! | 7    | right child index | record count |
//!
//! Because the BVH partitions triangles disjointly, the Wald records are
//! laid out in leaf order and a leaf addresses them directly — there is
//! no triangle-reference table, and the Wald *slot* doubles as the
//! device-side triangle id.

use crate::{PT_PATH_RECORD_BYTES, PT_STACK_BYTES_PER_RAY, RAY_RECORD_BYTES, RESULT_RECORD_BYTES};
use raytrace::{Bvh, BvhNode, Ray};
use simt_mem::MemoryFabric;

/// Bytes of one serialized BVH node.
pub const PT_NODE_RECORD_BYTES: u32 = 32;

/// Tag bit marking a leaf in node word 3.
pub const PT_LEAF_BIT: u32 = 0x8000_0000;

/// One path-traced pixel: accumulated radiance plus the number of
/// traversal segments the path traced before terminating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtResult {
    /// Accumulated radiance.
    pub radiance: f32,
    /// Segments traced (primary + bounces).
    pub segments: u32,
}

/// Serializes one BVH node into its 8-word device record.
pub fn node_words(node: &BvhNode) -> [u32; 8] {
    let b = node.bounds();
    let (meta0, meta1) = match *node {
        BvhNode::Inner { left, right, .. } => (left, right),
        BvhNode::Leaf { first, count, .. } => (PT_LEAF_BIT | first, count),
    };
    [
        b.min.x.to_bits(),
        b.min.y.to_bits(),
        b.min.z.to_bits(),
        meta0,
        b.max.x.to_bits(),
        b.max.y.to_bits(),
        b.max.z.to_bits(),
        meta1,
    ]
}

/// Addresses of a path-tracing scene uploaded to device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtDeviceScene {
    /// BVH-node array base.
    pub nodes_base: u32,
    /// Wald-triangle array base (leaf order).
    pub wald_base: u32,
    /// Ray array base.
    pub rays_base: u32,
    /// Result array base.
    pub results_base: u32,
    /// Per-ray traversal-stack area base.
    pub stacks_base: u32,
    /// Per-ray path-state base.
    pub paths_base: u32,
    /// Number of rays uploaded.
    pub num_rays: u32,
}

impl PtDeviceScene {
    /// Uploads a BVH and ray set into `mem` and writes the constant
    /// header. Returns the region addresses.
    pub fn upload(bvh: &Bvh, rays: &[Ray], mem: &mut MemoryFabric) -> PtDeviceScene {
        let nodes = bvh.nodes();
        let nodes_base = mem.alloc_global(nodes.len() as u32 * PT_NODE_RECORD_BYTES, "bvh-nodes");
        for (i, n) in nodes.iter().enumerate() {
            mem.host_write_global(nodes_base + i as u32 * PT_NODE_RECORD_BYTES, &node_words(n));
        }
        let wald = bvh.wald_triangles();
        let wald_base = mem.alloc_global((wald.len().max(1) as u32) * 48, "bvh-wald-tris");
        for (i, w) in wald.iter().enumerate() {
            mem.host_write_global(wald_base + i as u32 * 48, &w.to_words());
        }
        let rays_base = mem.alloc_global(rays.len() as u32 * RAY_RECORD_BYTES, "pt-rays");
        for (i, r) in rays.iter().enumerate() {
            let words = [
                r.origin.x.to_bits(),
                r.origin.y.to_bits(),
                r.origin.z.to_bits(),
                r.tmin.to_bits(),
                r.dir.x.to_bits(),
                r.dir.y.to_bits(),
                r.dir.z.to_bits(),
                r.tmax.to_bits(),
            ];
            mem.host_write_global(rays_base + i as u32 * RAY_RECORD_BYTES, &words);
        }
        let results_base = mem.alloc_global(rays.len() as u32 * RESULT_RECORD_BYTES, "pt-results");
        for i in 0..rays.len() as u32 {
            mem.host_write_global(results_base + i * RESULT_RECORD_BYTES, &[0, 0]);
        }
        let stacks_base = mem.alloc_global(rays.len() as u32 * PT_STACK_BYTES_PER_RAY, "pt-stacks");
        let paths_base = mem.alloc_global(rays.len() as u32 * PT_PATH_RECORD_BYTES, "pt-paths");

        mem.mark_read_only(nodes_base, nodes.len() as u32 * PT_NODE_RECORD_BYTES);
        mem.mark_read_only(wald_base, wald.len().max(1) as u32 * 48);

        let scene = PtDeviceScene {
            nodes_base,
            wald_base,
            rays_base,
            results_base,
            stacks_base,
            paths_base,
            num_rays: rays.len() as u32,
        };
        scene.write_const_header(mem);
        scene
    }

    /// Writes the constant-memory header (done automatically by
    /// [`PtDeviceScene::upload`]).
    pub fn write_const_header(&self, mem: &mut MemoryFabric) {
        for (i, v) in [
            self.nodes_base,
            self.wald_base,
            self.rays_base,
            self.results_base,
            self.stacks_base,
            self.paths_base,
            self.num_rays,
        ]
        .into_iter()
        .enumerate()
        {
            mem.host_write_const(4 * i as u32, v);
        }
    }

    /// Reads the result buffer back as radiance/segment pairs.
    pub fn read_results(&self, mem: &MemoryFabric) -> Vec<PtResult> {
        (0..self.num_rays)
            .map(|i| {
                let base = self.results_base + i * RESULT_RECORD_BYTES;
                PtResult {
                    radiance: f32::from_bits(mem.read_u32(simt_isa::Space::Global, base)),
                    segments: mem.read_u32(simt_isa::Space::Global, base + 4),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raytrace::{scenes, Vec3};
    use simt_mem::MemConfig;

    #[test]
    fn upload_roundtrips_header_and_nodes() {
        let scene = scenes::conference(scenes::SceneScale::Tiny);
        let bvh = Bvh::build(&scene.triangles);
        let rays = vec![Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)); 4];
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let dev = PtDeviceScene::upload(&bvh, &rays, &mut mem);

        assert_eq!(mem.read_u32(simt_isa::Space::Const, 0), dev.nodes_base);
        assert_eq!(mem.read_u32(simt_isa::Space::Const, 20), dev.paths_base);
        assert_eq!(mem.read_u32(simt_isa::Space::Const, 24), 4);

        let w3 = mem.read_u32(simt_isa::Space::Global, dev.nodes_base + 12);
        match bvh.nodes()[0] {
            BvhNode::Inner { left, .. } => assert_eq!(w3, left),
            BvhNode::Leaf { first, .. } => assert_eq!(w3, PT_LEAF_BIT | first),
        }

        let results = dev.read_results(&mem);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.radiance == 0.0 && r.segments == 0));
    }

    #[test]
    fn leaf_and_inner_records_are_distinguishable() {
        let scene = scenes::fairyforest(scenes::SceneScale::Tiny);
        let bvh = Bvh::build(&scene.triangles);
        for node in bvh.nodes() {
            let w = node_words(node);
            match node {
                BvhNode::Inner { .. } => assert_eq!(w[3] & PT_LEAF_BIT, 0),
                BvhNode::Leaf { .. } => assert_eq!(w[3] & PT_LEAF_BIT, PT_LEAF_BIT),
            }
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let scene = scenes::atrium(scenes::SceneScale::Tiny);
        let bvh = Bvh::build(&scene.triangles);
        let rays = vec![Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)); 8];
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let dev = PtDeviceScene::upload(&bvh, &rays, &mut mem);
        let mut spans = vec![
            (
                dev.nodes_base,
                bvh.nodes().len() as u32 * PT_NODE_RECORD_BYTES,
            ),
            (dev.wald_base, bvh.wald_triangles().len() as u32 * 48),
            (dev.rays_base, 8 * RAY_RECORD_BYTES),
            (dev.results_base, 8 * RESULT_RECORD_BYTES),
            (dev.stacks_base, 8 * PT_STACK_BYTES_PER_RAY),
            (dev.paths_base, 8 * PT_PATH_RECORD_BYTES),
        ];
        spans.sort_by_key(|s| s.0);
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {spans:?}");
        }
    }
}
