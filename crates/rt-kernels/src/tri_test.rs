//! Shared assembly snippet: Wald's ray-triangle intersection test.
//!
//! Both benchmark kernels execute exactly this code against the 12-word
//! Wald record (`raytrace::WaldTriangle::to_words`), so the per-test work
//! (instructions and 48 loaded bytes) is identical — only the surrounding
//! control flow (PDOM loops vs spawned μ-kernels) differs, exactly as in
//! the paper's methodology.

/// Register assignment for one instantiation of the test.
///
/// `w` names the first of four consecutive scratch registers used as the
/// `v4` load target; `t`, `hu`, `hv`, `x`, `y` are independent scratch
/// registers. Predicates `p0`/`p1` (projection axis decode) and `p2`
/// (comparisons) are clobbered.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TriTestRegs {
    pub ox: u8,
    pub oy: u8,
    pub oz: u8,
    pub dx: u8,
    pub dy: u8,
    pub dz: u8,
    /// Best hit parameter so far; updated in place on a closer hit.
    pub best_t: u8,
    /// Best triangle id so far; updated in place.
    pub best_id: u8,
    /// Register holding the candidate triangle's reference id.
    pub tri_ref: u8,
    /// Register holding the byte address of the Wald record.
    pub wald_addr: u8,
    /// First of 4 consecutive scratch registers (`v4` target).
    pub w: u8,
    pub t: u8,
    pub hu: u8,
    pub hv: u8,
    pub x: u8,
    pub y: u8,
}

/// Emits the test. Control falls through to `miss_label` (which the caller
/// must define immediately after or elsewhere) when the triangle is not
/// hit closer than `best_t`; on a hit, `best_t`/`best_id` are updated and
/// control also reaches `miss_label`.
pub(crate) fn emit_tri_test(r: &TriTestRegs, miss_label: &str) -> String {
    let TriTestRegs {
        ox,
        oy,
        oz,
        dx,
        dy,
        dz,
        best_t,
        best_id,
        tri_ref,
        wald_addr,
        w,
        t,
        hu,
        hv,
        x,
        y,
    } = *r;
    let (w0, w1, w2, w3) = (w, w + 1, w + 2, w + 3);
    format!(
        r#"
    ; ---- Wald ray-triangle test (48-byte record, 3 x v4 loads) ----
    ld.global.v4 r{w0}, [r{wald_addr}+0]      ; n_u n_v n_d k
    setp.eq.s32 p0, r{w3}, 0
    setp.eq.s32 p1, r{w3}, 1
    ; nd = d_k + n_u*d_u + n_v*d_v
    selp.b32 r{hu}, r{dy}, r{dz}, p1
    selp.b32 r{t}, r{dx}, r{hu}, p0           ; d_k
    selp.b32 r{hu}, r{dz}, r{dx}, p1
    selp.b32 r{hu}, r{dy}, r{hu}, p0          ; d_u
    fma.f32 r{t}, r{w0}, r{hu}, r{t}
    selp.b32 r{hu}, r{dx}, r{dy}, p1
    selp.b32 r{hu}, r{dz}, r{hu}, p0          ; d_v
    fma.f32 r{t}, r{w1}, r{hu}, r{t}
    rcp.f32 r{t}, r{t}                        ; 1/nd
    ; num = n_d - o_k - n_u*o_u - n_v*o_v
    selp.b32 r{hu}, r{oy}, r{oz}, p1
    selp.b32 r{hu}, r{ox}, r{hu}, p0          ; o_k
    sub.f32 r{hv}, r{w2}, r{hu}
    selp.b32 r{hu}, r{oz}, r{ox}, p1
    selp.b32 r{hu}, r{oy}, r{hu}, p0          ; o_u
    mul.f32 r{x}, r{w0}, r{hu}
    sub.f32 r{hv}, r{hv}, r{x}
    selp.b32 r{hu}, r{ox}, r{oy}, p1
    selp.b32 r{hu}, r{oz}, r{hu}, p0          ; o_v
    mul.f32 r{x}, r{w1}, r{hu}
    sub.f32 r{hv}, r{hv}, r{x}
    mul.f32 r{t}, r{hv}, r{t}                 ; t = num/nd
    ; reject out-of-range (NaN also rejects)
    setp.ge.f32 p2, r{t}, 0.0001
    @!p2 bra {miss_label}
    setp.le.f32 p2, r{t}, r{best_t}
    @!p2 bra {miss_label}
    ; hu = o_u + t*d_u ; hv = o_v + t*d_v
    selp.b32 r{hu}, r{oz}, r{ox}, p1
    selp.b32 r{hu}, r{oy}, r{hu}, p0          ; o_u
    selp.b32 r{x}, r{dz}, r{dx}, p1
    selp.b32 r{x}, r{dy}, r{x}, p0            ; d_u
    fma.f32 r{hu}, r{x}, r{t}, r{hu}
    selp.b32 r{hv}, r{ox}, r{oy}, p1
    selp.b32 r{hv}, r{oz}, r{hv}, p0          ; o_v
    selp.b32 r{x}, r{dx}, r{dy}, p1
    selp.b32 r{x}, r{dz}, r{x}, p0            ; d_v
    fma.f32 r{hv}, r{x}, r{t}, r{hv}
    ; beta
    ld.global.v4 r{w0}, [r{wald_addr}+16]     ; b_nu b_nv b_d pad
    mul.f32 r{x}, r{hu}, r{w0}
    fma.f32 r{x}, r{hv}, r{w1}, r{x}
    add.f32 r{x}, r{x}, r{w2}
    setp.ge.f32 p2, r{x}, 0.0
    @!p2 bra {miss_label}
    ; gamma
    ld.global.v4 r{w0}, [r{wald_addr}+32]     ; c_nu c_nv c_d pad
    mul.f32 r{y}, r{hu}, r{w0}
    fma.f32 r{y}, r{hv}, r{w1}, r{y}
    add.f32 r{y}, r{y}, r{w2}
    setp.ge.f32 p2, r{y}, 0.0
    @!p2 bra {miss_label}
    add.f32 r{x}, r{x}, r{y}
    setp.le.f32 p2, r{x}, 1.0
    @!p2 bra {miss_label}
    ; hit: record it
    mov.b32 r{best_t}, r{t}
    mov.u32 r{best_id}, r{tri_ref}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use raytrace::{Ray, Triangle, Vec3, WaldTriangle};
    use simt_isa::{assemble_named, Space};
    use simt_mem::{MemConfig, MemoryFabric};
    use simt_sim::interpret_thread;

    /// Drives the snippet standalone: wald record at global 0, ray in
    /// registers, result at global 1024.
    fn run_test_kernel(tri: &Triangle, ray: &Ray) -> Option<f32> {
        let regs = TriTestRegs {
            ox: 3,
            oy: 4,
            oz: 5,
            dx: 7,
            dy: 8,
            dz: 9,
            best_t: 11,
            best_id: 12,
            tri_ref: 30,
            wald_addr: 2,
            w: 21,
            t: 25,
            hu: 26,
            hv: 27,
            x: 28,
            y: 29,
        };
        let src = format!(
            r#"
            .kernel main
            main:
                mov.u32 r2, 0
                mov.f32 r3, {ox}
                mov.f32 r4, {oy}
                mov.f32 r5, {oz}
                mov.f32 r7, {dx}
                mov.f32 r8, {dy}
                mov.f32 r9, {dz}
                mov.f32 r11, {tmax}
                mov.s32 r12, -1
                mov.u32 r30, 7
                {test}
            miss:
                mov.u32 r2, 1024
                st.global.u32 [r2+0], r11
                st.global.u32 [r2+4], r12
                exit
            "#,
            ox = ray.origin.x,
            oy = ray.origin.y,
            oz = ray.origin.z,
            dx = ray.dir.x,
            dy = ray.dir.y,
            dz = ray.dir.z,
            tmax = ray.tmax.min(1e30),
            test = emit_tri_test(&regs, "miss"),
        );
        let program = assemble_named("tritest", &src).expect("assembles");
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(2048, "all");
        let w = WaldTriangle::new(tri).expect("non-degenerate");
        mem.host_write_global(0, &w.to_words());
        interpret_thread(&program, 0, 0, 1, &mut mem).expect("runs");
        let id = mem.read_u32(Space::Global, 1028);
        (id == 7).then(|| f32::from_bits(mem.read_u32(Space::Global, 1024)))
    }

    fn tri_xy() -> Triangle {
        Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn device_test_hits_like_host() {
        let tri = tri_xy();
        let ray = Ray::new(Vec3::new(0.2, 0.3, 2.0), Vec3::new(0.0, 0.0, -1.0));
        let t = run_test_kernel(&tri, &ray).expect("hit");
        assert!((t - 2.0).abs() < 1e-4);
    }

    #[test]
    fn device_test_misses_like_host() {
        let tri = tri_xy();
        let ray = Ray::new(Vec3::new(2.0, 2.0, 2.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(run_test_kernel(&tri, &ray).is_none());
    }

    #[test]
    fn device_matches_host_on_many_axes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut hits = 0;
        for i in 0..200 {
            let p = |rng: &mut StdRng| {
                Vec3::new(
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                )
            };
            let tri = Triangle::new(p(&mut rng), p(&mut rng), p(&mut rng));
            if tri.is_degenerate() {
                continue;
            }
            let Some(w) = WaldTriangle::new(&tri) else {
                continue;
            };
            // Aim at the centroid from a random origin for a solid hit mix.
            let o = p(&mut rng) * 3.0;
            let d = if i % 2 == 0 {
                tri.centroid() - o
            } else {
                p(&mut rng)
            };
            if d.length() < 1e-3 {
                continue;
            }
            let ray = Ray::new(o, d);
            let host = w.intersect(&ray);
            let device = run_test_kernel(&tri, &ray);
            match (host, device) {
                (Some(a), Some(b)) => {
                    hits += 1;
                    assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "t {a} vs {b}");
                }
                (None, None) => {}
                (h, d) => panic!("case {i}: host {h:?} device {d:?}"),
            }
        }
        assert!(hits > 30, "want solid hit coverage, got {hits}");
    }
}
