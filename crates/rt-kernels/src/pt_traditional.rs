//! The traditional (looped) BVH path-tracing kernel.
//!
//! One thread per pixel, four nested data-dependent loops under PDOM:
//!
//! 1. the outer *segment* loop (primary ray plus up to
//!    [`crate::PT_MAX_BOUNCES`]` - 1` diffuse bounces);
//! 2. the *restart* loop popping the traversal stack;
//! 3. the *descent* loop walking inner BVH nodes;
//! 4. the *object-test* loop intersecting a leaf's triangles.
//!
//! Trip counts of every level are data dependent (scene depth, leaf
//! occupancy, and — for the segment loop — whether the path escapes or
//! exhausts its bounces), so the divergence is strictly worse than the
//! kd tracer's three loops: exactly the "deeper irregular loop nest"
//! workload the registry adds.
//!
//! ## Register map
//!
//! r0 zero · r1 ray id · r3 address scratch ·
//! r4–r6 origin · r7–r9 direction · r10/r11 best t / Wald slot ·
//! r12 node · r13 sp · r14 segment tmin · r15 RNG ·
//! r16–r23 node words (r16/r17 reused as leaf cursor/remaining) ·
//! r24–r30 fragment scratch · r31–r33 throughput/radiance/segments.

use crate::pt_common::{emit_bounce_sample, emit_hit_accounting, emit_seed, emit_slab_test};
use crate::tri_test::{emit_tri_test, TriTestRegs};
use crate::{PT_MAX_BOUNCES, PT_TFAR, PT_TMIN};
use simt_isa::{assemble_named, Program};

/// Assembles the traditional path-tracing kernel.
///
/// # Panics
///
/// Panics only if the embedded assembly fails to assemble (a build-time
/// invariant covered by tests).
pub fn program() -> Program {
    assemble_named("pt-traditional", &source()).expect("pt traditional kernel assembles")
}

/// The kernel's assembly source (exposed for inspection/disassembly).
pub fn source() -> String {
    let tri = emit_tri_test(
        &TriTestRegs {
            ox: 4,
            oy: 5,
            oz: 6,
            dx: 7,
            dy: 8,
            dz: 9,
            best_t: 10,
            best_id: 11,
            tri_ref: 29,
            wald_addr: 3,
            w: 20,
            t: 24,
            hu: 25,
            hv: 26,
            x: 27,
            y: 28,
        },
        "tri_next",
    );
    format!(
        r#"
.kernel main
.global 312          ; per-ray stack (256) + ray (32) + result (8) + path (16)
.const 28

main:
    mov.u32 r0, 0
    mov.u32 r1, %tid
    ld.const.u32 r3, [r0+24]          ; number of rays
    setp.ge.u32 p0, r1, r3
    @p0 exit
    ld.const.u32 r3, [r0+8]           ; ray base
    mad.lo.s32 r3, r1, 32, r3
    ld.global.v4 r4, [r3+0]           ; ox oy oz tmin
    ld.global.v4 r8, [r3+16]          ; dx dy dz tmax
    mov.b32 r14, r7                   ; segment tmin = ray tmin
    mov.b32 r7, r8                    ; dx
    mov.b32 r8, r9                    ; dy
    mov.b32 r9, r10                   ; dz
    mov.b32 r10, r11                  ; best_t = ray tmax
    mov.s32 r11, -1                   ; best_id = miss
    mov.u32 r12, 0                    ; node = root
    mov.u32 r13, 0                    ; sp = 0
{seed}
    mov.u32 r31, 0x{one:08x}          ; throughput = 1.0
    mov.u32 r32, 0                    ; radiance = 0.0
    mov.u32 r33, 0                    ; segments = 0

node_loop:                            ; -- one BVH node --
    ld.const.u32 r3, [r0+0]           ; node base
    mad.lo.s32 r3, r12, 32, r3
    ld.global.v4 r16, [r3+0]          ; min.x min.y min.z meta0
    ld.global.v4 r20, [r3+16]         ; max.x max.y max.z meta1
    mov.b32 r24, r14                  ; tnear = segment tmin
    mov.b32 r25, r10                  ; tfar = best_t
{slab}
    setp.le.f32 p2, r24, r25
    @!p2 bra pop                      ; box missed (or NaN)
    shr.u32 r26, r19, 31
    setp.ne.s32 p2, r26, 0
    @p2 bra leaf
    ; inner: push the right child, descend left
    ; entry address = base + (sp*nrays + rayid)*4 (ray-interleaved)
    ld.const.u32 r3, [r0+24]
    mul.lo.s32 r3, r3, r13
    add.s32 r3, r3, r1
    shl.b32 r3, r3, 2
    ld.const.u32 r26, [r0+16]         ; stack base
    add.s32 r3, r3, r26
    st.global.u32 [r3+0], r23
    add.s32 r13, r13, 1
    mov.b32 r12, r19
    bra node_loop

leaf:                                 ; -- test the leaf's Wald records --
    and.b32 r16, r19, 0x7fffffff      ; cursor = first slot
    mov.b32 r17, r23                  ; remaining = count
tri_loop:
    setp.le.s32 p2, r17, 0
    @p2 bra pop
    ld.const.u32 r3, [r0+4]           ; Wald base
    mad.lo.s32 r3, r16, 48, r3
    mov.b32 r29, r16                  ; slot doubles as triangle id
{tri}
tri_next:
    add.s32 r16, r16, 1
    sub.s32 r17, r17, 1
    bra tri_loop

pop:                                  ; -- restart loop --
    setp.eq.s32 p2, r13, 0
    @p2 bra bounce
    sub.s32 r13, r13, 1
    ld.const.u32 r3, [r0+24]
    mul.lo.s32 r3, r3, r13
    add.s32 r3, r3, r1
    shl.b32 r3, r3, 2
    ld.const.u32 r26, [r0+16]
    add.s32 r3, r3, r26
    ld.global.u32 r12, [r3+0]
    bra node_loop

bounce:                               ; -- segment loop --
    setp.eq.s32 p0, r11, -1
    @p0 bra escape
{hit}
    add.s32 r33, r33, 1
    setp.ge.s32 p0, r33, {max_bounces}
    @p0 bra finish
{sample}
    mov.u32 r10, 0x{tfar:08x}         ; best_t = far sentinel
    mov.s32 r11, -1
    mov.u32 r12, 0
    mov.u32 r13, 0
    mov.u32 r14, 0x{tmin:08x}
    bra node_loop

escape:
    add.f32 r32, r32, r31             ; radiance += throughput (sky = 1)
    add.s32 r33, r33, 1
finish:
    ld.const.u32 r3, [r0+12]          ; result base
    mad.lo.s32 r3, r1, 8, r3
    st.global.u32 [r3+0], r32
    st.global.u32 [r3+4], r33
    exit
"#,
        seed = emit_seed(1),
        slab = emit_slab_test(),
        tri = tri,
        hit = emit_hit_accounting(31, 32),
        sample = emit_bounce_sample(),
        one = 1.0f32.to_bits(),
        tfar = PT_TFAR.to_bits(),
        tmin = PT_TMIN.to_bits(),
        max_bounces = PT_MAX_BOUNCES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_with_expected_shape() {
        let p = program();
        assert_eq!(p.entry("main").unwrap().pc, 0);
        assert!(p.spawn_sites().is_empty(), "looped kernel never spawns");
        let r = p.resource_usage();
        assert!(r.registers <= 40, "registers {}", r.registers);
        assert_eq!(r.const_bytes, 28);
        assert_eq!(r.spawn_state_bytes, 0);
    }

    #[test]
    fn has_four_loop_back_edges() {
        // node_loop (descent, restart, segment) + tri_loop.
        let p = program();
        let node = p.label("node_loop").unwrap();
        let tri = p.label("tri_loop").unwrap();
        let back_edges = p
            .instrs()
            .iter()
            .enumerate()
            .filter(|(pc, i)| match i.op {
                simt_isa::Instr::Bra { target } => {
                    target <= *pc && (target == node || target == tri)
                }
                _ => false,
            })
            .count();
        assert!(
            back_edges >= 4,
            "expected >= 4 loop back-edges, got {back_edges}"
        );
    }

    #[test]
    fn reconvergence_analysis_covers_all_branches() {
        let p = program();
        let _ = simt_isa::ReconvergenceTable::build(&p);
    }
}
