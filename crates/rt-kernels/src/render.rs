//! End-to-end render wiring: scene → device memory → launch → verify.

use crate::layout::DeviceScene;
use crate::{traditional, ukernel};
use raytrace::{Camera, Hit, KdTree, Ray, Scene};
use simt_sim::{Gpu, Launch};

/// Camera rays for a `width × height` render of `scene`, row-major,
/// using the scene's benchmark viewpoint and **clipped to the scene
/// bounds** (standard ray setup: without clipping, `tmax = ∞` forces the
/// kd-traversal to push both children at every split).
pub fn build_rays(scene: &Scene, width: u32, height: u32) -> Vec<Ray> {
    let cam = Camera::new(
        scene.view.origin,
        scene.view.target,
        scene.view.vfov_deg,
        width,
        height,
    );
    let bounds = scene.bounds();
    (0..width * height)
        .map(|p| {
            let mut r = cam.primary_ray_indexed(p);
            match bounds.intersect(&r) {
                Some((t0, t1)) => {
                    r.tmin = t0.max(1e-4);
                    r.tmax = t1 + 1e-3;
                }
                None => {
                    // The ray never enters the scene: degenerate interval.
                    r.tmin = 1e-4;
                    r.tmax = 1e-4;
                }
            }
            r
        })
        .collect()
}

/// Builds shadow rays toward a point light from the primary-pass hits
/// (paper §III-A's first motivating use of ray tracing): for each hit
/// pixel, a ray from the surface point to the light, bounded by the light
/// distance; misses get a degenerate interval so their threads retire
/// immediately.
///
/// Shadow rays are far less coherent than primaries — neighbouring pixels
/// on different surfaces aim at the light from different origins — which
/// makes this the more divergent second pass the paper's introduction
/// describes.
pub fn shadow_rays(primary: &[Ray], results: &[Option<Hit>], light: raytrace::Vec3) -> Vec<Ray> {
    assert_eq!(primary.len(), results.len(), "one result per primary ray");
    primary
        .iter()
        .zip(results)
        .map(|(ray, hit)| match hit {
            Some(h) => {
                let p = ray.at(h.t);
                let to_light = light - p;
                let dist = to_light.length();
                let dir = to_light / dist.max(1e-6);
                let mut r = Ray::new(p + dir * 1e-3, dir);
                r.tmin = 1e-3;
                r.tmax = dist - 1e-3;
                r
            }
            None => {
                // No surface: nothing to shadow; degenerate interval.
                let mut r = *ray;
                r.tmin = 1e-4;
                r.tmax = 1e-4;
                r
            }
        })
        .collect()
}

/// A scene prepared for simulation.
#[derive(Debug)]
pub struct RenderSetup {
    /// The kd-tree (host copy, for reference tracing).
    pub tree: KdTree,
    /// The primary rays, row-major.
    pub rays: Vec<Ray>,
    /// Device addresses after upload.
    pub dev: DeviceScene,
}

impl RenderSetup {
    /// Builds the tree, generates rays, and uploads both into `gpu`.
    pub fn upload(gpu: &mut Gpu, scene: &Scene, width: u32, height: u32) -> RenderSetup {
        let tree = KdTree::build(&scene.triangles);
        let rays = build_rays(scene, width, height);
        let dev = DeviceScene::upload(&tree, &rays, gpu.mem_mut());
        RenderSetup { tree, rays, dev }
    }

    /// Traces all rays on the host (the correctness oracle).
    pub fn host_reference(&self) -> Vec<Option<Hit>> {
        self.rays.iter().map(|r| self.tree.intersect(r)).collect()
    }

    /// Launches the traditional kernel (one thread per ray).
    pub fn launch_traditional(&self, gpu: &mut Gpu, threads_per_block: u32) {
        gpu.launch(Launch {
            program: traditional::program(),
            entry: "main".into(),
            num_threads: self.dev.num_rays,
            threads_per_block,
        })
        .expect("render kernel launch rejected");
    }

    /// Launches the μ-kernel version (requires DMK hardware).
    pub fn launch_ukernel(&self, gpu: &mut Gpu, threads_per_block: u32) {
        gpu.launch(Launch {
            program: ukernel::program(),
            entry: "main".into(),
            num_threads: self.dev.num_rays,
            threads_per_block,
        })
        .expect("render kernel launch rejected");
    }

    /// Reads device results back.
    pub fn device_results(&self, gpu: &Gpu) -> Vec<Option<Hit>> {
        self.dev.read_results(gpu.mem())
    }

    /// Prepares and launches a **shadow pass** toward `light`, using the
    /// primary results already in device memory. Returns the new pass's
    /// device handle (read results from it after `gpu.run`).
    ///
    /// # Panics
    ///
    /// Panics if the primary pass has not completed.
    pub fn launch_shadow_pass(
        &self,
        gpu: &mut Gpu,
        light: raytrace::Vec3,
        dynamic: bool,
        threads_per_block: u32,
    ) -> crate::layout::DeviceScene {
        let primary_results = self.device_results(gpu);
        let rays = shadow_rays(&self.rays, &primary_results, light);
        let dev2 = self.dev.upload_rays(&rays, gpu.mem_mut());
        gpu.launch(Launch {
            program: if dynamic {
                ukernel::program()
            } else {
                traditional::program()
            },
            entry: "main".into(),
            num_threads: dev2.num_rays,
            threads_per_block,
        })
        .expect("render kernel launch rejected");
        dev2
    }
}

/// Outcome of comparing device results against the host oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchReport {
    /// Rays compared.
    pub total: usize,
    /// Rays whose hit/miss status and (for hits) parameter agree.
    pub matches: usize,
    /// Disagreements.
    pub mismatches: usize,
}

impl MatchReport {
    /// Fraction of rays that agree.
    pub fn match_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.matches as f64 / self.total as f64
        }
    }
}

/// Compares device results to the host oracle. A hit matches when both
/// agree on hit/miss and the hit parameters differ by < 0.1 % (different
/// but equivalent float orderings during traversal).
pub fn compare(host: &[Option<Hit>], device: &[Option<Hit>]) -> MatchReport {
    assert_eq!(host.len(), device.len(), "result lengths must agree");
    let mut r = MatchReport {
        total: host.len(),
        ..MatchReport::default()
    };
    for (h, d) in host.iter().zip(device) {
        let ok = match (h, d) {
            (Some(a), Some(b)) => (a.t - b.t).abs() / a.t.abs().max(1.0) < 1e-3,
            (None, None) => true,
            _ => false,
        };
        if ok {
            r.matches += 1;
        } else {
            r.mismatches += 1;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmk_core::DmkConfig;
    use raytrace::scenes::{self, SceneScale};
    use simt_sim::{GpuConfig, RunOutcome};

    fn tiny_gpu(dmk: bool) -> Gpu {
        let mut cfg = GpuConfig::tiny();
        cfg.max_threads_per_sm = 64;
        cfg.registers_per_sm = 64 * 40;
        if dmk {
            cfg.dmk = Some(DmkConfig {
                warp_size: cfg.warp_size,
                threads_per_sm: cfg.max_threads_per_sm,
                state_bytes: 48,
                num_ukernels: 4,
                fifo_capacity: 64,
            });
        }
        Gpu::builder(cfg).build()
    }

    #[test]
    fn traditional_kernel_matches_host_reference() {
        let scene = scenes::conference(SceneScale::Tiny);
        let mut gpu = tiny_gpu(false);
        let setup = RenderSetup::upload(&mut gpu, &scene, 8, 8);
        setup.launch_traditional(&mut gpu, 8);
        let summary = gpu.run(50_000_000).expect("fault-free run");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        let host = setup.host_reference();
        let device = setup.device_results(&gpu);
        let report = compare(&host, &device);
        assert!(
            report.match_rate() > 0.99,
            "match rate {} ({} mismatches of {})",
            report.match_rate(),
            report.mismatches,
            report.total
        );
        // Make sure the image is non-trivial.
        let hits = host.iter().flatten().count();
        assert!(hits > 5, "camera should see geometry, hits={hits}");
    }

    #[test]
    fn ukernel_matches_host_reference() {
        let scene = scenes::conference(SceneScale::Tiny);
        let mut gpu = tiny_gpu(true);
        let setup = RenderSetup::upload(&mut gpu, &scene, 8, 8);
        setup.launch_ukernel(&mut gpu, 8);
        let summary = gpu.run(100_000_000).expect("fault-free run");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        let host = setup.host_reference();
        let device = setup.device_results(&gpu);
        let report = compare(&host, &device);
        assert!(
            report.match_rate() > 0.99,
            "match rate {} ({} mismatches of {})",
            report.match_rate(),
            report.mismatches,
            report.total
        );
        assert!(summary.stats.threads_spawned > 0, "μ-kernels must spawn");
        assert_eq!(
            summary.stats.lineages_completed,
            u64::from(setup.dev.num_rays),
            "every ray's lineage must finish"
        );
    }

    #[test]
    fn both_kernels_produce_identical_images() {
        let scene = scenes::fairyforest(SceneScale::Tiny);

        let mut gpu_t = tiny_gpu(false);
        let setup_t = RenderSetup::upload(&mut gpu_t, &scene, 8, 8);
        setup_t.launch_traditional(&mut gpu_t, 8);
        assert_eq!(
            gpu_t.run(50_000_000).expect("fault-free run").outcome,
            RunOutcome::Completed
        );
        let img_t = setup_t.device_results(&gpu_t);

        let mut gpu_u = tiny_gpu(true);
        let setup_u = RenderSetup::upload(&mut gpu_u, &scene, 8, 8);
        setup_u.launch_ukernel(&mut gpu_u, 8);
        assert_eq!(
            gpu_u.run(100_000_000).expect("fault-free run").outcome,
            RunOutcome::Completed
        );
        let img_u = setup_u.device_results(&gpu_u);

        let report = compare(&img_t, &img_u);
        assert_eq!(report.mismatches, 0, "kernels disagree: {report:?}");
    }

    #[test]
    fn shadow_pass_matches_host_occlusion_test() {
        let scene = scenes::conference(SceneScale::Tiny);
        // Low corner light opposite the camera: at Tiny scale the scene is
        // sparse, and this position reliably leaves some rays occluded and
        // some lit (16x16 rays keep the sample dense enough).
        let light = raytrace::Vec3::new(13.0, 3.5, 8.0);
        for dynamic in [false, true] {
            let mut gpu = tiny_gpu(dynamic);
            let setup = RenderSetup::upload(&mut gpu, &scene, 16, 16);
            if dynamic {
                setup.launch_ukernel(&mut gpu, 8);
            } else {
                setup.launch_traditional(&mut gpu, 8);
            }
            assert_eq!(
                gpu.run(100_000_000).expect("fault-free run").outcome,
                RunOutcome::Completed
            );
            let dev2 = setup.launch_shadow_pass(&mut gpu, light, dynamic, 8);
            assert_eq!(
                gpu.run(100_000_000).expect("fault-free run").outcome,
                RunOutcome::Completed
            );
            let device_shadow = dev2.read_results(gpu.mem());

            // Host oracle: trace the same shadow rays.
            let primary = setup.host_reference();
            let rays = shadow_rays(&setup.rays, &primary, light);
            let mut mismatches = 0;
            for (i, r) in rays.iter().enumerate() {
                let host_occluded = setup.tree.intersect(r).is_some();
                let dev_occluded = device_shadow[i].is_some();
                if host_occluded != dev_occluded {
                    mismatches += 1;
                }
            }
            assert!(
                mismatches <= 1,
                "dynamic={dynamic}: {mismatches} shadow mismatches of {}",
                rays.len()
            );
            // The scene must actually cast some shadows and some light.
            let occluded = device_shadow.iter().flatten().count();
            assert!(occluded > 0, "no shadows at all");
            assert!(occluded < rays.len(), "everything in shadow");
        }
    }

    #[test]
    fn shadow_rays_are_degenerate_for_primary_misses() {
        let primary = vec![Ray::new(
            raytrace::Vec3::ZERO,
            raytrace::Vec3::new(1.0, 0.0, 0.0),
        )];
        let rays = shadow_rays(&primary, &[None], raytrace::Vec3::new(0.0, 10.0, 0.0));
        assert_eq!(rays[0].tmin, rays[0].tmax);
    }

    #[test]
    fn compare_flags_disagreements() {
        let a = vec![Some(Hit { t: 1.0, tri: 0 }), None];
        let b = vec![Some(Hit { t: 2.0, tri: 0 }), None];
        let r = compare(&a, &b);
        assert_eq!(r.matches, 1);
        assert_eq!(r.mismatches, 1);
        assert!((r.match_rate() - 0.5).abs() < 1e-9);
    }
}
