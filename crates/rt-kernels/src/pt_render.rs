//! BVH path tracer: scene → device memory → launch → bit-exact verify.
//!
//! The host reference here is not a tolerance oracle like
//! [`crate::render::compare`]: [`host_path_trace`] replays the *device
//! float-op sequence* (same ops, same order, same constants — the
//! simulator's ALU is plain Rust `f32` arithmetic), so device results
//! must match it **bit for bit** and the [`image_hash`] of both sides
//! is equal. Both kernel variants embed the same
//! [`crate::pt_common`] fragments, so Traditional and Dynamic produce
//! the same image too.

use crate::pt_layout::{PtDeviceScene, PtResult, PT_LEAF_BIT};
use crate::render::build_rays;
use crate::{
    pt_traditional, pt_ukernel, MISS, PT_ALBEDO, PT_DIR_SCALE, PT_EMIT, PT_MAX_BOUNCES, PT_OFFSET,
    PT_SEED_MUL, PT_TFAR, PT_TMIN,
};
use raytrace::{Bvh, Ray, Scene};
use simt_sim::{Gpu, Launch};

/// One xorshift32 step plus the draw→component mapping the kernels use.
fn draw_component(rng: &mut u32) -> f32 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 17;
    *rng ^= *rng << 5;
    ((*rng >> 9) as f32) * PT_DIR_SCALE - 1.0
}

/// Mirror of the device AABB slab test (`pt_common::emit_slab_test`).
fn slab_hit(w: &[u32; 8], o: [f32; 3], d: [f32; 3], tnear0: f32, tfar0: f32) -> bool {
    let mut tnear = tnear0;
    let mut tfar = tfar0;
    for a in 0..3 {
        let inv = 1.0f32 / d[a];
        let t0 = (f32::from_bits(w[a]) - o[a]) * inv;
        let t1 = (f32::from_bits(w[4 + a]) - o[a]) * inv;
        let near = t0.min(t1);
        let far = t0.max(t1);
        tnear = tnear.max(near);
        tfar = tfar.min(far);
    }
    tnear <= tfar
}

/// Mirror of the device Wald test (`tri_test::emit_tri_test`).
/// The negated comparisons are load-bearing: `!(x >= y)` rejects on
/// NaN exactly like the device `setp`/branch pair, where `x < y` would
/// not.
#[allow(clippy::too_many_arguments, clippy::neg_cmp_op_on_partial_ord)]
fn wald_test(
    w: &[u32; 12],
    o: [f32; 3],
    d: [f32; 3],
    best_t: &mut f32,
    best_id: &mut u32,
    slot: u32,
) {
    let n_u = f32::from_bits(w[0]);
    let n_v = f32::from_bits(w[1]);
    let n_d = f32::from_bits(w[2]);
    let (d_k, d_u, d_v) = match w[3] {
        0 => (d[0], d[1], d[2]),
        1 => (d[1], d[2], d[0]),
        _ => (d[2], d[0], d[1]),
    };
    let (o_k, o_u, o_v) = match w[3] {
        0 => (o[0], o[1], o[2]),
        1 => (o[1], o[2], o[0]),
        _ => (o[2], o[0], o[1]),
    };
    let mut t = d_k;
    t = n_u.mul_add(d_u, t);
    t = n_v.mul_add(d_v, t);
    t = 1.0 / t;
    let mut num = n_d - o_k;
    num -= n_u * o_u;
    num -= n_v * o_v;
    let t_hit = num * t;
    if !(t_hit >= 0.0001) {
        return;
    }
    if !(t_hit <= *best_t) {
        return;
    }
    let hu = d_u.mul_add(t_hit, o_u);
    let hv = d_v.mul_add(t_hit, o_v);
    let mut beta = hu * f32::from_bits(w[4]);
    beta = hv.mul_add(f32::from_bits(w[5]), beta);
    beta += f32::from_bits(w[6]);
    if !(beta >= 0.0) {
        return;
    }
    let mut gamma = hu * f32::from_bits(w[8]);
    gamma = hv.mul_add(f32::from_bits(w[9]), gamma);
    gamma += f32::from_bits(w[10]);
    if !(gamma >= 0.0) {
        return;
    }
    if !(beta + gamma <= 1.0) {
        return;
    }
    *best_t = t_hit;
    *best_id = slot;
}

/// Path-traces one ray, replaying the device op sequence exactly.
fn trace_one(nodes: &[[u32; 8]], wald: &[[u32; 12]], tid: u32, ray: &Ray) -> PtResult {
    let mut o = [ray.origin.x, ray.origin.y, ray.origin.z];
    let mut d = [ray.dir.x, ray.dir.y, ray.dir.z];
    let mut tmin = ray.tmin;
    let mut best_t = ray.tmax;
    let mut best_id = MISS;
    let mut rng = tid.wrapping_add(1).wrapping_mul(PT_SEED_MUL);
    let mut thr = 1.0f32;
    let mut rad = 0.0f32;
    let mut segments = 0u32;
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    let mut node = 0u32;
    loop {
        // One traversal segment.
        loop {
            let w = &nodes[node as usize];
            if slab_hit(w, o, d, tmin, best_t) {
                if w[3] & PT_LEAF_BIT != 0 {
                    let count = w[7];
                    if count != 0 {
                        let first = w[3] & 0x7fff_ffff;
                        for slot in first..first + count {
                            wald_test(&wald[slot as usize], o, d, &mut best_t, &mut best_id, slot);
                        }
                    }
                } else {
                    stack.push(w[7]);
                    node = w[3];
                    continue;
                }
            }
            match stack.pop() {
                Some(n) => node = n,
                None => break,
            }
        }
        // Bounce step (device: `p_pop` with an empty stack).
        if best_id == MISS {
            rad += thr;
            segments += 1;
            return PtResult {
                radiance: rad,
                segments,
            };
        }
        rad = thr.mul_add(PT_EMIT, rad);
        thr *= PT_ALBEDO;
        segments += 1;
        if segments >= PT_MAX_BOUNCES {
            return PtResult {
                radiance: rad,
                segments,
            };
        }
        o[0] = d[0].mul_add(best_t, o[0]);
        o[1] = d[1].mul_add(best_t, o[1]);
        o[2] = d[2].mul_add(best_t, o[2]);
        let mut c = [
            draw_component(&mut rng),
            draw_component(&mut rng),
            draw_component(&mut rng),
        ];
        let mut dot = c[0] * d[0];
        dot = c[1].mul_add(d[1], dot);
        dot = c[2].mul_add(d[2], dot);
        if dot > 0.0 {
            c = [-c[0], -c[1], -c[2]];
        }
        let mut len2 = c[0] * c[0];
        len2 = c[1].mul_add(c[1], len2);
        len2 = c[2].mul_add(c[2], len2);
        let inv = 1.0 / len2.sqrt();
        d = [c[0] * inv, c[1] * inv, c[2] * inv];
        o[0] = d[0].mul_add(PT_OFFSET, o[0]);
        o[1] = d[1].mul_add(PT_OFFSET, o[1]);
        o[2] = d[2].mul_add(PT_OFFSET, o[2]);
        best_t = PT_TFAR;
        best_id = MISS;
        node = 0;
        tmin = PT_TMIN;
    }
}

/// Path-traces every ray on the host — the bit-exact reference both
/// kernels are validated against.
pub fn host_path_trace(bvh: &Bvh, rays: &[Ray]) -> Vec<PtResult> {
    let nodes: Vec<[u32; 8]> = bvh
        .nodes()
        .iter()
        .map(crate::pt_layout::node_words)
        .collect();
    let wald: Vec<[u32; 12]> = bvh.wald_triangles().iter().map(|w| w.to_words()).collect();
    rays.iter()
        .enumerate()
        .map(|(tid, r)| trace_one(&nodes, &wald, tid as u32, r))
        .collect()
}

/// FNV-1a-64 over the result words, in ray order — the "image hash"
/// `repro` prints and CI asserts.
pub fn image_hash(results: &[PtResult]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u32| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in results {
        eat(r.radiance.to_bits());
        eat(r.segments);
    }
    h
}

/// Number of result entries that differ from the reference (bit-exact
/// comparison — any nonzero count is a defect).
pub fn exact_mismatches(host: &[PtResult], device: &[PtResult]) -> usize {
    assert_eq!(host.len(), device.len(), "result lengths must agree");
    host.iter()
        .zip(device)
        .filter(|(h, d)| h.radiance.to_bits() != d.radiance.to_bits() || h.segments != d.segments)
        .count()
}

/// A scene prepared for path-traced simulation.
#[derive(Debug)]
pub struct PtSetup {
    /// The BVH (host copy, for the reference tracer).
    pub bvh: Bvh,
    /// The primary rays, row-major.
    pub rays: Vec<Ray>,
    /// Device addresses after upload.
    pub dev: PtDeviceScene,
}

impl PtSetup {
    /// Builds the BVH, generates primary rays (same camera setup as the
    /// kd workloads), and uploads both into `gpu`.
    pub fn upload(gpu: &mut Gpu, scene: &Scene, width: u32, height: u32) -> PtSetup {
        let bvh = Bvh::build(&scene.triangles);
        let rays = build_rays(scene, width, height);
        let dev = PtDeviceScene::upload(&bvh, &rays, gpu.mem_mut());
        PtSetup { bvh, rays, dev }
    }

    /// Path-traces all rays on the host (the bit-exact oracle).
    pub fn host_reference(&self) -> Vec<PtResult> {
        host_path_trace(&self.bvh, &self.rays)
    }

    /// Launches the traditional (looped) kernel.
    pub fn launch_traditional(&self, gpu: &mut Gpu, threads_per_block: u32) {
        gpu.launch(Launch {
            program: pt_traditional::program(),
            entry: "main".into(),
            num_threads: self.dev.num_rays,
            threads_per_block,
        })
        .expect("path-trace kernel launch rejected");
    }

    /// Launches the μ-kernel version (requires DMK hardware).
    pub fn launch_ukernel(&self, gpu: &mut Gpu, threads_per_block: u32) {
        gpu.launch(Launch {
            program: pt_ukernel::program(),
            entry: "main".into(),
            num_threads: self.dev.num_rays,
            threads_per_block,
        })
        .expect("path-trace kernel launch rejected");
    }

    /// Reads device results back.
    pub fn device_results(&self, gpu: &Gpu) -> Vec<PtResult> {
        self.dev.read_results(gpu.mem())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmk_core::DmkConfig;
    use raytrace::scenes::{self, SceneScale};
    use simt_sim::{GpuConfig, RunOutcome};

    fn tiny_gpu(dmk: bool) -> Gpu {
        let mut cfg = GpuConfig::tiny();
        cfg.max_threads_per_sm = 64;
        cfg.registers_per_sm = 64 * 40;
        if dmk {
            cfg.dmk = Some(DmkConfig {
                warp_size: cfg.warp_size,
                threads_per_sm: cfg.max_threads_per_sm,
                state_bytes: 48,
                num_ukernels: 4,
                fifo_capacity: 64,
            });
        }
        Gpu::builder(cfg).build()
    }

    #[test]
    fn host_reference_is_deterministic_and_multibounce() {
        let scene = scenes::conference(SceneScale::Tiny);
        let bvh = Bvh::build(&scene.triangles);
        let rays = build_rays(&scene, 8, 8);
        let a = host_path_trace(&bvh, &rays);
        let b = host_path_trace(&bvh, &rays);
        assert_eq!(image_hash(&a), image_hash(&b));
        // The camera sees geometry, so some paths must bounce.
        assert!(a.iter().any(|r| r.segments > 1), "no path ever bounced");
        assert!(a
            .iter()
            .all(|r| r.segments >= 1 && r.segments <= PT_MAX_BOUNCES));
    }

    #[test]
    fn traditional_kernel_matches_host_bit_for_bit() {
        let scene = scenes::conference(SceneScale::Tiny);
        let mut gpu = tiny_gpu(false);
        let setup = PtSetup::upload(&mut gpu, &scene, 8, 8);
        setup.launch_traditional(&mut gpu, 8);
        let summary = gpu.run(100_000_000).expect("fault-free run");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        let host = setup.host_reference();
        let device = setup.device_results(&gpu);
        assert_eq!(
            exact_mismatches(&host, &device),
            0,
            "device diverged from mirror"
        );
        assert_eq!(image_hash(&host), image_hash(&device));
    }

    #[test]
    fn ukernel_matches_host_bit_for_bit() {
        let scene = scenes::conference(SceneScale::Tiny);
        let mut gpu = tiny_gpu(true);
        let setup = PtSetup::upload(&mut gpu, &scene, 8, 8);
        setup.launch_ukernel(&mut gpu, 8);
        let summary = gpu.run(200_000_000).expect("fault-free run");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        let host = setup.host_reference();
        let device = setup.device_results(&gpu);
        assert_eq!(
            exact_mismatches(&host, &device),
            0,
            "device diverged from mirror"
        );
        assert_eq!(image_hash(&host), image_hash(&device));
        assert!(summary.stats.threads_spawned > 0, "μ-kernels must spawn");
        assert_eq!(
            summary.stats.lineages_completed,
            u64::from(setup.dev.num_rays),
            "every path's lineage must finish"
        );
    }

    #[test]
    fn both_variants_produce_the_same_image() {
        let scene = scenes::fairyforest(SceneScale::Tiny);

        let mut gpu_t = tiny_gpu(false);
        let setup_t = PtSetup::upload(&mut gpu_t, &scene, 8, 8);
        setup_t.launch_traditional(&mut gpu_t, 8);
        assert_eq!(
            gpu_t.run(100_000_000).expect("fault-free run").outcome,
            RunOutcome::Completed
        );
        let img_t = setup_t.device_results(&gpu_t);

        let mut gpu_u = tiny_gpu(true);
        let setup_u = PtSetup::upload(&mut gpu_u, &scene, 8, 8);
        setup_u.launch_ukernel(&mut gpu_u, 8);
        assert_eq!(
            gpu_u.run(200_000_000).expect("fault-free run").outcome,
            RunOutcome::Completed
        );
        let img_u = setup_u.device_results(&gpu_u);

        assert_eq!(image_hash(&img_t), image_hash(&img_u));
    }

    #[test]
    fn spawn_chains_run_deeper_than_the_kd_tracer() {
        // Each bounce re-enters the whole traversal, so path lineages
        // spawn strictly more threads per launch thread than a kd trace
        // of the same rays.
        let scene = scenes::conference(SceneScale::Tiny);
        let mut gpu = tiny_gpu(true);
        let setup = PtSetup::upload(&mut gpu, &scene, 8, 8);
        setup.launch_ukernel(&mut gpu, 8);
        let summary = gpu.run(200_000_000).expect("fault-free run");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        let per_path = summary.stats.threads_spawned as f64 / f64::from(setup.dev.num_rays);
        assert!(
            per_path > 4.0,
            "spawn chain unexpectedly shallow: {per_path}"
        );
    }
}
