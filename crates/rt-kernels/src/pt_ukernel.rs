//! The dynamic μ-kernel decomposition of the BVH path tracer.
//!
//! All four loops of [`crate::pt_traditional`] are removed; each
//! iteration becomes one spawned thread executing one of four
//! μ-kernels:
//!
//! * `main` — launch kernel: loads the ray, seeds the RNG, initializes
//!   the path record, builds the 48-byte state record, spawns `p_node`;
//! * `p_node` — one BVH node visit (slab test): spawns itself after
//!   descending into an inner node, `p_isect` at a non-empty leaf,
//!   `p_pop` on a box miss or empty leaf;
//! * `p_isect` — one Wald ray-triangle test; spawns itself while leaf
//!   records remain, else `p_pop`;
//! * `p_pop` — stack pop (spawns `p_node` to continue the traversal)
//!   or, with the stack empty, the **bounce step**: account the hit,
//!   sample a new diffuse direction, and spawn `p_node` to re-traverse
//!   from the root — or write the result and exit without spawning,
//!   ending the lineage.
//!
//! The bounce-inside-`p_pop` shape keeps the spawn LUT at three targets
//! (fits `DmkConfig::paper()`'s four entries) while making lineages
//! *deeper* than the kd tracer's: a path's spawn chain re-enters the
//! whole traversal once per bounce.
//!
//! ## 48-byte state record (12 words)
//!
//! | word | contents |
//! |------|----------|
//! | 0–2  | ray origin |
//! | 3–5  | ray direction |
//! | 6/7  | best hit t / Wald slot id |
//! | 8    | current node, or `(remaining << 24) \| slot` inside a leaf |
//! | 9    | `(ray id << 8) \| stack pointer` |
//! | 10   | current segment tmin |
//! | 11   | xorshift RNG state |
//!
//! Register conventions follow [`crate::pt_common`]; throughput,
//! radiance and the segment count live in the per-ray path record in
//! global memory (only the bounce step touches them).

use crate::pt_common::{emit_bounce_sample, emit_hit_accounting, emit_seed, emit_slab_test};
use crate::tri_test::{emit_tri_test, TriTestRegs};
use crate::{PT_MAX_BOUNCES, PT_TFAR, PT_TMIN};
use simt_isa::{assemble_named, Program};

/// Names of the spawnable μ-kernels, in ascending PC order.
pub const PT_UKERNEL_NAMES: [&str; 3] = ["p_node", "p_isect", "p_pop"];

/// Assembles the μ-kernel path-tracing program.
///
/// # Panics
///
/// Panics only if the embedded assembly fails to assemble (a build-time
/// invariant covered by tests).
pub fn program() -> Program {
    assemble_named("pt-ukernel", &source()).expect("pt ukernel program assembles")
}

/// Shared state-restore prelude (paper Fig. 6, as in the kd μ-kernels).
fn restore() -> &'static str {
    r#"
    mov.u32 r0, 0
    mov.u32 r2, %spawnmem
    ld.spawn.u32 r2, [r2+0]           ; state pointer
    ld.spawn.v4 r4, [r2+0]
    ld.spawn.v4 r8, [r2+16]
    ld.spawn.v4 r12, [r2+32]
"#
}

/// Shared state-save epilogue; `target` is the μ-kernel to spawn.
fn save_and_spawn(target: &str) -> String {
    format!(
        r#"
    st.spawn.v4 [r2+0], r4
    st.spawn.v4 [r2+16], r8
    st.spawn.v4 [r2+32], r12
    spawn ${target}, r2
    exit
"#
    )
}

/// The program's assembly source (exposed for inspection/disassembly).
pub fn source() -> String {
    let tri = emit_tri_test(
        &TriTestRegs {
            ox: 4,
            oy: 5,
            oz: 6,
            dx: 7,
            dy: 8,
            dz: 9,
            best_t: 10,
            best_id: 11,
            tri_ref: 29,
            wald_addr: 3,
            w: 20,
            t: 24,
            hu: 25,
            hv: 26,
            x: 27,
            y: 28,
        },
        "i_next",
    );
    let restore = restore();
    let save_node = save_and_spawn("p_node");
    let save_isect = save_and_spawn("p_isect");
    let save_pop = save_and_spawn("p_pop");
    format!(
        r#"
.kernel main
.kernel p_node
.kernel p_isect
.kernel p_pop
.global 312          ; per-ray stack (256) + ray (32) + result (8) + path (16)
.const 28
.spawnstate 48

; ============================ launch kernel ============================
main:
    mov.u32 r0, 0
    mov.u32 r18, %tid
    ld.const.u32 r3, [r0+24]          ; number of rays
    setp.ge.u32 p0, r18, r3
    @p0 exit
    ld.const.u32 r3, [r0+8]           ; ray base
    mad.lo.s32 r3, r18, 32, r3
    ld.global.v4 r4, [r3+0]           ; ox oy oz tmin
    ld.global.v4 r8, [r3+16]          ; dx dy dz tmax
    ; shuffle into the state layout
    mov.b32 r14, r7                   ; segment tmin = ray tmin
    mov.b32 r7, r8                    ; dx
    mov.b32 r8, r9                    ; dy
    mov.b32 r9, r10                   ; dz
    mov.b32 r10, r11                  ; best_t = ray tmax
    mov.s32 r11, -1                   ; best_id = miss
    mov.u32 r12, 0                    ; node = root
    shl.b32 r13, r18, 8               ; (ray id << 8) | sp=0
{seed}
    ; path record = {{throughput 1.0, radiance 0.0, segments 0, pad}}
    ld.const.u32 r3, [r0+20]          ; path base
    mad.lo.s32 r3, r18, 16, r3
    mov.u32 r20, 0x{one:08x}
    mov.u32 r21, 0
    mov.u32 r22, 0
    mov.u32 r23, 0
    st.global.v4 [r3+0], r20
    mov.u32 r2, %spawnmem             ; launch threads: state record direct
{save_node}

; ========================== one BVH node visit =========================
p_node:
{restore}
    ld.const.u32 r16, [r0+0]          ; node base
    mad.lo.s32 r3, r12, 32, r16
    ld.global.v4 r16, [r3+0]          ; min.x min.y min.z meta0
    ld.global.v4 r20, [r3+16]         ; max.x max.y max.z meta1
    mov.b32 r24, r14                  ; tnear = segment tmin
    mov.b32 r25, r10                  ; tfar = best_t
{slab}
    setp.le.f32 p2, r24, r25
    @!p2 bra n_pop                    ; box missed (or NaN)
    shr.u32 r26, r19, 31
    setp.ne.s32 p2, r26, 0
    @p2 bra n_leaf
    ; inner: push the right child on the per-ray global stack
    shr.u32 r28, r13, 8               ; ray id
    and.b32 r29, r13, 255             ; sp
    ; entry address = base + (sp*nrays + rayid)*4 (ray-interleaved)
    ld.const.u32 r3, [r0+24]
    mul.lo.s32 r3, r3, r29
    add.s32 r3, r3, r28
    shl.b32 r3, r3, 2
    ld.const.u32 r26, [r0+16]         ; stack base
    add.s32 r3, r3, r26
    st.global.u32 [r3+0], r23
    add.s32 r29, r29, 1
    shl.b32 r13, r28, 8
    or.b32 r13, r13, r29              ; repack
    mov.b32 r12, r19                  ; descend left
{save_node_again}
n_leaf:
    setp.eq.s32 p2, r23, 0
    @p2 bra n_pop                     ; empty leaf
    and.b32 r26, r19, 0x7fffffff      ; first slot
    shl.b32 r12, r23, 24              ; (count << 24) | slot
    or.b32 r12, r12, r26
{save_isect}
n_pop:
{save_pop}

; ======================== one ray-triangle test ========================
p_isect:
{restore}
    and.b32 r17, r12, 0xffffff        ; slot cursor
    shr.u32 r30, r12, 24              ; remaining
    ld.const.u32 r16, [r0+4]          ; Wald base
    mad.lo.s32 r3, r17, 48, r16
    mov.b32 r29, r17                  ; slot doubles as triangle id
{tri}
i_next:
    sub.s32 r30, r30, 1
    setp.le.s32 p2, r30, 0
    @p2 bra i_done
    add.s32 r17, r17, 1
    shl.b32 r12, r30, 24
    or.b32 r12, r12, r17
{save_isect_again}
i_done:
{save_pop_again}

; ================== stack pop / bounce / lineage end ==================
p_pop:
{restore}
    and.b32 r19, r13, 255             ; sp
    setp.eq.s32 p2, r19, 0
    @p2 bra p_bounce
    shr.u32 r18, r13, 8               ; ray id
    sub.s32 r19, r19, 1
    ld.const.u32 r3, [r0+24]
    mul.lo.s32 r3, r3, r19
    add.s32 r3, r3, r18
    shl.b32 r3, r3, 2
    ld.const.u32 r16, [r0+16]
    add.s32 r3, r3, r16
    ld.global.u32 r12, [r3+0]         ; node
    shl.b32 r13, r18, 8
    or.b32 r13, r13, r19
{save_node_pop}
p_bounce:                             ; traversal done for this segment
    shr.u32 r18, r13, 8               ; ray id
    ld.const.u32 r3, [r0+20]          ; path base
    mad.lo.s32 r3, r18, 16, r3
    ld.global.v4 r20, [r3+0]          ; thr rad segments pad
    setp.eq.s32 p0, r11, -1
    @p0 bra p_escape
{hit}
    add.s32 r22, r22, 1
    setp.ge.s32 p0, r22, {max_bounces}
    @p0 bra p_finish
{sample}
    ; reset the traversal for the next segment (sp is already 0)
    mov.u32 r10, 0x{tfar:08x}         ; best_t = far sentinel
    mov.s32 r11, -1
    mov.u32 r12, 0
    mov.u32 r14, 0x{tmin:08x}
    st.global.v4 [r3+0], r20          ; bank the path record
{save_node_bounce}
p_escape:
    add.f32 r21, r21, r20             ; radiance += throughput (sky = 1)
    add.s32 r22, r22, 1
p_finish:
    ld.const.u32 r3, [r0+12]          ; result base
    mad.lo.s32 r3, r18, 8, r3
    st.global.u32 [r3+0], r21
    st.global.u32 [r3+4], r22
    exit                               ; no spawn: the path's lineage ends
"#,
        seed = emit_seed(18),
        slab = emit_slab_test(),
        tri = tri,
        hit = emit_hit_accounting(20, 21),
        sample = emit_bounce_sample(),
        restore = restore,
        save_node = save_node,
        save_node_again = save_node,
        save_node_pop = save_node,
        save_node_bounce = save_node,
        save_isect = save_isect,
        save_isect_again = save_isect,
        save_pop = save_pop,
        save_pop_again = save_pop,
        one = 1.0f32.to_bits(),
        tfar = PT_TFAR.to_bits(),
        tmin = PT_TMIN.to_bits(),
        max_bounces = PT_MAX_BOUNCES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_with_four_entry_points() {
        let p = program();
        let names: Vec<&str> = p.entry_points().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["main", "p_node", "p_isect", "p_pop"]);
    }

    #[test]
    fn spawn_targets_fit_a_paper_lut() {
        // Three targets — within DmkConfig::paper()'s four LUT entries.
        let p = program();
        let targets = p.spawn_targets();
        let mut expected: Vec<usize> = PT_UKERNEL_NAMES
            .iter()
            .map(|n| p.entry(n).unwrap().pc)
            .collect();
        expected.sort_unstable();
        assert_eq!(targets, expected);
        assert!(targets.len() <= 4);
    }

    #[test]
    fn resources_match_paper_shape() {
        let p = program();
        let r = p.resource_usage();
        assert_eq!(r.spawn_state_bytes, 48, "48-byte state record");
        assert!(r.registers <= 40, "registers {}", r.registers);
    }

    #[test]
    fn no_loop_back_edges_remain() {
        let p = program();
        for (pc, i) in p.instrs().iter().enumerate() {
            if let simt_isa::Instr::Bra { target } = i.op {
                assert!(target > pc, "backward branch at pc {pc} -> {target}");
            }
        }
    }

    #[test]
    fn every_ukernel_saves_state_with_three_v4_stores() {
        let p = program();
        let v4_spawn_stores = p
            .instrs()
            .iter()
            .filter(|i| {
                matches!(
                    i.op,
                    simt_isa::Instr::St {
                        space: simt_isa::Space::Spawn,
                        width: simt_isa::Width::V4,
                        ..
                    }
                )
            })
            .count();
        // 8 save sites (main, node descend/miss/leaf, isect next/done,
        // pop continue/bounce) × 3 stores.
        assert_eq!(v4_spawn_stores, 8 * 3);
    }

    #[test]
    fn reconvergence_analysis_succeeds() {
        let p = program();
        let _ = simt_isa::ReconvergenceTable::build(&p);
    }
}
