//! Shared assembly fragments of the two BVH path-tracing kernels.
//!
//! Both the traditional (looped) and the μ-kernel path tracers embed
//! exactly these snippets with exactly these registers, so the float-op
//! sequence of a path — slab tests, Wald tests (via
//! [`crate::tri_test`]), bounce sampling — is instruction-identical
//! across variants, and the host mirror in [`crate::pt_render`] can
//! reproduce both bit-for-bit.
//!
//! ## Fixed register conventions (both kernels)
//!
//! | regs | contents |
//! |------|----------|
//! | r4–r6 | ray origin x/y/z |
//! | r7–r9 | ray direction x/y/z |
//! | r10/r11 | best hit t / Wald slot id |
//! | r14 | current segment tmin |
//! | r15 | xorshift RNG state |
//! | r16–r19 | node words 0–3 (bounds min + meta0) |
//! | r20–r23 | node words 4–7 (bounds max + meta1) |
//! | r24–r30 | fragment scratch |

use crate::{PT_ALBEDO, PT_DIR_SCALE, PT_EMIT, PT_OFFSET, PT_SEED_MUL};

/// Emits the AABB slab test against the node bounds in r16–r18/r20–r22.
///
/// Expects `r24 = tnear` (segment tmin) and `r25 = tfar` (current best
/// t) preloaded; leaves the clipped interval in the same registers. The
/// caller tests `r24 <= r25` (NaN from a zero direction component
/// rejects, like the host slab test).
pub(crate) fn emit_slab_test() -> String {
    let mut s = String::from("    ; ---- AABB slab test (r24=tnear, r25=tfar) ----\n");
    for (bmin, bmax, o, d) in [(16, 20, 4, 7), (17, 21, 5, 8), (18, 22, 6, 9)] {
        s.push_str(&format!(
            r#"    rcp.f32 r26, r{d}
    sub.f32 r27, r{bmin}, r{o}
    mul.f32 r27, r27, r26
    sub.f32 r28, r{bmax}, r{o}
    mul.f32 r28, r28, r26
    min.f32 r29, r27, r28
    max.f32 r30, r27, r28
    max.f32 r24, r24, r29
    min.f32 r25, r25, r30
"#
        ));
    }
    s
}

/// Emits the per-thread RNG seed: `r15 = (tid + 1) * PT_SEED_MUL`, with
/// the thread id expected in `rtid`.
pub(crate) fn emit_seed(rtid: u8) -> String {
    format!(
        r#"    add.s32 r15, r{rtid}, 1
    mul.lo.s32 r15, r15, 0x{mul:08x}
"#,
        mul = PT_SEED_MUL
    )
}

/// Emits the diffuse bounce: advance the origin to the hit point, draw
/// a fresh direction (three xorshift32 draws mapped to `[-1, 1)`),
/// flip it into the hemisphere facing back along the incoming
/// direction, normalize, and nudge the origin off the surface.
///
/// Uses r4–r10 (origin/direction/best t), r15 (RNG), scratch r24–r28,
/// and predicate p0.
pub(crate) fn emit_bounce_sample() -> String {
    let mut s = String::from(
        r#"    ; ---- diffuse bounce: o += t*d, redraw d ----
    fma.f32 r4, r7, r10, r4
    fma.f32 r5, r8, r10, r5
    fma.f32 r6, r9, r10, r6
"#,
    );
    for c in [24, 25, 26] {
        s.push_str(&format!(
            r#"    shl.b32 r27, r15, 13
    xor.b32 r15, r15, r27
    shr.u32 r27, r15, 17
    xor.b32 r15, r15, r27
    shl.b32 r27, r15, 5
    xor.b32 r15, r15, r27
    shr.u32 r27, r15, 9
    cvt.f32.u32 r{c}, r27
    mov.u32 r27, 0x{scale:08x}
    mul.f32 r{c}, r{c}, r27
    mov.u32 r27, 0x{one:08x}
    sub.f32 r{c}, r{c}, r27
"#,
            scale = PT_DIR_SCALE.to_bits(),
            one = 1.0f32.to_bits(),
        ));
    }
    s.push_str(&format!(
        r#"    mul.f32 r27, r24, r7
    fma.f32 r27, r25, r8, r27
    fma.f32 r27, r26, r9, r27
    setp.gt.f32 p0, r27, 0.0
    neg.f32 r28, r24
    selp.b32 r24, r28, r24, p0
    neg.f32 r28, r25
    selp.b32 r25, r28, r25, p0
    neg.f32 r28, r26
    selp.b32 r26, r28, r26, p0
    mul.f32 r27, r24, r24
    fma.f32 r27, r25, r25, r27
    fma.f32 r27, r26, r26, r27
    sqrt.f32 r27, r27
    rcp.f32 r27, r27
    mul.f32 r7, r24, r27
    mul.f32 r8, r25, r27
    mul.f32 r9, r26, r27
    mov.u32 r27, 0x{offset:08x}
    fma.f32 r4, r7, r27, r4
    fma.f32 r5, r8, r27, r5
    fma.f32 r6, r9, r27, r6
"#,
        offset = PT_OFFSET.to_bits(),
    ));
    s
}

/// Emits the hit-side accounting: `rad = fma(thr, EMIT, rad)`,
/// `thr *= ALBEDO`, with throughput in `rthr` and radiance in `rrad`
/// (scratch r24).
pub(crate) fn emit_hit_accounting(rthr: u8, rrad: u8) -> String {
    format!(
        r#"    mov.u32 r24, 0x{emit:08x}
    fma.f32 r{rrad}, r{rthr}, r24, r{rrad}
    mov.u32 r24, 0x{albedo:08x}
    mul.f32 r{rthr}, r{rthr}, r24
"#,
        emit = PT_EMIT.to_bits(),
        albedo = PT_ALBEDO.to_bits(),
    )
}
