//! # rt-kernels — the benchmark device kernels
//!
//! The two CUDA kernels of the paper's evaluation (§VI-A), re-authored in
//! the `simt-isa` assembly language (the paper itself instruments at the
//! PTX level, so this is the same abstraction):
//!
//! * [`traditional`] — the Example 1 kernel: a kd-tree ray tracer with the
//!   three nested data-dependent loops (outer restart loop, tree
//!   down-traversal loop, leaf object-test loop) executed under PDOM;
//! * [`ukernel`] — the dynamic μ-kernel decomposition of §V: the loops are
//!   removed and replaced by four μ-kernels (`main` → `k_traverse` →
//!   `k_intersect` → `k_pop`) connected by `spawn`, carrying a 48-byte
//!   state record through spawn memory with three 4-wide vector accesses
//!   per save/restore, exactly as the paper describes.
//!
//! [`layout`] serializes a [`raytrace::KdTree`] plus a set of camera rays
//! into the simulator's device memory and reads results back;
//! [`render`] wires everything together (build scene → upload → launch →
//! verify against the host tracer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod render;
pub mod traditional;
pub mod ukernel;

mod tri_test;

/// Bytes of per-thread global memory reserved for the traversal stack
/// (paper Table II: 384 bytes, 24 entries × 16 bytes).
pub const STACK_BYTES_PER_RAY: u32 = 384;

/// Bytes of one serialized ray record (origin, tmin, direction, tmax).
pub const RAY_RECORD_BYTES: u32 = 32;

/// Bytes of one result record (hit t, triangle id).
pub const RESULT_RECORD_BYTES: u32 = 8;

/// Bytes of one serialized kd-tree node.
pub const NODE_RECORD_BYTES: u32 = 16;

/// Sentinel triangle id meaning "no hit".
pub const MISS: u32 = 0xffff_ffff;

/// Bytes of the μ-kernel state record (paper §VI-A: 48 bytes, three
/// 4-wide vector accesses).
pub const STATE_BYTES: u32 = 48;
