//! # rt-kernels — the benchmark device kernels
//!
//! The two CUDA kernels of the paper's evaluation (§VI-A), re-authored in
//! the `simt-isa` assembly language (the paper itself instruments at the
//! PTX level, so this is the same abstraction):
//!
//! * [`traditional`] — the Example 1 kernel: a kd-tree ray tracer with the
//!   three nested data-dependent loops (outer restart loop, tree
//!   down-traversal loop, leaf object-test loop) executed under PDOM;
//! * [`ukernel`] — the dynamic μ-kernel decomposition of §V: the loops are
//!   removed and replaced by four μ-kernels (`main` → `k_traverse` →
//!   `k_intersect` → `k_pop`) connected by `spawn`, carrying a 48-byte
//!   state record through spawn memory with three 4-wide vector accesses
//!   per save/restore, exactly as the paper describes.
//!
//! [`layout`] serializes a [`raytrace::KdTree`] plus a set of camera rays
//! into the simulator's device memory and reads results back;
//! [`render`] wires everything together (build scene → upload → launch →
//! verify against the host tracer).
//!
//! The **BVH path tracer** (registry workload `bvh`) lives alongside:
//! [`pt_traditional`] and [`pt_ukernel`] are the looped and μ-kernel
//! forms of a multi-bounce diffuse path tracer over a
//! [`raytrace::Bvh`], with deeper spawn chains than the kd tracer (each
//! bounce restarts traversal inside the same lineage); [`pt_layout`]
//! serializes the BVH scene and [`pt_render`] hosts the bit-exact host
//! mirror both kernels are validated against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod pt_layout;
pub mod pt_render;
pub mod pt_traditional;
pub mod pt_ukernel;
pub mod render;
pub mod traditional;
pub mod ukernel;

mod pt_common;
mod tri_test;

/// Bytes of per-thread global memory reserved for the traversal stack
/// (paper Table II: 384 bytes, 24 entries × 16 bytes).
pub const STACK_BYTES_PER_RAY: u32 = 384;

/// Bytes of one serialized ray record (origin, tmin, direction, tmax).
pub const RAY_RECORD_BYTES: u32 = 32;

/// Bytes of one result record (hit t, triangle id).
pub const RESULT_RECORD_BYTES: u32 = 8;

/// Bytes of one serialized kd-tree node.
pub const NODE_RECORD_BYTES: u32 = 16;

/// Sentinel triangle id meaning "no hit".
pub const MISS: u32 = 0xffff_ffff;

/// Bytes of the μ-kernel state record (paper §VI-A: 48 bytes, three
/// 4-wide vector accesses).
pub const STATE_BYTES: u32 = 48;

// ---- BVH path tracer (the `bvh` registry workload) ----

/// Bytes of per-ray global memory reserved for the BVH traversal stack
/// (64 one-word node entries — BVH stacks hold bare node indices, not
/// the kd tracer's 16-byte segment records).
pub const PT_STACK_BYTES_PER_RAY: u32 = 256;

/// Bytes of one per-ray path-state record (throughput, radiance,
/// segments, pad).
pub const PT_PATH_RECORD_BYTES: u32 = 16;

/// Maximum traversal segments per path (primary ray + diffuse bounces).
pub const PT_MAX_BOUNCES: u32 = 4;

/// Surface albedo multiplied into the throughput at every bounce.
pub const PT_ALBEDO: f32 = 0.7;

/// Radiance emitted toward the path at every surface hit.
pub const PT_EMIT: f32 = 0.1;

/// Sky radiance collected when a path escapes the scene.
pub const PT_SKY: f32 = 1.0;

/// Segment tmin after the first bounce.
pub const PT_TMIN: f32 = 1e-3;

/// Distance the bounce origin is nudged along the new direction to
/// escape the surface it just hit.
pub const PT_OFFSET: f32 = 1e-2;

/// Far sentinel for secondary segments (`best_t` until a closer hit).
pub const PT_TFAR: f32 = 1e30;

/// Scale mapping a 23-bit RNG draw onto `[0, 2)` (2⁻²²); the sampled
/// direction component is this minus one.
pub const PT_DIR_SCALE: f32 = 2.3841858e-7;

/// Per-thread RNG seed multiplier (`rng = (tid + 1) * PT_SEED_MUL`).
pub const PT_SEED_MUL: u32 = 0x9e37_79b9;
