//! The traditional (Example 1) ray-tracing kernel.
//!
//! One thread per ray, three nested data-dependent loops under PDOM:
//!
//! 1. the outer *restart* loop popping the traversal stack;
//! 2. the *down-traversal* loop walking inner nodes to a leaf;
//! 3. the *object-test* loop intersecting the leaf's triangles.
//!
//! Per-ray trip counts differ (tree depth, objects per leaf, leaves per
//! ray), which is precisely the divergence source the paper quantifies in
//! Fig. 3.
//!
//! ## Register map
//!
//! | regs | contents |
//! |------|----------|
//! | r0   | zero (constant-memory base) |
//! | r1   | ray id |
//! | r2   | address scratch |
//! | r3–r6 | ray origin x/y/z, ray tmin |
//! | r7–r10 | ray direction x/y/z, ray tmax |
//! | r11/r12 | best hit t / id |
//! | r13/r14 | current node / stack pointer (entries) |
//! | r15–r18 | stack base, node base, tri-ref base, Wald base |
//! | r19/r20 | current segment tmin / tmax |
//! | r21–r24 | `v4` scratch (node words, stack entries, Wald rows) |
//! | r25–r32 | test scratch, triangle ref, leaf cursor/count |

use crate::tri_test::{emit_tri_test, TriTestRegs};
use simt_isa::{assemble_named, Program};

/// Assembles the traditional kernel.
///
/// # Panics
///
/// Panics only if the embedded assembly fails to assemble (a build-time
/// invariant covered by tests).
pub fn program() -> Program {
    assemble_named("rt-traditional", &source()).expect("traditional kernel assembles")
}

/// The kernel's assembly source (exposed for inspection/disassembly).
pub fn source() -> String {
    let tri = emit_tri_test(
        &TriTestRegs {
            ox: 3,
            oy: 4,
            oz: 5,
            dx: 7,
            dy: 8,
            dz: 9,
            best_t: 11,
            best_id: 12,
            tri_ref: 30,
            wald_addr: 2,
            w: 21,
            t: 25,
            hu: 26,
            hv: 27,
            x: 28,
            y: 29,
        },
        "tri_next",
    );
    format!(
        r#"
.kernel main
.global 424          ; per-ray stack (384) + ray record (32) + result (8)
.const 28

main:
    mov.u32 r0, 0
    mov.u32 r1, %tid
    ld.const.u32 r2, [r0+24]          ; number of rays
    setp.ge.u32 p0, r1, r2
    @p0 exit
    ld.const.u32 r16, [r0+0]          ; kd-node base
    ld.const.u32 r17, [r0+4]          ; tri-ref base
    ld.const.u32 r18, [r0+8]          ; Wald base
    ld.const.u32 r2, [r0+12]          ; ray base
    mad.lo.s32 r2, r1, 32, r2
    ld.global.v4 r3, [r2+0]           ; ox oy oz tmin
    ld.global.v4 r7, [r2+16]          ; dx dy dz tmax
    ld.const.u32 r15, [r0+20]         ; stack base (entries interleaved by ray)
    mov.b32 r11, r10                  ; best_t = ray tmax
    mov.s32 r12, -1                   ; best_id = miss
    mov.u32 r13, 0                    ; node = root
    mov.u32 r14, 0                    ; sp = 0
    mov.b32 r19, r6                   ; tmin_cur
    mov.b32 r20, r10                  ; tmax_cur

down_loop:                            ; -- Example 1 line 2: find a leaf --
    mad.lo.s32 r2, r13, 16, r16
    ld.global.v4 r21, [r2+0]          ; tag split/first left/count right
    setp.eq.s32 p2, r21, 3
    @p2 bra leaf
    setp.eq.s32 p0, r21, 0
    setp.eq.s32 p1, r21, 1
    selp.b32 r25, r4, r5, p1
    selp.b32 r25, r3, r25, p0         ; origin[axis]
    selp.b32 r26, r8, r9, p1
    selp.b32 r26, r7, r26, p0         ; dir[axis]
    setp.lt.f32 p2, r25, r22          ; origin on left side?
    sub.f32 r27, r22, r25
    rcp.f32 r26, r26
    mul.f32 r25, r27, r26             ; t = (split - o)/d
    selp.b32 r26, r23, r24, p2        ; near child
    selp.b32 r27, r24, r23, p2        ; far child
    setp.lt.f32 p2, r25, r20
    @!p2 bra go_near                  ; plane beyond segment (or NaN)
    setp.ge.f32 p2, r25, 0.0
    @!p2 bra go_near                  ; plane behind the ray
    setp.gt.f32 p2, r25, r19
    @!p2 bra go_far                   ; plane before segment
    ; both sides: push far (Example 1 lines 3-5), continue near
    ; entry address = base + (sp*nrays + rayid)*16 (interleaved so the
    ; lockstep pushes of a coherent warp coalesce, like CUDA local memory)
    ld.const.u32 r2, [r0+24]
    mul.lo.s32 r2, r2, r14
    add.s32 r2, r2, r1
    shl.b32 r2, r2, 4
    add.s32 r2, r2, r15
    mov.b32 r21, r27
    mov.b32 r22, r25
    mov.b32 r23, r20
    mov.u32 r24, 0
    st.global.v4 [r2+0], r21
    add.s32 r14, r14, 1
    mov.b32 r20, r25                  ; tmax_cur = t
    mov.b32 r13, r26
    bra down_loop
go_near:
    mov.b32 r13, r26
    bra down_loop
go_far:
    mov.b32 r13, r27
    mov.b32 r19, r25                  ; tmin_cur = t
    bra down_loop

leaf:                                 ; -- Example 1 lines 8-10 --
    mov.b32 r31, r22                  ; cursor = first
    mov.b32 r32, r23                  ; remaining = count
tri_loop:
    setp.le.s32 p2, r32, 0
    @p2 bra after_leaf
    mad.lo.s32 r2, r31, 4, r17
    ld.global.u32 r30, [r2+0]         ; triangle reference
    mad.lo.s32 r2, r30, 48, r18       ; Wald record address
{tri}
tri_next:
    add.s32 r31, r31, 1
    sub.s32 r32, r32, 1
    bra tri_loop

after_leaf:
    setp.le.f32 p2, r11, r20          ; closest hit inside this segment?
    @p2 bra finish
    setp.eq.s32 p2, r14, 0            ; stack empty?
    @p2 bra finish
    sub.s32 r14, r14, 1               ; -- Example 1 line 11: pop --
    ld.const.u32 r2, [r0+24]
    mul.lo.s32 r2, r2, r14
    add.s32 r2, r2, r1
    shl.b32 r2, r2, 4
    add.s32 r2, r2, r15
    ld.global.v4 r21, [r2+0]          ; node t tmax pad
    mov.b32 r13, r21
    mov.b32 r19, r22
    mov.b32 r20, r23
    bra down_loop

finish:
    ld.const.u32 r2, [r0+16]          ; result base
    mad.lo.s32 r2, r1, 8, r2
    st.global.u32 [r2+0], r11
    st.global.u32 [r2+4], r12
    exit
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_with_expected_shape() {
        let p = program();
        assert_eq!(p.entry("main").unwrap().pc, 0);
        assert!(
            p.spawn_sites().is_empty(),
            "traditional kernel never spawns"
        );
        let r = p.resource_usage();
        assert!(
            r.registers >= 20 && r.registers <= 40,
            "registers {}",
            r.registers
        );
        assert_eq!(r.global_bytes, 424);
        assert_eq!(r.const_bytes, 28);
        assert_eq!(r.spawn_state_bytes, 0);
    }

    #[test]
    fn has_three_loop_back_edges() {
        // down_loop, tri_loop and the outer restart re-enter down_loop.
        let p = program();
        let down = p.label("down_loop").unwrap();
        let tri = p.label("tri_loop").unwrap();
        let back_edges = p
            .instrs()
            .iter()
            .enumerate()
            .filter(|(pc, i)| match i.op {
                simt_isa::Instr::Bra { target } => {
                    target <= *pc && (target == down || target == tri)
                }
                _ => false,
            })
            .count();
        assert!(
            back_edges >= 3,
            "expected >= 3 loop back-edges, got {back_edges}"
        );
    }

    #[test]
    fn reconvergence_analysis_covers_all_branches() {
        // Building the PDOM table must succeed (every branch analyzable).
        let p = program();
        let _ = simt_isa::ReconvergenceTable::build(&p);
    }
}
