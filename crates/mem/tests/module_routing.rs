//! Property tests for the coalescer and address→module interleaving:
//! every byte of a warp access maps to exactly one segment and exactly one
//! module, and the bus bytes the modules move account for every requested
//! byte (satellite of the two-phase pipeline refactor).

use proptest::prelude::*;
use simt_mem::{coalesce_segments, FabricRequest, MemConfig, MemoryFabric};

/// The segment base covering byte address `b`.
fn segment_of(b: u64, segment_bytes: u32) -> u32 {
    ((b as u32) / segment_bytes) * segment_bytes
}

proptest! {
    /// Every byte a lane touches falls inside exactly one emitted segment,
    /// and that segment routes to exactly one module.
    #[test]
    fn every_byte_maps_to_exactly_one_module(
        addrs in proptest::collection::vec((0u32..1_000_000).prop_map(|a| a * 4), 1..32),
        bytes_per_lane in prop_oneof![Just(4u32), Just(16u32)],
    ) {
        let cfg = MemConfig::fx5800();
        let result = coalesce_segments(&addrs, bytes_per_lane, cfg.segment_bytes);

        // Segments are unique, aligned, and each owned by one module.
        for w in result.segments.windows(2) {
            prop_assert!(w[0] < w[1], "segments must be sorted and deduped");
        }
        for &s in &result.segments {
            prop_assert_eq!(s % cfg.segment_bytes, 0);
            let m = cfg.module_of(s);
            prop_assert!(m < cfg.num_modules);
        }

        for &a in &addrs {
            for byte in u64::from(a)..u64::from(a) + u64::from(bytes_per_lane) {
                let seg = segment_of(byte, cfg.segment_bytes);
                let covering = result.segments.iter().filter(|&&s| s == seg).count();
                prop_assert_eq!(
                    covering, 1,
                    "byte {} (segment {}) covered by {} segments", byte, seg, covering
                );
            }
        }
    }

    /// Total bytes moved over the module buses equals transactions ×
    /// segment size, and covers at least every requested byte.
    #[test]
    fn module_bytes_account_for_request_bytes(
        addrs in proptest::collection::vec((0u32..100_000).prop_map(|a| a * 4), 1..32),
        bytes_per_lane in prop_oneof![Just(4u32), Just(16u32)],
    ) {
        let cfg = MemConfig::fx5800();
        let result = coalesce_segments(&addrs, bytes_per_lane, cfg.segment_bytes);

        prop_assert_eq!(
            result.requested_bytes,
            addrs.len() as u64 * u64::from(bytes_per_lane)
        );
        let bus = result.bus_bytes(cfg.segment_bytes);
        prop_assert_eq!(
            bus,
            result.transactions() as u64 * u64::from(cfg.segment_bytes)
        );

        // Unique touched bytes never exceed what the bus moved, and the bus
        // never moves more than one full segment per touched segment.
        let mut touched: Vec<u64> = addrs
            .iter()
            .flat_map(|&a| u64::from(a)..u64::from(a) + u64::from(bytes_per_lane))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        prop_assert!(touched.len() as u64 <= bus);
        let mut segs: Vec<u32> = touched
            .iter()
            .map(|&b| segment_of(b, cfg.segment_bytes))
            .collect();
        segs.sort_unstable();
        segs.dedup();
        prop_assert_eq!(segs.len(), result.transactions());
    }

    /// Per-module interleaving is a partition: summing segments by module
    /// recovers the full transaction count, and consecutive segments hit
    /// consecutive modules.
    #[test]
    fn interleave_partitions_segments_across_modules(
        base in (0u32..1_000).prop_map(|a| a * 32),
        count in 1usize..64,
    ) {
        let cfg = MemConfig::fx5800();
        let mut per_module = vec![0usize; cfg.num_modules];
        for i in 0..count {
            let seg = base + i as u32 * cfg.segment_bytes;
            per_module[cfg.module_of(seg)] += 1;
        }
        prop_assert_eq!(per_module.iter().sum::<usize>(), count);
        // A run of num_modules consecutive segments touches every module once.
        if count >= cfg.num_modules {
            prop_assert!(per_module.iter().all(|&n| n > 0));
        }
    }

    /// Servicing the same request twice from the same state gives the same
    /// completion time (module arbitration is deterministic).
    #[test]
    fn service_is_deterministic(
        addrs in proptest::collection::vec((0u32..50_000).prop_map(|a| a * 4), 1..32),
        now in 0u64..10_000,
    ) {
        let cfg = MemConfig::fx5800();
        let result = coalesce_segments(&addrs, 4, cfg.segment_bytes);
        let req = FabricRequest {
            space: simt_isa::Space::Global,
            is_store: false,
            segments: result.segments,
        };
        let mut a = MemoryFabric::new(cfg.clone());
        let mut b = MemoryFabric::new(cfg);
        prop_assert_eq!(a.service(now, &req), b.service(now, &req));
        // And queueing state evolves identically.
        prop_assert_eq!(a.service(now + 1, &req), b.service(now + 1, &req));
    }
}
