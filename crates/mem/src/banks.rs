//! On-chip banked memories (shared memory and spawn memory).
//!
//! An on-chip scratchpad is divided into word-interleaved banks; a warp
//! access completes in one pass unless multiple lanes touch *different
//! words in the same bank*, in which case the conflicting passes serialize
//! (paper §VII: "serialization of all conflicting bank memory operations to
//! the spawn memory space").

use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};

/// Computes the bank-conflict degree of a warp access: the maximum number
/// of distinct words mapped to any single bank (≥ 1 for a non-empty
/// access). Broadcasts (lanes reading the *same* word) do not conflict.
///
/// `addresses` are byte addresses; words are 4 bytes, banks interleave by
/// word.
///
/// # Panics
///
/// Panics if `banks` is zero.
pub fn conflict_degree(addresses: &[u32], banks: usize) -> u32 {
    conflict_degree_span(addresses, 1, banks)
}

/// [`conflict_degree`] over the word *span* each lane touches:
/// lane `i` accesses words `addresses[i]/4 .. addresses[i]/4 + words_per_lane`.
/// Equivalent to expanding every span into a flat word list first, without
/// materializing it.
///
/// # Panics
///
/// Panics if `banks` is zero.
pub fn conflict_degree_span(addresses: &[u32], words_per_lane: u32, banks: usize) -> u32 {
    assert!(banks > 0, "bank count must be positive");
    let n = addresses.len() * words_per_lane as usize;
    if n == 0 {
        return 0;
    }
    // The hot path (any real machine: ≤ 64 lanes × a few words, ≤ 64
    // banks) runs allocation-free: gather the word ids into a stack
    // buffer, sort to dedup broadcasts, and count distinct words per bank
    // in a stack histogram. Degree = max distinct words on one bank.
    if n <= 256 && banks <= 64 {
        let mut words = [0u32; 256];
        let mut i = 0;
        for &a in addresses {
            // (a + 4*wd) / 4 == a/4 + wd for any byte address `a`.
            let w0 = a / 4;
            for wd in 0..words_per_lane {
                words[i] = w0 + wd;
                i += 1;
            }
        }
        let words = &mut words[..n];
        words.sort_unstable();
        let mut counts = [0u32; 64];
        let mut max = 1u32;
        let mut prev = None;
        for &w in words.iter() {
            if Some(w) == prev {
                continue;
            }
            prev = Some(w);
            let bank = (w as usize) % banks;
            counts[bank] += 1;
            max = max.max(counts[bank]);
        }
        return max;
    }
    // Oversized configurations fall back to the straightforward
    // distinct-words-per-bank accounting.
    let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks];
    for &a in addresses {
        for wd in 0..words_per_lane {
            let word = a / 4 + wd;
            let bank = (word as usize) % banks;
            if !per_bank[bank].contains(&word) {
                per_bank[bank].push(word);
            }
        }
    }
    per_bank
        .iter()
        .map(|v| v.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// An on-chip word-addressed scratchpad with banking metadata.
///
/// One instance backs each SM's shared memory; the spawn-memory space
/// (managed by `dmk-core`) wraps another instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnChipMemory {
    words: Vec<u32>,
    banks: usize,
}

impl OnChipMemory {
    /// Creates a scratchpad of `bytes` capacity with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(bytes: u32, banks: usize) -> Self {
        assert!(banks > 0, "bank count must be positive");
        OnChipMemory {
            words: vec![0; (bytes as usize).div_ceil(4)],
            banks,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Reads the word at byte address `addr` (wraps modulo capacity, like
    /// real scratchpads whose address decoders ignore high bits).
    ///
    /// # Panics
    ///
    /// Panics on unaligned access.
    pub fn read(&self, addr: u32) -> u32 {
        assert!(
            addr.is_multiple_of(4),
            "unaligned on-chip read at {addr:#x}"
        );
        self.words[self.wrap(addr as usize / 4)]
    }

    /// Word-index wraparound. Real capacities are powers of two, where the
    /// modulo reduces to a mask — worth special-casing because this sits
    /// under every word of every on-chip access.
    #[inline]
    fn wrap(&self, idx: usize) -> usize {
        let n = self.words.len();
        if n.is_power_of_two() {
            idx & (n - 1)
        } else {
            idx % n
        }
    }

    /// Writes the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned access.
    pub fn write(&mut self, addr: u32, value: u32) {
        assert!(
            addr.is_multiple_of(4),
            "unaligned on-chip write at {addr:#x}"
        );
        let i = self.wrap(addr as usize / 4);
        self.words[i] = value;
    }

    /// Conflict degree of a warp access to this memory.
    pub fn conflict_degree(&self, addresses: &[u32]) -> u32 {
        conflict_degree(addresses, self.banks)
    }

    /// Serializes the scratchpad contents for a simulator checkpoint (the
    /// bank count is configuration, re-derived on restore).
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u32_slice(&self.words);
    }

    /// Restores contents previously written by
    /// [`OnChipMemory::encode_state`] into a scratchpad of identical
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or a
    /// [`CodecError::BadLength`] when the word count disagrees with this
    /// scratchpad's capacity.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let words = dec.take_u32_vec()?;
        if words.len() != self.words.len() {
            return Err(CodecError::BadLength {
                len: words.len() as u64,
                remaining: self.words.len(),
            });
        }
        self.words = words;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conflict_free_stride_one() {
        // 16 lanes, consecutive words, 16 banks: one word per bank.
        let addrs: Vec<u32> = (0..16).map(|i| i * 4).collect();
        assert_eq!(conflict_degree(&addrs, 16), 1);
    }

    #[test]
    fn worst_case_same_bank() {
        // Stride of 16 words on 16 banks: all lanes hit bank 0.
        let addrs: Vec<u32> = (0..8).map(|i| i * 16 * 4).collect();
        assert_eq!(conflict_degree(&addrs, 16), 8);
    }

    #[test]
    fn broadcast_does_not_conflict() {
        let addrs = vec![128; 32];
        assert_eq!(conflict_degree(&addrs, 16), 1);
    }

    #[test]
    fn stride_two_halves_throughput() {
        let addrs: Vec<u32> = (0..16).map(|i| i * 8).collect(); // stride 2 words
        assert_eq!(conflict_degree(&addrs, 16), 2);
    }

    #[test]
    fn empty_access_has_zero_degree() {
        assert_eq!(conflict_degree(&[], 16), 0);
    }

    #[test]
    fn onchip_read_write() {
        let mut m = OnChipMemory::new(64 * 1024, 16);
        assert_eq!(m.capacity_bytes(), 64 * 1024);
        m.write(100 * 4, 7);
        assert_eq!(m.read(100 * 4), 7);
    }

    proptest! {
        #[test]
        fn degree_bounds(addrs in proptest::collection::vec(0u32..65_536, 1..32), banks in 1usize..33) {
            let aligned: Vec<u32> = addrs.iter().map(|a| a & !3).collect();
            let d = conflict_degree(&aligned, banks);
            prop_assert!(d >= 1);
            prop_assert!(d as usize <= aligned.len());
        }

        #[test]
        fn span_matches_expanded_word_list(
            addrs in proptest::collection::vec(0u32..65_536, 0..40),
            wpl in 1u32..5,
            banks in 1usize..33,
        ) {
            let aligned: Vec<u32> = addrs.iter().map(|a| a & !3).collect();
            let mut words = Vec::new();
            for &a in &aligned {
                for wd in 0..wpl {
                    words.push(a + 4 * wd);
                }
            }
            prop_assert_eq!(
                conflict_degree_span(&aligned, wpl, banks),
                conflict_degree(&words, banks)
            );
        }

        #[test]
        fn single_bank_degree_is_distinct_words(addrs in proptest::collection::vec(0u32..4096, 1..32)) {
            let aligned: Vec<u32> = addrs.iter().map(|a| a & !3).collect();
            let mut words: Vec<u32> = aligned.iter().map(|a| a / 4).collect();
            words.sort_unstable();
            words.dedup();
            prop_assert_eq!(conflict_degree(&aligned, 1), words.len() as u32);
        }
    }
}
