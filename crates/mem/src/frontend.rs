//! The per-SM memory frontend and the phase-A validation view.
//!
//! In the two-phase pipeline each SM owns an [`SmMemFrontend`]: the
//! coalescer, the read-only (texture) cache, the on-chip load-store port,
//! and a private traffic shard. During phase A an SM validates addresses
//! against an immutable [`FabricView`] and turns off-chip accesses into
//! [`FabricRequest`](crate::FabricRequest)s; no SM touches shared memory
//! state until the serial phase B, which is what makes phase A safe to run
//! on many OS threads with bit-identical results.

use crate::cache::ReadOnlyCache;
use crate::coalesce::coalesce_segments;
use crate::config::MemConfig;
use crate::fabric::{time_onchip, FabricRequest, FunctionalOp, MemFault, WarpAccess};
use crate::mshr::MshrTable;
use crate::traffic::TrafficStats;
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::Space;

/// An order-preserving line-address set: lines come out in first-push
/// order (what timing emission needs, bit-identical to the historical
/// `Vec::contains` dedup) while membership runs off a parallel sorted
/// index instead of an O(n) scan per probe.
#[derive(Debug, Default, Clone)]
struct LineSet {
    /// Lines in first-push order.
    order: Vec<u32>,
    /// The same lines, sorted, for binary-search membership.
    sorted: Vec<u32>,
}

impl LineSet {
    fn clear(&mut self) {
        self.order.clear();
        self.sorted.clear();
    }

    /// Inserts `line` unless present; returns whether it was inserted.
    fn insert(&mut self, line: u32) -> bool {
        match self.sorted.binary_search(&line) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, line);
                self.order.push(line);
                true
            }
        }
    }

    fn contains(&self, line: u32) -> bool {
        self.sorted.binary_search(&line).is_ok()
    }

    fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Drains the lines in first-push order into `out`.
    fn drain_into(&mut self, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.order);
        self.clear();
    }
}

/// An immutable snapshot of the fabric metadata phase-A validation needs.
///
/// Everything here is static while a launch runs (heap size, local stride
/// and texture bindings only change from host code between runs), so one
/// view can be shared read-only across all SM worker threads.
#[derive(Debug, Clone)]
pub struct FabricView {
    config: MemConfig,
    global_allocated: u32,
    local_stride: u32,
    read_only_regions: Vec<(u32, u32)>,
}

impl FabricView {
    /// Creates a view; use [`crate::MemoryFabric::view`] rather than
    /// calling this directly.
    pub fn new(
        config: MemConfig,
        global_allocated: u32,
        local_stride: u32,
        read_only_regions: Vec<(u32, u32)>,
    ) -> Self {
        FabricView {
            config,
            global_allocated,
            local_stride,
            read_only_regions,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Whether a global address falls inside a read-only (texture) region.
    pub fn is_read_only(&self, addr: u32) -> bool {
        self.read_only_regions
            .iter()
            .any(|&(b, n)| addr >= b && addr < b.saturating_add(n))
    }

    /// Translates a per-thread local byte offset to a physical address used
    /// for coalescing/timing.
    pub fn local_physical(&self, tid: u32, addr: u32) -> u32 {
        tid.wrapping_mul(self.local_stride) + addr
    }

    fn check_local(&self, addr: u32) -> Result<(), MemFault> {
        if addr >= self.local_stride.max(4) {
            return Err(MemFault::LocalOob {
                addr,
                stride: self.local_stride,
            });
        }
        Ok(())
    }

    /// Validates an off-chip word load exactly as
    /// [`crate::MemoryFabric::try_read_u32`] /
    /// [`crate::MemoryFabric::try_read_local`] would: same checks, same
    /// order, so deferring the functional read to phase B cannot change
    /// which accesses trap.
    pub fn check_load(&self, space: Space, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned { space, addr });
        }
        match space {
            Space::Global | Space::Const => Ok(()),
            Space::Local => self.check_local(addr),
            _ => Err(MemFault::Unmapped { space }),
        }
    }

    /// Validates an off-chip word store exactly as
    /// [`crate::MemoryFabric::try_write_u32`] /
    /// [`crate::MemoryFabric::try_write_local`] would.
    pub fn check_store(&self, space: Space, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned { space, addr });
        }
        match space {
            Space::Global => {
                if self.global_allocated > 0 && addr >= self.global_allocated {
                    return Err(MemFault::GlobalStoreOob {
                        addr,
                        allocated: self.global_allocated,
                    });
                }
                Ok(())
            }
            Space::Const => Err(MemFault::ConstStore { addr }),
            Space::Local => self.check_local(addr),
            _ => Err(MemFault::Unmapped { space }),
        }
    }
}

/// One warp's deferred memory work for the cycle: functional ops to apply
/// and coalesced module requests to service, both in issue order.
///
/// Queued per-SM during phase A; the simulator drains all SMs' queues in
/// SM-id order during phase B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingAccess {
    /// The issuing warp's SM-local id.
    pub warp_id: usize,
    /// The issuing warp's slot index in the SM's warp pool at issue time.
    /// Valid for the drain that follows in the same cycle: slots never
    /// shift between phase A and phase B (admission appends, reaping runs
    /// after the drain, and kills only clear lanes). Consumers must still
    /// confirm `warps[slot].id == warp_id` before writing through it.
    pub slot: usize,
    /// Whether the warp's `ready_at` must be raised to the service
    /// completion time (loads wait; stores are fire-and-forget).
    pub wait: bool,
    /// Deferred functional word transfers, in lane/word issue order.
    pub ops: Vec<FunctionalOp>,
    /// Coalesced off-chip requests for the modules.
    pub requests: Vec<FabricRequest>,
    /// L1 lines whose MSHR fill completes when this access's requests are
    /// serviced (empty unless the L1 is enabled and this access missed).
    pub fill_lines: Vec<u32>,
    /// L1 lines this access merged into (outstanding MSHR fills it must
    /// wait for on top of its own requests).
    pub merge_lines: Vec<u32>,
}

/// Per-probe summary of one warp access routed through the L1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Probe {
    /// L1 lines probed (hits + misses).
    pub lines: u32,
    /// Lines resident with no outstanding fill.
    pub hits: u32,
    /// Lines that missed (merges and stalls included).
    pub misses: u32,
    /// Misses merged into an outstanding MSHR entry (no request issued).
    pub merges: u32,
    /// Misses that bypassed a full MSHR table (request still issued).
    pub mshr_stalls: u32,
}

/// The per-SM memory frontend: coalescer, read-only (texture) cache,
/// on-chip load-store port, and a private traffic shard.
#[derive(Debug, Clone)]
pub struct SmMemFrontend {
    config: MemConfig,
    traffic: TrafficStats,
    /// Cycle at which this SM's on-chip load-store port becomes free.
    lsu_free: u64,
    tex: Option<ReadOnlyCache>,
    /// Per-SM L1 data cache (global loads only; timing-only, see
    /// [`MemConfig::l1_bytes`]). `None` on the legacy flat fabric.
    l1: Option<ReadOnlyCache>,
    /// Outstanding-fill table of the L1.
    mshr: MshrTable,
    /// L1 line-probes satisfied without a new fetch (tag hits plus lanes
    /// piggybacking on a line this same access already misses on).
    l1_hits: u64,
    /// Unique line-misses per access: each either rides the access's own
    /// fabric request or merges into an outstanding MSHR fill, so
    /// `misses - merges` is exactly the line count handed to the L2.
    l1_misses: u64,
    /// Scratch dedup set reused across probes.
    line_scratch: LineSet,
    /// Scratch dedup set for merge lines.
    merge_scratch: LineSet,
    /// Scratch subset of `line_scratch`: missed lines that found the MSHR
    /// table full. Their tags were *not* installed (no entry tracks the
    /// fill, so a resident tag would let a later access hit before the
    /// data could have arrived), which the intra-access piggyback path
    /// must know so it skips the LRU refresh.
    stall_scratch: LineSet,
}

impl SmMemFrontend {
    /// Creates a frontend for one SM, building the read-only cache and the
    /// L1 from the configuration (capacity 0 disables either).
    pub fn new(config: MemConfig) -> Self {
        let tex = if config.tex_cache_bytes > 0 {
            Some(ReadOnlyCache::new(
                config.tex_cache_bytes,
                config.tex_line_bytes,
                config.tex_ways,
            ))
        } else {
            None
        };
        let l1 = if config.l1_enabled() {
            Some(ReadOnlyCache::new(
                config.l1_bytes,
                config.l1_line_bytes,
                config.l1_ways,
            ))
        } else {
            None
        };
        let mshr = MshrTable::new(config.l1_mshr_entries);
        SmMemFrontend {
            config,
            traffic: TrafficStats::new(),
            lsu_free: 0,
            tex,
            l1,
            mshr,
            l1_hits: 0,
            l1_misses: 0,
            line_scratch: LineSet::default(),
            merge_scratch: LineSet::default(),
            stall_scratch: LineSet::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// This SM's traffic shard.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Whether this SM has a read-only (texture) cache.
    pub fn has_tex(&self) -> bool {
        self.tex.is_some()
    }

    /// `(hits, misses)` of the read-only cache, if present.
    pub fn tex_stats(&self) -> Option<(u64, u64)> {
        self.tex.as_ref().map(|t| (t.hits, t.misses))
    }

    /// Whether this SM models an L1 data cache.
    pub fn has_l1(&self) -> bool {
        self.l1.is_some()
    }

    /// `(hits, misses, mshr_merges, mshr_stalls)` of the L1, if present.
    /// Misses count unique lines per access and include merges and
    /// stalls, so `hits + misses` equals the probed-line count and
    /// `misses - merges` equals the line count fetched from below.
    pub fn l1_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.l1.as_ref().map(|_| {
            (
                self.l1_hits,
                self.l1_misses,
                self.mshr.merges,
                self.mshr.stalls,
            )
        })
    }

    /// L1 line-probes so far (hits + misses).
    pub fn l1_lines_probed(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// Outstanding MSHR fills (mid-flight lines a snapshot must carry).
    pub fn mshr_in_flight(&self) -> usize {
        self.mshr.in_flight()
    }

    /// Stamps the fill-completion cycle of the MSHR entries behind
    /// `lines` (phase B, once the carrying request has been serviced).
    pub fn mshr_set_fill(&mut self, lines: &[u32], ready: u64) {
        self.mshr.set_fill(lines, ready);
    }

    /// The wake-up floor an access that merged into `lines` must respect.
    pub fn mshr_wait_floor(&self, lines: &[u32]) -> u64 {
        self.mshr.wait_floor(lines)
    }

    /// Drops MSHR entries whose fill was never stamped (abort path: the
    /// owning accesses were discarded).
    pub fn mshr_discard_unresolved(&mut self) {
        self.mshr.discard_unresolved();
    }

    /// Times one on-chip (shared/spawn) warp access against this SM's
    /// load-store port. Returns `(ready_cycle, conflict_degree)`.
    ///
    /// On-chip backing data is SM-private, so unlike off-chip accesses the
    /// functional transfer happens immediately in phase A; only the shared
    /// fabric is deferred.
    pub fn access_onchip(&mut self, now: u64, req: &WarpAccess) -> (u64, u32) {
        let mut port = self.lsu_free;
        let r = time_onchip(&self.config, &mut self.traffic, now, req, &mut port);
        self.lsu_free = port;
        r
    }

    /// Coalesces one off-chip warp access and records traffic. Returns the
    /// phase-A completion estimate plus the module request (if any) to hand
    /// to [`crate::MemoryFabric::service`] in phase B:
    ///
    /// * empty access → next cycle, no request, no traffic;
    /// * `const` → served by the constant cache at hit latency, no request;
    /// * ideal memory → next cycle, no request (traffic still recorded);
    /// * otherwise → next cycle as a floor; phase B raises the warp's
    ///   wake-up to the module completion time.
    pub fn request_offchip(
        &mut self,
        now: u64,
        space: Space,
        is_store: bool,
        bytes_per_lane: u32,
        addresses: &[u32],
    ) -> (u64, Option<FabricRequest>) {
        if addresses.is_empty() {
            return (now + 1, None);
        }
        let requested = addresses.len() as u64 * u64::from(bytes_per_lane);
        if space == Space::Const {
            self.traffic.record(space, is_store, requested, 0);
            if self.config.ideal {
                return (now + 1, None);
            }
            return (now + u64::from(self.config.tex_hit_latency.max(1)), None);
        }
        let result = coalesce_segments(addresses, bytes_per_lane, self.config.segment_bytes);
        self.traffic
            .record(space, is_store, requested, result.transactions() as u64);
        if self.config.ideal {
            return (now + 1, None);
        }
        (
            now + 1,
            Some(FabricRequest {
                space,
                is_store,
                segments: result.segments,
            }),
        )
    }

    /// Probes the read-only cache for every line a global load touches.
    /// `addresses` must already be filtered to read-only regions. Returns
    /// the base addresses of the missing lines (deduplicated in probe
    /// order); hits cost nothing beyond the hit latency the caller models.
    ///
    /// The cache fills at probe, so within one probe a line can only miss
    /// again after an intra-probe eviction; the dedup set keeps such a
    /// re-miss from emitting twice. Membership runs off a sorted index
    /// (binary search) instead of the historical `Vec::contains` scan —
    /// O(n log n) over the probe instead of O(n²) — while the emitted
    /// order stays first-miss probe order, bit-identical to before.
    ///
    /// # Panics
    ///
    /// Panics if this SM has no read-only cache.
    pub fn tex_probe(&mut self, addresses: &[u32], width_bytes: u32) -> Vec<u32> {
        let tex = self.tex.as_mut().expect("tex_probe without a cache");
        let line = tex.line_bytes();
        self.line_scratch.clear();
        for &a in addresses {
            let first = a & !(line - 1);
            let last = (a + width_bytes - 1) & !(line - 1);
            let mut l = first;
            loop {
                if !tex.access(l) {
                    self.line_scratch.insert(l);
                }
                if l >= last {
                    break;
                }
                l += line;
            }
        }
        let mut miss_lines = Vec::new();
        self.line_scratch.drain_into(&mut miss_lines);
        miss_lines
    }

    /// Routes one off-chip **global load** through the L1: probes every
    /// touched line, merges misses that hit an outstanding MSHR entry, and
    /// emits a single line-granular fabric request for the rest. Returns
    /// the phase-A completion floor, the request (if any line must be
    /// fetched), the fill lines (MSHR entries this access's request will
    /// complete), the merge lines (outstanding fills to wait for), and the
    /// probe summary for telemetry.
    ///
    /// Stores bypass the L1 entirely (write-through, no-allocate): callers
    /// route them through [`SmMemFrontend::request_offchip`] unchanged.
    ///
    /// # Panics
    ///
    /// Panics if this SM has no L1.
    #[allow(clippy::type_complexity)]
    pub fn l1_request(
        &mut self,
        now: u64,
        width_bytes: u32,
        addresses: &[u32],
    ) -> (u64, Option<FabricRequest>, Vec<u32>, Vec<u32>, L1Probe) {
        let l1 = self.l1.as_mut().expect("l1_request without an L1");
        let line = l1.line_bytes();
        self.mshr.purge(now);
        self.line_scratch.clear();
        self.merge_scratch.clear();
        self.stall_scratch.clear();
        let mut probe = L1Probe::default();
        for &a in addresses {
            let first = a & !(line - 1);
            let last = (a + width_bytes - 1) & !(line - 1);
            let mut l = first;
            loop {
                probe.lines += 1;
                if self.line_scratch.contains(l) || self.merge_scratch.contains(l) {
                    // A lane piggybacking on a line this access already
                    // misses (or merges) on: one fetch serves them all.
                    // Tracked lines were installed at the first probe, so
                    // this refreshes LRU like the tex cache's
                    // install-at-miss; stalled lines have no tag to
                    // refresh (and must not grow one here).
                    if !self.stall_scratch.contains(l) {
                        let _ = l1.access(l);
                    }
                    probe.hits += 1;
                } else if self.mshr.lookup(l).is_some() {
                    // In flight from an *earlier* access: merge into the
                    // outstanding fill instead of fetching again. The MSHR
                    // is consulted before the tag array — the tag is
                    // already installed, but the data has not landed.
                    probe.misses += 1;
                    probe.merges += 1;
                    self.mshr.note_merge();
                    self.merge_scratch.insert(l);
                } else if l1.probe(l) {
                    probe.hits += 1;
                } else if self.mshr.has_room() {
                    // Tracked miss: install the tag and let the MSHR entry
                    // stand in for the data until the fill lands.
                    l1.fill(l);
                    probe.misses += 1;
                    self.line_scratch.insert(l);
                    self.mshr.alloc(l);
                } else {
                    // Table full: the fetch still issues (no protocol
                    // deadlock to model) but nothing tracks its fill, so
                    // the tag is *not* installed — a later access to this
                    // line misses again instead of optimistically hitting
                    // at L1 latency while the data is still in flight.
                    probe.misses += 1;
                    probe.mshr_stalls += 1;
                    self.mshr.note_stall();
                    self.line_scratch.insert(l);
                    self.stall_scratch.insert(l);
                }
                if l >= last {
                    break;
                }
                l += line;
            }
        }
        self.l1_hits += u64::from(probe.hits);
        self.l1_misses += u64::from(probe.misses);
        let mut merge_lines = Vec::new();
        self.merge_scratch.drain_into(&mut merge_lines);
        let ready = now + u64::from(self.config.l1_hit_latency.max(1));
        if self.line_scratch.is_empty() {
            return (ready, None, Vec::new(), merge_lines, probe);
        }
        let mut miss_lines = Vec::new();
        self.line_scratch.drain_into(&mut miss_lines);
        // Stalled lines have no MSHR entry: they still travel with the
        // request, but `mshr_set_fill` will find nothing to stamp.
        let (floor, req) = self.request_offchip(now, Space::Global, false, line, &miss_lines);
        (ready.max(floor), req, miss_lines, merge_lines, probe)
    }

    /// Resets timing state (port, cache contents, MSHR) and the traffic
    /// shard.
    pub fn reset_timing(&mut self) {
        self.lsu_free = 0;
        self.traffic = TrafficStats::new();
        if let Some(t) = self.tex.as_mut() {
            t.reset();
        }
        if let Some(c) = self.l1.as_mut() {
            c.reset();
        }
        self.mshr.reset();
        self.l1_hits = 0;
        self.l1_misses = 0;
    }

    /// Serializes the frontend's mutable state — traffic shard, load-store
    /// port timestamp, and read-only cache contents — for a simulator
    /// checkpoint. The configuration (and hence cache geometry) is restored
    /// separately.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.traffic.encode_state(enc);
        enc.put_u64(self.lsu_free);
        enc.put_bool(self.tex.is_some());
        if let Some(t) = &self.tex {
            t.encode_state(enc);
        }
        enc.put_bool(self.l1.is_some());
        if let Some(c) = &self.l1 {
            c.encode_state(enc);
            self.mshr.encode_state(enc);
            enc.put_u64(self.l1_hits);
            enc.put_u64(self.l1_misses);
        }
    }

    /// Restores state previously written by
    /// [`SmMemFrontend::encode_state`] into a frontend built from the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when the cache
    /// presence/geometry disagrees with this frontend's configuration.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.traffic.restore_state(dec)?;
        self.lsu_free = dec.take_u64()?;
        let has_tex = dec.take_bool()?;
        match (&mut self.tex, has_tex) {
            (Some(t), true) => t.restore_state(dec)?,
            (None, false) => {}
            _ => {
                return Err(CodecError::BadTag {
                    what: "tex cache presence",
                    tag: u64::from(has_tex),
                })
            }
        }
        let has_l1 = dec.take_bool()?;
        match (&mut self.l1, has_l1) {
            (Some(c), true) => {
                c.restore_state(dec)?;
                self.mshr.restore_state(dec)?;
                self.l1_hits = dec.take_u64()?;
                self.l1_misses = dec.take_u64()?;
            }
            (None, false) => {}
            _ => {
                return Err(CodecError::BadTag {
                    what: "l1 cache presence",
                    tag: u64::from(has_l1),
                })
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::MemoryFabric;

    #[test]
    fn request_then_service_matches_monolithic_access() {
        let cfg = MemConfig::fx5800();
        let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();

        let mut mono = MemoryFabric::new(cfg.clone());
        let t_mono = mono.access(
            3,
            &WarpAccess {
                space: Space::Global,
                is_store: false,
                bytes_per_lane: 4,
                addresses: addrs.clone(),
            },
        );

        let mut fe = SmMemFrontend::new(cfg.clone());
        let mut fabric = MemoryFabric::new(cfg);
        let (floor, req) = fe.request_offchip(3, Space::Global, false, 4, &addrs);
        let t_split = fabric.service(3, &req.expect("non-ideal global access emits a request"));
        assert_eq!(t_mono, floor.max(t_split));
        // Traffic landed in the frontend shard, not the fabric.
        assert_eq!(fe.traffic().space(Space::Global).accesses, 1);
        assert_eq!(fabric.traffic().space(Space::Global).accesses, 0);
    }

    #[test]
    fn const_and_ideal_emit_no_request() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800());
        let (t, req) = fe.request_offchip(0, Space::Const, false, 4, &[0, 4, 8]);
        assert!(req.is_none());
        assert_eq!(t, u64::from(MemConfig::fx5800().tex_hit_latency));

        let mut ideal = SmMemFrontend::new(MemConfig::fx5800().with_ideal(true));
        let (t, req) = ideal.request_offchip(5, Space::Global, true, 4, &[0]);
        assert!(req.is_none());
        assert_eq!(t, 6);
        assert_eq!(ideal.traffic().space(Space::Global).bytes_written, 4);
    }

    #[test]
    fn onchip_port_serializes_conflicting_accesses() {
        let cfg = MemConfig::fx5800();
        let mut fe = SmMemFrontend::new(cfg.clone());
        let conflicted = WarpAccess {
            space: Space::Shared,
            is_store: false,
            bytes_per_lane: 4,
            addresses: (0..8).map(|i| i * 64).collect(),
        };
        let (t1, d1) = fe.access_onchip(0, &conflicted);
        assert_eq!(d1, 8);
        assert_eq!(t1, u64::from(cfg.shared_latency) + 8);
        // A second warp in the same cycle queues behind the port.
        let (t2, _) = fe.access_onchip(0, &conflicted);
        assert!(t2 > t1);
    }

    #[test]
    fn view_checks_mirror_fabric_checks() {
        let mut fab = MemoryFabric::new(MemConfig::fx5800());
        fab.alloc_global(32, "t");
        fab.configure_local(16);
        let v = fab.view();
        for (space, addr) in [(Space::Global, 3u32), (Space::Local, 20), (Space::Spawn, 0)] {
            assert!(v.check_load(space, addr).is_err(), "{space} {addr}");
        }
        assert_eq!(
            v.check_store(Space::Const, 4),
            Err(MemFault::ConstStore { addr: 4 })
        );
        assert!(v.check_load(Space::Const, 4).is_ok());
        assert!(v.check_store(Space::Local, 12).is_ok());
        assert_eq!(
            v.check_load(Space::Local, 16),
            fab.try_read_local(0, 16).map(|_| ()),
        );
    }

    #[test]
    fn tex_probe_order_matches_historical_contains_dedup() {
        // Regression for the O(n²) dedup fix: emitted miss lines must stay
        // in first-miss probe order, exactly what the old `Vec::contains`
        // guard produced — including re-misses after intra-probe eviction.
        let mut cfg = MemConfig::fx5800();
        // 2 lines total (1 set × 2 ways of 32 B): big probes evict.
        cfg.tex_cache_bytes = 64;
        cfg.tex_ways = 2;
        let mut fe = SmMemFrontend::new(cfg.clone());
        // Deliberately unsorted, with revisits forcing eviction re-misses.
        let addrs: Vec<u32> = vec![256, 0, 128, 64, 0, 192, 256, 32];
        let got = fe.tex_probe(&addrs, 4);
        // Reference: the historical algorithm, verbatim.
        let mut tex = ReadOnlyCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_ways);
        let line = cfg.tex_line_bytes;
        let mut want: Vec<u32> = Vec::new();
        for &a in &addrs {
            let l = a & !(line - 1);
            if !tex.access(l) && !want.contains(&l) {
                want.push(l);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn l1_hits_after_fill_and_stats_conserve() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800_cached());
        let addrs: Vec<u32> = (0..32).map(|i| i * 4).collect(); // 2 lines of 64 B
        let (_, req, fills, merges, p) = fe.l1_request(0, 4, &addrs);
        assert_eq!(p.lines, 32);
        assert_eq!(p.hits, 30, "lines fill at first probe");
        assert_eq!(p.misses, 2);
        assert_eq!(fills, vec![0, 64]);
        assert!(merges.is_empty());
        let r = req.expect("cold misses emit a request");
        assert_eq!(r.space, Space::Global);
        // Stamp the fills; once complete, the same lines hit cleanly.
        fe.mshr_set_fill(&fills, 10);
        let (_, req, fills, merges, p) = fe.l1_request(10, 4, &addrs);
        assert!(req.is_none() && fills.is_empty() && merges.is_empty());
        assert_eq!(p.hits, 32);
        // Conservation: hits + misses == probed lines.
        let (h, m, mg, st) = fe.l1_stats().expect("l1 on");
        assert_eq!(h + m, fe.l1_lines_probed());
        assert_eq!(mg, 0);
        assert_eq!(st, 0);
    }

    #[test]
    fn l1_merges_while_fill_in_flight() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800_cached());
        let (_, req, fills, _, _) = fe.l1_request(0, 4, &[0]);
        assert!(req.is_some());
        assert_eq!(fills, vec![0]);
        // Same line, same cycle, before the fill resolves: pure merge.
        let (_, req, fills2, merges, p) = fe.l1_request(0, 4, &[4]);
        assert!(req.is_none(), "merged access issues no request");
        assert!(fills2.is_empty());
        assert_eq!(merges, vec![0]);
        assert_eq!(p.merges, 1);
        assert_eq!(fe.mshr_in_flight(), 1);
        // Resolve the fill late; the merged access waits for it.
        fe.mshr_set_fill(&fills, 500);
        assert_eq!(fe.mshr_wait_floor(&merges), 500);
        // After the fill lands, the entry purges and the line plain-hits.
        let (_, _, _, merges, p) = fe.l1_request(500, 4, &[0]);
        assert!(merges.is_empty());
        assert_eq!(p.hits, 1);
    }

    #[test]
    fn l1_mshr_full_bypasses_but_still_requests() {
        let mut cfg = MemConfig::fx5800_cached();
        cfg.l1_mshr_entries = 1;
        let mut fe = SmMemFrontend::new(cfg);
        // Two distinct lines: the second miss finds the table full.
        let (_, req, fills, _, p) = fe.l1_request(0, 4, &[0, 64]);
        let r = req.expect("both lines still fetched");
        assert_eq!(r.segments.len(), 4, "two 64 B lines over 32 B segments");
        assert_eq!(fills, vec![0, 64]);
        assert_eq!(p.mshr_stalls, 1);
        let (_, _, mg, st) = fe.l1_stats().expect("l1 on");
        assert_eq!((mg, st), (0, 1));
    }

    #[test]
    fn l1_mshr_stall_does_not_install_the_tag() {
        let mut cfg = MemConfig::fx5800_cached();
        cfg.l1_mshr_entries = 1;
        let mut fe = SmMemFrontend::new(cfg);
        // Line 0 allocates the only entry; line 64 stalls (no entry, and
        // therefore no tag — nothing will ever stamp its fill).
        let (_, _, fills, _, p) = fe.l1_request(0, 4, &[0, 64, 68]);
        assert_eq!(p.mshr_stalls, 1);
        assert_eq!(p.hits, 1, "same-access lane still piggybacks the fetch");
        assert_eq!(fills, vec![0, 64]);
        fe.mshr_set_fill(&fills, 500);
        // Before the data could have arrived, the stalled line must NOT
        // plain-hit at L1 latency: it misses again and re-fetches.
        let (_, req, _, merges, p) = fe.l1_request(1, 4, &[64]);
        assert_eq!(p.hits, 0, "untracked in-flight line fake-hit the L1");
        assert_eq!(p.misses, 1);
        assert!(merges.is_empty(), "no MSHR entry exists to merge into");
        assert!(req.is_some(), "the re-miss fetches again");
        // Once the tracked line's fill lands and frees the table, the
        // stalled line's next miss allocates normally and fills the tag.
        let (_, _, fills, _, _) = fe.l1_request(500, 4, &[64]);
        assert_eq!(fills, vec![64]);
        fe.mshr_set_fill(&fills, 600);
        let (_, req, _, _, p) = fe.l1_request(600, 4, &[64]);
        assert!(req.is_none());
        assert_eq!(p.hits, 1);
    }

    #[test]
    fn l1_state_round_trips_with_mid_flight_mshr() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800_cached());
        let (_, _, fills, _, _) = fe.l1_request(3, 4, &[0, 256]);
        fe.mshr_set_fill(&fills, 77);
        let (_, _, _, _, _) = fe.l1_request(4, 4, &[512]); // unresolved entry
        let mut enc = Encoder::new();
        fe.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = SmMemFrontend::new(MemConfig::fx5800_cached());
        restored
            .restore_state(&mut Decoder::new(&bytes))
            .expect("round trip");
        assert_eq!(restored.l1_stats(), fe.l1_stats());
        assert_eq!(restored.mshr_in_flight(), fe.mshr_in_flight());
        assert_eq!(restored.l1_lines_probed(), fe.l1_lines_probed());
        // A frontend without an L1 rejects the snapshot.
        let mut flat = SmMemFrontend::new(MemConfig::fx5800());
        assert!(flat.restore_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn tex_probe_dedups_lines_and_tracks_hits() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800());
        let line = MemConfig::fx5800().tex_line_bytes;
        // Two addresses in the same line: one miss.
        let m = fe.tex_probe(&[0, 4], 4);
        assert_eq!(m, vec![0]);
        // Re-probe: hit, no misses.
        assert!(fe.tex_probe(&[0], 4).is_empty());
        // A v4 straddling a line boundary touches two lines.
        let m = fe.tex_probe(&[line - 4], 16);
        assert_eq!(m.len(), 1, "line 0 already resident: {m:?}");
        assert_eq!(m[0], line);
    }
}
