//! The per-SM memory frontend and the phase-A validation view.
//!
//! In the two-phase pipeline each SM owns an [`SmMemFrontend`]: the
//! coalescer, the read-only (texture) cache, the on-chip load-store port,
//! and a private traffic shard. During phase A an SM validates addresses
//! against an immutable [`FabricView`] and turns off-chip accesses into
//! [`FabricRequest`](crate::FabricRequest)s; no SM touches shared memory
//! state until the serial phase B, which is what makes phase A safe to run
//! on many OS threads with bit-identical results.

use crate::cache::ReadOnlyCache;
use crate::coalesce::coalesce_segments;
use crate::config::MemConfig;
use crate::fabric::{time_onchip, FabricRequest, FunctionalOp, MemFault, WarpAccess};
use crate::traffic::TrafficStats;
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::Space;

/// An immutable snapshot of the fabric metadata phase-A validation needs.
///
/// Everything here is static while a launch runs (heap size, local stride
/// and texture bindings only change from host code between runs), so one
/// view can be shared read-only across all SM worker threads.
#[derive(Debug, Clone)]
pub struct FabricView {
    config: MemConfig,
    global_allocated: u32,
    local_stride: u32,
    read_only_regions: Vec<(u32, u32)>,
}

impl FabricView {
    /// Creates a view; use [`crate::MemoryFabric::view`] rather than
    /// calling this directly.
    pub fn new(
        config: MemConfig,
        global_allocated: u32,
        local_stride: u32,
        read_only_regions: Vec<(u32, u32)>,
    ) -> Self {
        FabricView {
            config,
            global_allocated,
            local_stride,
            read_only_regions,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Whether a global address falls inside a read-only (texture) region.
    pub fn is_read_only(&self, addr: u32) -> bool {
        self.read_only_regions
            .iter()
            .any(|&(b, n)| addr >= b && addr < b.saturating_add(n))
    }

    /// Translates a per-thread local byte offset to a physical address used
    /// for coalescing/timing.
    pub fn local_physical(&self, tid: u32, addr: u32) -> u32 {
        tid.wrapping_mul(self.local_stride) + addr
    }

    fn check_local(&self, addr: u32) -> Result<(), MemFault> {
        if addr >= self.local_stride.max(4) {
            return Err(MemFault::LocalOob {
                addr,
                stride: self.local_stride,
            });
        }
        Ok(())
    }

    /// Validates an off-chip word load exactly as
    /// [`crate::MemoryFabric::try_read_u32`] /
    /// [`crate::MemoryFabric::try_read_local`] would: same checks, same
    /// order, so deferring the functional read to phase B cannot change
    /// which accesses trap.
    pub fn check_load(&self, space: Space, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned { space, addr });
        }
        match space {
            Space::Global | Space::Const => Ok(()),
            Space::Local => self.check_local(addr),
            _ => Err(MemFault::Unmapped { space }),
        }
    }

    /// Validates an off-chip word store exactly as
    /// [`crate::MemoryFabric::try_write_u32`] /
    /// [`crate::MemoryFabric::try_write_local`] would.
    pub fn check_store(&self, space: Space, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned { space, addr });
        }
        match space {
            Space::Global => {
                if self.global_allocated > 0 && addr >= self.global_allocated {
                    return Err(MemFault::GlobalStoreOob {
                        addr,
                        allocated: self.global_allocated,
                    });
                }
                Ok(())
            }
            Space::Const => Err(MemFault::ConstStore { addr }),
            Space::Local => self.check_local(addr),
            _ => Err(MemFault::Unmapped { space }),
        }
    }
}

/// One warp's deferred memory work for the cycle: functional ops to apply
/// and coalesced module requests to service, both in issue order.
///
/// Queued per-SM during phase A; the simulator drains all SMs' queues in
/// SM-id order during phase B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingAccess {
    /// The issuing warp's SM-local id.
    pub warp_id: usize,
    /// The issuing warp's slot index in the SM's warp pool at issue time.
    /// Valid for the drain that follows in the same cycle: slots never
    /// shift between phase A and phase B (admission appends, reaping runs
    /// after the drain, and kills only clear lanes). Consumers must still
    /// confirm `warps[slot].id == warp_id` before writing through it.
    pub slot: usize,
    /// Whether the warp's `ready_at` must be raised to the service
    /// completion time (loads wait; stores are fire-and-forget).
    pub wait: bool,
    /// Deferred functional word transfers, in lane/word issue order.
    pub ops: Vec<FunctionalOp>,
    /// Coalesced off-chip requests for the modules.
    pub requests: Vec<FabricRequest>,
}

/// The per-SM memory frontend: coalescer, read-only (texture) cache,
/// on-chip load-store port, and a private traffic shard.
#[derive(Debug, Clone)]
pub struct SmMemFrontend {
    config: MemConfig,
    traffic: TrafficStats,
    /// Cycle at which this SM's on-chip load-store port becomes free.
    lsu_free: u64,
    tex: Option<ReadOnlyCache>,
}

impl SmMemFrontend {
    /// Creates a frontend for one SM, building the read-only cache from the
    /// configuration (capacity 0 disables it).
    pub fn new(config: MemConfig) -> Self {
        let tex = if config.tex_cache_bytes > 0 {
            Some(ReadOnlyCache::new(
                config.tex_cache_bytes,
                config.tex_line_bytes,
                config.tex_ways,
            ))
        } else {
            None
        };
        SmMemFrontend {
            config,
            traffic: TrafficStats::new(),
            lsu_free: 0,
            tex,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// This SM's traffic shard.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Whether this SM has a read-only (texture) cache.
    pub fn has_tex(&self) -> bool {
        self.tex.is_some()
    }

    /// `(hits, misses)` of the read-only cache, if present.
    pub fn tex_stats(&self) -> Option<(u64, u64)> {
        self.tex.as_ref().map(|t| (t.hits, t.misses))
    }

    /// Times one on-chip (shared/spawn) warp access against this SM's
    /// load-store port. Returns `(ready_cycle, conflict_degree)`.
    ///
    /// On-chip backing data is SM-private, so unlike off-chip accesses the
    /// functional transfer happens immediately in phase A; only the shared
    /// fabric is deferred.
    pub fn access_onchip(&mut self, now: u64, req: &WarpAccess) -> (u64, u32) {
        let mut port = self.lsu_free;
        let r = time_onchip(&self.config, &mut self.traffic, now, req, &mut port);
        self.lsu_free = port;
        r
    }

    /// Coalesces one off-chip warp access and records traffic. Returns the
    /// phase-A completion estimate plus the module request (if any) to hand
    /// to [`crate::MemoryFabric::service`] in phase B:
    ///
    /// * empty access → next cycle, no request, no traffic;
    /// * `const` → served by the constant cache at hit latency, no request;
    /// * ideal memory → next cycle, no request (traffic still recorded);
    /// * otherwise → next cycle as a floor; phase B raises the warp's
    ///   wake-up to the module completion time.
    pub fn request_offchip(
        &mut self,
        now: u64,
        space: Space,
        is_store: bool,
        bytes_per_lane: u32,
        addresses: &[u32],
    ) -> (u64, Option<FabricRequest>) {
        if addresses.is_empty() {
            return (now + 1, None);
        }
        let requested = addresses.len() as u64 * u64::from(bytes_per_lane);
        if space == Space::Const {
            self.traffic.record(space, is_store, requested, 0);
            if self.config.ideal {
                return (now + 1, None);
            }
            return (now + u64::from(self.config.tex_hit_latency.max(1)), None);
        }
        let result = coalesce_segments(addresses, bytes_per_lane, self.config.segment_bytes);
        self.traffic
            .record(space, is_store, requested, result.transactions() as u64);
        if self.config.ideal {
            return (now + 1, None);
        }
        (
            now + 1,
            Some(FabricRequest {
                space,
                is_store,
                segments: result.segments,
            }),
        )
    }

    /// Probes the read-only cache for every line a global load touches.
    /// `addresses` must already be filtered to read-only regions. Returns
    /// the base addresses of the missing lines (deduplicated in probe
    /// order); hits cost nothing beyond the hit latency the caller models.
    ///
    /// # Panics
    ///
    /// Panics if this SM has no read-only cache.
    pub fn tex_probe(&mut self, addresses: &[u32], width_bytes: u32) -> Vec<u32> {
        let tex = self.tex.as_mut().expect("tex_probe without a cache");
        let line = tex.line_bytes();
        let mut miss_lines = Vec::new();
        for &a in addresses {
            let first = a & !(line - 1);
            let last = (a + width_bytes - 1) & !(line - 1);
            let mut l = first;
            loop {
                if !tex.access(l) && !miss_lines.contains(&l) {
                    miss_lines.push(l);
                }
                if l >= last {
                    break;
                }
                l += line;
            }
        }
        miss_lines
    }

    /// Resets timing state (port, cache contents) and the traffic shard.
    pub fn reset_timing(&mut self) {
        self.lsu_free = 0;
        self.traffic = TrafficStats::new();
        if let Some(t) = self.tex.as_mut() {
            t.reset();
        }
    }

    /// Serializes the frontend's mutable state — traffic shard, load-store
    /// port timestamp, and read-only cache contents — for a simulator
    /// checkpoint. The configuration (and hence cache geometry) is restored
    /// separately.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.traffic.encode_state(enc);
        enc.put_u64(self.lsu_free);
        enc.put_bool(self.tex.is_some());
        if let Some(t) = &self.tex {
            t.encode_state(enc);
        }
    }

    /// Restores state previously written by
    /// [`SmMemFrontend::encode_state`] into a frontend built from the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when the cache
    /// presence/geometry disagrees with this frontend's configuration.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.traffic.restore_state(dec)?;
        self.lsu_free = dec.take_u64()?;
        let has_tex = dec.take_bool()?;
        match (&mut self.tex, has_tex) {
            (Some(t), true) => t.restore_state(dec)?,
            (None, false) => {}
            _ => {
                return Err(CodecError::BadTag {
                    what: "tex cache presence",
                    tag: u64::from(has_tex),
                })
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::MemoryFabric;

    #[test]
    fn request_then_service_matches_monolithic_access() {
        let cfg = MemConfig::fx5800();
        let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();

        let mut mono = MemoryFabric::new(cfg.clone());
        let t_mono = mono.access(
            3,
            &WarpAccess {
                space: Space::Global,
                is_store: false,
                bytes_per_lane: 4,
                addresses: addrs.clone(),
            },
        );

        let mut fe = SmMemFrontend::new(cfg.clone());
        let mut fabric = MemoryFabric::new(cfg);
        let (floor, req) = fe.request_offchip(3, Space::Global, false, 4, &addrs);
        let t_split = fabric.service(3, &req.expect("non-ideal global access emits a request"));
        assert_eq!(t_mono, floor.max(t_split));
        // Traffic landed in the frontend shard, not the fabric.
        assert_eq!(fe.traffic().space(Space::Global).accesses, 1);
        assert_eq!(fabric.traffic().space(Space::Global).accesses, 0);
    }

    #[test]
    fn const_and_ideal_emit_no_request() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800());
        let (t, req) = fe.request_offchip(0, Space::Const, false, 4, &[0, 4, 8]);
        assert!(req.is_none());
        assert_eq!(t, u64::from(MemConfig::fx5800().tex_hit_latency));

        let mut ideal = SmMemFrontend::new(MemConfig::fx5800().with_ideal(true));
        let (t, req) = ideal.request_offchip(5, Space::Global, true, 4, &[0]);
        assert!(req.is_none());
        assert_eq!(t, 6);
        assert_eq!(ideal.traffic().space(Space::Global).bytes_written, 4);
    }

    #[test]
    fn onchip_port_serializes_conflicting_accesses() {
        let cfg = MemConfig::fx5800();
        let mut fe = SmMemFrontend::new(cfg.clone());
        let conflicted = WarpAccess {
            space: Space::Shared,
            is_store: false,
            bytes_per_lane: 4,
            addresses: (0..8).map(|i| i * 64).collect(),
        };
        let (t1, d1) = fe.access_onchip(0, &conflicted);
        assert_eq!(d1, 8);
        assert_eq!(t1, u64::from(cfg.shared_latency) + 8);
        // A second warp in the same cycle queues behind the port.
        let (t2, _) = fe.access_onchip(0, &conflicted);
        assert!(t2 > t1);
    }

    #[test]
    fn view_checks_mirror_fabric_checks() {
        let mut fab = MemoryFabric::new(MemConfig::fx5800());
        fab.alloc_global(32, "t");
        fab.configure_local(16);
        let v = fab.view();
        for (space, addr) in [(Space::Global, 3u32), (Space::Local, 20), (Space::Spawn, 0)] {
            assert!(v.check_load(space, addr).is_err(), "{space} {addr}");
        }
        assert_eq!(
            v.check_store(Space::Const, 4),
            Err(MemFault::ConstStore { addr: 4 })
        );
        assert!(v.check_load(Space::Const, 4).is_ok());
        assert!(v.check_store(Space::Local, 12).is_ok());
        assert_eq!(
            v.check_load(Space::Local, 16),
            fab.try_read_local(0, 16).map(|_| ()),
        );
    }

    #[test]
    fn tex_probe_dedups_lines_and_tracks_hits() {
        let mut fe = SmMemFrontend::new(MemConfig::fx5800());
        let line = MemConfig::fx5800().tex_line_bytes;
        // Two addresses in the same line: one miss.
        let m = fe.tex_probe(&[0, 4], 4);
        assert_eq!(m, vec![0]);
        // Re-probe: hit, no misses.
        assert!(fe.tex_probe(&[0], 4).is_empty());
        // A v4 straddling a line boundary touches two lines.
        let m = fe.tex_probe(&[line - 4], 16);
        assert_eq!(m.len(), 1, "line 0 already resident: {m:?}");
        assert_eq!(m[0], line);
    }
}
